//! Offline stand-in for `serde`: marker traits plus no-op derives.
//!
//! The workspace derives `Serialize` / `Deserialize` on its report and
//! metadata types so they are wire-format-ready, but nothing serializes in
//! this offline build. See `vendor/README.md` for how to swap in real serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
