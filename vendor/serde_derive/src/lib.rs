//! No-op stand-ins for serde's `Serialize` / `Deserialize` derives.
//!
//! The workspace only *derives* these traits (for future wire formats); no
//! code path serializes today, so the derives expand to nothing. See
//! `vendor/README.md`.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
