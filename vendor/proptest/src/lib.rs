//! Offline mini stand-in for the `proptest` property-testing crate.
//!
//! Implements exactly the subset of proptest's API this workspace uses:
//! the [`proptest!`] test macro with `arg in strategy` bindings, the
//! [`Strategy`] trait with `prop_map`/`boxed`, integer-range and tuple
//! strategies, [`prop_oneof!`], [`strategy::Just`], [`arbitrary::any`],
//! [`collection::vec`], [`array::uniform8`], and the `prop_assert*!` /
//! [`prop_assume!`] macros.
//!
//! Generation is driven by a deterministic SplitMix64 PRNG seeded from the
//! test name and case index, so failures are reproducible run-to-run. There
//! is no shrinking: a failing case panics with its case number and seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; panics if empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].new_value(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((*self.start() as i128) + off) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (S0 0);
        (S0 0, S1 1);
        (S0 0, S1 1, S2 2);
        (S0 0, S1 1, S2 2, S3 3);
        (S0 0, S1 1, S2 2, S3 3, S4 4);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and the [`Arbitrary`] trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any value of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size band for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: u64,
        hi: u64,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n as u64, hi: n as u64 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            Self { lo: r.start as u64, hi: (r.end - 1) as u64 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.end() >= r.start(), "empty size range");
            Self { lo: *r.start() as u64, hi: *r.end() as u64 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a band.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with length in `size`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; N]` drawing each element from `S`.
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.new_value(rng))
        }
    }

    /// A strategy for arrays of eight values drawn from `element`.
    #[must_use]
    pub fn uniform8<S: Strategy>(element: S) -> UniformArrayStrategy<S, 8> {
        UniformArrayStrategy { element }
    }
}

pub mod test_runner {
    //! The deterministic case runner behind [`crate::proptest!`].

    use crate::strategy::Strategy;

    /// Runner configuration (`ProptestConfig` in real proptest).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 128 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property failed.
        Fail(String),
        /// The case was rejected by [`crate::prop_assume!`] (does not count).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with `message`.
        #[must_use]
        pub fn fail(message: String) -> Self {
            Self::Fail(message)
        }

        /// A rejection with `message`.
        #[must_use]
        pub fn reject(message: String) -> Self {
            Self::Reject(message)
        }
    }

    /// Per-case verdict.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 generator.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded with `seed`.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound` must be non-zero).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Runs one property over many generated cases.
    #[derive(Clone, Copy, Debug)]
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// A runner with `config`.
        #[must_use]
        pub fn new(config: Config) -> Self {
            Self { config }
        }

        /// Runs `test` against `config.cases` generated inputs; panics on
        /// the first failure with the case number and seed.
        ///
        /// # Panics
        ///
        /// Panics when the property fails or when rejections starve the run.
        pub fn run<S, F>(&mut self, name: &str, strategy: &S, test: F)
        where
            S: Strategy,
            F: Fn(S::Value) -> TestCaseResult,
        {
            let base = fnv1a(name.as_bytes());
            let mut passed = 0u32;
            let mut rejected = 0u32;
            let max_rejects = self.config.cases.saturating_mul(16).max(1024);
            let mut attempt = 0u64;
            while passed < self.config.cases {
                let seed = base ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F);
                attempt += 1;
                let mut rng = TestRng::new(seed);
                let value = strategy.new_value(&mut rng);
                match test(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected <= max_rejects,
                            "property `{name}`: too many prop_assume! rejections \
                             ({rejected} after {passed} passes)"
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{name}` failed at case {passed} \
                             (seed {seed:#018x}): {msg}"
                        );
                    }
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run(stringify!($name), &strategy, |($($arg,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                lhs, rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}: `{:?}` == `{:?}`",
                format!($($fmt)+),
                lhs,
                rhs
            )));
        }
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                lhs, rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                lhs,
                rhs
            )));
        }
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
