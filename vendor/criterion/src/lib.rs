//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset this workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with simple
//! wall-clock measurement: a short warm-up, then timed batches until a
//! fixed measurement budget elapses, reporting the mean time per iteration
//! (and derived throughput when declared).
//!
//! Passing `--test` (i.e. `cargo bench -- --test`, mirroring real
//! criterion) switches every bench to a single unmeasured iteration — the
//! CI smoke mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(150);
const MEASURE: Duration = Duration::from_millis(750);

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many abstract elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Drives the closure under measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    smoke: bool,
}

/// True when the bench binary was invoked as `cargo bench -- --test`:
/// every routine runs exactly once, unmeasured — the CI smoke mode that
/// fails the pipeline on bench bit-rot without paying measurement time.
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Bencher {
    /// Times `routine`, recording the mean wall-clock cost per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            // Single-iteration smoke run: exercise the routine, skip timing.
            std::hint::black_box(routine());
            self.mean_ns = 0.0;
            return;
        }
        // Warm-up: also establishes a per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Measurement: batches sized so each batch costs roughly 10 ms.
        let batch = ((10_000_000.0 / est_ns).ceil() as u64).max(1);
        let mut total_iters = 0u64;
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total_iters += batch;
        }
        self.mean_ns = measure_start.elapsed().as_nanos() as f64 / total_iters as f64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    if mean_ns == 0.0 {
        println!("{name:<40} smoke: ok (ran once, unmeasured)");
        return;
    }
    let mut line = format!("{name:<40} time: [{}]", format_ns(mean_ns));
    match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / (mean_ns / 1e9);
            line.push_str(&format!("  thrpt: [{per_sec:.0} elem/s]"));
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / (mean_ns / 1e9);
            line.push_str(&format!("  thrpt: [{:.2} MiB/s]", per_sec / (1024.0 * 1024.0)));
        }
        None => {}
    }
    println!("{line}");
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs and reports a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { smoke: smoke_mode(), ..Bencher::default() };
        f(&mut b);
        report(name, b.mean_ns, None);
        self
    }

    /// Opens a named group of related benchmarks.
    #[must_use]
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), throughput: None }
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed by each iteration in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { smoke: smoke_mode(), ..Bencher::default() };
        f(&mut b);
        report(&format!("{}/{name}", self.name), b.mean_ns, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group function running each listed benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
