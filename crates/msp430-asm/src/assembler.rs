//! The two-pass assembler.
//!
//! **Pass 1** walks the program, tracks the location counter, defines labels
//! and `.equ` symbols, and *sizes* every instruction. Immediates whose value
//! is not yet known (forward references) are pessimistically sized in long
//! form; the decision is recorded so pass 2 encodes the same size even if
//! the value turns out to fit a constant generator.
//!
//! **Pass 2** evaluates all expressions against the complete symbol table
//! and encodes with [`msp430::isa::Insn::encode_opts`].

use crate::ast::{Expr, Item, Program, Stmt, TOperand, Template};
use crate::image::Image;
use crate::parser::parse_program;
use msp430::isa::{Insn, Operand, Size};
use std::collections::BTreeMap;
use std::fmt;

/// Assembly error with source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based source line (0 for synthetic lines).
    pub line: usize,
    /// Message.
    pub msg: String,
}

impl AsmError {
    fn new(line: usize, msg: impl Into<String>) -> Self {
        Self { line, msg: msg.into() }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

impl From<crate::parser::ParseError> for AsmError {
    fn from(e: crate::parser::ParseError) -> Self {
        AsmError { line: e.line, msg: e.msg }
    }
}

/// Assembles source text.
///
/// # Errors
///
/// Returns [`AsmError`] on parse, sizing, resolution or encoding failures.
///
/// # Examples
///
/// ```
/// let img = msp430_asm::assemble(".org 0xE000\n nop\n")?;
/// assert_eq!(img.size_bytes(), 2);
/// # Ok::<(), msp430_asm::AsmError>(())
/// ```
pub fn assemble(src: &str) -> Result<Image, AsmError> {
    let program = parse_program(src)?;
    assemble_program(&program)
}

/// One sized instruction awaiting encoding.
struct Pending<'a> {
    line: usize,
    addr: u16,
    template: &'a Template,
    /// Pass-1 decision: encode immediates in long form.
    long_imm: bool,
}

/// Assembles an already-parsed (possibly instrumented) [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] on sizing, resolution or encoding failures.
pub fn assemble_program(program: &Program) -> Result<Image, AsmError> {
    let mut symbols: BTreeMap<String, u16> = BTreeMap::new();
    let mut pc: u16 = 0;
    let mut pending: Vec<Pending<'_>> = Vec::new();
    let mut data: Vec<(usize, u16, &Stmt)> = Vec::new();

    // ---- Pass 1: layout & symbols ----
    for line in &program.lines {
        let ln = line.line;
        match &line.item {
            Item::Label(name) => {
                if symbols.insert(name.clone(), pc).is_some() {
                    return Err(AsmError::new(ln, format!("duplicate symbol `{name}`")));
                }
            }
            Item::Stmt(stmt) => match stmt {
                Stmt::Org(e) => {
                    let v = eval_now(e, &symbols, pc, ln, ".org")?;
                    pc = v;
                }
                Stmt::Align => {
                    if pc & 1 != 0 {
                        pc = pc.wrapping_add(1);
                    }
                }
                Stmt::Equ(name, e) => {
                    let v = eval_now(e, &symbols, pc, ln, ".equ")?;
                    if symbols.insert(name.clone(), v).is_some() {
                        return Err(AsmError::new(ln, format!("duplicate symbol `{name}`")));
                    }
                }
                Stmt::Word(es) => {
                    if pc & 1 != 0 {
                        return Err(AsmError::new(ln, ".word at odd address"));
                    }
                    data.push((ln, pc, stmt));
                    pc = pc.wrapping_add(2 * es.len() as u16);
                }
                Stmt::Byte(es) => {
                    data.push((ln, pc, stmt));
                    pc = pc.wrapping_add(es.len() as u16);
                }
                Stmt::Space(e) => {
                    let v = eval_now(e, &symbols, pc, ln, ".space")?;
                    data.push((ln, pc, stmt));
                    pc = pc.wrapping_add(v);
                }
                Stmt::Insn(t) => {
                    if pc & 1 != 0 {
                        return Err(AsmError::new(ln, "instruction at odd address"));
                    }
                    let (words, long_imm) = size_of(t, &symbols, pc);
                    pending.push(Pending { line: ln, addr: pc, template: t, long_imm });
                    pc = pc.wrapping_add(2 * words);
                }
            },
        }
    }

    // ---- Pass 2: encode ----
    let mut image = Image::new();
    image.symbols = symbols.clone();

    for p in &pending {
        let insn = resolve(p.template, &symbols, p.addr, p.line)?;
        let words = insn
            .encode_opts(p.addr, !p.long_imm)
            .map_err(|e| AsmError::new(p.line, e.to_string()))?;
        let mut a = p.addr;
        for w in words {
            if !image.put_word(a, w) {
                return Err(AsmError::new(p.line, format!("overlapping code at {a:#06x}")));
            }
            a = a.wrapping_add(2);
        }
    }

    for (ln, addr, stmt) in data {
        match stmt {
            Stmt::Word(es) => {
                let mut a = addr;
                for e in es {
                    let v = eval_word(e, &symbols, a, ln)?;
                    if !image.put_word(a, v) {
                        return Err(AsmError::new(ln, format!("overlapping data at {a:#06x}")));
                    }
                    a = a.wrapping_add(2);
                }
            }
            Stmt::Byte(es) => {
                let mut a = addr;
                for e in es {
                    let v = eval_word(e, &symbols, a, ln)?;
                    if v > 0xFF && v < 0xFF80 {
                        return Err(AsmError::new(ln, format!(".byte value {v:#x} out of range")));
                    }
                    if !image.put_byte(a, v as u8) {
                        return Err(AsmError::new(ln, format!("overlapping data at {a:#06x}")));
                    }
                    a = a.wrapping_add(1);
                }
            }
            Stmt::Space(e) => {
                let n = eval_word(e, &symbols, addr, ln)?;
                let mut a = addr;
                for _ in 0..n {
                    if !image.put_byte(a, 0) {
                        return Err(AsmError::new(ln, format!("overlapping data at {a:#06x}")));
                    }
                    a = a.wrapping_add(1);
                }
            }
            _ => unreachable!("only data statements are deferred"),
        }
    }

    Ok(image)
}

/// Pass-1 evaluation that must succeed immediately (`.org`, `.equ`,
/// `.space`) — forward references are not allowed there.
fn eval_now(
    e: &Expr,
    symbols: &BTreeMap<String, u16>,
    here: u16,
    line: usize,
    what: &str,
) -> Result<u16, AsmError> {
    let v = e
        .eval(symbols, here)
        .ok_or_else(|| AsmError::new(line, format!("{what} operand must not forward-reference")))?;
    to_u16(v, line)
}

fn eval_word(
    e: &Expr,
    symbols: &BTreeMap<String, u16>,
    here: u16,
    line: usize,
) -> Result<u16, AsmError> {
    let v = e
        .eval(symbols, here)
        .ok_or_else(|| AsmError::new(line, format!("undefined symbol in expression `{e}`")))?;
    to_u16(v, line)
}

fn to_u16(v: i64, line: usize) -> Result<u16, AsmError> {
    if (-0x8000..=0xFFFF).contains(&v) {
        Ok((v & 0xFFFF) as u16)
    } else {
        Err(AsmError::new(line, format!("value {v} does not fit in 16 bits")))
    }
}

/// Pass-1 size (in words) of an instruction, plus the long-immediate flag.
fn size_of(t: &Template, symbols: &BTreeMap<String, u16>, here: u16) -> (u16, bool) {
    let ext = |o: &TOperand, long_imm: &mut bool| -> u16 {
        match o {
            TOperand::Reg(_) | TOperand::Indirect(_) | TOperand::IndirectInc(_) => 0,
            TOperand::Indexed(..) | TOperand::Symbolic(_) | TOperand::Absolute(_) => 1,
            TOperand::Imm(e) => match e.eval(symbols, here) {
                Some(0 | 1 | 2 | 4 | 8 | -1) => 0,
                _ => {
                    *long_imm = true;
                    1
                }
            },
        }
    };
    let mut long_imm = false;
    let words = match t {
        Template::Jcc { .. } => 1,
        Template::One { sd, .. } => 1 + ext(sd, &mut long_imm),
        Template::Two { src, dst, .. } => {
            1 + ext(src, &mut long_imm)
                + match dst {
                    TOperand::Reg(_) => 0,
                    _ => 1,
                }
        }
    };
    (words, long_imm)
}

/// Pass-2 resolution: template → concrete [`Insn`].
fn resolve(
    t: &Template,
    symbols: &BTreeMap<String, u16>,
    addr: u16,
    line: usize,
) -> Result<Insn, AsmError> {
    let operand = |o: &TOperand| -> Result<Operand, AsmError> {
        Ok(match o {
            TOperand::Reg(r) => Operand::Reg(*r),
            TOperand::Imm(e) => Operand::Imm(eval_word(e, symbols, addr, line)?),
            TOperand::Indexed(e, r) => Operand::Indexed(*r, eval_word(e, symbols, addr, line)?),
            TOperand::Symbolic(e) => Operand::Symbolic(eval_word(e, symbols, addr, line)?),
            TOperand::Absolute(e) => Operand::Absolute(eval_word(e, symbols, addr, line)?),
            TOperand::Indirect(r) => Operand::Indirect(*r),
            TOperand::IndirectInc(r) => Operand::IndirectInc(*r),
        })
    };
    match t {
        Template::One { op, size, sd } => Ok(Insn::One { op: *op, size: *size, sd: operand(sd)? }),
        Template::Two { op, size, src, dst } => {
            Ok(Insn::Two { op: *op, size: *size, src: operand(src)?, dst: operand(dst)? })
        }
        Template::Jcc { cond, target } => {
            let tgt = eval_word(target, symbols, addr, line)?;
            Insn::jump_to(*cond, addr, tgt)
                .map_err(|e| AsmError::new(line, format!("jump to {tgt:#06x}: {e}")))
        }
    }
}

/// Word size in bytes of one lowered instruction as pass 1 would size it —
/// exposed for the instrumentation passes' cost accounting.
#[must_use]
pub fn insn_size_bytes(t: &Template) -> u16 {
    let (words, _) = size_of(t, &BTreeMap::new(), 0);
    words * 2
}

/// Internal sizing probe shared with the listing generator.
pub(crate) fn size_probe(t: &Template, symbols: &BTreeMap<String, u16>, here: u16) -> (u16, bool) {
    size_of(t, symbols, here)
}

/// `Size` alias re-exported for pass authors.
pub type InsnSize = Size;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_reference_program() {
        let img = assemble(
            r#"
            .org 0xE000
        start:
            mov #21, r10
            add r10, r10
        done:
            jmp done
        "#,
        )
        .unwrap();
        assert_eq!(img.words_at(0xE000), vec![0x403A, 0x0015, 0x5A0A, 0x3FFF]);
        assert_eq!(img.symbol("start"), Some(0xE000));
        assert_eq!(img.symbol("done"), Some(0xE006));
    }

    #[test]
    fn forward_and_backward_jumps() {
        let img = assemble(
            r#"
            .org 0xE000
        loop:
            dec r5
            jnz loop
            jmp end
            nop
        end:
            ret
        "#,
        )
        .unwrap();
        // dec r5 = sub #1, r5 → 0x8315. jnz loop: at 0xE002, target 0xE000 →
        // offset -2 words.
        assert_eq!(img.words_at(0xE000)[0], 0x8315);
        assert_eq!(img.words_at(0xE000)[1], 0x2000 | 0x3FE);
    }

    #[test]
    fn forward_immediate_stays_long() {
        // `mov #K, r5` with K defined *after* use: sized long even though
        // K = 2 would fit the constant generator.
        let img = assemble(
            r#"
            .org 0xE000
            mov #K, r5
            .equ K, 2
        "#,
        )
        .unwrap();
        assert_eq!(img.words_at(0xE000), vec![0x4035, 0x0002]);
        // With K known in advance, the constant generator is used.
        let img2 = assemble(
            r#"
            .org 0xE000
            .equ K, 2
            mov #K, r5
        "#,
        )
        .unwrap();
        assert_eq!(img2.words_at(0xE000), vec![0x4325]);
    }

    #[test]
    fn data_directives() {
        let img = assemble(
            r#"
            .org 0x0200
        buf: .space 4
        tbl: .word 0x1234, tbl
        ch:  .byte 0x41, -1
        "#,
        )
        .unwrap();
        assert_eq!(img.symbol("buf"), Some(0x0200));
        assert_eq!(img.symbol("tbl"), Some(0x0204));
        assert_eq!(img.words_at(0x0204)[..2], [0x1234, 0x0204]);
        assert_eq!(img.size_bytes(), 4 + 4 + 2);
    }

    #[test]
    fn dollar_is_current_insn_address() {
        let img = assemble(".org 0xE000\n jmp $\n").unwrap();
        assert_eq!(img.words_at(0xE000), vec![0x3FFF]);
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a:\na:\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let e = assemble("mov #missing, r5\n").unwrap_err();
        assert!(e.msg.contains("undefined") || e.msg.contains("missing"));
    }

    #[test]
    fn jump_out_of_range_rejected() {
        let e = assemble(".org 0xE000\n jmp far\n .org 0xF000\nfar: nop\n").unwrap_err();
        assert!(e.msg.contains("jump"));
    }

    #[test]
    fn odd_instruction_address_rejected() {
        let e = assemble(".org 3\n nop\n").unwrap_err();
        assert!(e.msg.contains("odd"));
    }

    #[test]
    fn overlap_rejected() {
        let e = assemble(".org 0xE000\n nop\n .org 0xE000\n nop\n").unwrap_err();
        assert!(e.msg.contains("overlap"));
    }

    #[test]
    fn align_pads_to_even() {
        let img = assemble(".org 0x0200\n .byte 1\n .align\nw: .word 7\n").unwrap();
        assert_eq!(img.symbol("w"), Some(0x0202));
    }

    #[test]
    fn paper_fig4_entry_sequence_assembles() {
        // The Tiny-CFA/DIALED entry block from Fig. 4(b), verbatim modulo
        // label syntax.
        let img = assemble(
            r#"
            .equ OR_MAX, 0x06FE
            .equ OR_MIN, 0x0600
            .org 0xE000
        application:
            cmp #OR_MAX, r4
            jne violation
            mov r1, @r4
            decd r4
            cmp #OR_MIN, r4
            jn violation
            mov r8, @r4
            decd r4
            cmp #OR_MIN, r4
            jn violation
        violation:
            jmp $
        "#,
        )
        .unwrap();
        assert!(img.size_bytes() > 20);
    }
}
