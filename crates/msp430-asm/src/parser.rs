//! Parser: token lines → [`Program`].
//!
//! Emulated mnemonics are lowered to their core instruction here (e.g.
//! `ret` → `mov @sp+, pc`), so every later stage — sizing, encoding, and the
//! instrumentation passes — sees only the 27 core operations.

use crate::ast::{Expr, Item, Program, SourceLine, Stmt, TOperand, Template};
use crate::lexer::{lex_line, Tok};
use msp430::isa::{Cond, Op1, Op2, Size};
use msp430::regs::Reg;
use std::fmt;

/// Parse error with line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Message.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a full source file.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut prog = Program::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        parse_into(raw, line_no, false, &mut prog.lines)?;
    }
    Ok(prog)
}

/// Parses a snippet of assembly into synthetic [`SourceLine`]s, for use by
/// instrumentation passes splicing generated code into a program.
///
/// # Errors
///
/// Returns the first [`ParseError`] (line numbers are relative to the
/// snippet).
pub fn parse_snippet(src: &str) -> Result<Vec<SourceLine>, ParseError> {
    let mut lines = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        parse_into(raw, idx + 1, true, &mut lines)?;
    }
    Ok(lines)
}

fn parse_into(
    raw: &str,
    line_no: usize,
    synthetic: bool,
    out: &mut Vec<SourceLine>,
) -> Result<(), ParseError> {
    let toks = lex_line(raw).map_err(|e| ParseError { line: line_no, msg: e.to_string() })?;
    let mut p = P { toks: &toks, pos: 0, line: line_no };
    let mk = |item| SourceLine { line: line_no, item, synthetic };

    // Leading labels.
    while p.peek_label() {
        let Some(Tok::Ident(name)) = p.next().cloned() else { unreachable!() };
        p.next(); // colon
        out.push(mk(Item::Label(name)));
    }
    if p.at_end() {
        return Ok(());
    }
    let stmt = p.parse_stmt()?;
    p.expect_end()?;
    out.push(mk(Item::Stmt(stmt)));
    Ok(())
}

struct P<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { line: self.line, msg: msg.into() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing `{}`", self.toks[self.pos])))
        }
    }

    fn peek_label(&self) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if !s.starts_with('.'))
            && matches!(self.peek2(), Some(Tok::Colon))
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{tok}`")))
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let Some(Tok::Ident(name)) = self.next().cloned() else {
            return Err(self.err("expected mnemonic or directive"));
        };
        if let Some(dir) = name.strip_prefix('.') {
            return self.parse_directive(dir);
        }
        self.parse_insn(&name)
    }

    fn parse_directive(&mut self, dir: &str) -> Result<Stmt, ParseError> {
        match dir.to_ascii_lowercase().as_str() {
            "org" => Ok(Stmt::Org(self.parse_expr()?)),
            "word" => Ok(Stmt::Word(self.parse_expr_list()?)),
            "byte" => Ok(Stmt::Byte(self.parse_expr_list()?)),
            "space" => Ok(Stmt::Space(self.parse_expr()?)),
            "align" => Ok(Stmt::Align),
            "equ" => {
                let Some(Tok::Ident(name)) = self.next().cloned() else {
                    return Err(self.err(".equ needs a symbol name"));
                };
                self.expect(&Tok::Comma)?;
                Ok(Stmt::Equ(name, self.parse_expr()?))
            }
            other => Err(self.err(format!("unknown directive `.{other}`"))),
        }
    }

    fn parse_expr_list(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut out = vec![self.parse_expr()?];
        while self.eat(&Tok::Comma) {
            out.push(self.parse_expr()?);
        }
        Ok(out)
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = if self.eat(&Tok::Minus) {
            Expr::Neg(Box::new(self.parse_term()?))
        } else {
            self.parse_term()?
        };
        loop {
            if self.eat(&Tok::Plus) {
                lhs = Expr::Add(Box::new(lhs), Box::new(self.parse_term()?));
            } else if self.eat(&Tok::Minus) {
                lhs = Expr::Sub(Box::new(lhs), Box::new(self.parse_term()?));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        match self.next().cloned() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::Ident(s)) => Ok(Expr::Sym(s)),
            Some(Tok::Dollar) => Ok(Expr::Here),
            other => Err(self.err(format!(
                "expected number, symbol or `$`, found `{}`",
                other.map_or_else(|| "end of line".to_string(), |t| t.to_string())
            ))),
        }
    }

    fn parse_operand(&mut self) -> Result<TOperand, ParseError> {
        match self.peek() {
            Some(Tok::Hash) => {
                self.next();
                Ok(TOperand::Imm(self.parse_expr()?))
            }
            Some(Tok::Amp) => {
                self.next();
                Ok(TOperand::Absolute(self.parse_expr()?))
            }
            Some(Tok::At) => {
                self.next();
                let Some(Tok::Reg(r)) = self.next().copied_reg() else {
                    return Err(self.err("`@` must be followed by a register"));
                };
                if self.eat(&Tok::Plus) {
                    Ok(TOperand::IndirectInc(r))
                } else {
                    Ok(TOperand::Indirect(r))
                }
            }
            Some(Tok::Reg(r)) => {
                let r = *r;
                self.next();
                Ok(TOperand::Reg(r))
            }
            _ => {
                let e = self.parse_expr()?;
                if self.eat(&Tok::LParen) {
                    let Some(Tok::Reg(r)) = self.next().copied_reg() else {
                        return Err(self.err("indexed mode needs a register"));
                    };
                    self.expect(&Tok::RParen)?;
                    Ok(TOperand::Indexed(e, r))
                } else {
                    Ok(TOperand::Symbolic(e))
                }
            }
        }
    }

    fn parse_insn(&mut self, name: &str) -> Result<Stmt, ParseError> {
        let lower = name.to_ascii_lowercase();
        let (base, size) = match lower.strip_suffix(".b") {
            Some(b) => (b.to_string(), Size::Byte),
            None => (lower.strip_suffix(".w").map_or(lower.clone(), |w| w.to_string()), Size::Word),
        };

        // Jumps.
        let cond = match base.as_str() {
            "jne" | "jnz" => Some(Cond::Nz),
            "jeq" | "jz" => Some(Cond::Z),
            "jnc" | "jlo" => Some(Cond::Nc),
            "jc" | "jhs" => Some(Cond::C),
            "jn" => Some(Cond::N),
            "jge" => Some(Cond::Ge),
            "jl" => Some(Cond::L),
            "jmp" => Some(Cond::Always),
            _ => None,
        };
        if let Some(cond) = cond {
            let target = self.parse_expr()?;
            return Ok(Stmt::Insn(Template::Jcc { cond, target }));
        }

        // Format I core ops.
        let op2 = match base.as_str() {
            "mov" => Some(Op2::Mov),
            "add" => Some(Op2::Add),
            "addc" => Some(Op2::Addc),
            "subc" => Some(Op2::Subc),
            "sub" => Some(Op2::Sub),
            "cmp" => Some(Op2::Cmp),
            "dadd" => Some(Op2::Dadd),
            "bit" => Some(Op2::Bit),
            "bic" => Some(Op2::Bic),
            "bis" => Some(Op2::Bis),
            "xor" => Some(Op2::Xor),
            "and" => Some(Op2::And),
            _ => None,
        };
        if let Some(op) = op2 {
            let src = self.parse_operand()?;
            self.expect(&Tok::Comma)?;
            let raw_dst = self.parse_operand()?;
            let dst = self.fix_dst(raw_dst)?;
            return Ok(Stmt::Insn(Template::Two { op, size, src, dst }));
        }

        // Format II core ops.
        let op1 = match base.as_str() {
            "rrc" => Some(Op1::Rrc),
            "swpb" => Some(Op1::Swpb),
            "rra" => Some(Op1::Rra),
            "sxt" => Some(Op1::Sxt),
            "push" => Some(Op1::Push),
            "call" => Some(Op1::Call),
            "reti" => Some(Op1::Reti),
            _ => None,
        };
        if let Some(op) = op1 {
            let sd = if op == Op1::Reti { TOperand::Reg(Reg::CG2) } else { self.parse_operand()? };
            return Ok(Stmt::Insn(Template::One { op, size, sd }));
        }

        // Emulated mnemonics.
        self.parse_emulated(&base, size)
    }

    /// `@Rn` as a destination is sugar for `0(Rn)` (the paper's listings use
    /// it); `@Rn+` destinations are rejected.
    fn fix_dst(&self, dst: TOperand) -> Result<TOperand, ParseError> {
        match dst {
            TOperand::Indirect(r) => Ok(TOperand::Indexed(Expr::Num(0), r)),
            TOperand::IndirectInc(_) => Err(self.err("`@Rn+` is not a valid destination")),
            TOperand::Imm(_) => Err(self.err("immediate is not a valid destination")),
            other => Ok(other),
        }
    }

    fn parse_emulated(&mut self, base: &str, size: Size) -> Result<Stmt, ParseError> {
        let two = |op, src, dst| Ok(Stmt::Insn(Template::Two { op, size, src, dst }));
        let sr_flag = |op, bit: i64| {
            Ok(Stmt::Insn(Template::Two {
                op,
                size: Size::Word,
                src: TOperand::Imm(Expr::Num(bit)),
                dst: TOperand::Reg(Reg::SR),
            }))
        };
        match base {
            "nop" => two(Op2::Mov, TOperand::Imm(Expr::Num(0)), TOperand::Reg(Reg::CG2)),
            "ret" => two(Op2::Mov, TOperand::IndirectInc(Reg::SP), TOperand::Reg(Reg::PC)),
            "pop" => {
                let raw = self.parse_operand()?;
                let dst = self.fix_dst(raw)?;
                two(Op2::Mov, TOperand::IndirectInc(Reg::SP), dst)
            }
            "br" => {
                let src = self.parse_operand()?;
                Ok(Stmt::Insn(Template::Two {
                    op: Op2::Mov,
                    size: Size::Word,
                    src,
                    dst: TOperand::Reg(Reg::PC),
                }))
            }
            "clr" => {
                let raw = self.parse_operand()?;
                let dst = self.fix_dst(raw)?;
                two(Op2::Mov, TOperand::Imm(Expr::Num(0)), dst)
            }
            "inc" => {
                let raw = self.parse_operand()?;
                let dst = self.fix_dst(raw)?;
                two(Op2::Add, TOperand::Imm(Expr::Num(1)), dst)
            }
            "incd" => {
                let raw = self.parse_operand()?;
                let dst = self.fix_dst(raw)?;
                two(Op2::Add, TOperand::Imm(Expr::Num(2)), dst)
            }
            "dec" => {
                let raw = self.parse_operand()?;
                let dst = self.fix_dst(raw)?;
                two(Op2::Sub, TOperand::Imm(Expr::Num(1)), dst)
            }
            "decd" => {
                let raw = self.parse_operand()?;
                let dst = self.fix_dst(raw)?;
                two(Op2::Sub, TOperand::Imm(Expr::Num(2)), dst)
            }
            "inv" => {
                let raw = self.parse_operand()?;
                let dst = self.fix_dst(raw)?;
                two(Op2::Xor, TOperand::Imm(Expr::Num(-1)), dst)
            }
            "rla" => {
                let raw = self.parse_operand()?;
                let dst = self.fix_dst(raw)?;
                two(Op2::Add, same_as_dst(&dst, self)?, dst)
            }
            "rlc" => {
                let raw = self.parse_operand()?;
                let dst = self.fix_dst(raw)?;
                two(Op2::Addc, same_as_dst(&dst, self)?, dst)
            }
            "adc" => {
                let raw = self.parse_operand()?;
                let dst = self.fix_dst(raw)?;
                two(Op2::Addc, TOperand::Imm(Expr::Num(0)), dst)
            }
            "sbc" => {
                let raw = self.parse_operand()?;
                let dst = self.fix_dst(raw)?;
                two(Op2::Subc, TOperand::Imm(Expr::Num(0)), dst)
            }
            "dadc" => {
                let raw = self.parse_operand()?;
                let dst = self.fix_dst(raw)?;
                two(Op2::Dadd, TOperand::Imm(Expr::Num(0)), dst)
            }
            "tst" => {
                let raw = self.parse_operand()?;
                let dst = self.fix_dst(raw)?;
                two(Op2::Cmp, TOperand::Imm(Expr::Num(0)), dst)
            }
            "clrc" => sr_flag(Op2::Bic, 1),
            "setc" => sr_flag(Op2::Bis, 1),
            "clrz" => sr_flag(Op2::Bic, 2),
            "setz" => sr_flag(Op2::Bis, 2),
            "clrn" => sr_flag(Op2::Bic, 4),
            "setn" => sr_flag(Op2::Bis, 4),
            "dint" => sr_flag(Op2::Bic, 8),
            "eint" => sr_flag(Op2::Bis, 8),
            other => Err(self.err(format!("unknown mnemonic `{other}`"))),
        }
    }
}

/// `rla dst` lowers to `add dst, dst` — the source must be a *readable* copy
/// of the destination operand.
fn same_as_dst(dst: &TOperand, p: &P<'_>) -> Result<TOperand, ParseError> {
    match dst {
        TOperand::Reg(_)
        | TOperand::Indexed(..)
        | TOperand::Symbolic(_)
        | TOperand::Absolute(_) => Ok(dst.clone()),
        _ => Err(p.err("rla/rlc destination must be register or memory")),
    }
}

/// Helper: `Option<&Tok>` → owned register matcher.
trait CopiedReg {
    fn copied_reg(self) -> Option<Tok>;
}

impl CopiedReg for Option<&Tok> {
    fn copied_reg(self) -> Option<Tok> {
        match self {
            Some(Tok::Reg(r)) => Some(Tok::Reg(*r)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_insn(src: &str) -> Template {
        let p = parse_program(src).expect("parse");
        for l in p.lines {
            if let Item::Stmt(Stmt::Insn(t)) = l.item {
                return t;
            }
        }
        panic!("no instruction in `{src}`");
    }

    #[test]
    fn parses_core_two_operand() {
        let t = one_insn("  mov.b @r15+, -2(r1)");
        assert_eq!(
            t,
            Template::Two {
                op: Op2::Mov,
                size: Size::Byte,
                src: TOperand::IndirectInc(Reg::R15),
                dst: TOperand::Indexed(Expr::Neg(Box::new(Expr::Num(2))), Reg::SP),
            }
        );
    }

    #[test]
    fn parses_jumps_and_aliases() {
        assert_eq!(
            one_insn("jeq done"),
            Template::Jcc { cond: Cond::Z, target: Expr::sym("done") }
        );
        assert_eq!(
            one_insn("jhs done"),
            Template::Jcc { cond: Cond::C, target: Expr::sym("done") }
        );
        assert_eq!(one_insn("jmp $"), Template::Jcc { cond: Cond::Always, target: Expr::Here });
    }

    #[test]
    fn lowers_emulated_ret_pop_br() {
        assert_eq!(
            one_insn("ret"),
            Template::Two {
                op: Op2::Mov,
                size: Size::Word,
                src: TOperand::IndirectInc(Reg::SP),
                dst: TOperand::Reg(Reg::PC)
            }
        );
        assert_eq!(
            one_insn("pop r11"),
            Template::Two {
                op: Op2::Mov,
                size: Size::Word,
                src: TOperand::IndirectInc(Reg::SP),
                dst: TOperand::Reg(Reg::R11)
            }
        );
        assert_eq!(
            one_insn("br #0xF000"),
            Template::Two {
                op: Op2::Mov,
                size: Size::Word,
                src: TOperand::Imm(Expr::Num(0xF000)),
                dst: TOperand::Reg(Reg::PC)
            }
        );
    }

    #[test]
    fn lowers_inc_dec_tst_nop() {
        assert_eq!(
            one_insn("inc r5"),
            Template::Two {
                op: Op2::Add,
                size: Size::Word,
                src: TOperand::Imm(Expr::Num(1)),
                dst: TOperand::Reg(Reg::R5)
            }
        );
        assert_eq!(
            one_insn("tst r9"),
            Template::Two {
                op: Op2::Cmp,
                size: Size::Word,
                src: TOperand::Imm(Expr::Num(0)),
                dst: TOperand::Reg(Reg::R9)
            }
        );
        assert_eq!(
            one_insn("nop"),
            Template::Two {
                op: Op2::Mov,
                size: Size::Word,
                src: TOperand::Imm(Expr::Num(0)),
                dst: TOperand::Reg(Reg::CG2)
            }
        );
    }

    #[test]
    fn indirect_destination_sugar() {
        // The paper writes `mov r8, @r4`; we accept it as `mov r8, 0(r4)`.
        let t = one_insn("mov r8, @r4");
        assert_eq!(
            t,
            Template::Two {
                op: Op2::Mov,
                size: Size::Word,
                src: TOperand::Reg(Reg::R8),
                dst: TOperand::Indexed(Expr::Num(0), Reg::R4)
            }
        );
    }

    #[test]
    fn labels_and_directives() {
        let p = parse_program("start:\n  .org 0xE000\nloop: jmp loop\n").unwrap();
        assert!(matches!(&p.lines[0].item, Item::Label(l) if l == "start"));
        assert!(matches!(&p.lines[1].item, Item::Stmt(Stmt::Org(Expr::Num(0xE000)))));
        assert!(matches!(&p.lines[2].item, Item::Label(l) if l == "loop"));
    }

    #[test]
    fn equ_and_word_lists() {
        let p = parse_program(".equ OR_MAX, 0x6FE\n.word 1, 2, OR_MAX\n").unwrap();
        assert!(matches!(&p.lines[0].item,
            Item::Stmt(Stmt::Equ(n, Expr::Num(0x6FE))) if n == "OR_MAX"));
        assert!(matches!(&p.lines[1].item, Item::Stmt(Stmt::Word(v)) if v.len() == 3));
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = parse_program("mov r5\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_program("\n\nbogus r1, r2\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("bogus"));
    }

    #[test]
    fn indirect_inc_destination_rejected() {
        assert!(parse_program("mov r5, @r6+").is_err());
    }

    #[test]
    fn snippets_are_synthetic() {
        let lines = parse_snippet("mov r1, @r4\n decd r4\n").unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.synthetic));
    }

    #[test]
    fn expression_arithmetic() {
        let t = one_insn("mov #OR_MAX-2+4, r5");
        let TOperand::Imm(e) = (match t {
            Template::Two { src, .. } => src,
            _ => panic!(),
        }) else {
            panic!()
        };
        let mut syms = std::collections::BTreeMap::new();
        syms.insert("OR_MAX".to_string(), 10u16);
        assert_eq!(e.eval(&syms, 0), Some(12));
    }
}
