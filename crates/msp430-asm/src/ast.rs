//! Abstract syntax for assembly programs, plus the *lowered template* form
//! shared with the instrumentation passes.
//!
//! A [`Program`] is a list of [`SourceLine`]s. Instrumentation passes
//! (Tiny-CFA, DIALED) splice additional lines marked `synthetic`, which the
//! other pass — and any later pass — must leave alone. This mirrors the
//! paper's design where both passes rewrite the same assembly file but never
//! each other's inserted code.

use msp430::isa::{Cond, Op1, Op2, Size};
use msp430::regs::Reg;
use std::collections::BTreeMap;
use std::fmt;

/// A constant expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Symbol reference (label or `.equ` constant).
    Sym(String),
    /// `$` — the address of the instruction being assembled.
    Here,
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Literal convenience constructor.
    #[must_use]
    pub fn num(n: i64) -> Self {
        Expr::Num(n)
    }

    /// Symbol convenience constructor.
    #[must_use]
    pub fn sym(s: &str) -> Self {
        Expr::Sym(s.to_string())
    }

    /// Evaluates against a symbol table; `here` is the value of `$`.
    ///
    /// Returns `None` if any referenced symbol is undefined.
    #[must_use]
    pub fn eval(&self, symbols: &BTreeMap<String, u16>, here: u16) -> Option<i64> {
        match self {
            Expr::Num(n) => Some(*n),
            Expr::Sym(s) => symbols.get(s).map(|v| i64::from(*v)),
            Expr::Here => Some(i64::from(here)),
            Expr::Add(a, b) => Some(a.eval(symbols, here)? + b.eval(symbols, here)?),
            Expr::Sub(a, b) => Some(a.eval(symbols, here)? - b.eval(symbols, here)?),
            Expr::Neg(a) => Some(-a.eval(symbols, here)?),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Sym(s) => write!(f, "{s}"),
            Expr::Here => write!(f, "$"),
            Expr::Add(a, b) => write!(f, "{a}+{b}"),
            Expr::Sub(a, b) => write!(f, "{a}-{b}"),
            Expr::Neg(a) => write!(f, "-{a}"),
        }
    }
}

/// A source-level operand (expressions not yet evaluated).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TOperand {
    /// `Rn`
    Reg(Reg),
    /// `#expr`
    Imm(Expr),
    /// `expr(Rn)`
    Indexed(Expr, Reg),
    /// Bare expression — symbolic (PC-relative) memory reference.
    Symbolic(Expr),
    /// `&expr`
    Absolute(Expr),
    /// `@Rn`
    Indirect(Reg),
    /// `@Rn+`
    IndirectInc(Reg),
}

impl fmt::Display for TOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TOperand::Reg(r) => write!(f, "{r}"),
            TOperand::Imm(e) => write!(f, "#{e}"),
            TOperand::Indexed(e, r) => write!(f, "{e}({r})"),
            TOperand::Symbolic(e) => write!(f, "{e}"),
            TOperand::Absolute(e) => write!(f, "&{e}"),
            TOperand::Indirect(r) => write!(f, "@{r}"),
            TOperand::IndirectInc(r) => write!(f, "@{r}+"),
        }
    }
}

/// A source instruction lowered to its core (non-emulated) form, with
/// expressions still symbolic.
///
/// This is the representation the instrumentation passes classify: it
/// exposes whether the instruction alters control flow and which operands
/// reference memory, without needing symbol resolution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Template {
    /// Format II.
    One {
        /// Operation.
        op: Op1,
        /// Width.
        size: Size,
        /// Operand.
        sd: TOperand,
    },
    /// Format I.
    Two {
        /// Operation.
        op: Op2,
        /// Width.
        size: Size,
        /// Source.
        src: TOperand,
        /// Destination.
        dst: TOperand,
    },
    /// Conditional or unconditional jump to a target expression.
    Jcc {
        /// Condition.
        cond: Cond,
        /// Target address expression.
        target: Expr,
    },
}

impl Template {
    /// Does this instruction alter control flow (the set Tiny-CFA
    /// instruments)?
    #[must_use]
    pub fn alters_control_flow(&self) -> bool {
        match self {
            Template::Jcc { .. } => true,
            Template::One { op, .. } => matches!(op, Op1::Call | Op1::Reti),
            Template::Two { op, dst, .. } => {
                op.writes_dst() && matches!(dst, TOperand::Reg(Reg::R0))
            }
        }
    }

    /// Memory operands this instruction *reads* (the set DIALED's F4
    /// instruments). `MOV`'s destination is written but not read; every
    /// other Format I memory destination is read-modify-write.
    #[must_use]
    pub fn memory_reads(&self) -> Vec<&TOperand> {
        let mut out = Vec::new();
        let is_mem = |o: &TOperand| {
            matches!(
                o,
                TOperand::Indexed(..)
                    | TOperand::Symbolic(_)
                    | TOperand::Absolute(_)
                    | TOperand::Indirect(_)
                    | TOperand::IndirectInc(_)
            )
        };
        match self {
            Template::Jcc { .. } => {}
            Template::One { op, sd, .. } => {
                // PUSH/CALL read their operand; RRC/RRA/SWPB/SXT read-modify.
                if *op != Op1::Reti && is_mem(sd) {
                    out.push(sd);
                }
            }
            Template::Two { op, src, dst, .. } => {
                if is_mem(src) {
                    out.push(src);
                }
                if *op != Op2::Mov && is_mem(dst) {
                    out.push(dst);
                }
            }
        }
        out
    }
}

impl Template {
    /// Does this instruction *read* the condition codes (conditional jumps,
    /// carry-chained arithmetic, rotate-through-carry)?
    #[must_use]
    pub fn reads_flags(&self) -> bool {
        match self {
            Template::Jcc { cond, .. } => *cond != Cond::Always,
            Template::One { op, .. } => matches!(op, Op1::Rrc),
            Template::Two { op, .. } => matches!(op, Op2::Addc | Op2::Subc | Op2::Dadd),
        }
    }

    /// Does this instruction *write* the condition codes?
    #[must_use]
    pub fn writes_flags(&self) -> bool {
        match self {
            Template::Jcc { .. } => false,
            Template::One { op, .. } => matches!(op, Op1::Rrc | Op1::Rra | Op1::Sxt | Op1::Reti),
            Template::Two { op, dst, .. } => {
                // Writing SR directly also replaces the flags.
                op.sets_flags() || matches!(dst, TOperand::Reg(Reg::R2))
            }
        }
    }
}

/// Conservative flag-liveness query used by the instrumentation passes to
/// decide whether a flag-clobbering block needs `push sr … pop sr`.
///
/// Scans forward from `lines[start]`: flags are *dead* if an original
/// instruction rewrites them before anything can read them; they are
/// (conservatively) *live* at any control-flow instruction, flag reader,
/// data directive, or end of program. Synthetic lines are transparent —
/// blocks inserted by the passes either preserve flags themselves or were
/// proven dead at their own insertion point — except a synthetic
/// conditional jump, which is a relocated original reader.
#[must_use]
pub fn flags_live_from(lines: &[SourceLine], start: usize) -> bool {
    for line in &lines[start..] {
        match &line.item {
            Item::Label(_) => {}
            Item::Stmt(Stmt::Insn(t)) => {
                if line.synthetic {
                    if matches!(t, Template::Jcc { cond, .. } if *cond != Cond::Always) {
                        return true;
                    }
                    continue;
                }
                if t.reads_flags() {
                    return true;
                }
                if t.alters_control_flow() {
                    return true; // flags may be live at the join/target
                }
                if t.writes_flags() {
                    return false;
                }
                // mov / bic / bis / push: transparent.
            }
            // Data or layout directives in the path: be conservative.
            Item::Stmt(_) => return true,
        }
    }
    true
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let suffix = |s: &Size| if *s == Size::Byte { ".b" } else { "" };
        match self {
            Template::One { op: Op1::Reti, .. } => write!(f, "reti"),
            Template::One { op, size, sd } => write!(f, "{}{} {sd}", op.mnemonic(), suffix(size)),
            Template::Two { op, size, src, dst } => {
                write!(f, "{}{} {src}, {dst}", op.mnemonic(), suffix(size))
            }
            Template::Jcc { cond, target } => write!(f, "{} {target}", cond.mnemonic()),
        }
    }
}

/// A statement (instruction or directive).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// A lowered instruction.
    Insn(Template),
    /// `.org expr`
    Org(Expr),
    /// `.word e, e, …`
    Word(Vec<Expr>),
    /// `.byte e, e, …`
    Byte(Vec<Expr>),
    /// `.space expr` — reserve zeroed bytes.
    Space(Expr),
    /// `.equ name, expr`
    Equ(String, Expr),
    /// `.align` — pad to even address.
    Align,
}

/// One program item: optional label plus optional statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Item {
    /// `name:`
    Label(String),
    /// A statement.
    Stmt(Stmt),
}

/// A parsed source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceLine {
    /// 1-based line number in the original source (0 for synthesised lines).
    pub line: usize,
    /// The item.
    pub item: Item,
    /// True when inserted by an instrumentation pass; later passes must not
    /// re-instrument synthetic lines.
    pub synthetic: bool,
}

impl SourceLine {
    /// A non-synthetic line.
    #[must_use]
    pub fn new(line: usize, item: Item) -> Self {
        Self { line, item, synthetic: false }
    }

    /// A synthetic (pass-inserted) line.
    #[must_use]
    pub fn synthetic(item: Item) -> Self {
        Self { line: 0, item, synthetic: true }
    }
}

/// A whole program: ordered lines.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// Lines in order.
    pub lines: Vec<SourceLine>,
}

impl Program {
    /// Empty program.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of non-synthetic instruction lines.
    #[must_use]
    pub fn original_insn_count(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| !l.synthetic && matches!(l.item, Item::Stmt(Stmt::Insn(_))))
            .count()
    }

    /// Number of instruction lines inserted by instrumentation.
    #[must_use]
    pub fn synthetic_insn_count(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.synthetic && matches!(l.item, Item::Stmt(Stmt::Insn(_))))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval() {
        let mut syms = BTreeMap::new();
        syms.insert("base".to_string(), 0x200u16);
        let e = Expr::Add(
            Box::new(Expr::Sym("base".into())),
            Box::new(Expr::Neg(Box::new(Expr::Num(4)))),
        );
        assert_eq!(e.eval(&syms, 0), Some(0x1FC));
        assert_eq!(Expr::Here.eval(&syms, 0xE000), Some(0xE000));
        assert_eq!(Expr::sym("missing").eval(&syms, 0), None);
    }

    #[test]
    fn template_control_flow_classification() {
        let jmp = Template::Jcc { cond: Cond::Always, target: Expr::num(0) };
        assert!(jmp.alters_control_flow());
        let ret = Template::Two {
            op: Op2::Mov,
            size: Size::Word,
            src: TOperand::IndirectInc(Reg::SP),
            dst: TOperand::Reg(Reg::PC),
        };
        assert!(ret.alters_control_flow());
        let mov = Template::Two {
            op: Op2::Mov,
            size: Size::Word,
            src: TOperand::Reg(Reg::R5),
            dst: TOperand::Reg(Reg::R6),
        };
        assert!(!mov.alters_control_flow());
    }

    #[test]
    fn memory_reads_classification() {
        // add @r14, 2(r15): both operands are reads.
        let t = Template::Two {
            op: Op2::Add,
            size: Size::Word,
            src: TOperand::Indirect(Reg::R14),
            dst: TOperand::Indexed(Expr::num(2), Reg::R15),
        };
        assert_eq!(t.memory_reads().len(), 2);
        // mov @r14, 2(r15): destination written, not read.
        let t = Template::Two {
            op: Op2::Mov,
            size: Size::Word,
            src: TOperand::Indirect(Reg::R14),
            dst: TOperand::Indexed(Expr::num(2), Reg::R15),
        };
        assert_eq!(t.memory_reads().len(), 1);
        // push 4(r12) reads memory.
        let t = Template::One {
            op: Op1::Push,
            size: Size::Word,
            sd: TOperand::Indexed(Expr::num(4), Reg::R12),
        };
        assert_eq!(t.memory_reads().len(), 1);
        // mov r5, r6 reads nothing from memory.
        let t = Template::Two {
            op: Op2::Mov,
            size: Size::Word,
            src: TOperand::Reg(Reg::R5),
            dst: TOperand::Reg(Reg::R6),
        };
        assert!(t.memory_reads().is_empty());
    }
}
