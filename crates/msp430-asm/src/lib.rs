//! A two-pass assembler (and disassembler) for MSP430 assembly.
//!
//! The DIALED paper instruments *assembly text* produced by `msp430-gcc`
//! with a ~300-line Python pass. This crate replaces that part of the
//! toolchain: the three evaluation applications are written in MSP430
//! assembly, parsed into an AST ([`ast`]), optionally rewritten by the
//! Tiny-CFA and DIALED instrumentation passes (which live in their own
//! crates and splice synthetic [`ast::SourceLine`]s into the program), and
//! assembled into a loadable [`image::Image`].
//!
//! Supported surface syntax:
//!
//! * all 27 core instructions plus the standard emulated mnemonics (`ret`,
//!   `pop`, `br`, `clr`, `inc`, `dec`, `incd`, `decd`, `inv`, `rla`, `rlc`,
//!   `adc`, `sbc`, `dadc`, `tst`, `nop`, `clrc`, `setc`, `clrz`, `setz`,
//!   `clrn`, `setn`, `dint`, `eint`), with `.b`/`.w` suffixes;
//! * all seven addressing modes — plus `@Rn` as a *destination*, accepted as
//!   sugar for `0(Rn)` exactly like the listings in the paper write it;
//! * labels, `$` (current instruction address), expressions with `+ -`;
//! * directives: `.org`, `.word`, `.byte`, `.space`, `.equ`, `.align`;
//! * comments with `;`.
//!
//! # Example
//!
//! ```
//! let img = msp430_asm::assemble(r#"
//!         .org 0xE000
//! start:  mov #21, r10
//!         add r10, r10
//! done:   jmp done
//! "#)?;
//! assert_eq!(img.words_at(0xE000)[..2], [0x403A, 0x0015]);
//! # Ok::<(), msp430_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assembler;
pub mod ast;
pub mod disasm;
pub mod image;
pub mod lexer;
pub mod listing;
pub mod parser;

pub use assembler::{assemble, assemble_program, AsmError};
pub use ast::{Expr, Item, Program, SourceLine, Stmt, TOperand, Template};
pub use image::Image;
pub use parser::{parse_program, parse_snippet};
