//! Assembled program images.

use std::collections::BTreeMap;

/// An assembled image: sparse bytes plus the symbol table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Image {
    bytes: BTreeMap<u16, u8>,
    /// All defined symbols (labels and `.equ` constants).
    pub symbols: BTreeMap<String, u16>,
}

impl Image {
    /// Empty image.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes one byte (assembler internal).
    pub(crate) fn put_byte(&mut self, addr: u16, b: u8) -> bool {
        self.bytes.insert(addr, b).is_none()
    }

    /// Writes a little-endian word (assembler internal). Returns false if
    /// either byte collides with already-emitted data.
    pub(crate) fn put_word(&mut self, addr: u16, w: u16) -> bool {
        let a = self.put_byte(addr, w as u8);
        let b = self.put_byte(addr.wrapping_add(1), (w >> 8) as u8);
        a && b
    }

    /// Looks up a symbol.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u16> {
        self.symbols.get(name).copied()
    }

    /// Total emitted bytes — the paper's Fig. 6(a) "code size" metric.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Lowest and highest emitted addresses, or `None` for an empty image.
    #[must_use]
    pub fn extent(&self) -> Option<(u16, u16)> {
        let lo = *self.bytes.keys().next()?;
        let hi = *self.bytes.keys().next_back()?;
        Some((lo, hi))
    }

    /// The extent of the contiguous byte run containing `from` — e.g. the ER
    /// segment of an operation, independent of other segments (tables,
    /// caller stubs) elsewhere in the image.
    #[must_use]
    pub fn contiguous_extent(&self, from: u16) -> Option<(u16, u16)> {
        self.bytes.get(&from)?;
        let mut lo = from;
        while lo > 0 && self.bytes.contains_key(&(lo - 1)) {
            lo -= 1;
        }
        let mut hi = from;
        while hi < u16::MAX && self.bytes.contains_key(&(hi + 1)) {
            hi += 1;
        }
        Some((lo, hi))
    }

    /// The bytes of the contiguous run containing `from`, as a dense vector
    /// (used to hand the verifier the expected ER contents).
    #[must_use]
    pub fn contiguous_bytes(&self, from: u16) -> Option<Vec<u8>> {
        let (lo, hi) = self.contiguous_extent(from)?;
        Some((lo..=hi).map(|a| self.bytes[&a]).collect())
    }

    /// Iterator over emitted `(addr, byte)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u8)> + '_ {
        self.bytes.iter().map(|(a, b)| (*a, *b))
    }

    /// The contiguous run of words starting at `addr` (stops at the first
    /// gap). Useful in tests and docs.
    #[must_use]
    pub fn words_at(&self, addr: u16) -> Vec<u16> {
        let mut out = Vec::new();
        let mut a = addr;
        while let (Some(lo), Some(hi)) = (self.bytes.get(&a), self.bytes.get(&a.wrapping_add(1))) {
            out.push(u16::from(*lo) | (u16::from(*hi) << 8));
            a = a.wrapping_add(2);
        }
        out
    }

    /// Loads the image into any byte-addressable target via a store closure.
    pub fn write_to(&self, mut store: impl FnMut(u16, u8)) {
        for (a, b) in &self.bytes {
            store(*a, *b);
        }
    }

    /// Loads into a [`msp430::mem::Ram`].
    pub fn load_into_ram(&self, ram: &mut msp430::mem::Ram) {
        for (start, bytes) in self.runs() {
            ram.load_bytes(start, &bytes);
        }
    }

    /// The image as maximal contiguous `(start, bytes)` runs.
    ///
    /// Repeated loading (the DIALED verifier re-images its RAM for every
    /// proof) should go through precomputed runs — bulk copies — rather
    /// than walking the sparse byte map each time.
    #[must_use]
    pub fn runs(&self) -> Vec<(u16, Vec<u8>)> {
        let mut runs: Vec<(u16, Vec<u8>)> = Vec::new();
        for (&a, &b) in &self.bytes {
            match runs.last_mut() {
                Some((start, bytes)) if u32::from(*start) + bytes.len() as u32 == u32::from(a) => {
                    bytes.push(b);
                }
                _ => runs.push((a, vec![b])),
            }
        }
        runs
    }

    /// Loads into a [`msp430::platform::Platform`].
    pub fn load_into_platform(&self, platform: &mut msp430::platform::Platform) {
        for (a, b) in &self.bytes {
            platform.load_bytes(*a, &[*b]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_emission_and_extent() {
        let mut img = Image::new();
        assert!(img.put_word(0xE000, 0x1234));
        assert!(img.put_word(0xE002, 0xABCD));
        assert_eq!(img.size_bytes(), 4);
        assert_eq!(img.extent(), Some((0xE000, 0xE003)));
        assert_eq!(img.words_at(0xE000), vec![0x1234, 0xABCD]);
    }

    #[test]
    fn collision_detected() {
        let mut img = Image::new();
        assert!(img.put_word(0xE000, 1));
        assert!(!img.put_word(0xE001, 2), "overlap must be flagged");
    }

    #[test]
    fn words_at_stops_at_gap() {
        let mut img = Image::new();
        img.put_word(0xE000, 7);
        img.put_word(0xE004, 9);
        assert_eq!(img.words_at(0xE000), vec![7]);
    }
}
