//! Tokeniser for MSP430 assembly source.

use msp430::regs::Reg;
use std::fmt;

/// One token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier (mnemonic, label, symbol, or `.directive`).
    Ident(String),
    /// Integer literal (decimal, `0x`, `0b`, or `'c'` character).
    Num(i64),
    /// Register name.
    Reg(Reg),
    /// `#`
    Hash,
    /// `&`
    Amp,
    /// `@`
    At,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `$` — address of the current instruction.
    Dollar,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Reg(r) => write!(f, "{r}"),
            Tok::Hash => write!(f, "#"),
            Tok::Amp => write!(f, "&"),
            Tok::At => write!(f, "@"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Colon => write!(f, ":"),
            Tok::Dollar => write!(f, "$"),
        }
    }
}

/// Lexing error with a column hint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// 0-based byte offset in the line.
    pub col: usize,
    /// Message.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "col {}: {}", self.col, self.msg)
    }
}

impl std::error::Error for LexError {}

fn reg_name(s: &str) -> Option<Reg> {
    let lower = s.to_ascii_lowercase();
    match lower.as_str() {
        "pc" => Some(Reg::PC),
        "sp" => Some(Reg::SP),
        "sr" => Some(Reg::SR),
        _ => {
            let rest = lower.strip_prefix('r')?;
            let n: u16 = rest.parse().ok()?;
            (n < 16).then(|| Reg::from_index(n))
        }
    }
}

/// Tokenises one line (the comment tail after `;` is discarded).
///
/// # Errors
///
/// Returns [`LexError`] on malformed numbers or stray characters.
pub fn lex_line(line: &str) -> Result<Vec<Tok>, LexError> {
    let mut toks = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ';' => break,
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                toks.push(Tok::Hash);
                i += 1;
            }
            '&' => {
                toks.push(Tok::Amp);
                i += 1;
            }
            '@' => {
                toks.push(Tok::At);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '$' => {
                toks.push(Tok::Dollar);
                i += 1;
            }
            '\'' => {
                // Character literal 'c'.
                let rest = &line[i + 1..];
                let mut chars = rest.chars();
                let ch = chars
                    .next()
                    .ok_or(LexError { col: i, msg: "unterminated character literal".into() })?;
                if chars.next() != Some('\'') {
                    return Err(LexError { col: i, msg: "unterminated character literal".into() });
                }
                toks.push(Tok::Num(i64::from(ch as u32)));
                i += 2 + ch.len_utf8();
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &line[start..i];
                let n = parse_number(text)
                    .ok_or(LexError { col: start, msg: format!("bad number literal `{text}`") })?;
                toks.push(Tok::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '.' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                let text = &line[start..i];
                if let Some(r) = reg_name(text) {
                    toks.push(Tok::Reg(r));
                } else {
                    toks.push(Tok::Ident(text.to_string()));
                }
            }
            other => {
                return Err(LexError { col: i, msg: format!("unexpected character `{other}`") });
            }
        }
    }
    Ok(toks)
}

fn parse_number(text: &str) -> Option<i64> {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()
    } else {
        t.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_instruction_line() {
        let t = lex_line("  mov.b  @r15+, -2(r1) ; copy byte").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Ident("mov.b".into()),
                Tok::At,
                Tok::Reg(Reg::R15),
                Tok::Plus,
                Tok::Comma,
                Tok::Minus,
                Tok::Num(2),
                Tok::LParen,
                Tok::Reg(Reg::SP),
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            lex_line("0x10 0b101 42 'A'").unwrap(),
            vec![Tok::Num(16), Tok::Num(5), Tok::Num(42), Tok::Num(65)]
        );
    }

    #[test]
    fn register_aliases() {
        let t = lex_line("pc sp sr r4 R15").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Reg(Reg::PC),
                Tok::Reg(Reg::SP),
                Tok::Reg(Reg::SR),
                Tok::Reg(Reg::R4),
                Tok::Reg(Reg::R15)
            ]
        );
    }

    #[test]
    fn labels_and_directives() {
        let t = lex_line("loop: .word 1, 2").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Ident("loop".into()),
                Tok::Colon,
                Tok::Ident(".word".into()),
                Tok::Num(1),
                Tok::Comma,
                Tok::Num(2)
            ]
        );
    }

    #[test]
    fn comment_only_line() {
        assert!(lex_line("; nothing here").unwrap().is_empty());
        assert!(lex_line("").unwrap().is_empty());
    }

    #[test]
    fn bad_number_rejected() {
        assert!(lex_line("0xZZ").is_err());
        assert!(lex_line("mov \"str\"").is_err());
    }

    #[test]
    fn r16_is_an_identifier_not_a_register() {
        assert_eq!(lex_line("r16").unwrap(), vec![Tok::Ident("r16".into())]);
    }
}
