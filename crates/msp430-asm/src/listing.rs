//! Assembly listings: source lines annotated with addresses and encodings.
//!
//! Useful for inspecting what the instrumentation passes produced — the
//! equivalent of reading the paper's Fig. 4/5 "after" columns.

use crate::assembler::AsmError;
use crate::ast::{Item, Program, Stmt};
use crate::image::Image;
use std::fmt::Write as _;

/// Produces a listing of an assembled program: every line with its address
/// (where applicable) and emitted words.
///
/// The program must assemble; pass the image from
/// [`crate::assemble_program`].
///
/// # Errors
///
/// Returns [`AsmError`] if the program re-assembly for layout fails (cannot
/// normally happen when `image` came from the same program).
pub fn listing(program: &Program, image: &Image) -> Result<String, AsmError> {
    // Re-run a light pass-1 to recover addresses per line.
    let mut out = String::new();
    let mut pc: u16 = 0;
    let symbols = &image.symbols;
    for line in &program.lines {
        let mark = if line.synthetic { "+" } else { " " };
        match &line.item {
            Item::Label(l) => {
                let _ = writeln!(out, "{mark}          {l}:");
            }
            Item::Stmt(stmt) => match stmt {
                Stmt::Org(e) => {
                    pc = e.eval(symbols, pc).unwrap_or(i64::from(pc)) as u16;
                    let _ = writeln!(out, "{mark}          .org {e}");
                }
                Stmt::Align => {
                    if pc & 1 != 0 {
                        pc = pc.wrapping_add(1);
                    }
                    let _ = writeln!(out, "{mark}          .align");
                }
                Stmt::Equ(n, e) => {
                    let _ = writeln!(out, "{mark}          .equ {n}, {e}");
                }
                Stmt::Word(es) => {
                    let _ = writeln!(out, "{mark}{pc:#06x}    .word …({})", es.len());
                    pc = pc.wrapping_add(2 * es.len() as u16);
                }
                Stmt::Byte(es) => {
                    let _ = writeln!(out, "{mark}{pc:#06x}    .byte …({})", es.len());
                    pc = pc.wrapping_add(es.len() as u16);
                }
                Stmt::Space(e) => {
                    let n = e.eval(symbols, pc).unwrap_or(0) as u16;
                    let _ = writeln!(out, "{mark}{pc:#06x}    .space {n}");
                    pc = pc.wrapping_add(n);
                }
                Stmt::Insn(t) => {
                    let (words, _) = crate::assembler::size_probe(t, symbols, pc);
                    let mut enc = String::new();
                    for i in 0..words {
                        let a = pc.wrapping_add(2 * i);
                        let w = image.words_at(a).first().copied().unwrap_or(0);
                        let _ = write!(enc, "{w:04x} ");
                    }
                    let _ = writeln!(out, "{mark}{pc:#06x}    {t:<32} ; {enc}");
                    pc = pc.wrapping_add(2 * words);
                }
            },
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assemble_program, parse_program};

    #[test]
    fn listing_shows_addresses_and_synthetic_marks() {
        let mut program = parse_program(".org 0xE000\nstart: mov #21, r10\n").unwrap();
        let extra = crate::parse_snippet("decd r4\n").unwrap();
        program.lines.extend(extra);
        let image = assemble_program(&program).unwrap();
        let text = listing(&program, &image).unwrap();
        assert!(text.contains("start:"));
        assert!(text.contains("0xe000"));
        assert!(text.lines().any(|l| l.starts_with('+')), "synthetic mark: {text}");
    }
}
