//! Linear-sweep disassembler.

use msp430::isa::{DecodeError, Insn};

/// One disassembled instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DisasmLine {
    /// Address of the instruction.
    pub addr: u16,
    /// Decoded instruction.
    pub insn: Insn,
    /// Encoded length in bytes.
    pub len: u16,
}

/// Disassembles `words` as a contiguous code block starting at `base`.
///
/// Stops at the first undecodable word and reports it.
///
/// # Errors
///
/// Returns the address and the [`DecodeError`] of the first bad word.
pub fn disassemble(base: u16, words: &[u16]) -> Result<Vec<DisasmLine>, (u16, DecodeError)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < words.len() {
        let addr = base.wrapping_add(2 * i as u16);
        let mut used = 1usize;
        let first = words[i];
        let insn = {
            let tail = &words[i + 1..];
            let mut k = 0usize;
            let res = Insn::decode(addr, first, || {
                let w = tail.get(k).copied().unwrap_or(0);
                k += 1;
                w
            });
            used += k;
            res.map_err(|e| (addr, e))?
        };
        out.push(DisasmLine { addr, insn, len: 2 * used as u16 });
        i += used;
    }
    Ok(out)
}

/// Formats a disassembly as text, one instruction per line.
#[must_use]
pub fn format_disassembly(lines: &[DisasmLine]) -> String {
    let mut s = String::new();
    for l in lines {
        s.push_str(&format!("{:#06x}:  {}\n", l.addr, l.insn));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disassembles_known_block() {
        // mov #21, r10 ; add r10, r10 ; jmp .
        let lines = disassemble(0xE000, &[0x403A, 0x0015, 0x5A0A, 0x3FFF]).unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len, 4);
        assert_eq!(lines[1].addr, 0xE004);
        assert_eq!(lines[2].insn.to_string(), "jmp +0");
        let text = format_disassembly(&lines);
        assert!(text.contains("0xe000:  mov #21, r10"));
    }

    #[test]
    fn reports_bad_word_address() {
        let err = disassemble(0xE000, &[0x4305, 0x0000]).unwrap_err();
        assert_eq!(err.0, 0xE002);
    }

    #[test]
    fn assemble_disassemble_round_trip() {
        let img = crate::assemble(
            r#"
            .org 0xE000
            push r11
            mov #0x1234, r11
            call #0xF000
            pop r11
            ret
        "#,
        )
        .unwrap();
        let words = img.words_at(0xE000);
        let lines = disassemble(0xE000, &words).unwrap();
        let text = format_disassembly(&lines);
        assert!(text.contains("push r11"));
        assert!(text.contains("call #-4096"), "{text}");
        assert!(text.contains("mov @r1+, r0"), "ret is mov @sp+, pc: {text}");
    }
}
