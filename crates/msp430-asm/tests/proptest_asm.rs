//! Property tests: the assembler agrees with the ISA encoder, and
//! text round-trips through assemble → disassemble → assemble.

use msp430::isa::{Cond, Insn, Op1, Op2, Operand, Size};
use msp430::regs::Reg;
use msp430_asm::{assemble, disasm};
use proptest::prelude::*;

fn gp_reg() -> impl Strategy<Value = Reg> {
    (4u16..16).prop_map(Reg::from_index)
}

fn src_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        gp_reg().prop_map(Operand::Reg),
        (gp_reg(), -1000i32..1000).prop_map(|(r, x)| Operand::Indexed(r, x as u16)),
        // Keep symbolic/absolute targets in sane memory so text stays exact.
        (0x0200u16..0xF000).prop_map(Operand::Absolute),
        gp_reg().prop_map(Operand::Indirect),
        gp_reg().prop_map(Operand::IndirectInc),
        (-0x8000i32..0x8000).prop_map(|v| Operand::Imm(v as u16)),
    ]
}

fn dst_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        gp_reg().prop_map(Operand::Reg),
        (gp_reg(), -1000i32..1000).prop_map(|(r, x)| Operand::Indexed(r, x as u16)),
        (0x0200u16..0xF000).prop_map(Operand::Absolute),
    ]
}

fn op2() -> impl Strategy<Value = Op2> {
    prop_oneof![
        Just(Op2::Mov),
        Just(Op2::Add),
        Just(Op2::Addc),
        Just(Op2::Subc),
        Just(Op2::Sub),
        Just(Op2::Cmp),
        Just(Op2::Dadd),
        Just(Op2::Bit),
        Just(Op2::Bic),
        Just(Op2::Bis),
        Just(Op2::Xor),
        Just(Op2::And),
    ]
}

fn op1() -> impl Strategy<Value = Op1> {
    prop_oneof![
        Just(Op1::Rrc),
        Just(Op1::Swpb),
        Just(Op1::Rra),
        Just(Op1::Sxt),
        Just(Op1::Push),
        Just(Op1::Call),
    ]
}

fn any_sized_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (op2(), any::<bool>(), src_operand(), dst_operand()).prop_map(|(op, byte, src, dst)| {
            let size = if byte { Size::Byte } else { Size::Word };
            Insn::Two { op, size, src, dst }
        }),
        (op1(), any::<bool>(), src_operand()).prop_map(|(op, byte, sd)| {
            let size = if byte && op.allows_byte() { Size::Byte } else { Size::Word };
            Insn::One { op, size, sd }
        }),
    ]
}

/// Renders an instruction as parseable source text.
fn render(insn: &Insn) -> String {
    // `Insn`'s Display form is already valid assembler syntax for the
    // operand kinds generated here (registers, indexed, absolute, indirect,
    // immediates).
    insn.to_string()
}

proptest! {
    /// Assembling the textual form of an instruction reproduces the direct
    /// ISA encoding exactly (the assembler adds no drift).
    #[test]
    fn text_matches_direct_encoding(insn in any_sized_insn()) {
        let at = 0xE000u16;
        let Ok(direct) = insn.encode(at) else { return Ok(()); };
        let src = format!(".org 0xE000\n {}\n", render(&insn));
        let img = assemble(&src).unwrap_or_else(|e| panic!("`{src}` failed: {e}"));
        prop_assert_eq!(img.words_at(at), direct);
    }

    /// assemble → disassemble → assemble is a fixpoint on the textual level.
    #[test]
    fn assemble_disassemble_fixpoint(insns in proptest::collection::vec(any_sized_insn(), 1..20)) {
        let mut src = String::from(".org 0xE000\n");
        for i in &insns {
            if i.encode(0).is_err() {
                return Ok(());
            }
            src.push_str(&format!(" {}\n", render(i)));
        }
        let img = assemble(&src).unwrap();
        let words = img.words_at(0xE000);
        let lines = disasm::disassemble(0xE000, &words).unwrap();
        let mut src2 = String::from(".org 0xE000\n");
        for l in &lines {
            src2.push_str(&format!(" {}\n", l.insn));
        }
        let img2 = assemble(&src2).unwrap();
        prop_assert_eq!(img2.words_at(0xE000), words);
    }

    /// Jump targets expressed with `$` arithmetic land where expected.
    #[test]
    fn jump_dollar_arithmetic(off in -200i32..200) {
        let off = off * 2;
        let cond = Cond::Always;
        let delta = off + 2;
        let expr = if delta >= 0 { format!("$+{delta}") } else { format!("$-{}", -delta) };
        let src = format!(".org 0xE000\n {} {expr}\n", cond.mnemonic());
        let img = assemble(&src).unwrap();
        let w = img.words_at(0xE000)[0];
        let expect = Insn::jump_to(cond, 0xE000, (0xE000i32 + 2 + off) as u16).unwrap();
        prop_assert_eq!(vec![w], expect.encode(0xE000).unwrap());
    }
}
