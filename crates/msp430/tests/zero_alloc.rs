//! Proof that the steady-state emulation fast path performs **zero heap
//! allocations** — the ISSUE 2 acceptance criterion for the `step_into`
//! refactor, extended to superblock dispatch (block construction may
//! allocate once; block *reuse* may not) — measured with a counting
//! global allocator.
//!
//! The workspace otherwise denies `unsafe_code`; this test binary opts out
//! locally because the shared counting-allocator harness (see
//! `tests/support/counting_alloc.rs`) implements `GlobalAlloc`.

#![allow(unsafe_code)]

use msp430::cpu::{Cpu, Step};
use msp430::mem::Ram;
use msp430::regs::Reg;

include!("support/counting_alloc.rs");

/// Runs without the libtest harness (see `Cargo.toml`): the measurement
/// must be the only thing executing in the process, since harness threads
/// allocate concurrently and would pollute the counters.
fn main() {
    steady_state_step_loop_is_allocation_free();
    steady_state_superblock_dispatch_is_allocation_free();
    println!("zero_alloc: ok");
}

fn steady_state_step_loop_is_allocation_free() {
    // A self-contained busy loop mixing ALU, memory traffic and a jump:
    //   add r10, r10 ; mov r10, &0x0200 ; mov &0x0200, r11 ; jmp -6
    let mut ram = Ram::new();
    ram.load_words(0xE000, &[0x5A0A, 0x4A82, 0x0200, 0x4211, 0x0200, 0x3FFA]);

    let mut cpu = Cpu::new();
    cpu.set_pc(0xE000);
    cpu.set_reg(Reg::R10, 1);
    let mut step = Step::default();

    // Warm-up: the first cached decode lazily allocates the icache table.
    for _ in 0..64 {
        cpu.step_into(&mut ram, &mut step).expect("warm-up step");
    }

    let before = allocations();
    for _ in 0..100_000 {
        cpu.step_into(&mut ram, &mut step).expect("steady-state step");
    }
    assert_eq!(allocations() - before, 0, "cached fast path must not allocate");

    // The decode-every-step slow path must be allocation-free too: the
    // icache only changes *when* decoding happens, not its cost model.
    cpu.set_icache_enabled(false);
    for _ in 0..64 {
        cpu.step_into(&mut ram, &mut step).expect("slow-path warm-up");
    }
    let before = allocations();
    for _ in 0..100_000 {
        cpu.step_into(&mut ram, &mut step).expect("slow-path step");
    }
    assert_eq!(allocations() - before, 0, "uncached decode path must not allocate");

    // Sanity: the harness actually counts (one boxed value = ≥1 count).
    let before = allocations();
    let boxed = std::hint::black_box(Box::new(0xABu8));
    assert!(allocations() > before, "counting allocator must observe allocations");
    drop(boxed);
}

fn steady_state_superblock_dispatch_is_allocation_free() {
    // The same busy loop, dispatched block-at-a-time. Stitching a block
    // allocates (its instruction vector, once per block); *reusing* a
    // stitched block must not — the generation check, the take/put slot
    // swap and the per-instruction execute loop all run on existing
    // storage.
    let mut ram = Ram::new();
    ram.load_words(0xE000, &[0x5A0A, 0x4A82, 0x0200, 0x4211, 0x0200, 0x3FFA]);

    let mut cpu = Cpu::new();
    if !cpu.superblocks_enabled() {
        // MSP430_FORCE_STEP: the dispatch below degrades to `step_into`,
        // already covered above.
        return;
    }
    cpu.set_pc(0xE000);
    cpu.set_reg(Reg::R10, 1);
    let mut step = Step::default();

    // Warm-up: stitches the loop's blocks (and the icache under them).
    let mut warmed = 0usize;
    while warmed < 64 {
        warmed += cpu
            .step_block_into(&mut ram, 0xFFFF, 64 - warmed, &mut step, |_, _, _| {})
            .expect("warm-up dispatch");
    }

    let before = allocations();
    let mut steps = 0usize;
    while steps < 100_000 {
        steps += cpu
            .step_block_into(&mut ram, 0xFFFF, 100_000 - steps, &mut step, |_, _, _| {})
            .expect("steady-state dispatch");
    }
    assert_eq!(allocations() - before, 0, "superblock block reuse must not allocate");
    let stats = cpu.superblock_stats();
    assert!(stats.hits > 0, "steady state must be served from stitched blocks");
}
