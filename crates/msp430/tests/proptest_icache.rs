//! Differential property test for the emulator's dispatch layers.
//!
//! Random programs are run in lockstep on three cores over identical
//! memories: one forced onto the decode-every-step slow path (the oracle),
//! one with the predecoded instruction cache (per-step fast path), and one
//! with superblock dispatch stacked on top of the cache (block-at-a-time
//! fast path). Every [`Step`] — instruction, cycle count, PCs, and the
//! full ordered bus-access list — must be identical, as must any fault,
//! the final register file, and the final memory image.
//!
//! Programs end in a jump back to their base so the fast cores re-execute
//! cached code (hits), and random absolute/indexed stores occasionally land
//! inside the program itself (self-modifying code), exercising the icache's
//! validation-on-hit re-decode path and the superblock layer's
//! write-generation revalidation and mid-block SMC early exit. A strategy-
//! chosen step may additionally reload the pristine image over the (possibly
//! self-modified) program mid-run, modelling a device image reload.
//!
//! The superblock core runs *ahead* by whole blocks: its steps are queued by
//! the dispatch callback and drained one per lockstep iteration. The
//! dispatch budget is capped at the reload boundary so all three cores
//! observe the reload between the same two steps.
//!
//! Extending the oracle three-way surfaced no latent gap in the icache's
//! validate-on-hit shortcut — the generation fast path and the word-compare
//! fallback both held under SMC and reloads. The one reuse gap found while
//! stacking superblocks was allocation behaviour, not soundness: bulk image
//! reloading between proofs bumped generations of *unchanged* pages,
//! forcing re-stitches (fixed by the generation-preserving
//! `Ram::reset_to`, pinned by the dialed zero-alloc harness).

use std::collections::VecDeque;

use msp430::cpu::{Cpu, Step};
use msp430::flags;
use msp430::isa::{Cond, Insn, Op1, Op2, Operand, Size};
use msp430::mem::Ram;
use msp430::regs::Reg;
use msp430::superblocks_forced_off;
use msp430::CpuFault;
use proptest::prelude::*;

const BASE: u16 = 0xE000;

/// Registers legal as general-purpose operand bases (no PC/SR/CG2).
fn gp_reg() -> impl Strategy<Value = Reg> {
    (4u16..16).prop_map(Reg::from_index)
}

fn any_size() -> impl Strategy<Value = Size> {
    prop_oneof![Just(Size::Word), Just(Size::Byte)]
}

/// Addresses that sometimes overlap the program (self-modifying code) and
/// sometimes plain data memory.
fn mem_addr() -> impl Strategy<Value = u16> {
    prop_oneof![0xE000u16..0xE040, 0x0200u16..0x0400, any::<u16>()]
}

fn src_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        gp_reg().prop_map(Operand::Reg),
        Just(Operand::Reg(Reg::SP)),
        (gp_reg(), any::<u16>()).prop_map(|(r, x)| Operand::Indexed(r, x)),
        mem_addr().prop_map(Operand::Symbolic),
        mem_addr().prop_map(Operand::Absolute),
        gp_reg().prop_map(Operand::Indirect),
        gp_reg().prop_map(Operand::IndirectInc),
        any::<u16>().prop_map(Operand::Imm),
    ]
}

fn dst_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        gp_reg().prop_map(Operand::Reg),
        (gp_reg(), any::<u16>()).prop_map(|(r, x)| Operand::Indexed(r, x)),
        mem_addr().prop_map(Operand::Symbolic),
        mem_addr().prop_map(Operand::Absolute),
    ]
}

fn op2() -> impl Strategy<Value = Op2> {
    prop_oneof![
        Just(Op2::Mov),
        Just(Op2::Add),
        Just(Op2::Addc),
        Just(Op2::Subc),
        Just(Op2::Sub),
        Just(Op2::Cmp),
        Just(Op2::Dadd),
        Just(Op2::Bit),
        Just(Op2::Bic),
        Just(Op2::Bis),
        Just(Op2::Xor),
        Just(Op2::And),
    ]
}

fn op1() -> impl Strategy<Value = Op1> {
    prop_oneof![Just(Op1::Rrc), Just(Op1::Swpb), Just(Op1::Rra), Just(Op1::Sxt), Just(Op1::Push),]
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Nz),
        Just(Cond::Z),
        Just(Cond::Nc),
        Just(Cond::C),
        Just(Cond::Ge),
        Just(Cond::L),
    ]
}

fn any_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (op2(), any_size(), src_operand(), dst_operand())
            .prop_map(|(op, size, src, dst)| Insn::Two { op, size, src, dst }),
        (op1(), src_operand()).prop_map(|(op, sd)| {
            let size = if op.allows_byte() { Size::Byte } else { Size::Word };
            Insn::One { op, size, sd }
        }),
        (op1(), src_operand()).prop_map(|(op, sd)| Insn::One { op, size: Size::Word, sd }),
        // Short forward jumps keep control flow inside the program.
        (cond(), 0i16..6).prop_map(|(cond, offset)| Insn::Jump { cond, offset }),
    ]
}

/// Encodes a random instruction list at `BASE`, closed by a jump back to
/// `BASE` so re-execution exercises cache hits.
fn build_program(insns: &[Insn]) -> Vec<u16> {
    let mut words = Vec::new();
    let mut at = BASE;
    for insn in insns {
        if let Ok(w) = insn.encode(at) {
            at = at.wrapping_add(2 * w.len() as u16);
            words.extend(w);
        }
    }
    if let Ok(j) = Insn::jump_to(Cond::Always, at, BASE) {
        words.extend(j.encode(at).expect("loop jump encodes"));
    }
    words
}

/// A PC-shaped value no program counter can hold (word writes to PC clear
/// bit 0), so block dispatch never stops early on it.
const NO_STOP: u16 = 0xFFFF;

const STEPS: usize = 500;

proptest! {
    /// The decode-every-step oracle, the per-step icache path and the
    /// superblock block-at-a-time path produce identical step streams,
    /// faults, cycle totals, registers and memory for random (often
    /// self-modifying) programs, including across a mid-run image reload.
    #[test]
    fn forced_icache_and_superblock_streams_match(
        insns in proptest::collection::vec(any_insn(), 1..10),
        seed_regs in proptest::array::uniform8(any::<u16>()),
        sp in (0x0280u16..0x04F0).prop_map(|a| a * 2),
        sr in 0u16..0x0200,
        reload_raw in 0usize..960,
    ) {
        // Half the cases reload the pristine image mid-run; the other half
        // never reload (the vendored proptest has no `option::of`).
        let reload_at = (reload_raw < 480).then(|| reload_raw.max(1));
        let words = build_program(&insns);
        prop_assume!(!words.is_empty());

        let mut ram_fast = Ram::new();
        ram_fast.load_words(BASE, &words);
        let mut ram_slow = ram_fast.clone();
        let mut ram_block = ram_fast.clone();

        let mut fast = Cpu::new();
        let mut slow = Cpu::new();
        let mut block = Cpu::new();
        slow.set_icache_enabled(false);
        slow.set_superblocks_enabled(false);
        fast.set_superblocks_enabled(false);
        prop_assert!(fast.icache_enabled());
        for cpu in [&mut fast, &mut slow, &mut block] {
            cpu.set_pc(BASE);
            cpu.set_reg(Reg::SP, sp);
            cpu.set_reg(Reg::SR, sr & (flags::C | flags::Z | flags::N | flags::V));
            for (i, v) in seed_regs.iter().enumerate() {
                cpu.set_reg(Reg::from_index(8 + i as u16), *v);
            }
        }

        let mut fast_step = Step::default();
        let mut slow_step = Step::default();
        let mut block_scratch = Step::default();
        // The superblock core runs ahead by whole blocks; the queue holds
        // the steps it has executed that the lockstep loop has not yet
        // consumed.
        let mut block_queue: VecDeque<Step> = VecDeque::new();
        let (mut fast_cycles, mut slow_cycles, mut block_cycles) = (0u64, 0u64, 0u64);
        let mut stopped_early = false;
        for n in 0..STEPS {
            if reload_at == Some(n) {
                // Dispatch budgets are capped at the reload boundary, so
                // the block core cannot have run past it.
                prop_assert!(block_queue.is_empty(), "block core overran the reload boundary");
                ram_fast.load_words(BASE, &words);
                ram_slow.load_words(BASE, &words);
                ram_block.load_words(BASE, &words);
            }

            let rf = fast.step_into(&mut ram_fast, &mut fast_step);
            let rs = slow.step_into(&mut ram_slow, &mut slow_step);
            let rb: Result<Step, CpuFault> = match block_queue.pop_front() {
                Some(s) => Ok(s),
                None => {
                    let limit = match reload_at {
                        Some(r) if r > n => r - n,
                        _ => STEPS - n,
                    };
                    block
                        .step_block_into(&mut ram_block, NO_STOP, limit, &mut block_scratch,
                            |_, _, s| block_queue.push_back(*s))
                        .map(|executed| {
                            assert!(executed > 0, "dispatch with budget must execute");
                            block_queue.pop_front().expect("executed steps are queued")
                        })
                }
            };
            match (rf, rs, rb) {
                (Ok(()), Ok(()), Ok(block_step)) => {
                    prop_assert_eq!(&fast_step, &slow_step, "icache step {} diverged", n);
                    prop_assert_eq!(&block_step, &slow_step, "superblock step {} diverged", n);
                    fast_cycles += u64::from(fast_step.cycles);
                    slow_cycles += u64::from(slow_step.cycles);
                    block_cycles += u64::from(block_step.cycles);
                }
                (Err(ef), Err(es), Err(eb)) => {
                    prop_assert_eq!(ef, es, "icache fault diverged at step {}", n);
                    prop_assert_eq!(eb, es, "superblock fault diverged at step {}", n);
                    stopped_early = true;
                    break;
                }
                (rf, rs, rb) => {
                    return Err(TestCaseError::fail(format!(
                        "paths disagreed on faulting at step {n}: \
                         fast={rf:?} slow={rs:?} block={rb:?}"
                    )));
                }
            }
        }

        prop_assert_eq!(fast_cycles, slow_cycles);
        prop_assert_eq!(block_cycles, slow_cycles);
        for r in Reg::ALL {
            prop_assert_eq!(fast.reg(r), slow.reg(r), "icache {} diverged", r);
            prop_assert_eq!(block.reg(r), slow.reg(r), "superblock {} diverged", r);
        }
        prop_assert_eq!(ram_fast.as_slice(), ram_slow.as_slice(), "icache memory diverged");
        prop_assert_eq!(ram_block.as_slice(), ram_slow.as_slice(), "superblock memory diverged");
        // A program that looped for all 500 steps re-executed its body and
        // must have been served from the cache. (Superblock *hits* are not
        // guaranteed — heavy SMC can keep every block generation-stale —
        // but the first dispatch of a run is always a miss.)
        if !stopped_early {
            prop_assert!(fast.icache_stats().hits > 0, "no cache hits in a looping program");
            if !superblocks_forced_off() {
                let s = block.superblock_stats();
                prop_assert!(s.misses > 0, "superblock core never dispatched a block");
            }
        }
    }
}
