//! Differential property test for the predecoded instruction cache.
//!
//! Random programs are run in lockstep on two cores over identical
//! memories: one with the cache enabled (the fast path), one forced onto
//! the decode-every-step slow path. Every [`Step`] — instruction, cycle
//! count, PCs, and the full ordered bus-access list — must be identical,
//! as must any fault, the final register file, and the final memory image.
//!
//! Programs end in a jump back to their base so the fast core re-executes
//! cached code (hits), and random absolute/indexed stores occasionally land
//! inside the program itself (self-modifying code), exercising the
//! validation-on-hit re-decode path.

use msp430::cpu::{Cpu, Step};
use msp430::flags;
use msp430::isa::{Cond, Insn, Op1, Op2, Operand, Size};
use msp430::mem::Ram;
use msp430::regs::Reg;
use proptest::prelude::*;

const BASE: u16 = 0xE000;

/// Registers legal as general-purpose operand bases (no PC/SR/CG2).
fn gp_reg() -> impl Strategy<Value = Reg> {
    (4u16..16).prop_map(Reg::from_index)
}

fn any_size() -> impl Strategy<Value = Size> {
    prop_oneof![Just(Size::Word), Just(Size::Byte)]
}

/// Addresses that sometimes overlap the program (self-modifying code) and
/// sometimes plain data memory.
fn mem_addr() -> impl Strategy<Value = u16> {
    prop_oneof![0xE000u16..0xE040, 0x0200u16..0x0400, any::<u16>()]
}

fn src_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        gp_reg().prop_map(Operand::Reg),
        Just(Operand::Reg(Reg::SP)),
        (gp_reg(), any::<u16>()).prop_map(|(r, x)| Operand::Indexed(r, x)),
        mem_addr().prop_map(Operand::Symbolic),
        mem_addr().prop_map(Operand::Absolute),
        gp_reg().prop_map(Operand::Indirect),
        gp_reg().prop_map(Operand::IndirectInc),
        any::<u16>().prop_map(Operand::Imm),
    ]
}

fn dst_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        gp_reg().prop_map(Operand::Reg),
        (gp_reg(), any::<u16>()).prop_map(|(r, x)| Operand::Indexed(r, x)),
        mem_addr().prop_map(Operand::Symbolic),
        mem_addr().prop_map(Operand::Absolute),
    ]
}

fn op2() -> impl Strategy<Value = Op2> {
    prop_oneof![
        Just(Op2::Mov),
        Just(Op2::Add),
        Just(Op2::Addc),
        Just(Op2::Subc),
        Just(Op2::Sub),
        Just(Op2::Cmp),
        Just(Op2::Dadd),
        Just(Op2::Bit),
        Just(Op2::Bic),
        Just(Op2::Bis),
        Just(Op2::Xor),
        Just(Op2::And),
    ]
}

fn op1() -> impl Strategy<Value = Op1> {
    prop_oneof![Just(Op1::Rrc), Just(Op1::Swpb), Just(Op1::Rra), Just(Op1::Sxt), Just(Op1::Push),]
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Nz),
        Just(Cond::Z),
        Just(Cond::Nc),
        Just(Cond::C),
        Just(Cond::Ge),
        Just(Cond::L),
    ]
}

fn any_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (op2(), any_size(), src_operand(), dst_operand())
            .prop_map(|(op, size, src, dst)| Insn::Two { op, size, src, dst }),
        (op1(), src_operand()).prop_map(|(op, sd)| {
            let size = if op.allows_byte() { Size::Byte } else { Size::Word };
            Insn::One { op, size, sd }
        }),
        (op1(), src_operand()).prop_map(|(op, sd)| Insn::One { op, size: Size::Word, sd }),
        // Short forward jumps keep control flow inside the program.
        (cond(), 0i16..6).prop_map(|(cond, offset)| Insn::Jump { cond, offset }),
    ]
}

/// Encodes a random instruction list at `BASE`, closed by a jump back to
/// `BASE` so re-execution exercises cache hits.
fn build_program(insns: &[Insn]) -> Vec<u16> {
    let mut words = Vec::new();
    let mut at = BASE;
    for insn in insns {
        if let Ok(w) = insn.encode(at) {
            at = at.wrapping_add(2 * w.len() as u16);
            words.extend(w);
        }
    }
    if let Ok(j) = Insn::jump_to(Cond::Always, at, BASE) {
        words.extend(j.encode(at).expect("loop jump encodes"));
    }
    words
}

proptest! {
    /// The cached fast path and the forced decode-every-step slow path
    /// produce identical step streams, faults, cycle totals, registers and
    /// memory for random (often self-modifying) programs.
    #[test]
    fn cached_and_uncached_step_streams_match(
        insns in proptest::collection::vec(any_insn(), 1..10),
        seed_regs in proptest::array::uniform8(any::<u16>()),
        sp in (0x0280u16..0x04F0).prop_map(|a| a * 2),
        sr in 0u16..0x0200,
    ) {
        let words = build_program(&insns);
        prop_assume!(!words.is_empty());

        let mut ram_fast = Ram::new();
        ram_fast.load_words(BASE, &words);
        let mut ram_slow = ram_fast.clone();

        let mut fast = Cpu::new();
        let mut slow = Cpu::new();
        slow.set_icache_enabled(false);
        prop_assert!(fast.icache_enabled());
        for cpu in [&mut fast, &mut slow] {
            cpu.set_pc(BASE);
            cpu.set_reg(Reg::SP, sp);
            cpu.set_reg(Reg::SR, sr & (flags::C | flags::Z | flags::N | flags::V));
            for (i, v) in seed_regs.iter().enumerate() {
                cpu.set_reg(Reg::from_index(8 + i as u16), *v);
            }
        }

        let mut fast_step = Step::default();
        let mut slow_step = Step::default();
        let (mut fast_cycles, mut slow_cycles) = (0u64, 0u64);
        let mut stopped_early = false;
        for n in 0..500 {
            let rf = fast.step_into(&mut ram_fast, &mut fast_step);
            let rs = slow.step_into(&mut ram_slow, &mut slow_step);
            match (rf, rs) {
                (Ok(()), Ok(())) => {
                    prop_assert_eq!(&fast_step, &slow_step, "step {} diverged", n);
                    fast_cycles += u64::from(fast_step.cycles);
                    slow_cycles += u64::from(slow_step.cycles);
                }
                (Err(ef), Err(es)) => {
                    prop_assert_eq!(ef, es, "faults diverged at step {}", n);
                    stopped_early = true;
                    break;
                }
                (rf, rs) => {
                    return Err(TestCaseError::fail(format!(
                        "only one path faulted at step {n}: fast={rf:?} slow={rs:?}"
                    )));
                }
            }
        }

        prop_assert_eq!(fast_cycles, slow_cycles);
        for r in Reg::ALL {
            prop_assert_eq!(fast.reg(r), slow.reg(r), "{} diverged", r);
        }
        prop_assert_eq!(ram_fast.as_slice(), ram_slow.as_slice(), "memory diverged");
        // A program that looped for all 500 steps re-executed its body and
        // must have been served from the cache.
        if !stopped_early {
            prop_assert!(fast.icache_stats().hits > 0, "no cache hits in a looping program");
        }
    }
}
