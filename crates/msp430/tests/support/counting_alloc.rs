// Shared counting-allocator harness for the workspace's zero-allocation
// tests, pulled in with `include!` (directories under `tests/` are not
// compiled as test targets, so this file only exists inside the binaries
// that include it).
//
// The including binary must carry `#![allow(unsafe_code)]`: implementing
// [`GlobalAlloc`](std::alloc::GlobalAlloc) is inherently unsafe. The
// implementation is a transparent pass-through to
// [`System`](std::alloc::System) that bumps an atomic counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the only addition is a relaxed counter increment
// with no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our caller's.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: ptr/layout/new_size are forwarded unchanged from a caller
        // holding the same contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout are forwarded unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
