//! Property-based tests over the full instruction set.

use msp430::cpu::Cpu;
use msp430::flags;
use msp430::isa::{Cond, Insn, Op1, Op2, Operand, Size};
use msp430::mem::Ram;
use msp430::regs::Reg;
use proptest::prelude::*;

/// Registers legal as general-purpose operand bases (no PC/SR/CG2).
fn gp_reg() -> impl Strategy<Value = Reg> {
    (4u16..16).prop_map(Reg::from_index)
}

fn any_size() -> impl Strategy<Value = Size> {
    prop_oneof![Just(Size::Word), Just(Size::Byte)]
}

fn src_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        gp_reg().prop_map(Operand::Reg),
        Just(Operand::Reg(Reg::SP)),
        Just(Operand::Reg(Reg::SR)),
        (gp_reg(), any::<u16>()).prop_map(|(r, x)| Operand::Indexed(r, x)),
        any::<u16>().prop_map(Operand::Symbolic),
        any::<u16>().prop_map(Operand::Absolute),
        gp_reg().prop_map(Operand::Indirect),
        gp_reg().prop_map(Operand::IndirectInc),
        any::<u16>().prop_map(Operand::Imm),
    ]
}

fn dst_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        gp_reg().prop_map(Operand::Reg),
        Just(Operand::Reg(Reg::SP)),
        (gp_reg(), any::<u16>()).prop_map(|(r, x)| Operand::Indexed(r, x)),
        any::<u16>().prop_map(Operand::Symbolic),
        any::<u16>().prop_map(Operand::Absolute),
    ]
}

fn op2() -> impl Strategy<Value = Op2> {
    prop_oneof![
        Just(Op2::Mov),
        Just(Op2::Add),
        Just(Op2::Addc),
        Just(Op2::Subc),
        Just(Op2::Sub),
        Just(Op2::Cmp),
        Just(Op2::Dadd),
        Just(Op2::Bit),
        Just(Op2::Bic),
        Just(Op2::Bis),
        Just(Op2::Xor),
        Just(Op2::And),
    ]
}

fn op1() -> impl Strategy<Value = Op1> {
    prop_oneof![
        Just(Op1::Rrc),
        Just(Op1::Swpb),
        Just(Op1::Rra),
        Just(Op1::Sxt),
        Just(Op1::Push),
        Just(Op1::Call),
    ]
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Nz),
        Just(Cond::Z),
        Just(Cond::Nc),
        Just(Cond::C),
        Just(Cond::N),
        Just(Cond::Ge),
        Just(Cond::L),
        Just(Cond::Always),
    ]
}

fn any_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (op2(), any_size(), src_operand(), dst_operand())
            .prop_map(|(op, size, src, dst)| Insn::Two { op, size, src, dst }),
        (op1(), src_operand()).prop_map(|(op, sd)| {
            // Byte size only where architecturally allowed.
            let size = if op.allows_byte() { Size::Byte } else { Size::Word };
            Insn::One { op, size, sd }
        }),
        (op1(), src_operand()).prop_map(|(op, sd)| Insn::One { op, size: Size::Word, sd }),
        (cond(), -512i16..=511).prop_map(|(cond, offset)| Insn::Jump { cond, offset }),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every encodable instruction, at any even
    /// address (symbolic operands are position-dependent in encoding, not in
    /// meaning).
    #[test]
    fn encode_decode_round_trip(insn in any_insn(), at in (0u16..0x7FF0).prop_map(|a| a * 2)) {
        let Ok(words) = insn.encode(at) else { return Ok(()); };
        prop_assert_eq!(usize::from(insn.len_words()), words.len());
        let mut it = words[1..].iter().copied();
        let back = Insn::decode(at, words[0], || it.next().expect("ext words")).unwrap();
        prop_assert_eq!(back, insn);
    }

    /// Every 16-bit word either fails decode or decodes to an instruction
    /// that re-encodes (possibly shorter, e.g. canonicalising a long-form
    /// constant-generator immediate) to words that decode back to the same
    /// instruction — the decoder and encoder are semantically consistent on
    /// the whole opcode space.
    #[test]
    fn decode_encode_fixpoint(first in any::<u16>(), ext in proptest::collection::vec(any::<u16>(), 2)) {
        let at = 0x4000u16;
        let mut it = ext.iter().copied();
        let Ok(insn) = Insn::decode(at, first, || it.next().unwrap()) else { return Ok(()); };
        let consumed = 1 + ext.len() - it.len();
        let words = insn.encode(at).expect("decoded instructions re-encode");
        prop_assert!(words.len() <= consumed, "re-encoding never grows");
        let mut it2 = words[1..].iter().copied();
        let back = Insn::decode(at, words[0], || it2.next().unwrap()).unwrap();
        prop_assert_eq!(back, insn);
    }

    /// ADD/SUB/CMP flags agree with a wide-integer reference model.
    #[test]
    fn add_sub_flags_match_reference(a in any::<u16>(), b in any::<u16>()) {
        let out = flags::add(a, b, false, Size::Word);
        let wide = u32::from(a) + u32::from(b);
        prop_assert_eq!(out.value, wide as u16);
        prop_assert_eq!(out.c, wide > 0xFFFF);
        prop_assert_eq!(out.z, (wide as u16) == 0);
        prop_assert_eq!(out.n, (wide as u16) & 0x8000 != 0);
        let sv = i32::from(a as i16) + i32::from(b as i16);
        prop_assert_eq!(out.v, sv > i32::from(i16::MAX) || sv < i32::from(i16::MIN));

        let out = flags::sub(a, b, true, Size::Word);
        prop_assert_eq!(out.value, a.wrapping_sub(b));
        prop_assert_eq!(out.c, a >= b, "carry == no borrow");
        let sv = i32::from(a as i16) - i32::from(b as i16);
        prop_assert_eq!(out.v, sv > i32::from(i16::MAX) || sv < i32::from(i16::MIN));
    }

    /// Executing `mov src, dst` between registers copies exactly and touches
    /// no memory or flags.
    #[test]
    fn reg_mov_preserves_flags_and_memory(v in any::<u16>(), sr0 in 0u16..0x0200) {
        let sr0 = sr0 & (flags::C | flags::Z | flags::N | flags::V);
        let mut ram = Ram::new();
        let insn = Insn::Two {
            op: Op2::Mov, size: Size::Word,
            src: Operand::Reg(Reg::R5), dst: Operand::Reg(Reg::R6),
        };
        ram.load_words(0xE000, &insn.encode(0xE000).unwrap());
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        cpu.set_reg(Reg::R5, v);
        cpu.set_reg(Reg::SR, sr0);
        let step = cpu.step(&mut ram).unwrap();
        prop_assert_eq!(cpu.reg(Reg::R6), v);
        prop_assert_eq!(cpu.reg(Reg::SR), sr0);
        prop_assert_eq!(step.writes().count(), 0);
    }

    /// Stack discipline: push then pop restores both the value and SP.
    #[test]
    fn push_pop_round_trip(v in any::<u16>(), sp in (0x0280u16..0x04F0).prop_map(|a| a * 2)) {
        let mut ram = Ram::new();
        let push = Insn::One { op: Op1::Push, size: Size::Word, sd: Operand::Reg(Reg::R7) };
        let pop = Insn::Two {
            op: Op2::Mov, size: Size::Word,
            src: Operand::IndirectInc(Reg::SP), dst: Operand::Reg(Reg::R8),
        };
        let mut words = push.encode(0xE000).unwrap();
        words.extend(pop.encode(0xE002).unwrap());
        ram.load_words(0xE000, &words);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        cpu.set_reg(Reg::SP, sp);
        cpu.set_reg(Reg::R7, v);
        cpu.step(&mut ram).unwrap();
        cpu.step(&mut ram).unwrap();
        prop_assert_eq!(cpu.reg(Reg::R8), v);
        prop_assert_eq!(cpu.reg(Reg::SP), sp);
    }

    /// Conditional jumps agree with direct flag evaluation.
    #[test]
    fn jump_condition_table(sr in 0u16..0x0200, cond in cond()) {
        let sr = sr & (flags::C | flags::Z | flags::N | flags::V);
        let mut ram = Ram::new();
        let insn = Insn::Jump { cond, offset: 4 };
        ram.load_words(0xE000, &insn.encode(0xE000).unwrap());
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        cpu.set_reg(Reg::SR, sr);
        cpu.step(&mut ram).unwrap();
        let c = sr & flags::C != 0;
        let z = sr & flags::Z != 0;
        let n = sr & flags::N != 0;
        let v = sr & flags::V != 0;
        let taken = match cond {
            Cond::Nz => !z,
            Cond::Z => z,
            Cond::Nc => !c,
            Cond::C => c,
            Cond::N => n,
            Cond::Ge => n == v,
            Cond::L => n != v,
            Cond::Always => true,
        };
        prop_assert_eq!(cpu.pc(), if taken { 0xE00A } else { 0xE002 });
    }
}
