//! The MSP430 CPU core: fetch, decode, execute, and bus-event reporting.
//!
//! [`Cpu::step`] executes exactly one instruction (or services one pending
//! interrupt) and returns a [`Step`] describing everything that happened on
//! the bus. Hardware monitors — the APEX FSM in particular — consume the
//! `Step` stream; nothing about attestation lives in this module.
//!
//! # The zero-allocation fast path
//!
//! Replay-heavy callers (the DIALED verifier, batch verification workers)
//! drive the core through [`Cpu::step_into`], which fills a caller-owned
//! [`Step`] instead of returning a fresh one. Because a `Step` embeds its
//! bus accesses in an inline [`AccessBuf`], a steady-state
//! `step_into` loop performs **zero heap allocations**. Decoding is served
//! from a lazily built predecoded instruction cache (the crate-private
//! `icache` module) that
//! is validated against the live instruction words on every hit, so writes
//! into code memory — from any bus master — force a re-decode without
//! explicit invalidation hooks.
//!
//! One level further up, [`Cpu::step_block_into`] dispatches *superblocks*:
//! straight-line runs of predecoded instructions ending at control flow,
//! SR writes, log-site break addresses or page boundaries, validated for
//! reuse by the bus's per-page write-generations. The steady-state block
//! loop touches no per-step metadata at all; per-step observers still see
//! every [`Step`] through a callback. `MSP430_FORCE_STEP=1` in the
//! environment disables block dispatch process-wide
//! ([`superblocks_forced_off`]).

use crate::cycles::{insn_cycles, IRQ_CYCLES};
use crate::flags;
use crate::icache::{
    page_base, Block, BlockBreaks, BlockInsn, ICache, ICacheStats, Stamp, SuperCache,
    SuperblockStats, MAX_BLOCK_INSNS, MAX_INSN_WORDS,
};
use crate::isa::{Cond, DecodeError, Insn, Op1, Op2, Operand, Size};
use crate::layout::RESET_VECTOR;
use crate::mem::{Access, AccessBuf, AccessKind, Bus};
use crate::regs::{Reg, RegFile};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Everything one [`Cpu::step`] did, for consumption by monitors and traces.
///
/// Contains no heap-owned data: it is `Copy` (a flat ~48-byte copy), and
/// one `Step` can be reused across an entire run via [`Cpu::step_into`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Step {
    /// PC at the start of the step (address of the executed instruction).
    pub pc: u16,
    /// PC after the step (next instruction to execute).
    pub next_pc: u16,
    /// The executed instruction; `None` when the step serviced an interrupt.
    pub insn: Option<Insn>,
    /// Cycles consumed.
    pub cycles: u32,
    /// Ordered *data* bus accesses (reads and writes).
    ///
    /// Instruction fetches are not recorded: they are fully implied by
    /// [`Step::pc`] and [`Step::insn`] (address, count and values follow
    /// from the executed instruction), and no monitor consumes them — the
    /// APEX FSM, the VRASED rules and all policies filter to data traffic.
    pub accesses: AccessBuf,
    /// Vector number when this step was an interrupt entry.
    pub irq: Option<u8>,
}

impl Step {
    /// Iterator over only the data writes of this step.
    pub fn writes(&self) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(|a| a.kind == AccessKind::Write)
    }

    /// Iterator over only the data reads of this step.
    pub fn reads(&self) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(|a| a.kind == AccessKind::Read)
    }

    /// Resets all fields, preparing the step for reuse.
    pub fn clear(&mut self) {
        self.pc = 0;
        self.next_pc = 0;
        self.insn = None;
        self.cycles = 0;
        self.accesses.clear();
        self.irq = None;
    }
}

/// Faults that stop the core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CpuFault {
    /// An undecodable opcode was fetched.
    Decode {
        /// Address of the bad opcode.
        at: u16,
        /// Underlying decode error.
        err: DecodeError,
    },
    /// The CPU is halted (CPUOFF set in SR).
    Halted,
}

impl fmt::Display for CpuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuFault::Decode { at, err } => write!(f, "decode fault at {at:#06x}: {err}"),
            CpuFault::Halted => write!(f, "cpu halted (CPUOFF)"),
        }
    }
}

impl std::error::Error for CpuFault {}

/// True when the `MSP430_FORCE_STEP` environment variable disables
/// superblock dispatch process-wide (mirroring `HACL_FORCE_SCALAR`): the
/// variable is set and not `"0"` at first query. With dispatch forced off,
/// every [`Cpu::step_block_into`] call degrades to exactly one
/// [`Cpu::step_into`], which CI uses to prove the whole verification stack
/// on the single-step path.
#[must_use]
pub fn superblocks_forced_off() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var_os("MSP430_FORCE_STEP").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

/// The MSP430 CPU core.
#[derive(Clone, Debug)]
pub struct Cpu {
    /// Architectural register file.
    pub regs: RegFile,
    pending_irq: Option<u8>,
    icache: ICache,
    icache_enabled: bool,
    sblocks: SuperCache,
    sblocks_enabled: bool,
}

impl Default for Cpu {
    fn default() -> Self {
        Self {
            regs: RegFile::new(),
            pending_irq: None,
            icache: ICache::default(),
            icache_enabled: true,
            sblocks: SuperCache::default(),
            sblocks_enabled: !superblocks_forced_off(),
        }
    }
}

impl Cpu {
    /// A core with all registers zero (PC must be set before stepping).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables the predecoded instruction cache.
    ///
    /// The cache is semantically transparent (validated against live memory
    /// on every hit); disabling it forces the decode-every-step slow path,
    /// which differential tests and benchmarks use as the reference.
    pub fn set_icache_enabled(&mut self, enabled: bool) {
        self.icache_enabled = enabled;
    }

    /// Is the predecoded instruction cache in use?
    #[must_use]
    pub fn icache_enabled(&self) -> bool {
        self.icache_enabled
    }

    /// Drops every cached decode (the table allocation is kept).
    ///
    /// Never required for correctness — entries are validated on hit — but
    /// lets long-lived cores shed entries for code that will not run again.
    pub fn flush_icache(&mut self) {
        self.icache.flush();
    }

    /// Instruction-cache hit/miss counters since construction.
    #[must_use]
    pub fn icache_stats(&self) -> ICacheStats {
        self.icache.stats()
    }

    /// Enables or disables superblock (block-at-a-time) dispatch.
    ///
    /// Like the instruction cache, superblocks are semantically transparent
    /// (reuse is validated against live page write-generations); disabling
    /// them makes [`Cpu::step_block_into`] degrade to one [`Cpu::step_into`]
    /// per call. When [`superblocks_forced_off`] reports the
    /// `MSP430_FORCE_STEP` override, dispatch stays off regardless.
    pub fn set_superblocks_enabled(&mut self, enabled: bool) {
        self.sblocks_enabled = enabled && !superblocks_forced_off();
    }

    /// Is superblock dispatch in use?
    #[must_use]
    pub fn superblocks_enabled(&self) -> bool {
        self.sblocks_enabled
    }

    /// Superblock cache hit/miss/re-stitch counters since construction.
    #[must_use]
    pub fn superblock_stats(&self) -> SuperblockStats {
        self.sblocks.stats()
    }

    /// Drops every stitched superblock (the table allocation is kept for
    /// the pages' slots; never required for correctness — blocks are
    /// generation-validated on every dispatch).
    pub fn flush_superblocks(&mut self) {
        self.sblocks.flush();
    }

    /// Installs the set of addresses at which superblocks must end, so
    /// those addresses only ever execute as block entries (where callers
    /// can observe them — the DIALED verifier's input-injection sites).
    ///
    /// A change of set — `Arc` pointer identity, so re-installing the same
    /// shared set per proof is free — flushes the stitched blocks.
    pub fn set_block_breaks(&mut self, breaks: Option<Arc<BlockBreaks>>) {
        self.sblocks.set_breaks(breaks);
    }

    /// Re-initialises the architectural state (registers and pending IRQ)
    /// while keeping the warm instruction cache.
    ///
    /// This is the batch-verification reuse hook: one core replays many
    /// proofs of the same operation, and the cached decodes stay valid
    /// across proofs because every hit is validated against live memory.
    pub fn reset_regs(&mut self) {
        self.regs = RegFile::new();
        self.pending_irq = None;
    }

    /// Loads the PC from the reset vector, like a power-on reset.
    pub fn reset(&mut self, bus: &mut impl Bus) {
        self.regs = RegFile::new();
        let entry = bus.read_word(RESET_VECTOR);
        self.regs.set(Reg::PC, entry);
        self.pending_irq = None;
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u16 {
        self.regs.get(r)
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, v: u16) {
        self.regs.set(r, v);
    }

    /// Program counter.
    #[must_use]
    pub fn pc(&self) -> u16 {
        self.regs.pc()
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u16) {
        self.regs.set(Reg::PC, pc);
    }

    /// Is a given SR flag set?
    #[must_use]
    pub fn flag(&self, mask: u16) -> bool {
        self.regs.sr() & mask != 0
    }

    /// True when CPUOFF is set (core stopped until external wake).
    #[must_use]
    pub fn halted(&self) -> bool {
        self.flag(flags::CPUOFF)
    }

    /// Latches an interrupt request for vector `vec` (0–31). It is taken at
    /// the next step boundary if GIE is set.
    pub fn raise_irq(&mut self, vec: u8) {
        self.pending_irq = Some(vec);
    }

    /// Clears any pending interrupt request.
    pub fn clear_irq(&mut self) {
        self.pending_irq = None;
    }

    /// Executes one instruction (or takes one interrupt).
    ///
    /// # Errors
    ///
    /// [`CpuFault::Halted`] when CPUOFF is set; [`CpuFault::Decode`] on an
    /// invalid opcode (PC is left pointing at the bad instruction).
    pub fn step(&mut self, bus: &mut impl Bus) -> Result<Step, CpuFault> {
        let mut step = Step::default();
        self.step_into(bus, &mut step)?;
        Ok(step)
    }

    /// Executes one instruction (or takes one interrupt) into a
    /// caller-owned [`Step`], the allocation-free form of [`Cpu::step`].
    ///
    /// Replay loops keep one `Step` for the whole run; it is cleared and
    /// refilled on every call. On error its contents are unspecified.
    ///
    /// # Errors
    ///
    /// [`CpuFault::Halted`] when CPUOFF is set; [`CpuFault::Decode`] on an
    /// invalid opcode (PC is left pointing at the bad instruction).
    pub fn step_into(&mut self, bus: &mut impl Bus, step: &mut Step) -> Result<(), CpuFault> {
        // Only the fields a success path does not overwrite are reset here;
        // on error the step's contents are unspecified.
        step.accesses.clear();
        step.irq = None;
        step.insn = None;
        if self.halted() {
            return Err(CpuFault::Halted);
        }

        let pc0 = self.regs.pc();
        step.pc = pc0;

        // Interrupt entry: push PC, push SR, clear SR (keep SCG0), vector.
        if let Some(vec) = self.pending_irq {
            if self.flag(flags::GIE) {
                self.pending_irq = None;
                let acc = &mut step.accesses;
                let mut sp = self.regs.sp();
                sp = sp.wrapping_sub(2);
                bus.write_word(sp, pc0);
                acc.push(Access { addr: sp, kind: AccessKind::Write, value: pc0, word: true });
                sp = sp.wrapping_sub(2);
                let sr = self.regs.sr();
                bus.write_word(sp, sr);
                acc.push(Access { addr: sp, kind: AccessKind::Write, value: sr, word: true });
                self.regs.set(Reg::SP, sp);
                self.regs.set(Reg::SR, sr & flags::SCG0);
                let vaddr = 0xFFE0u16.wrapping_add(u16::from(vec) * 2);
                let target = bus.read_word(vaddr);
                acc.push(Access { addr: vaddr, kind: AccessKind::Read, value: target, word: true });
                self.regs.set(Reg::PC, target);
                step.next_pc = target;
                step.cycles = IRQ_CYCLES;
                step.irq = Some(vec);
                return Ok(());
            }
        }

        // Fetch + decode, through the predecoded cache when possible.
        let (insn, cycles) = self.fetch_decode(bus, pc0)?;
        self.execute(bus, &insn, &mut step.accesses);
        step.next_pc = self.regs.pc();
        step.insn = Some(insn);
        step.cycles = cycles;
        Ok(())
    }

    /// Executes up to one superblock of instructions (at most `limit`),
    /// invoking `on_step` after each one — the block-at-a-time dispatch
    /// path beside [`Cpu::step_into`].
    ///
    /// Each executed instruction fills `step` exactly as `step_into` would
    /// (same PCs, decoded instruction, cycle count and inline access
    /// buffer) before `on_step(bus, regs, step)` runs, so per-step
    /// observers — the APEX monitor, trace recording, peripheral time —
    /// see an identical stream. What a block *skips* is the per-step
    /// metadata: one cache probe, one halt/IRQ test and one log-site check
    /// per block instead of per step.
    ///
    /// The block ends early at `stop_pc` (tested before each instruction
    /// after the first; the entry instruction always executes, matching a
    /// `step_into` call at that PC), after a store into one of the block's
    /// own code pages (possible self-modification of a later instruction),
    /// or at `limit`. Halt, pending-interrupt entry, disabled dispatch and
    /// unstitchable entries (odd PC, untracked page, undecodable opcode)
    /// all fall back to a single `step_into` with identical semantics.
    ///
    /// `on_step` receives the bus and the post-step register file; it must
    /// not execute instructions on this core (it cannot — the core is
    /// borrowed) and any bus writes it performs into the block's code pages
    /// take effect at the next block boundary.
    ///
    /// Returns the number of steps executed (≥ 1 unless `limit == 0`).
    ///
    /// # Errors
    ///
    /// Exactly those of [`Cpu::step_into`] — faults can only surface on the
    /// single-step fallback, never mid-block (blocks contain only decoded
    /// instructions, and instruction execution itself cannot fault).
    pub fn step_block_into<B: Bus>(
        &mut self,
        bus: &mut B,
        stop_pc: u16,
        limit: usize,
        step: &mut Step,
        mut on_step: impl FnMut(&mut B, &RegFile, &Step),
    ) -> Result<usize, CpuFault> {
        if limit == 0 {
            return Ok(0);
        }
        // Halt, interrupt entry and disabled dispatch funnel through the
        // single-step path so fault and IRQ semantics stay byte-identical
        // to a `step_into` loop. GIE and CPUOFF only change via explicit
        // SR writes or RETI (see `ends_block`), so mid-block re-checks are
        // unnecessary: a block never runs past the instruction that could
        // flip them.
        let single = !self.sblocks_enabled
            || self.halted()
            || (self.pending_irq.is_some() && self.flag(flags::GIE));
        if !single {
            let entry = self.regs.pc();
            if let Some(block) = self.obtain_block(bus, entry) {
                let n = block.insns.len().min(limit);
                let mut executed = 0usize;
                for bi in &block.insns[..n] {
                    if executed > 0 && bi.pc == stop_pc {
                        break;
                    }
                    step.accesses.clear();
                    step.irq = None;
                    step.pc = bi.pc;
                    step.insn = Some(bi.insn);
                    step.cycles = bi.cycles;
                    // PC advances past the instruction before it executes,
                    // exactly as fetch_decode does (PC-operand semantics).
                    self.regs.set(Reg::PC, bi.next_pc);
                    self.execute(bus, &bi.insn, &mut step.accesses);
                    step.next_pc = self.regs.pc();
                    executed += 1;
                    on_step(bus, &self.regs, step);
                    // A store into one of the block's own code pages may
                    // have patched an instruction we are about to run:
                    // leave the block; the next dispatch re-validates.
                    if !step.accesses.is_empty() && step.writes().any(|w| block.covers(w.addr)) {
                        break;
                    }
                }
                self.sblocks.put(entry, block);
                return Ok(executed);
            }
        }
        self.step_into(bus, step)?;
        on_step(bus, &self.regs, step);
        Ok(1)
    }

    /// Returns a validated superblock entered at `entry`: a cached block
    /// whose page generations all still match, or a freshly (re-)stitched
    /// one. `None` means dispatch must fall back to single-step.
    fn obtain_block(&mut self, bus: &mut impl Bus, entry: u16) -> Option<Box<Block>> {
        match self.sblocks.take(entry) {
            Some(block) if block.is_fresh(bus) => {
                self.sblocks.note_hit();
                Some(block)
            }
            Some(_stale) => {
                let block = self.stitch_block(bus, entry);
                if block.is_some() {
                    self.sblocks.note_restitch();
                }
                block
            }
            None => {
                let block = self.stitch_block(bus, entry);
                if block.is_some() {
                    self.sblocks.note_miss();
                }
                block
            }
        }
    }

    /// Stitches a new superblock starting at `entry`: decodes forward until
    /// a terminator instruction ([`ends_block`]), a break address, the
    /// entry page's end, an undecodable opcode, or [`MAX_BLOCK_INSNS`].
    ///
    /// Returns `None` when no block can form at all — odd entry PC, the
    /// entry page is not generation-tracked, or the first instruction does
    /// not decode (the single-step fallback then reproduces the exact
    /// fault). Decode reads during stitching are confined to
    /// generation-tracked pages, whose reads are side-effect-free, so a
    /// stitch never perturbs peripherals.
    fn stitch_block(&mut self, bus: &mut impl Bus, entry: u16) -> Option<Box<Block>> {
        if entry & 1 != 0 {
            return None;
        }
        let (bus_id, entry_gen) = bus.page_generation(entry)?;
        let entry_page = page_base(entry);
        let mut block = Box::new(Block::new(bus_id, entry_page, entry_gen));
        let mut pc = entry;
        while block.insns.len() < MAX_BLOCK_INSNS {
            if pc != entry {
                // Later instructions must *start* inside the entry page
                // (their extension words may straddle into the tracked
                // second page) and must not sit on a break address — break
                // addresses are always block entries, so callers observe
                // them (input injection) before dispatch.
                if page_base(pc) != entry_page || self.sblocks.breaks_contain(pc) {
                    break;
                }
            }
            // A decode may read up to two extension words past `pc`; never
            // read speculatively from an untracked page (peripheral reads
            // can have side effects, and a re-read on fallback would
            // diverge from pure single-step execution).
            let max_last = pc.wrapping_add((MAX_INSN_WORDS as u16 - 1) * 2);
            if page_base(max_last) != entry_page
                && !matches!(bus.page_generation(max_last), Some((id, _)) if id == bus_id)
            {
                break;
            }
            let mut cursor =
                FetchCursor { bus, pc0: pc, words: [0; MAX_INSN_WORDS], prefetched: 0, n: 0 };
            let first = cursor.next_word();
            let Ok(insn) = Insn::decode(pc, first, || cursor.next_word()) else {
                // Undecodable: end the block before it; the single-step
                // fallback at this PC reproduces the fault.
                break;
            };
            let len = cursor.n as u16;
            let last = pc.wrapping_add((len - 1) * 2);
            if page_base(last) != entry_page {
                match bus.page_generation(last) {
                    Some((id, gen)) if block.note_page(id, page_base(last), gen) => {}
                    _ => break,
                }
            }
            let next_pc = pc.wrapping_add(len * 2);
            block.insns.push(BlockInsn { pc, next_pc, insn, cycles: insn_cycles(&insn) });
            if ends_block(&insn) {
                break;
            }
            pc = next_pc;
        }
        if block.insns.is_empty() {
            None
        } else {
            Some(block)
        }
    }

    /// Resolves the instruction at `pc0` via a two-tier cache check:
    ///
    /// 1. **Generation fast path** — if the bus's page write-generations
    ///    still match the entry's stamp, the encoding bytes are provably
    ///    unchanged and the hit is accepted with no memory reads at all.
    /// 2. **Validation path** — otherwise the cached words are compared
    ///    against the live words (read exactly as the decoder would read
    ///    them); a match re-stamps the entry, a mismatch (or a miss) runs
    ///    the decoder and caches the result.
    fn fetch_decode(&mut self, bus: &mut impl Bus, pc0: u16) -> Result<(Insn, u32), CpuFault> {
        let mut live = [0u16; MAX_INSN_WORDS];
        let mut prefetched = 0usize;
        if self.icache_enabled {
            if let Some(entry) = self.icache.lookup(pc0) {
                let len = usize::from(entry.len_words);
                let last = pc0.wrapping_add((entry.len_words - 1) as u16 * 2);
                if let Some(stamp) = entry.stamp {
                    let fresh = match bus.page_generation(pc0) {
                        Some((id, lo)) if id == stamp.id && lo == stamp.lo => {
                            same_gen_page(pc0, last)
                                || bus.page_generation(last) == Some((stamp.id, stamp.hi))
                        }
                        _ => false,
                    };
                    if fresh {
                        self.icache.note_hit();
                        self.regs.set(Reg::PC, pc0.wrapping_add(len as u16 * 2));
                        return Ok((entry.insn, entry.cycles));
                    }
                }
                let mut matched = true;
                for (i, cached) in entry.words.iter().enumerate().take(len) {
                    let w = bus.read_word(pc0.wrapping_add(i as u16 * 2));
                    live[i] = w;
                    prefetched = i + 1;
                    if w != *cached {
                        matched = false;
                        break;
                    }
                }
                if matched {
                    self.icache.note_hit();
                    self.regs.set(Reg::PC, pc0.wrapping_add(len as u16 * 2));
                    self.icache.restamp(pc0, encoding_stamp(bus, pc0, last));
                    return Ok((entry.insn, entry.cycles));
                }
            }
        }
        self.decode_slow(bus, pc0, live, prefetched)
    }

    /// The decode-every-step path. `words[..prefetched]` were already read
    /// by a failed cache validation; instruction length is a function of
    /// the first word alone, so the decoder always consumes at least the
    /// prefetched words and the bus-read sequence stays identical to a pure
    /// uncached decode.
    fn decode_slow(
        &mut self,
        bus: &mut impl Bus,
        pc0: u16,
        words: [u16; MAX_INSN_WORDS],
        prefetched: usize,
    ) -> Result<(Insn, u32), CpuFault> {
        self.icache.note_miss();
        let mut cursor = FetchCursor { bus, pc0, words, prefetched, n: 0 };
        let first = cursor.next_word();
        let insn = Insn::decode(pc0, first, || cursor.next_word())
            .map_err(|err| CpuFault::Decode { at: pc0, err })?;
        let (n, words) = (cursor.n, cursor.words);
        self.regs.set(Reg::PC, pc0.wrapping_add(n as u16 * 2));
        let cycles = insn_cycles(&insn);
        if self.icache_enabled && n > 0 && n <= MAX_INSN_WORDS {
            let last = pc0.wrapping_add((n as u16 - 1) * 2);
            let stamp = encoding_stamp(bus, pc0, last);
            self.icache.insert(pc0, words, n, insn, cycles, stamp);
        }
        Ok((insn, cycles))
    }

    /// Runs until the PC reaches `stop_pc`, the CPU halts/faults, or
    /// `max_steps` is exceeded. Returns the executed steps.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CpuFault`]; hitting `max_steps` is reported as
    /// a fault-free return with `steps.len() == max_steps`.
    pub fn run_until(
        &mut self,
        bus: &mut impl Bus,
        stop_pc: u16,
        max_steps: usize,
    ) -> Result<Vec<Step>, CpuFault> {
        let mut steps = Vec::new();
        while self.regs.pc() != stop_pc && steps.len() < max_steps {
            steps.push(self.step(bus)?);
        }
        Ok(steps)
    }

    fn execute(&mut self, bus: &mut impl Bus, insn: &Insn, acc: &mut AccessBuf) {
        match *insn {
            Insn::Jump { cond, offset } => {
                if self.cond_true(cond) {
                    let pc = self.regs.pc();
                    self.regs.set(Reg::PC, pc.wrapping_add((offset as u16).wrapping_mul(2)));
                }
            }
            Insn::One { op, size, sd } => self.exec_format2(bus, op, size, sd, acc),
            Insn::Two { op, size, src, dst } => self.exec_format1(bus, op, size, src, dst, acc),
        }
    }

    fn cond_true(&self, cond: Cond) -> bool {
        let sr = self.regs.sr();
        let c = sr & flags::C != 0;
        let z = sr & flags::Z != 0;
        let n = sr & flags::N != 0;
        let v = sr & flags::V != 0;
        match cond {
            Cond::Nz => !z,
            Cond::Z => z,
            Cond::Nc => !c,
            Cond::C => c,
            Cond::N => n,
            Cond::Ge => n == v,
            Cond::L => n != v,
            Cond::Always => true,
        }
    }

    /// Resolves an operand to (value, effective address if memory).
    fn read_operand(
        &mut self,
        bus: &mut impl Bus,
        op: Operand,
        size: Size,
        acc: &mut AccessBuf,
    ) -> (u16, Option<u16>) {
        match op {
            Operand::Reg(r) => (self.regs.get(r) & flags::mask(size), None),
            Operand::Imm(v) => (v & flags::mask(size), None),
            Operand::Indexed(r, x) => {
                let ea = self.regs.get(r).wrapping_add(x);
                (self.load(bus, ea, size, acc), Some(ea))
            }
            Operand::Symbolic(a) | Operand::Absolute(a) => (self.load(bus, a, size, acc), Some(a)),
            Operand::Indirect(r) => {
                let ea = self.regs.get(r);
                (self.load(bus, ea, size, acc), Some(ea))
            }
            Operand::IndirectInc(r) => {
                let ea = self.regs.get(r);
                let v = self.load(bus, ea, size, acc);
                self.regs.set(r, ea.wrapping_add(size.bytes()));
                (v, Some(ea))
            }
        }
    }

    fn load(&mut self, bus: &mut impl Bus, ea: u16, size: Size, acc: &mut AccessBuf) -> u16 {
        let (v, word) = match size {
            Size::Word => (bus.read_word(ea), true),
            Size::Byte => (u16::from(bus.read_byte(ea)), false),
        };
        acc.push(Access { addr: ea, kind: AccessKind::Read, value: v, word });
        v
    }

    fn store(&mut self, bus: &mut impl Bus, ea: u16, v: u16, size: Size, acc: &mut AccessBuf) {
        match size {
            Size::Word => bus.write_word(ea, v),
            Size::Byte => bus.write_byte(ea, v as u8),
        }
        acc.push(Access {
            addr: ea,
            kind: AccessKind::Write,
            value: v & flags::mask(size),
            word: size == Size::Word,
        });
    }

    /// Writes back a result to a destination operand (register or memory EA).
    fn write_dst(
        &mut self,
        bus: &mut impl Bus,
        dst: Operand,
        ea: Option<u16>,
        v: u16,
        size: Size,
        acc: &mut AccessBuf,
    ) {
        match dst {
            // Writes to r3 (CG2) are architecturally discarded.
            Operand::Reg(Reg::R3) => {}
            Operand::Reg(r) => match size {
                Size::Word => self.regs.set(r, v),
                Size::Byte => self.regs.set_byte(r, v as u8),
            },
            _ => {
                let ea = ea.expect("memory destination must have an effective address");
                self.store(bus, ea, v, size, acc);
            }
        }
    }

    fn exec_format1(
        &mut self,
        bus: &mut impl Bus,
        op: Op2,
        size: Size,
        src: Operand,
        dst: Operand,
        acc: &mut AccessBuf,
    ) {
        let (s, _) = self.read_operand(bus, src, size, acc);
        // MOV fast path: no destination read, no ALU, no flags — and it is
        // the most frequent instruction in instrumented code (every log
        // entry is a store via MOV).
        if op == Op2::Mov {
            let ea = match dst {
                Operand::Reg(_) => None,
                Operand::Indexed(r, x) => Some(self.regs.get(r).wrapping_add(x)),
                Operand::Symbolic(a) | Operand::Absolute(a) => Some(a),
                _ => None,
            };
            self.write_dst(bus, dst, ea, s, size, acc);
            return;
        }
        // Destination EA is computed after source side effects (@Rn+).
        let (d, ea) = self.read_operand(bus, dst, size, acc);

        let sr = self.regs.sr();
        let carry = sr & flags::C != 0;
        let (out, keep_v) = match op {
            Op2::Mov => unreachable!("handled by the fast path above"),
            Op2::Add => (flags::add(d, s, false, size), false),
            Op2::Addc => (flags::add(d, s, carry, size), false),
            Op2::Sub | Op2::Cmp => (flags::sub(d, s, true, size), false),
            Op2::Subc => (flags::sub(d, s, carry, size), false),
            Op2::Dadd => (flags::dadd(d, s, carry, size), true),
            Op2::Bit | Op2::And => (flags::logic(d & s, size), false),
            Op2::Xor => (flags::xor(d, s, size), false),
            Op2::Bic => {
                (flags::AluOut { value: d & !s, c: false, z: false, n: false, v: false }, false)
            }
            Op2::Bis => {
                (flags::AluOut { value: d | s, c: false, z: false, n: false, v: false }, false)
            }
        };

        if op.writes_dst() {
            self.write_dst(bus, dst, ea, out.value, size, acc);
        }
        if op.sets_flags() {
            // Flags are applied to the (possibly just-written) SR.
            let sr_now = self.regs.sr();
            self.regs.set(Reg::SR, flags::apply(sr_now, &out, keep_v));
        }
    }

    fn exec_format2(
        &mut self,
        bus: &mut impl Bus,
        op: Op1,
        size: Size,
        sd: Operand,
        acc: &mut AccessBuf,
    ) {
        match op {
            Op1::Reti => {
                let mut sp = self.regs.sp();
                let sr = bus.read_word(sp);
                acc.push(Access { addr: sp, kind: AccessKind::Read, value: sr, word: true });
                sp = sp.wrapping_add(2);
                let pc = bus.read_word(sp);
                acc.push(Access { addr: sp, kind: AccessKind::Read, value: pc, word: true });
                sp = sp.wrapping_add(2);
                self.regs.set(Reg::SR, sr);
                self.regs.set(Reg::SP, sp);
                self.regs.set(Reg::PC, pc);
            }
            Op1::Push => {
                let (v, _) = self.read_operand(bus, sd, size, acc);
                let sp = self.regs.sp().wrapping_sub(2);
                self.regs.set(Reg::SP, sp);
                // push.b still moves SP by 2 but stores a byte.
                self.store(bus, sp, v, size, acc);
            }
            Op1::Call => {
                let (target, _) = self.read_operand(bus, sd, Size::Word, acc);
                let sp = self.regs.sp().wrapping_sub(2);
                self.regs.set(Reg::SP, sp);
                let ret = self.regs.pc();
                self.store(bus, sp, ret, Size::Word, acc);
                self.regs.set(Reg::PC, target);
            }
            Op1::Rrc | Op1::Rra | Op1::Swpb | Op1::Sxt => {
                let (v, ea) = self.read_operand(bus, sd, size, acc);
                let sr = self.regs.sr();
                let carry_in = sr & flags::C != 0;
                let sign = flags::sign_bit(size);
                let (result, out): (u16, Option<flags::AluOut>) = match op {
                    Op1::Rrc => {
                        let r = (v >> 1) | if carry_in { sign } else { 0 };
                        let o = flags::AluOut {
                            value: r & flags::mask(size),
                            c: v & 1 != 0,
                            z: r & flags::mask(size) == 0,
                            n: r & sign != 0,
                            v: false,
                        };
                        (o.value, Some(o))
                    }
                    Op1::Rra => {
                        let r = (v >> 1) | (v & sign);
                        let o = flags::AluOut {
                            value: r & flags::mask(size),
                            c: v & 1 != 0,
                            z: r & flags::mask(size) == 0,
                            n: r & sign != 0,
                            v: false,
                        };
                        (o.value, Some(o))
                    }
                    Op1::Swpb => (v.rotate_left(8), None),
                    Op1::Sxt => {
                        let r = if v & 0x80 != 0 { v | 0xFF00 } else { v & 0x00FF };
                        (r, Some(flags::logic(r, Size::Word)))
                    }
                    _ => unreachable!(),
                };
                // Write back to the same place (register or memory EA).
                match sd {
                    Operand::Reg(Reg::R3) => {}
                    Operand::Reg(r) => match size {
                        Size::Word => self.regs.set(r, result),
                        Size::Byte => self.regs.set_byte(r, result as u8),
                    },
                    Operand::Imm(_) => {} // e.g. `rrc #4` — result discarded
                    _ => {
                        let ea = ea.expect("memory operand has EA");
                        // SXT result is a word even for byte-addressed input.
                        let wsize = if op == Op1::Sxt { Size::Word } else { size };
                        self.store(bus, ea, result, wsize, acc);
                    }
                }
                if let Some(o) = out {
                    let sr_now = self.regs.sr();
                    self.regs.set(Reg::SR, flags::apply(sr_now, &o, false));
                }
            }
        }
    }
}

/// True when `insn` must terminate a superblock: it may redirect control
/// flow, or write SR.
///
/// SR writes matter because `step_into` samples CPUOFF (halt) and GIE
/// (interrupt window) only at step boundaries, and a block skips those
/// per-step samples. `flags::apply` never touches either bit, so an
/// explicit SR destination or RETI are the *only* instructions that can
/// flip them — ending blocks there makes the block-entry halt/IRQ check
/// exactly as fine-grained as the per-step one.
///
/// `One`-format ALU ops with a PC destination (`rrc pc` et al.) are caught
/// here too: they redirect control flow but predate
/// [`Insn::alters_control_flow`]'s Format-I-only PC check.
fn ends_block(insn: &Insn) -> bool {
    if insn.alters_control_flow() {
        return true;
    }
    match *insn {
        Insn::One {
            op: Op1::Rrc | Op1::Rra | Op1::Swpb | Op1::Sxt,
            sd: Operand::Reg(Reg::R0 | Reg::R2),
            ..
        } => true,
        Insn::Two { op, dst: Operand::Reg(Reg::R2), .. } => op.writes_dst(),
        _ => false,
    }
}

/// True when `a` and `b` fall in the same bus write-generation page.
#[inline]
fn same_gen_page(a: u16, b: u16) -> bool {
    usize::from(a) / crate::mem::GEN_PAGE_BYTES == usize::from(b) / crate::mem::GEN_PAGE_BYTES
}

/// Builds the generation stamp covering an encoding spanning `pc0..=last`
/// (inclusive of `last`'s word), or `None` when the bus tracks no
/// generations for either end.
#[inline]
fn encoding_stamp(bus: &impl Bus, pc0: u16, last: u16) -> Option<Stamp> {
    let (id, lo) = bus.page_generation(pc0)?;
    let hi = if same_gen_page(pc0, last) {
        lo
    } else {
        let (id2, hi) = bus.page_generation(last)?;
        if id2 != id {
            return None;
        }
        hi
    };
    Some(Stamp { id, lo, hi })
}

/// Instruction-stream word source for the slow decode path: replays words
/// already read by a failed cache validation, then fetches further words
/// from the bus.
struct FetchCursor<'a, B: Bus> {
    bus: &'a mut B,
    pc0: u16,
    words: [u16; MAX_INSN_WORDS],
    prefetched: usize,
    n: usize,
}

impl<B: Bus> FetchCursor<'_, B> {
    fn next_word(&mut self) -> u16 {
        let i = self.n;
        self.n += 1;
        if i < self.prefetched {
            return self.words[i];
        }
        let w = self.bus.read_word(self.pc0.wrapping_add(i as u16 * 2));
        if i < MAX_INSN_WORDS {
            self.words[i] = w;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Ram;

    /// Assembles a tiny program with the encoder and runs it.
    fn run(words: &[u16], steps: usize) -> (Cpu, Ram) {
        let mut ram = Ram::new();
        ram.load_words(0xE000, words);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        cpu.set_reg(Reg::SP, 0x0A00);
        for _ in 0..steps {
            cpu.step(&mut ram).expect("step ok");
        }
        (cpu, ram)
    }

    #[test]
    fn mov_imm_and_add() {
        // mov #21, r10 ; add r10, r10
        let (cpu, _) = run(&[0x403A, 0x0015, 0x5A0A], 2);
        assert_eq!(cpu.reg(Reg::R10), 42);
    }

    #[test]
    fn call_and_ret() {
        // 0xE000: call #0xE008
        // 0xE004: jmp .        (landing point after return)
        // 0xE006: (pad)
        // 0xE008: ret
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x12B0, 0xE008, 0x3FFF, 0x4303, 0x4130]);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        cpu.set_reg(Reg::SP, 0x0A00);
        let s1 = cpu.step(&mut ram).unwrap(); // call
        assert_eq!(cpu.pc(), 0xE008);
        assert_eq!(cpu.reg(Reg::SP), 0x09FE);
        assert_eq!(ram.read_word(0x09FE), 0xE004);
        assert_eq!(s1.cycles, 5);
        let s2 = cpu.step(&mut ram).unwrap(); // ret
        assert_eq!(cpu.pc(), 0xE004);
        assert_eq!(cpu.reg(Reg::SP), 0x0A00);
        assert_eq!(s2.cycles, 3);
    }

    #[test]
    fn push_pop_word() {
        // mov #0x1234, r5 ; push r5 ; mov @sp+, r6 (pop r6)
        let (cpu, _) = run(&[0x4035, 0x1234, 0x1205, 0x4136], 3);
        assert_eq!(cpu.reg(Reg::R6), 0x1234);
        assert_eq!(cpu.reg(Reg::SP), 0x0A00);
    }

    #[test]
    fn conditional_jump_taken_and_not() {
        // mov #1, r5 ; cmp #1, r5 ; jz +4 (skip next) ; mov #0xDEAD, r6 ; mov #7, r7
        let prog = [
            0x4315, // mov #1, r5
            0x9315, // cmp #1, r5
            0x2402, // jz skip two words
            0x4036, 0xDEAD, // mov #0xDEAD, r6
            0x4037, 0x0007, // mov #7, r7
        ];
        let (cpu, _) = run(&prog, 4);
        assert_eq!(cpu.reg(Reg::R6), 0, "skipped");
        assert_eq!(cpu.reg(Reg::R7), 7);
    }

    #[test]
    fn byte_op_clears_high_byte_in_register() {
        // mov #0xBEEF, r5 ; mov.b r5, r6
        let (cpu, _) = run(&[0x4035, 0xBEEF, 0x4546], 2);
        assert_eq!(cpu.reg(Reg::R6), 0x00EF);
    }

    #[test]
    fn autoincrement_word_and_byte() {
        // mov #0x0200, r15 ; mov @r15+, r5 ; mov.b @r15+, r6
        let mut ram = Ram::new();
        ram.load_words(0x0200, &[0xCAFE]);
        ram.load_bytes(0x0202, &[0x7A]);
        ram.load_words(0xE000, &[0x403F, 0x0200, 0x4F35, 0x4F76]);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        cpu.step(&mut ram).unwrap();
        cpu.step(&mut ram).unwrap();
        assert_eq!(cpu.reg(Reg::R5), 0xCAFE);
        assert_eq!(cpu.reg(Reg::R15), 0x0202);
        cpu.step(&mut ram).unwrap();
        assert_eq!(cpu.reg(Reg::R6), 0x007A);
        assert_eq!(cpu.reg(Reg::R15), 0x0203);
    }

    #[test]
    fn indexed_store_and_load() {
        // mov #0x0300, r4 ; mov #0xABCD, r5 ; mov r5, 4(r4) ; mov 4(r4), r6
        let prog = [
            0x4034, 0x0300, // mov #0x300, r4
            0x4035, 0xABCD, // mov #0xABCD, r5
            0x4584, 0x0004, // mov r5, 4(r4)
            0x4416, 0x0004, // mov 4(r4), r6
        ];
        let (cpu, ram) = run(&prog, 4);
        let mut ram = ram;
        assert_eq!(ram.read_word(0x0304), 0xABCD);
        assert_eq!(cpu.reg(Reg::R6), 0xABCD);
    }

    #[test]
    fn symbolic_load_is_pc_relative() {
        // 0xE000: mov DATA, r5   (symbolic; DATA at 0xE006)
        // 0xE004: jmp .
        // 0xE006: .word 0x5555
        let i = Insn::Two {
            op: Op2::Mov,
            size: Size::Word,
            src: Operand::Symbolic(0xE006),
            dst: Operand::Reg(Reg::R5),
        };
        let mut words = i.encode(0xE000).unwrap();
        words.push(0x3FFF);
        words.push(0x5555);
        let (cpu, _) = run(&words, 1);
        assert_eq!(cpu.reg(Reg::R5), 0x5555);
    }

    #[test]
    fn br_via_mov_to_pc() {
        // mov #0xE006, pc ; (dead) ; mov #9, r5
        let prog = [0x4030, 0xE006, 0x4303, 0x4035, 0x0009];
        let mut ram = Ram::new();
        ram.load_words(0xE000, &prog);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        let s = cpu.step(&mut ram).unwrap();
        assert_eq!(cpu.pc(), 0xE006);
        assert_eq!(s.cycles, 3); // #N → PC
        cpu.step(&mut ram).unwrap();
        assert_eq!(cpu.reg(Reg::R5), 9);
    }

    #[test]
    fn sr_cpuoff_halts() {
        // bis #0x10, sr  → CPUOFF
        let (mut cpu, mut ram) = run(&[0xD032, 0x0010], 1);
        assert!(cpu.halted());
        assert!(matches!(cpu.step(&mut ram), Err(CpuFault::Halted)));
    }

    #[test]
    fn irq_entry_and_reti() {
        // main: bis #8, sr (GIE) ; nop-ish loop. ISR at 0xF000: reti.
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0xD232, 0x4303, 0x4303, 0x4303]); // bis #8,sr ; nops
        ram.load_words(0xF000, &[0x1300]); // reti
        ram.load_words(0xFFE0 + 2 * 9, &[0xF000]); // vector 9
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        cpu.set_reg(Reg::SP, 0x0A00);
        cpu.step(&mut ram).unwrap(); // GIE on
        cpu.raise_irq(9);
        let s = cpu.step(&mut ram).unwrap();
        assert_eq!(s.irq, Some(9));
        assert_eq!(cpu.pc(), 0xF000);
        assert_eq!(s.cycles, 6);
        assert!(!cpu.flag(flags::GIE), "GIE cleared on entry");
        let s = cpu.step(&mut ram).unwrap(); // reti
        assert_eq!(cpu.pc(), 0xE002);
        assert!(cpu.flag(flags::GIE), "GIE restored");
        assert_eq!(s.cycles, 5);
        assert_eq!(cpu.reg(Reg::SP), 0x0A00);
    }

    #[test]
    fn irq_held_pending_while_gie_clear() {
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x4303, 0x4303]);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        cpu.raise_irq(3);
        let s = cpu.step(&mut ram).unwrap();
        assert_eq!(s.irq, None, "masked while GIE clear");
        assert_eq!(cpu.pc(), 0xE002);
    }

    #[test]
    fn decode_fault_reports_address() {
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x0000]);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        match cpu.step(&mut ram) {
            Err(CpuFault::Decode { at, .. }) => assert_eq!(at, 0xE000),
            other => panic!("expected decode fault, got {other:?}"),
        }
    }

    #[test]
    fn rrc_uses_and_sets_carry() {
        // setc (bis #1, sr) ; mov #2, r5 ; rrc r5
        let (cpu, _) = run(&[0xD312, 0x4325, 0x1005], 3);
        // carry-in 1 → msb set; bit0 of 2 = 0 → carry-out clear.
        assert_eq!(cpu.reg(Reg::R5), 0x8001);
        assert!(!cpu.flag(flags::C));
        assert!(cpu.flag(flags::N));
    }

    #[test]
    fn rra_preserves_sign() {
        // mov #0x8004, r5 ; rra r5
        let (cpu, _) = run(&[0x4035, 0x8004, 0x1105], 2);
        assert_eq!(cpu.reg(Reg::R5), 0xC002);
        assert!(cpu.flag(flags::N));
    }

    #[test]
    fn swpb_and_sxt() {
        // mov #0x1280, r5 ; swpb r5 ; sxt r5
        let (cpu, _) = run(&[0x4035, 0x1280, 0x1085, 0x1185], 3);
        // swpb → 0x8012; sxt of low byte 0x12 → 0x0012.
        assert_eq!(cpu.reg(Reg::R5), 0x0012);
    }

    #[test]
    fn dadd_bcd() {
        // clrc? use mov #0, sr ; mov #0x0199, r5 ; mov #0x0001, r6 ; dadd r5, r6
        let prog = [
            0x4302, // mov #0, sr
            0x4035, 0x0199, // mov #0x0199, r5
            0x4316, // mov #1, r6
            0xA506, // dadd r5, r6
        ];
        let (cpu, _) = run(&prog, 4);
        assert_eq!(cpu.reg(Reg::R6), 0x0200);
    }

    #[test]
    fn writes_to_r3_are_discarded() {
        // mov #0x1234, r3 — r3 must stay 0 (constant generator).
        let (cpu, _) = run(&[0x4033, 0x1234], 1);
        assert_eq!(cpu.reg(Reg::R3), 0);
    }

    #[test]
    fn step_reports_accesses() {
        // mov #0xAA55, &0x0200
        let (_, _) = run(&[], 0);
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x40B2, 0xAA55, 0x0200]);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        let s = cpu.step(&mut ram).unwrap();
        let fetches = s.accesses.iter().filter(|a| a.kind == AccessKind::Fetch).count();
        assert_eq!(fetches, 0, "fetches are implied by pc+insn, not recorded");
        let writes: Vec<_> = s.writes().collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].addr, 0x0200);
        assert_eq!(writes[0].value, 0xAA55);
        assert_eq!(s.cycles, 5);
    }

    #[test]
    fn icache_hits_on_reexecution() {
        // add r10, r10 executed twice from the same address: miss then hit.
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x5A0A]);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        cpu.step(&mut ram).unwrap();
        assert_eq!(cpu.icache_stats().hits, 0);
        assert_eq!(cpu.icache_stats().misses, 1);
        cpu.set_pc(0xE000);
        let s = cpu.step(&mut ram).unwrap();
        assert_eq!(cpu.icache_stats().hits, 1);
        assert_eq!(s.cycles, 1);
        assert!(s.accesses.is_empty(), "register-only insn performs no data access");
    }

    #[test]
    fn self_modifying_code_forces_redecode() {
        // Cache `mov #1, r5` at 0xE006, then execute the store at 0xE000
        // that overwrites it with `mov #2, r6`; re-running 0xE006 must
        // execute the *new* instruction.
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x40B2, 0x4326, 0xE006]); // mov #0x4326, &0xE006
        ram.load_words(0xE006, &[0x4315]); // mov #1, r5
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE006);
        cpu.step(&mut ram).unwrap(); // caches 0xE006 as `mov #1, r5`
        assert_eq!(cpu.reg(Reg::R5), 1);

        cpu.set_pc(0xE000);
        cpu.step(&mut ram).unwrap(); // the CPU itself patches 0xE006
        assert_eq!(ram.read_word(0xE006), 0x4326);

        let misses_before = cpu.icache_stats().misses;
        cpu.set_pc(0xE006);
        let s = cpu.step(&mut ram).unwrap();
        assert_eq!(cpu.reg(Reg::R6), 2, "new instruction must execute");
        assert_eq!(
            s.insn,
            Some(Insn::Two {
                op: Op2::Mov,
                size: Size::Word,
                src: Operand::Imm(2),
                dst: Operand::Reg(Reg::R6),
            })
        );
        assert!(cpu.icache_stats().misses > misses_before, "stale entry must re-decode");
    }

    #[test]
    fn external_write_to_code_forces_redecode() {
        // Mutation that bypasses the CPU entirely (DMA / debugger / image
        // reload): validation on hit still catches it.
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x5A0A]); // add r10, r10
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::R10, 21);
        cpu.set_pc(0xE000);
        cpu.step(&mut ram).unwrap();
        assert_eq!(cpu.reg(Reg::R10), 42);
        ram.load_words(0xE000, &[0x4A0B]); // mov r10, r11
        cpu.set_pc(0xE000);
        let s = cpu.step(&mut ram).unwrap();
        assert_eq!(cpu.reg(Reg::R10), 42, "old add must not run again");
        assert_eq!(cpu.reg(Reg::R11), 42);
        assert!(matches!(s.insn, Some(Insn::Two { op: Op2::Mov, .. })));
    }

    #[test]
    fn write_straddling_last_byte_of_cached_insn_forces_redecode() {
        // `mov #0xAA55, &0x0200` is three words (0xE000..=0xE005). After
        // caching it, rewrite only its LAST byte (0xE005, the high byte of
        // the destination address): re-execution must store to the new
        // destination, not the cached one.
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x40B2, 0xAA55, 0x0200]);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        cpu.step(&mut ram).unwrap();
        assert_eq!(ram.read_word(0x0200), 0xAA55);

        ram.load_bytes(0xE005, &[0x03]); // &0x0200 → &0x0300
        cpu.set_pc(0xE000);
        let s = cpu.step(&mut ram).unwrap();
        assert_eq!(ram.read_word(0x0300), 0xAA55, "store must follow the patched operand");
        let w: Vec<_> = s.writes().collect();
        assert_eq!(w[0].addr, 0x0300);
        assert_eq!(cpu.icache_stats().hits, 0, "a straddled patch can never hit");
    }

    #[test]
    fn disabled_icache_never_hits() {
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x5A0A, 0x3FFE]); // add ; jmp -2
        let mut cpu = Cpu::new();
        cpu.set_icache_enabled(false);
        assert!(!cpu.icache_enabled());
        cpu.set_pc(0xE000);
        for _ in 0..10 {
            cpu.step(&mut ram).unwrap();
        }
        assert_eq!(cpu.icache_stats().hits, 0);
        assert_eq!(cpu.icache_stats().misses, 10);
    }

    #[test]
    fn flush_icache_drops_entries() {
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x5A0A]);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        cpu.step(&mut ram).unwrap();
        cpu.flush_icache();
        cpu.set_pc(0xE000);
        cpu.step(&mut ram).unwrap();
        assert_eq!(cpu.icache_stats().hits, 0);
        assert_eq!(cpu.icache_stats().misses, 2);
    }

    #[test]
    fn step_into_reuses_one_step() {
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x403A, 0x0015, 0x5A0A]); // mov #21, r10 ; add r10, r10
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        let mut step = Step::default();
        cpu.step_into(&mut ram, &mut step).unwrap();
        assert_eq!(step.pc, 0xE000);
        assert_eq!(step.insn.unwrap().len_words(), 2);
        cpu.step_into(&mut ram, &mut step).unwrap();
        assert_eq!(step.pc, 0xE004, "step must be fully refilled");
        assert!(step.accesses.is_empty(), "stale accesses must be cleared");
        assert_eq!(cpu.reg(Reg::R10), 42);
    }

    #[test]
    fn cloned_cpu_starts_cold_but_behaves_identically() {
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x5A0A]);
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::R10, 3);
        cpu.set_pc(0xE000);
        cpu.step(&mut ram).unwrap();
        cpu.set_pc(0xE000);
        let mut fork = cpu.clone();
        let a = cpu.step(&mut ram).unwrap();
        let b = fork.step(&mut ram).unwrap();
        assert_eq!(a, b);
        assert_eq!(fork.icache_stats().hits, 0, "clone starts with a cold cache");
    }

    /// Drives `cpu` for exactly `steps` instructions through the block
    /// dispatcher, collecting every observed step.
    fn drive_blocks(cpu: &mut Cpu, ram: &mut Ram, steps: usize) -> Vec<Step> {
        let mut out = Vec::new();
        let mut step = Step::default();
        let mut left = steps;
        while left > 0 {
            let n = cpu
                .step_block_into(ram, 0xFFFF, left, &mut step, |_, _, s| out.push(*s))
                .expect("block step ok");
            left -= n;
        }
        out
    }

    #[test]
    fn superblock_dispatch_matches_step_into() {
        // Busy loop: add ; store ; load ; jmp — the block core and a plain
        // step_into core must produce identical step streams and state.
        let words = [0x5A0A, 0x4A82, 0x0200, 0x4211, 0x0200, 0x3FFA];
        let mut ram_a = Ram::new();
        ram_a.load_words(0xE000, &words);
        let mut ram_b = ram_a.clone();
        let mut a = Cpu::new();
        let mut b = Cpu::new();
        for cpu in [&mut a, &mut b] {
            cpu.set_pc(0xE000);
            cpu.set_reg(Reg::R10, 1);
        }
        let blocked = drive_blocks(&mut a, &mut ram_a, 100);
        let mut step = Step::default();
        for s in &blocked {
            b.step_into(&mut ram_b, &mut step).unwrap();
            assert_eq!(s, &step);
        }
        assert_eq!(a.regs, b.regs);
        assert_eq!(ram_a.as_slice(), ram_b.as_slice());
        if !superblocks_forced_off() {
            let st = a.superblock_stats();
            assert!(st.hits > 0, "looping program must reuse its blocks: {st:?}");
            assert_eq!(st.restitches, 0);
        }
    }

    #[test]
    fn insn_straddling_page_boundary_inside_block_revalidates() {
        if superblocks_forced_off() {
            return;
        }
        // Block entered at 0xE3F8; the `mov #imm, r7` at 0xE3FE keeps its
        // extension word at 0xE400 — the *next* generation page. Patching
        // that word must force a re-stitch even though the entry page is
        // untouched.
        let mut ram = Ram::new();
        ram.load_words(0xE3F8, &[0x4315, 0x4326, 0x4303, 0x4037, 0x1234]);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE3F8);
        let steps = drive_blocks(&mut cpu, &mut ram, 4);
        assert_eq!(steps.len(), 4);
        assert_eq!(cpu.reg(Reg::R7), 0x1234);
        assert_eq!(cpu.superblock_stats().misses, 1);

        ram.load_words(0xE400, &[0x5678]); // patch the straddled word
        cpu.set_pc(0xE3F8);
        drive_blocks(&mut cpu, &mut ram, 4);
        assert_eq!(cpu.reg(Reg::R7), 0x5678, "patched immediate must be used");
        assert_eq!(cpu.superblock_stats().restitches, 1);
    }

    #[test]
    fn store_into_own_page_mid_block_exits_early() {
        if superblocks_forced_off() {
            return;
        }
        // The first instruction patches the second one (same code page,
        // same block). The block must stop after the store so the patched
        // instruction — not the stitched copy — executes next.
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x40B2, 0x4326, 0xE006]); // mov #0x4326, &0xE006
        ram.load_words(0xE006, &[0x4315]); // mov #1, r5 (about to be patched)
        ram.load_words(0xE008, &[0x4303]); // nop
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        let mut step = Step::default();
        let n = cpu.step_block_into(&mut ram, 0xFFFF, 10, &mut step, |_, _, _| {}).unwrap();
        assert_eq!(n, 1, "block must exit right after the self-patching store");
        assert_eq!(cpu.pc(), 0xE006);
        let n = cpu.step_block_into(&mut ram, 0xFFFF, 10, &mut step, |_, _, _| {}).unwrap();
        assert!(n >= 1);
        assert_eq!(cpu.reg(Reg::R5), 0, "stitched-but-stale insn must not run");
        assert_eq!(cpu.reg(Reg::R6), 2, "patched insn must run");
    }

    #[test]
    fn break_is_allowed_on_entry_pc_but_splits_mid_block() {
        if superblocks_forced_off() {
            return;
        }
        // Break addresses at 0xE000 (an entry — allowed inside its own
        // block) and 0xE004 (must split the straight line).
        let mut ram = Ram::new();
        // mov #1, r5 ; mov #2, r6 ; mov r5, r7 ; jmp 0xE000
        ram.load_words(0xE000, &[0x4315, 0x4326, 0x4507, 0x3FFC]);
        let mut breaks = BlockBreaks::new();
        breaks.insert(0xE000);
        breaks.insert(0xE004);
        let mut cpu = Cpu::new();
        cpu.set_block_breaks(Some(Arc::new(breaks)));
        cpu.set_pc(0xE000);
        let mut step = Step::default();
        let n1 = cpu.step_block_into(&mut ram, 0xFFFF, 100, &mut step, |_, _, _| {}).unwrap();
        assert_eq!(n1, 2, "block must end before the 0xE004 break");
        assert_eq!(cpu.pc(), 0xE004);
        let n2 = cpu.step_block_into(&mut ram, 0xFFFF, 100, &mut step, |_, _, _| {}).unwrap();
        assert_eq!(n2, 2, "a break on the entry PC itself does not shrink the block");
        assert_eq!(cpu.pc(), 0xE000);
        assert_eq!((cpu.reg(Reg::R5), cpu.reg(Reg::R6), cpu.reg(Reg::R7)), (1, 2, 1));
        // Second loop iteration is served from the cache.
        drive_blocks(&mut cpu, &mut ram, 4);
        assert!(cpu.superblock_stats().hits >= 2);
    }

    #[test]
    fn changing_break_set_flushes_blocks() {
        if superblocks_forced_off() {
            return;
        }
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x5A0A, 0x3FFE]); // add ; jmp -2
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        drive_blocks(&mut cpu, &mut ram, 10);
        let before = cpu.superblock_stats();
        assert!(before.hits > 0);
        cpu.set_block_breaks(Some(Arc::new(BlockBreaks::new())));
        drive_blocks(&mut cpu, &mut ram, 10);
        assert!(cpu.superblock_stats().misses > before.misses, "flush must force a re-stitch");
    }

    #[test]
    fn disabled_superblocks_fall_back_to_single_steps() {
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x5A0A, 0x3FFE]);
        let mut cpu = Cpu::new();
        cpu.set_superblocks_enabled(false);
        assert!(!cpu.superblocks_enabled());
        cpu.set_pc(0xE000);
        let mut step = Step::default();
        for _ in 0..10 {
            let n = cpu.step_block_into(&mut ram, 0xFFFF, 100, &mut step, |_, _, _| {}).unwrap();
            assert_eq!(n, 1, "disabled dispatch degrades to one step per call");
        }
        assert_eq!(cpu.superblock_stats(), SuperblockStats::default());
    }

    #[test]
    fn block_path_services_interrupts_like_step_into() {
        let mut ram_a = Ram::new();
        ram_a.load_words(0xE000, &[0xD232, 0x4303, 0x4303, 0x4303]); // bis #8,sr ; nops
        ram_a.load_words(0xF000, &[0x1300]); // reti
        ram_a.load_words(0xFFE0 + 2 * 9, &[0xF000]); // vector 9
        let mut ram_b = ram_a.clone();
        let mut a = Cpu::new();
        let mut b = Cpu::new();
        for cpu in [&mut a, &mut b] {
            cpu.set_pc(0xE000);
            cpu.set_reg(Reg::SP, 0x0A00);
        }
        // `bis #8, sr` writes SR, so it terminates its block; the pending
        // IRQ is then taken at the next dispatch, exactly like step_into.
        let blocked = {
            a.raise_irq(9);
            drive_blocks(&mut a, &mut ram_a, 4)
        };
        b.raise_irq(9);
        let mut step = Step::default();
        for s in &blocked {
            b.step_into(&mut ram_b, &mut step).unwrap();
            assert_eq!(s, &step);
        }
        assert_eq!(blocked[1].irq, Some(9), "IRQ entry must follow the GIE-setting insn");
        assert_eq!(a.regs, b.regs);
    }

    #[test]
    fn stop_pc_mid_block_halts_dispatch_before_the_instruction() {
        if superblocks_forced_off() {
            return;
        }
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x4315, 0x4326, 0x4337, 0x4303]); // 4 straight movs
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        let mut step = Step::default();
        let n = cpu.step_block_into(&mut ram, 0xE004, 100, &mut step, |_, _, _| {}).unwrap();
        assert_eq!(n, 2, "dispatch must stop before the stop_pc instruction");
        assert_eq!(cpu.pc(), 0xE004);
        assert_eq!(cpu.reg(Reg::R7), 0, "the stop_pc instruction must not execute");
    }

    #[test]
    fn run_until_stops_at_address() {
        // mov #1, r5 ; mov #2, r6 ; jmp .
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x4315, 0x4326, 0x3FFF]);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        let steps = cpu.run_until(&mut ram, 0xE004, 100).unwrap();
        assert_eq!(steps.len(), 2);
        assert_eq!(cpu.pc(), 0xE004);
    }
}
