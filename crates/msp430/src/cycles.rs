//! Instruction timing per the MSP430x1xx family user's guide (SLAU049),
//! the family the openMSP430 core used by VRASED/APEX/DIALED implements.
//!
//! Cycle counts depend only on the instruction format and the source /
//! destination addressing modes (Tables 3-14 … 3-16 of the guide). The
//! Fig. 6(b) runtime numbers of the paper are sums over this table, so the
//! table being right matters more than wall-clock simulator speed.

use crate::isa::{Insn, Op1, Op2, Operand};
use crate::regs::Reg;

/// Cycles consumed by taking an interrupt (push PC, push SR, vector fetch).
pub const IRQ_CYCLES: u32 = 6;

/// Source addressing-mode class for timing purposes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SrcClass {
    Reg,
    Indirect,
    IndirectInc,
    Imm,
    Mem, // indexed / symbolic / absolute
}

fn src_class(op: &Operand) -> SrcClass {
    match op {
        Operand::Reg(_) => SrcClass::Reg,
        Operand::Indirect(_) => SrcClass::Indirect,
        Operand::IndirectInc(_) => SrcClass::IndirectInc,
        Operand::Imm(v) => {
            // Constant-generator immediates time like register operands.
            if matches!(v, 0 | 1 | 2 | 4 | 8 | 0xFFFF) {
                SrcClass::Reg
            } else {
                SrcClass::Imm
            }
        }
        _ => SrcClass::Mem,
    }
}

/// Cycles for one instruction (not counting any interrupt entry).
#[must_use]
pub fn insn_cycles(insn: &Insn) -> u32 {
    match insn {
        Insn::Jump { .. } => 2,
        Insn::One { op, sd, .. } => format2_cycles(*op, sd),
        Insn::Two { op, src, dst, .. } => format1_cycles(*op, src, dst),
    }
}

fn format2_cycles(op: Op1, sd: &Operand) -> u32 {
    let c = src_class(sd);
    match op {
        Op1::Reti => 5,
        Op1::Rrc | Op1::Rra | Op1::Swpb | Op1::Sxt => match c {
            SrcClass::Reg => 1,
            SrcClass::Indirect | SrcClass::IndirectInc => 3,
            SrcClass::Imm => 3, // not architecturally meaningful; defensive
            SrcClass::Mem => 4,
        },
        Op1::Push => match c {
            SrcClass::Reg => 3,
            SrcClass::Indirect => 4,
            SrcClass::IndirectInc => 4,
            SrcClass::Imm => 4,
            SrcClass::Mem => 5,
        },
        Op1::Call => match c {
            SrcClass::Reg => 4,
            SrcClass::Indirect => 4,
            SrcClass::IndirectInc => 5,
            SrcClass::Imm => 5,
            SrcClass::Mem => 5,
        },
    }
}

fn format1_cycles(op: Op2, src: &Operand, dst: &Operand) -> u32 {
    let dst_is_pc = matches!(dst, Operand::Reg(Reg::R0));
    let dst_is_reg = matches!(dst, Operand::Reg(_));
    let base = match (src_class(src), dst_is_reg) {
        (SrcClass::Reg, true) => {
            if dst_is_pc {
                2
            } else {
                1
            }
        }
        (SrcClass::Indirect, true) => 2,
        (SrcClass::IndirectInc, true) => {
            if dst_is_pc {
                3
            } else {
                2
            }
        }
        (SrcClass::Imm, true) => {
            if dst_is_pc {
                3
            } else {
                2
            }
        }
        (SrcClass::Mem, true) => 3,
        (SrcClass::Reg, false) => 4,
        (SrcClass::Indirect, false) => 5,
        (SrcClass::IndirectInc, false) => 5,
        (SrcClass::Imm, false) => 5,
        (SrcClass::Mem, false) => 6,
    };
    // CMP and BIT never write the destination; the x2xx guide documents one
    // fewer cycle for memory destinations, and openMSP430 matches.
    if !op.writes_dst() && !dst_is_reg {
        base - 1
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, Size};

    fn two(op: Op2, src: Operand, dst: Operand) -> Insn {
        Insn::Two { op, size: Size::Word, src, dst }
    }

    #[test]
    fn user_guide_format1_rows() {
        use Operand::*;
        // Rn → Rm: 1
        assert_eq!(insn_cycles(&two(Op2::Mov, Reg(crate::Reg::R5), Reg(crate::Reg::R6))), 1);
        // Rn → PC: 2 (br r5)
        assert_eq!(insn_cycles(&two(Op2::Mov, Reg(crate::Reg::R5), Reg(crate::Reg::R0))), 2);
        // @Rn → Rm: 2
        assert_eq!(insn_cycles(&two(Op2::Mov, Indirect(crate::Reg::R5), Reg(crate::Reg::R6))), 2);
        // @Rn+ → PC: 3 (ret)
        assert_eq!(
            insn_cycles(&two(Op2::Mov, IndirectInc(crate::Reg::R1), Reg(crate::Reg::R0))),
            3
        );
        // #N → Rm: 2
        assert_eq!(insn_cycles(&two(Op2::Mov, Imm(0x1234), Reg(crate::Reg::R6))), 2);
        // constant-generator #1 → Rm times like a register op: 1
        assert_eq!(insn_cycles(&two(Op2::Add, Imm(1), Reg(crate::Reg::R6))), 1);
        // x(Rn) → Rm: 3
        assert_eq!(insn_cycles(&two(Op2::Mov, Indexed(crate::Reg::R5, 2), Reg(crate::Reg::R6))), 3);
        // Rn → x(Rm): 4
        assert_eq!(insn_cycles(&two(Op2::Mov, Reg(crate::Reg::R5), Indexed(crate::Reg::R6, 2))), 4);
        // #N → &EDE: 5
        assert_eq!(insn_cycles(&two(Op2::Mov, Imm(0x1234), Absolute(0x200))), 5);
        // &EDE → &EDE: 6
        assert_eq!(insn_cycles(&two(Op2::Mov, Absolute(0x200), Absolute(0x202))), 6);
        // cmp #imm, x(Rm): one fewer (no write-back)
        assert_eq!(insn_cycles(&two(Op2::Cmp, Imm(0x1234), Indexed(crate::Reg::R6, 2))), 4);
    }

    #[test]
    fn user_guide_format2_rows() {
        use Operand::*;
        let one = |op, sd| Insn::One { op, size: Size::Word, sd };
        assert_eq!(insn_cycles(&one(Op1::Rra, Reg(crate::Reg::R5))), 1);
        assert_eq!(insn_cycles(&one(Op1::Rra, Indirect(crate::Reg::R5))), 3);
        assert_eq!(insn_cycles(&one(Op1::Rra, Indexed(crate::Reg::R5, 4))), 4);
        assert_eq!(insn_cycles(&one(Op1::Push, Reg(crate::Reg::R15))), 3);
        assert_eq!(insn_cycles(&one(Op1::Push, Imm(0x1234))), 4);
        assert_eq!(insn_cycles(&one(Op1::Call, Imm(0xF000))), 5);
        assert_eq!(insn_cycles(&one(Op1::Call, Reg(crate::Reg::R5))), 4);
        assert_eq!(insn_cycles(&one(Op1::Reti, Reg(crate::Reg::R3))), 5);
    }

    #[test]
    fn jumps_always_two_cycles() {
        for cond in [Cond::Nz, Cond::Z, Cond::Always] {
            assert_eq!(insn_cycles(&Insn::Jump { cond, offset: 10 }), 2);
        }
    }
}
