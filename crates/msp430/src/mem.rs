//! Bus abstraction, bus-access records, and flat RAM.
//!
//! The CPU talks to any [`Bus`]. Every *data* access the CPU makes is
//! *also* reported architecturally in the [`crate::cpu::Step`] record as a
//! list of [`Access`]es — this is the signal stream that the APEX monitor
//! (and any other "hardware" attached next to the core) observes,
//! mirroring the wires the real monitor taps on the openMSP430.
//! Instruction fetches are implied by `Step::pc`/`Step::insn` and are not
//! recorded individually.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of bus access occurred.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessKind {
    /// Instruction-stream fetch (opcode or extension word). The CPU core
    /// no longer emits these — fetches are implied by the executed
    /// instruction — but the kind remains for external bus masters and
    /// wire-format compatibility.
    Fetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

/// One bus access: address, kind, transferred value and width.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Access {
    /// Bus address (word accesses are aligned, bit 0 clear).
    pub addr: u16,
    /// Fetch / read / write.
    pub kind: AccessKind,
    /// The value transferred (byte accesses use the low 8 bits).
    pub value: u16,
    /// True for 16-bit accesses.
    pub word: bool,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            AccessKind::Fetch => "F",
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        };
        let w = if self.word { "w" } else { "b" };
        write!(f, "{k}{w} {:#06x}={:#06x}", self.addr, self.value)
    }
}

/// Upper bound on recorded data accesses per instruction.
///
/// The worst case is a Format I instruction with memory source and memory
/// destination (source read, destination read, destination write) or an
/// interrupt entry (two stack pushes, one vector read) — three accesses.
/// One slot of headroom is kept for defence.
pub const MAX_STEP_ACCESSES: usize = 4;

/// An inline, fixed-capacity buffer of the bus accesses of one step.
///
/// Replaces the heap-allocated `Vec<Access>` the hot emulation loop used
/// to allocate per instruction: a [`crate::cpu::Step`] now embeds its
/// accesses, so steady-state replay via [`crate::cpu::Cpu::step_into`]
/// performs zero heap allocations. Dereferences to `[Access]`, so all
/// slice iteration/indexing idioms keep working.
#[derive(Clone, Copy, Debug)]
pub struct AccessBuf {
    len: u8,
    buf: [Access; MAX_STEP_ACCESSES],
}

impl Default for AccessBuf {
    fn default() -> Self {
        const EMPTY: Access = Access { addr: 0, kind: AccessKind::Fetch, value: 0, word: false };
        Self { len: 0, buf: [EMPTY; MAX_STEP_ACCESSES] }
    }
}

impl AccessBuf {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one access.
    ///
    /// # Panics
    ///
    /// Panics if the architectural bound [`MAX_STEP_ACCESSES`] is exceeded
    /// — which would mean the CPU model emitted an impossible bus pattern.
    #[inline]
    pub fn push(&mut self, access: Access) {
        self.buf[usize::from(self.len)] = access;
        self.len += 1;
    }

    /// Drops all recorded accesses.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The recorded accesses, in bus order.
    #[must_use]
    #[inline]
    pub fn as_slice(&self) -> &[Access] {
        &self.buf[..usize::from(self.len)]
    }
}

impl std::ops::Deref for AccessBuf {
    type Target = [Access];

    fn deref(&self) -> &[Access] {
        self.as_slice()
    }
}

/// Only the live prefix participates in equality; stale slots are ignored.
impl PartialEq for AccessBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for AccessBuf {}

impl<'a> IntoIterator for &'a AccessBuf {
    type Item = &'a Access;
    type IntoIter = std::slice::Iter<'a, Access>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// On the wire an `AccessBuf` is just its live accesses; with the offline
// serde stand-in these are marker impls.
impl Serialize for AccessBuf {}

impl<'de> Deserialize<'de> for AccessBuf {}

/// Size of one write-generation page (see [`Bus::page_generation`]).
pub const GEN_PAGE_BYTES: usize = 1024;

/// Number of write-generation pages covering the address space.
pub const GEN_PAGES: usize = 0x1_0000 / GEN_PAGE_BYTES;

/// A 16-bit little-endian memory bus.
///
/// Word accesses are always even-aligned: implementations must ignore bit 0
/// of the address (as the MSP430 bus does).
pub trait Bus {
    /// Reads one byte.
    fn read_byte(&mut self, addr: u16) -> u8;
    /// Writes one byte.
    fn write_byte(&mut self, addr: u16, value: u8);

    /// Write-generation stamp `(bus id, generation)` for the 1 KiB page
    /// containing `addr`, if this bus tracks one.
    ///
    /// The contract making stamps sound for caching: the id is unique per
    /// bus instance for the lifetime of the process, and the generation is
    /// bumped on **every** mutation of any byte in the page, through any
    /// path. A matching stamp therefore proves the page's bytes are
    /// unchanged since the stamp was taken, letting the instruction cache
    /// accept a hit without re-reading the encoding words. The default —
    /// `None` — means "untracked": callers must validate by reading.
    fn page_generation(&self, _addr: u16) -> Option<(u64, u64)> {
        None
    }

    /// Reads an aligned little-endian word.
    #[inline]
    fn read_word(&mut self, addr: u16) -> u16 {
        let a = addr & !1;
        u16::from(self.read_byte(a)) | (u16::from(self.read_byte(a.wrapping_add(1))) << 8)
    }

    /// Writes an aligned little-endian word.
    #[inline]
    fn write_word(&mut self, addr: u16, value: u16) {
        let a = addr & !1;
        self.write_byte(a, value as u8);
        self.write_byte(a.wrapping_add(1), (value >> 8) as u8);
    }
}

/// Flat 64 KiB RAM with no peripherals — the simplest possible [`Bus`],
/// useful for ISA tests and fuzzing. Use [`crate::platform::Platform`] for
/// the full device.
///
/// The backing store is a fixed-size boxed array, so indexing with a
/// `u16`-derived offset is provably in bounds — the emulation fast path
/// pays no bounds checks on memory traffic. Every mutation bumps the
/// write-generation of its 1 KiB page (see [`Bus::page_generation`]).
pub struct Ram {
    bytes: Box<[u8; 0x1_0000]>,
    gens: Box<[u64; GEN_PAGES]>,
    /// Process-unique bus identity; a clone is a *different* bus.
    id: u64,
}

/// A cloned RAM is an independent bus: it copies the bytes but gets a
/// fresh identity, so generation stamps taken against the original can
/// never validate mutated pages of the clone (or vice versa).
impl Clone for Ram {
    fn clone(&self) -> Self {
        Self { bytes: self.bytes.clone(), gens: self.gens.clone(), id: fresh_bus_id() }
    }
}

/// Source of process-unique bus ids for generation stamps.
static NEXT_BUS_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

pub(crate) fn fresh_bus_id() -> u64 {
    NEXT_BUS_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl fmt::Debug for Ram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ram {{ 64 KiB }}")
    }
}

impl Default for Ram {
    fn default() -> Self {
        Self::new()
    }
}

impl Ram {
    /// All-zero memory.
    #[must_use]
    pub fn new() -> Self {
        Self { bytes: Box::new([0; 0x1_0000]), gens: Box::new([0; GEN_PAGES]), id: fresh_bus_id() }
    }

    #[inline]
    fn bump(&mut self, addr: u16) {
        self.gens[usize::from(addr) / GEN_PAGE_BYTES] += 1;
    }

    fn bump_all(&mut self) {
        for g in self.gens.iter_mut() {
            *g += 1;
        }
    }

    /// Copies `words` little-endian starting at `addr`.
    pub fn load_words(&mut self, addr: u16, words: &[u16]) {
        let mut a = addr;
        for w in words {
            self.bytes[usize::from(a)] = *w as u8;
            self.bytes[usize::from(a.wrapping_add(1))] = (*w >> 8) as u8;
            self.bump(a);
            self.bump(a.wrapping_add(1));
            a = a.wrapping_add(2);
        }
    }

    /// Copies raw bytes starting at `addr` (wrapping at the top of memory).
    pub fn load_bytes(&mut self, addr: u16, bytes: &[u8]) {
        let start = usize::from(addr);
        if let Some(dst) = self.bytes.get_mut(start..start + bytes.len()) {
            dst.copy_from_slice(bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.bytes[usize::from(addr.wrapping_add(i as u16))] = *b;
            }
        }
        // Stamp every generation page the span touched.
        for (i, _) in bytes.iter().enumerate().step_by(GEN_PAGE_BYTES) {
            self.bump(addr.wrapping_add(i as u16));
        }
        if let Some(last) = bytes.len().checked_sub(1) {
            self.bump(addr.wrapping_add(last as u16));
        }
    }

    /// Borrow of the full 64 KiB backing store.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..]
    }

    /// Zeroes all of memory in place, reusing the allocation (for callers
    /// that recycle one `Ram` across many runs, e.g. batch verification).
    pub fn clear(&mut self) {
        self.bytes.fill(0);
        self.bump_all();
    }

    /// Resets memory to zeros overlaid with `runs` — equivalent to
    /// [`Self::clear`] followed by [`Self::load_bytes`] per run — but
    /// bumps the write generation only of pages whose content actually
    /// changes. Callers that reload the *same* image between runs (batch
    /// verification replaying one operation) keep their code pages'
    /// generations stable, so generation-validated caches stay warm.
    ///
    /// Runs must not wrap the top of memory.
    pub fn reset_to<'a, I>(&mut self, runs: I)
    where
        I: IntoIterator<Item = (u16, &'a [u8])>,
        I::IntoIter: Clone,
    {
        // Compose the desired content page by page on the stack and diff
        // against the live page, so an unchanged page is never stamped.
        let runs = runs.into_iter();
        let mut desired = [0u8; GEN_PAGE_BYTES];
        for page in 0..GEN_PAGES {
            let base = page * GEN_PAGE_BYTES;
            desired.fill(0);
            for (start, bytes) in runs.clone() {
                let start = usize::from(start);
                let end = start + bytes.len();
                if start < base + GEN_PAGE_BYTES && end > base {
                    let lo = start.max(base);
                    let hi = end.min(base + GEN_PAGE_BYTES);
                    desired[lo - base..hi - base].copy_from_slice(&bytes[lo - start..hi - start]);
                }
            }
            let cur = &mut self.bytes[base..base + GEN_PAGE_BYTES];
            if cur != desired {
                cur.copy_from_slice(&desired);
                self.gens[page] += 1;
            }
        }
    }
}

impl Bus for Ram {
    #[inline]
    fn read_byte(&mut self, addr: u16) -> u8 {
        self.bytes[usize::from(addr)]
    }

    #[inline]
    fn write_byte(&mut self, addr: u16, value: u8) {
        self.bytes[usize::from(addr)] = value;
        self.bump(addr);
    }

    // Word access straight off the backing store: the emulation fast path
    // is fetch/word-traffic dominated, and the default byte-wise impl costs
    // two bounds checks and a shift per word.
    #[inline]
    fn read_word(&mut self, addr: u16) -> u16 {
        let a = usize::from(addr & !1);
        u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]])
    }

    #[inline]
    fn write_word(&mut self, addr: u16, value: u16) {
        let a = usize::from(addr & !1);
        let [lo, hi] = value.to_le_bytes();
        self.bytes[a] = lo;
        self.bytes[a + 1] = hi;
        // An aligned word never straddles a generation page.
        self.gens[a / GEN_PAGE_BYTES] += 1;
    }

    #[inline]
    fn page_generation(&self, addr: u16) -> Option<(u64, u64)> {
        Some((self.id, self.gens[usize::from(addr) / GEN_PAGE_BYTES]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_little_endian_and_aligned() {
        let mut r = Ram::new();
        r.write_word(0x0203, 0xBEEF); // bit 0 ignored → 0x0202
        assert_eq!(r.read_byte(0x0202), 0xEF);
        assert_eq!(r.read_byte(0x0203), 0xBE);
        assert_eq!(r.read_word(0x0202), 0xBEEF);
        assert_eq!(r.read_word(0x0203), 0xBEEF);
    }

    #[test]
    fn load_words_round_trip() {
        let mut r = Ram::new();
        r.load_words(0xE000, &[0x1234, 0xABCD]);
        assert_eq!(r.read_word(0xE000), 0x1234);
        assert_eq!(r.read_word(0xE002), 0xABCD);
    }

    #[test]
    fn wraparound_at_top_of_memory() {
        let mut r = Ram::new();
        r.load_bytes(0xFFFF, &[0xAA, 0xBB]);
        assert_eq!(r.read_byte(0xFFFF), 0xAA);
        assert_eq!(r.read_byte(0x0000), 0xBB);
    }

    #[test]
    fn access_display() {
        let a = Access { addr: 0x200, kind: AccessKind::Write, value: 0x42, word: false };
        assert_eq!(a.to_string(), "Wb 0x0200=0x0042");
    }

    #[test]
    fn reset_to_preserves_generations_of_unchanged_pages() {
        let image: [(u16, &[u8]); 2] = [(0xE000, &[0x0A, 0x5A, 0xFA, 0x3F]), (0x0200, &[7, 7])];
        let mut r = Ram::new();
        r.reset_to(image.iter().copied());
        let code_gen = r.page_generation(0xE000).unwrap();
        let data_gen = r.page_generation(0x0200).unwrap();

        // Dirty the data page (emulated stores), then reload the same image:
        // the data page's content changes back, so its generation moves; the
        // untouched code page keeps its stamp.
        r.write_word(0x0210, 0xBEEF);
        r.reset_to(image.iter().copied());
        assert_eq!(r.page_generation(0xE000).unwrap(), code_gen, "unchanged page restamped");
        assert_ne!(r.page_generation(0x0200).unwrap(), data_gen, "changed page kept its stamp");
        assert_eq!(r.read_word(0x0210), 0, "reset must clear dirtied bytes");
        assert_eq!(r.read_word(0xE000), 0x5A0A);
        assert_eq!(r.read_word(0x0200), 0x0707);

        // Self-modified *code* is restored and restamped.
        r.write_word(0xE000, 0x4343);
        r.reset_to(image.iter().copied());
        assert_ne!(r.page_generation(0xE000).unwrap(), code_gen);
        assert_eq!(r.read_word(0xE000), 0x5A0A);

        // Equivalence with clear + load_bytes, minus the stamp churn.
        let mut fresh = Ram::new();
        fresh.clear();
        for (start, bytes) in image {
            fresh.load_bytes(start, bytes);
        }
        assert_eq!(r.as_slice(), fresh.as_slice());
    }
}
