//! Bus abstraction, bus-access records, and flat RAM.
//!
//! The CPU talks to any [`Bus`]. Every access the CPU makes is *also*
//! reported architecturally in the [`crate::cpu::Step`] record as a list of
//! [`Access`]es — this is the signal stream that the APEX monitor (and any
//! other "hardware" attached next to the core) observes, mirroring the wires
//! the real monitor taps on the openMSP430.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of bus access occurred.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessKind {
    /// Instruction-stream fetch (opcode or extension word).
    Fetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

/// One bus access: address, kind, transferred value and width.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Access {
    /// Bus address (word accesses are aligned, bit 0 clear).
    pub addr: u16,
    /// Fetch / read / write.
    pub kind: AccessKind,
    /// The value transferred (byte accesses use the low 8 bits).
    pub value: u16,
    /// True for 16-bit accesses.
    pub word: bool,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            AccessKind::Fetch => "F",
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        };
        let w = if self.word { "w" } else { "b" };
        write!(f, "{k}{w} {:#06x}={:#06x}", self.addr, self.value)
    }
}

/// A 16-bit little-endian memory bus.
///
/// Word accesses are always even-aligned: implementations must ignore bit 0
/// of the address (as the MSP430 bus does).
pub trait Bus {
    /// Reads one byte.
    fn read_byte(&mut self, addr: u16) -> u8;
    /// Writes one byte.
    fn write_byte(&mut self, addr: u16, value: u8);

    /// Reads an aligned little-endian word.
    fn read_word(&mut self, addr: u16) -> u16 {
        let a = addr & !1;
        u16::from(self.read_byte(a)) | (u16::from(self.read_byte(a.wrapping_add(1))) << 8)
    }

    /// Writes an aligned little-endian word.
    fn write_word(&mut self, addr: u16, value: u16) {
        let a = addr & !1;
        self.write_byte(a, value as u8);
        self.write_byte(a.wrapping_add(1), (value >> 8) as u8);
    }
}

/// Flat 64 KiB RAM with no peripherals — the simplest possible [`Bus`],
/// useful for ISA tests and fuzzing. Use [`crate::platform::Platform`] for
/// the full device.
#[derive(Clone)]
pub struct Ram {
    bytes: Vec<u8>,
}

impl fmt::Debug for Ram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ram {{ 64 KiB }}")
    }
}

impl Default for Ram {
    fn default() -> Self {
        Self::new()
    }
}

impl Ram {
    /// All-zero memory.
    #[must_use]
    pub fn new() -> Self {
        Self { bytes: vec![0; 0x1_0000] }
    }

    /// Copies `words` little-endian starting at `addr`.
    pub fn load_words(&mut self, addr: u16, words: &[u16]) {
        let mut a = addr;
        for w in words {
            self.bytes[usize::from(a)] = *w as u8;
            self.bytes[usize::from(a.wrapping_add(1))] = (*w >> 8) as u8;
            a = a.wrapping_add(2);
        }
    }

    /// Copies raw bytes starting at `addr`.
    pub fn load_bytes(&mut self, addr: u16, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.bytes[usize::from(addr.wrapping_add(i as u16))] = *b;
        }
    }

    /// Borrow of the full 64 KiB backing store.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Zeroes all of memory in place, reusing the allocation (for callers
    /// that recycle one `Ram` across many runs, e.g. batch verification).
    pub fn clear(&mut self) {
        self.bytes.fill(0);
    }
}

impl Bus for Ram {
    fn read_byte(&mut self, addr: u16) -> u8 {
        self.bytes[usize::from(addr)]
    }

    fn write_byte(&mut self, addr: u16, value: u8) {
        self.bytes[usize::from(addr)] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_little_endian_and_aligned() {
        let mut r = Ram::new();
        r.write_word(0x0203, 0xBEEF); // bit 0 ignored → 0x0202
        assert_eq!(r.read_byte(0x0202), 0xEF);
        assert_eq!(r.read_byte(0x0203), 0xBE);
        assert_eq!(r.read_word(0x0202), 0xBEEF);
        assert_eq!(r.read_word(0x0203), 0xBEEF);
    }

    #[test]
    fn load_words_round_trip() {
        let mut r = Ram::new();
        r.load_words(0xE000, &[0x1234, 0xABCD]);
        assert_eq!(r.read_word(0xE000), 0x1234);
        assert_eq!(r.read_word(0xE002), 0xABCD);
    }

    #[test]
    fn wraparound_at_top_of_memory() {
        let mut r = Ram::new();
        r.load_bytes(0xFFFF, &[0xAA, 0xBB]);
        assert_eq!(r.read_byte(0xFFFF), 0xAA);
        assert_eq!(r.read_byte(0x0000), 0xBB);
    }

    #[test]
    fn access_display() {
        let a = Access { addr: 0x200, kind: AccessKind::Write, value: 0x42, word: false };
        assert_eq!(a.to_string(), "Wb 0x0200=0x0042");
    }
}
