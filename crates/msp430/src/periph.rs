//! Memory-mapped peripheral models.
//!
//! These are intentionally simple devices with *scriptable* external inputs,
//! because the evaluation applications need deterministic sensor readings and
//! network commands:
//!
//! * [`Gpio`] — three 8-bit ports with IN/OUT/DIR registers; the harness sets
//!   input pin levels, the applications drive outputs (`P3OUT` actuation in
//!   the paper's examples);
//! * [`Uart`] — a byte FIFO for received "network" commands plus a transmit
//!   capture buffer;
//! * [`Adc`] — returns pre-scripted conversion results (temperature /
//!   humidity / echo amplitudes);
//! * [`Timer`] — a free-running 16-bit counter advanced by CPU cycles (used
//!   by the ultrasonic ranger to time echos);
//! * [`Dma`] — an external bus master; its transfers bypass the CPU, which is
//!   exactly the attack surface APEX must police.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One 8-bit GPIO port (IN, OUT, DIR registers).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpioPort {
    /// Externally driven input levels.
    pub input: u8,
    /// Last value written to the output register.
    pub output: u8,
    /// Direction register (1 = output); bookkeeping only.
    pub dir: u8,
}

/// The GPIO block: ports 1–3.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gpio {
    /// Port 1.
    pub p1: GpioPort,
    /// Port 2.
    pub p2: GpioPort,
    /// Port 3 (actuation port in the paper's running example).
    pub p3: GpioPort,
}

/// UART with a scriptable receive FIFO and a transmit capture.
#[derive(Clone, Debug, Default)]
pub struct Uart {
    rx: VecDeque<u8>,
    /// Every byte the program transmitted, in order.
    pub tx: Vec<u8>,
}

impl Uart {
    /// Queues bytes to be received by the program.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.rx.extend(bytes.iter().copied());
    }

    /// Number of bytes still waiting in the RX FIFO.
    #[must_use]
    pub fn rx_available(&self) -> usize {
        self.rx.len()
    }

    /// Status byte: bit 0 = RX data available, bit 1 = TX ready (always).
    #[must_use]
    pub fn status(&self) -> u8 {
        u8::from(!self.rx.is_empty()) | 0x02
    }

    /// Peeks the head RX byte without consuming it (0 when empty). Reads
    /// must be idempotent because instrumented code re-reads inputs.
    #[must_use]
    pub fn peek_rx(&self) -> u8 {
        self.rx.front().copied().unwrap_or(0)
    }

    /// Pops the next RX byte (0 when empty, like reading an idle bus).
    pub fn pop_rx(&mut self) -> u8 {
        self.rx.pop_front().unwrap_or(0)
    }
}

/// SAR ADC returning scripted samples.
#[derive(Clone, Debug, Default)]
pub struct Adc {
    samples: VecDeque<u16>,
    /// Result of the most recent conversion.
    pub result: u16,
}

impl Adc {
    /// Queues conversion results (12-bit values).
    pub fn feed(&mut self, samples: &[u16]) {
        self.samples.extend(samples.iter().copied());
    }

    /// Starts a conversion: latches the next scripted sample (or repeats the
    /// last one when the script is exhausted).
    pub fn convert(&mut self) {
        if let Some(s) = self.samples.pop_front() {
            self.result = s & 0x0FFF;
        }
    }
}

/// Free-running 16-bit timer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timer {
    /// Current counter value.
    pub counter: u16,
    /// Snapshot captured by the last latch command (what TA_R reads).
    pub latched: u16,
}

impl Timer {
    /// Advances the counter by `cycles` (1 count per CPU cycle here).
    pub fn advance(&mut self, cycles: u32) {
        self.counter = self.counter.wrapping_add(cycles as u16);
    }

    /// Resets the counter (and the latch) to zero.
    pub fn clear(&mut self) {
        self.counter = 0;
        self.latched = 0;
    }

    /// Latches the current counter for stable reads.
    pub fn latch(&mut self) {
        self.latched = self.counter;
    }
}

/// A DMA transfer descriptor: an external master writing into memory.
///
/// DIALED's adversary model allows arbitrary DMA attempts; APEX must
/// invalidate the EXEC flag when DMA touches protected regions during an
/// attested execution. The platform executes the transfer and reports the
/// bus events so monitors can see them.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dma {
    /// First destination address.
    pub dst: u16,
    /// Bytes to write.
    pub data: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uart_fifo_order_and_idle_value() {
        let mut u = Uart::default();
        u.feed(&[1, 2, 3]);
        assert_eq!(u.status() & 1, 1);
        assert_eq!(u.peek_rx(), 1);
        assert_eq!(u.peek_rx(), 1, "peek is idempotent");
        assert_eq!(u.pop_rx(), 1);
        assert_eq!(u.pop_rx(), 2);
        assert_eq!(u.pop_rx(), 3);
        assert_eq!(u.status() & 1, 0);
        assert_eq!(u.pop_rx(), 0, "idle bus reads zero");
    }

    #[test]
    fn adc_latches_scripted_samples() {
        let mut a = Adc::default();
        a.feed(&[100, 0xFFFF]);
        a.convert();
        assert_eq!(a.result, 100);
        a.convert();
        assert_eq!(a.result, 0x0FFF, "12-bit mask");
        a.convert();
        assert_eq!(a.result, 0x0FFF, "holds last when exhausted");
    }

    #[test]
    fn timer_wraps_and_latches() {
        let mut t = Timer { counter: 0xFFFE, ..Default::default() };
        t.advance(4);
        assert_eq!(t.counter, 2);
        assert_eq!(t.latched, 0, "latch unchanged by advance");
        t.latch();
        assert_eq!(t.latched, 2);
        t.clear();
        assert_eq!(t.counter, 0);
        assert_eq!(t.latched, 0);
    }
}
