//! Memory-map constants and region classification.
//!
//! We model an openMSP430-style 64 KiB address space:
//!
//! ```text
//! 0x0000 ─ 0x01FF   memory-mapped peripherals (GPIO, ADC, timer, UART, DMA)
//! 0x0200 ─ 0x11FF   SRAM data memory (4 KiB default, configurable) —
//!                    sized like the larger x1xx parts so that the paper's
//!                    ≈2 KB attestation logs fit alongside stack and globals
//! 0x1200 ─ 0x9FFF   unmapped (bus error region)
//! 0xA000 ─ 0xFFDF   program memory (flash)
//! 0xFFE0 ─ 0xFFFF   interrupt vector table (top of flash)
//! ```
//!
//! APEX's Executable Range (ER) and Output Range (OR) are sub-regions of
//! program and data memory chosen per attested operation; see the `apex`
//! crate. Here we only define the physical map.

use serde::{Deserialize, Serialize};

/// Peripheral register addresses used by the simulator.
///
/// Byte-wide registers live below `0x0100` like the real x1xx parts.
pub mod mmio {
    /// Port 1 input register (read-only).
    pub const P1IN: u16 = 0x0020;
    /// Port 1 output register.
    pub const P1OUT: u16 = 0x0021;
    /// Port 1 direction register.
    pub const P1DIR: u16 = 0x0022;
    /// Port 2 input register.
    pub const P2IN: u16 = 0x0028;
    /// Port 2 output register.
    pub const P2OUT: u16 = 0x0029;
    /// Port 2 direction register.
    pub const P2DIR: u16 = 0x002A;
    /// Port 3 input register.
    pub const P3IN: u16 = 0x0018;
    /// Port 3 output register — drives the actuator in the paper's examples.
    pub const P3OUT: u16 = 0x0019;
    /// Port 3 direction register.
    pub const P3DIR: u16 = 0x001A;
    /// UART receive buffer (read pops the RX FIFO).
    pub const UART_RXBUF: u16 = 0x0066;
    /// UART transmit buffer (write appends to the TX capture).
    pub const UART_TXBUF: u16 = 0x0067;
    /// UART status: bit 0 = RX data available, bit 1 = TX ready (always 1).
    pub const UART_STAT: u16 = 0x0065;
    /// ADC conversion-result register (word).
    pub const ADC_MEM: u16 = 0x0140;
    /// ADC control: writing bit 0 starts a conversion.
    pub const ADC_CTL: u16 = 0x0142;
    /// Timer A counter register (word, free-running).
    pub const TA_R: u16 = 0x0170;
    /// Timer A control: write 0 to clear the counter.
    pub const TA_CTL: u16 = 0x0160;
}

/// One classified region of the address space.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Region {
    /// Memory-mapped peripherals.
    Peripheral,
    /// SRAM data memory.
    Data,
    /// Unmapped addresses.
    Unmapped,
    /// Program (flash) memory.
    Program,
    /// Interrupt vector table.
    Vectors,
}

/// The physical memory map, configurable so tests can shrink or move
/// regions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MemoryMap {
    /// First data-memory (SRAM) address.
    pub data_start: u16,
    /// Last data-memory address (inclusive).
    pub data_end: u16,
    /// First program-memory address.
    pub prog_start: u16,
    /// Last program address before the vector table (inclusive).
    pub prog_end: u16,
}

impl Default for MemoryMap {
    fn default() -> Self {
        Self { data_start: 0x0200, data_end: 0x11FF, prog_start: 0xA000, prog_end: 0xFFDF }
    }
}

impl MemoryMap {
    /// Classifies an address.
    #[must_use]
    pub fn region(&self, addr: u16) -> Region {
        if addr < 0x0200 {
            Region::Peripheral
        } else if addr >= self.data_start && addr <= self.data_end {
            Region::Data
        } else if addr >= 0xFFE0 {
            Region::Vectors
        } else if addr >= self.prog_start && addr <= self.prog_end {
            Region::Program
        } else {
            Region::Unmapped
        }
    }

    /// Size of data memory in bytes.
    #[must_use]
    pub fn data_len(&self) -> usize {
        usize::from(self.data_end - self.data_start) + 1
    }
}

/// The reset-vector address.
pub const RESET_VECTOR: u16 = 0xFFFE;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_map_classification() {
        let m = MemoryMap::default();
        assert_eq!(m.region(0x0000), Region::Peripheral);
        assert_eq!(m.region(mmio::P3OUT), Region::Peripheral);
        assert_eq!(m.region(0x01FF), Region::Peripheral);
        assert_eq!(m.region(0x0200), Region::Data);
        assert_eq!(m.region(0x11FF), Region::Data);
        assert_eq!(m.region(0x1200), Region::Unmapped);
        assert_eq!(m.region(0xA000), Region::Program);
        assert_eq!(m.region(0xFFDF), Region::Program);
        assert_eq!(m.region(0xFFE0), Region::Vectors);
        assert_eq!(m.region(0xFFFE), Region::Vectors);
    }

    #[test]
    fn data_len() {
        assert_eq!(MemoryMap::default().data_len(), 4096);
    }
}
