//! The MSP430 instruction set: model, decoder and encoder.
//!
//! The (non-extended) MSP430 has 27 core instructions in three encodings:
//!
//! * **Format I** — two-operand: `MOV ADD ADDC SUBC SUB CMP DADD BIT BIC BIS
//!   XOR AND`, opcode in bits 15:12 (`0x4`–`0xF`);
//! * **Format II** — single-operand: `RRC SWPB RRA SXT PUSH CALL RETI`,
//!   bits 15:10 = `000100`;
//! * **Jumps** — `JNE JEQ JNC JC JN JGE JL JMP`, bits 15:13 = `001`, with a
//!   10-bit signed word offset.
//!
//! Seven addressing modes exist; the constant generators `r2`/`r3` encode the
//! immediates −1, 0, 1, 2, 4 and 8 without an extension word, and the
//! decoder/encoder here handle them transparently (the encoder always picks
//! the shortest encoding, as real assemblers do, which is what makes the
//! Fig. 6(a) code-size numbers meaningful).
//!
//! Decoding normalises PC-relative (symbolic) operands to their *absolute*
//! target so that execution and re-encoding are position-explicit: both
//! [`Insn::decode`] and [`Insn::encode`] take the instruction address.

use crate::regs::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Operation width: `.w` (default) or `.b` suffix.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Size {
    /// 16-bit operation.
    Word,
    /// 8-bit operation (register write-back clears the high byte).
    Byte,
}

impl Size {
    /// Number of bytes moved by auto-increment for this size.
    #[must_use]
    pub fn bytes(self) -> u16 {
        match self {
            Size::Word => 2,
            Size::Byte => 1,
        }
    }
}

/// Format II (single-operand) operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Op1 {
    Rrc,
    Swpb,
    Rra,
    Sxt,
    Push,
    Call,
    Reti,
}

impl Op1 {
    const TABLE: [Op1; 7] =
        [Op1::Rrc, Op1::Swpb, Op1::Rra, Op1::Sxt, Op1::Push, Op1::Call, Op1::Reti];

    fn code(self) -> u16 {
        self as u16
    }

    /// Mnemonic without size suffix.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op1::Rrc => "rrc",
            Op1::Swpb => "swpb",
            Op1::Rra => "rra",
            Op1::Sxt => "sxt",
            Op1::Push => "push",
            Op1::Call => "call",
            Op1::Reti => "reti",
        }
    }

    /// Whether the byte variant exists (`rrc.b`, `rra.b`, `push.b` only).
    #[must_use]
    pub fn allows_byte(self) -> bool {
        matches!(self, Op1::Rrc | Op1::Rra | Op1::Push)
    }
}

/// Format I (two-operand) operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Op2 {
    Mov,
    Add,
    Addc,
    Subc,
    Sub,
    Cmp,
    Dadd,
    Bit,
    Bic,
    Bis,
    Xor,
    And,
}

impl Op2 {
    const TABLE: [Op2; 12] = [
        Op2::Mov,
        Op2::Add,
        Op2::Addc,
        Op2::Subc,
        Op2::Sub,
        Op2::Cmp,
        Op2::Dadd,
        Op2::Bit,
        Op2::Bic,
        Op2::Bis,
        Op2::Xor,
        Op2::And,
    ];

    fn code(self) -> u16 {
        self as u16 + 4
    }

    /// Mnemonic without size suffix.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op2::Mov => "mov",
            Op2::Add => "add",
            Op2::Addc => "addc",
            Op2::Subc => "subc",
            Op2::Sub => "sub",
            Op2::Cmp => "cmp",
            Op2::Dadd => "dadd",
            Op2::Bit => "bit",
            Op2::Bic => "bic",
            Op2::Bis => "bis",
            Op2::Xor => "xor",
            Op2::And => "and",
        }
    }

    /// `CMP` and `BIT` compute flags but never write the destination.
    #[must_use]
    pub fn writes_dst(self) -> bool {
        !matches!(self, Op2::Cmp | Op2::Bit)
    }

    /// `MOV`, `BIC` and `BIS` leave the condition codes untouched.
    #[must_use]
    pub fn sets_flags(self) -> bool {
        !matches!(self, Op2::Mov | Op2::Bic | Op2::Bis)
    }
}

/// Jump conditions (the 3-bit field of the jump encoding).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Cond {
    /// `jne`/`jnz` — Z clear.
    Nz,
    /// `jeq`/`jz` — Z set.
    Z,
    /// `jnc`/`jlo` — C clear.
    Nc,
    /// `jc`/`jhs` — C set.
    C,
    /// `jn` — N set.
    N,
    /// `jge` — N xor V clear.
    Ge,
    /// `jl` — N xor V set.
    L,
    /// `jmp` — unconditional.
    Always,
}

impl Cond {
    const TABLE: [Cond; 8] =
        [Cond::Nz, Cond::Z, Cond::Nc, Cond::C, Cond::N, Cond::Ge, Cond::L, Cond::Always];

    fn code(self) -> u16 {
        self as u16
    }

    /// Canonical mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Nz => "jnz",
            Cond::Z => "jz",
            Cond::Nc => "jnc",
            Cond::C => "jc",
            Cond::N => "jn",
            Cond::Ge => "jge",
            Cond::L => "jl",
            Cond::Always => "jmp",
        }
    }
}

/// An operand, in normalised (position-independent) form.
///
/// Decoded symbolic (PC-relative) operands carry their absolute target, so an
/// `Operand` means the same thing regardless of where the instruction sits;
/// only the *encoding* of `Symbolic` depends on the instruction address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Operand {
    /// Register direct `Rn`.
    Reg(Reg),
    /// Indexed `x(Rn)`; offset wraps mod 2^16.
    Indexed(Reg, u16),
    /// Symbolic `ADDR` — PC-relative encoding of an absolute target.
    Symbolic(u16),
    /// Absolute `&ADDR`.
    Absolute(u16),
    /// Register indirect `@Rn` (source only).
    Indirect(Reg),
    /// Register indirect with auto-increment `@Rn+` (source only).
    IndirectInc(Reg),
    /// Immediate `#N` (source only). Values −1, 0, 1, 2, 4, 8 encode via the
    /// constant generators and cost no extension word.
    Imm(u16),
}

impl Operand {
    /// Does this operand need an extension word when encoded as a source?
    #[must_use]
    pub fn src_ext_words(&self) -> u16 {
        match self {
            Operand::Reg(_) | Operand::Indirect(_) | Operand::IndirectInc(_) => 0,
            Operand::Imm(v) => u16::from(!is_cg_value(*v)),
            Operand::Indexed(..) | Operand::Symbolic(_) | Operand::Absolute(_) => 1,
        }
    }

    /// Does this operand need an extension word when encoded as a
    /// destination?
    #[must_use]
    pub fn dst_ext_words(&self) -> u16 {
        match self {
            Operand::Reg(_) => 0,
            _ => 1,
        }
    }

    /// True for operands that reference memory (as opposed to a register or
    /// an immediate). Used by the DIALED instrumentation pass to find read
    /// instructions that may consume *data inputs*.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Operand::Indexed(..)
                | Operand::Symbolic(_)
                | Operand::Absolute(_)
                | Operand::Indirect(_)
                | Operand::IndirectInc(_)
        )
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Indexed(r, x) => write!(f, "{}({r})", *x as i16),
            Operand::Symbolic(a) => write!(f, "{a:#06x}"),
            Operand::Absolute(a) => write!(f, "&{a:#06x}"),
            Operand::Indirect(r) => write!(f, "@{r}"),
            Operand::IndirectInc(r) => write!(f, "@{r}+"),
            Operand::Imm(v) => write!(f, "#{}", *v as i16),
        }
    }
}

/// Values representable by the constant generators.
fn is_cg_value(v: u16) -> bool {
    matches!(v, 0 | 1 | 2 | 4 | 8 | 0xFFFF)
}

/// A decoded MSP430 instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Insn {
    /// Format II single-operand instruction.
    One {
        /// Operation.
        op: Op1,
        /// Byte/word width.
        size: Size,
        /// Source-or-destination operand (`RETI` ignores it).
        sd: Operand,
    },
    /// Format I two-operand instruction.
    Two {
        /// Operation.
        op: Op2,
        /// Byte/word width.
        size: Size,
        /// Source operand.
        src: Operand,
        /// Destination operand (register, indexed, symbolic or absolute).
        dst: Operand,
    },
    /// PC-relative jump; `offset` is in words, target = `at + 2 + 2*offset`.
    Jump {
        /// Branch condition.
        cond: Cond,
        /// Signed word offset, −512..=511.
        offset: i16,
    },
}

/// Error produced by [`Insn::decode`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The first word is not a valid MSP430 opcode.
    InvalidOpcode(u16),
    /// A byte-size bit was set on a word-only operation (`swpb.b`, `sxt.b`,
    /// `call.b`, `reti.b`).
    ByteSizeUnsupported(u16),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::InvalidOpcode(w) => write!(f, "invalid opcode word {w:#06x}"),
            DecodeError::ByteSizeUnsupported(w) => {
                write!(f, "byte-size bit set on word-only instruction {w:#06x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Error produced by [`Insn::encode`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// The operand kind is not legal in this position (e.g. `@Rn+` as a
    /// Format I destination, immediate destination).
    BadOperand(Operand),
    /// Indexed mode on `r3` (or `r2` as plain indexed) has no encoding; the
    /// bit patterns mean constants / absolute mode.
    ConstGenConflict(Operand),
    /// Jump offset out of the −512..=511 word range.
    JumpOutOfRange(i32),
    /// Byte size requested for a word-only operation.
    ByteSizeUnsupported(Op1),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::BadOperand(o) => write!(f, "operand {o} not legal in this position"),
            EncodeError::ConstGenConflict(o) => {
                write!(f, "operand {o} collides with a constant-generator encoding")
            }
            EncodeError::JumpOutOfRange(w) => {
                write!(f, "jump offset {w} words outside -512..=511")
            }
            EncodeError::ByteSizeUnsupported(op) => {
                write!(f, "{} has no byte variant", op.mnemonic())
            }
        }
    }
}

impl std::error::Error for EncodeError {}

impl Insn {
    /// Decodes one instruction.
    ///
    /// `at` is the address of `first`; `fetch` must yield successive
    /// extension words (the CPU's version also records fetch bus events and
    /// advances the PC).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for invalid opcodes.
    pub fn decode(
        at: u16,
        first: u16,
        mut fetch: impl FnMut() -> u16,
    ) -> Result<Insn, DecodeError> {
        match first >> 13 {
            0b000 => {
                if first & 0xFC00 != 0x1000 {
                    return Err(DecodeError::InvalidOpcode(first));
                }
                let code = (first >> 7) & 0x7;
                if code == 7 {
                    return Err(DecodeError::InvalidOpcode(first));
                }
                let op = Op1::TABLE[usize::from(code)];
                let size = if first & 0x0040 != 0 { Size::Byte } else { Size::Word };
                if size == Size::Byte && !op.allows_byte() {
                    return Err(DecodeError::ByteSizeUnsupported(first));
                }
                if op == Op1::Reti {
                    // Hardware ignores the operand bits of RETI; we decode
                    // strictly so decode/encode are mutually inverse.
                    if first != 0x1300 {
                        return Err(DecodeError::InvalidOpcode(first));
                    }
                    return Ok(Insn::One { op, size: Size::Word, sd: Operand::Reg(Reg::CG2) });
                }
                let as_mode = (first >> 4) & 0x3;
                let reg = Reg::from_index(first & 0xF);
                // One extension word max; it sits at `at + 2`.
                let sd = decode_src(reg, as_mode, at.wrapping_add(2), &mut fetch);
                Ok(Insn::One { op, size, sd })
            }
            0b001 => {
                let cond = Cond::TABLE[usize::from((first >> 10) & 0x7)];
                let raw = first & 0x3FF;
                // Sign-extend the 10-bit word offset.
                let offset = if raw & 0x200 != 0 { (raw | 0xFC00) as i16 } else { raw as i16 };
                Ok(Insn::Jump { cond, offset })
            }
            _ => {
                let op = Op2::TABLE[usize::from((first >> 12) - 4)];
                let sreg = Reg::from_index((first >> 8) & 0xF);
                let ad = (first >> 7) & 0x1;
                let size = if first & 0x0040 != 0 { Size::Byte } else { Size::Word };
                let as_mode = (first >> 4) & 0x3;
                let dreg = Reg::from_index(first & 0xF);

                let src_ext_at = at.wrapping_add(2);
                let src = decode_src(sreg, as_mode, src_ext_at, &mut fetch);
                let dst_ext_at = src_ext_at.wrapping_add(2 * src.src_ext_words());
                let dst = if ad == 0 {
                    Operand::Reg(dreg)
                } else {
                    let x = fetch();
                    match dreg {
                        Reg::R0 => Operand::Symbolic(dst_ext_at.wrapping_add(x)),
                        Reg::R2 => Operand::Absolute(x),
                        r => Operand::Indexed(r, x),
                    }
                };
                Ok(Insn::Two { op, size, src, dst })
            }
        }
    }

    /// Encodes the instruction placed at address `at` into 1–3 words.
    ///
    /// The shortest encoding is always chosen (constant generators for
    /// eligible immediates).
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when an operand is illegal for its position or
    /// a jump offset does not fit.
    pub fn encode(&self, at: u16) -> Result<Vec<u16>, EncodeError> {
        self.encode_opts(at, true)
    }

    /// Like [`Insn::encode`] but `use_cg = false` forces immediates into the
    /// long (extension-word) form even when a constant generator could
    /// represent them.
    ///
    /// Assemblers need this: an immediate whose value is a forward reference
    /// must be *sized* before it is *known*, so pass 1 records the long-form
    /// decision and pass 2 honours it here.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Insn::encode`].
    pub fn encode_opts(&self, at: u16, use_cg: bool) -> Result<Vec<u16>, EncodeError> {
        match *self {
            Insn::Jump { cond, offset } => {
                if !(-512..=511).contains(&offset) {
                    return Err(EncodeError::JumpOutOfRange(i32::from(offset)));
                }
                Ok(vec![0x2000 | (cond.code() << 10) | ((offset as u16) & 0x3FF)])
            }
            Insn::One { op, size, sd } => {
                if size == Size::Byte && !op.allows_byte() {
                    return Err(EncodeError::ByteSizeUnsupported(op));
                }
                if op == Op1::Reti {
                    return Ok(vec![0x1300]);
                }
                let ext_at = at.wrapping_add(2);
                let (sreg, as_mode, ext) = encode_src(sd, ext_at, use_cg)?;
                let bw = if size == Size::Byte { 0x0040 } else { 0 };
                let mut out = vec![0x1000 | (op.code() << 7) | bw | (as_mode << 4) | sreg];
                out.extend(ext);
                Ok(out)
            }
            Insn::Two { op, size, src, dst } => {
                let src_ext_at = at.wrapping_add(2);
                let (sreg, as_mode, src_ext) = encode_src(src, src_ext_at, use_cg)?;
                let dst_ext_at = src_ext_at.wrapping_add(2 * src_ext.len() as u16);
                let (dreg, ad, dst_ext) = encode_dst(dst, dst_ext_at)?;
                let bw = if size == Size::Byte { 0x0040 } else { 0 };
                let mut out =
                    vec![(op.code() << 12) | (sreg << 8) | (ad << 7) | bw | (as_mode << 4) | dreg];
                out.extend(src_ext);
                out.extend(dst_ext);
                Ok(out)
            }
        }
    }

    /// Encoded length in words (1–3) without materialising the encoding.
    #[must_use]
    pub fn len_words(&self) -> u16 {
        match self {
            Insn::Jump { .. } => 1,
            Insn::One { op: Op1::Reti, .. } => 1,
            Insn::One { sd, .. } => 1 + sd.src_ext_words(),
            Insn::Two { src, dst, .. } => {
                1 + src.src_ext_words()
                    + match dst {
                        Operand::Reg(_) => 0,
                        _ => 1,
                    }
            }
        }
    }

    /// Encoded length in bytes.
    #[must_use]
    pub fn len_bytes(&self) -> u16 {
        self.len_words() * 2
    }

    /// Builds a jump from `at` to `target`.
    ///
    /// # Errors
    ///
    /// Fails if the displacement does not fit the 10-bit word offset.
    pub fn jump_to(cond: Cond, at: u16, target: u16) -> Result<Insn, EncodeError> {
        let bytes = target.wrapping_sub(at.wrapping_add(2)) as i16;
        if bytes % 2 != 0 {
            return Err(EncodeError::JumpOutOfRange(i32::from(bytes)));
        }
        let words = i32::from(bytes) / 2;
        if !(-512..=511).contains(&words) {
            return Err(EncodeError::JumpOutOfRange(words));
        }
        Ok(Insn::Jump { cond, offset: words as i16 })
    }

    /// True for instructions that can alter the control flow: jumps, `call`,
    /// `reti`, and any Format I instruction writing to the PC (`mov @sp+, pc`
    /// a.k.a. `ret`, `br`, computed branches, …).
    ///
    /// This is precisely the set Tiny-CFA instruments.
    #[must_use]
    pub fn alters_control_flow(&self) -> bool {
        match self {
            Insn::Jump { .. } => true,
            Insn::One { op, .. } => matches!(op, Op1::Call | Op1::Reti),
            Insn::Two { op, dst, .. } => op.writes_dst() && matches!(dst, Operand::Reg(Reg::R0)),
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::One { op: Op1::Reti, .. } => write!(f, "reti"),
            Insn::One { op, size, sd } => {
                let suffix = if *size == Size::Byte { ".b" } else { "" };
                write!(f, "{}{suffix} {sd}", op.mnemonic())
            }
            Insn::Two { op, size, src, dst } => {
                let suffix = if *size == Size::Byte { ".b" } else { "" };
                write!(f, "{}{suffix} {src}, {dst}", op.mnemonic())
            }
            Insn::Jump { cond, offset } => write!(f, "{} {:+}", cond.mnemonic(), offset * 2 + 2),
        }
    }
}

/// Decodes a source operand given register + As mode, resolving constant
/// generators and PC-relative addressing.
fn decode_src(reg: Reg, as_mode: u16, ext_at: u16, fetch: &mut impl FnMut() -> u16) -> Operand {
    match (reg, as_mode) {
        (Reg::R2, 0) => Operand::Reg(Reg::SR),
        (Reg::R2, 1) => Operand::Absolute(fetch()),
        (Reg::R2, 2) => Operand::Imm(4),
        (Reg::R2, 3) => Operand::Imm(8),
        (Reg::R3, 0) => Operand::Imm(0),
        (Reg::R3, 1) => Operand::Imm(1),
        (Reg::R3, 2) => Operand::Imm(2),
        (Reg::R3, 3) => Operand::Imm(0xFFFF),
        (Reg::R0, 3) => Operand::Imm(fetch()),
        (Reg::R0, 1) => {
            let x = fetch();
            Operand::Symbolic(ext_at.wrapping_add(x))
        }
        (r, 0) => Operand::Reg(r),
        (r, 1) => Operand::Indexed(r, fetch()),
        (r, 2) => Operand::Indirect(r),
        (r, _) => Operand::IndirectInc(r),
    }
}

/// Encodes a source operand → (register field, As field, extension words).
fn encode_src(op: Operand, ext_at: u16, use_cg: bool) -> Result<(u16, u16, Vec<u16>), EncodeError> {
    Ok(match op {
        Operand::Reg(r) => (r.index() as u16, 0, vec![]),
        Operand::Imm(0) if use_cg => (3, 0, vec![]),
        Operand::Imm(1) if use_cg => (3, 1, vec![]),
        Operand::Imm(2) if use_cg => (3, 2, vec![]),
        Operand::Imm(0xFFFF) if use_cg => (3, 3, vec![]),
        Operand::Imm(4) if use_cg => (2, 2, vec![]),
        Operand::Imm(8) if use_cg => (2, 3, vec![]),
        Operand::Imm(v) => (0, 3, vec![v]),
        Operand::Indexed(r, x) => {
            if matches!(r, Reg::R0 | Reg::R2 | Reg::R3) {
                return Err(EncodeError::ConstGenConflict(op));
            }
            (r.index() as u16, 1, vec![x])
        }
        Operand::Symbolic(target) => (0, 1, vec![target.wrapping_sub(ext_at)]),
        Operand::Absolute(a) => (2, 1, vec![a]),
        // `@r0` is a legal (if exotic) encoding; only r2/r3 collide with the
        // constant generators in As=10.
        Operand::Indirect(r) => {
            if matches!(r, Reg::R2 | Reg::R3) {
                return Err(EncodeError::ConstGenConflict(op));
            }
            (r.index() as u16, 2, vec![])
        }
        Operand::IndirectInc(r) => {
            if matches!(r, Reg::R0 | Reg::R2 | Reg::R3) {
                return Err(EncodeError::ConstGenConflict(op));
            }
            (r.index() as u16, 3, vec![])
        }
    })
}

/// Encodes a destination operand → (register field, Ad bit, extension words).
fn encode_dst(op: Operand, ext_at: u16) -> Result<(u16, u16, Vec<u16>), EncodeError> {
    Ok(match op {
        Operand::Reg(r) => (r.index() as u16, 0, vec![]),
        Operand::Indexed(r, x) => {
            if matches!(r, Reg::R0 | Reg::R2) {
                return Err(EncodeError::ConstGenConflict(op));
            }
            (r.index() as u16, 1, vec![x])
        }
        Operand::Symbolic(target) => (0, 1, vec![target.wrapping_sub(ext_at)]),
        Operand::Absolute(a) => (2, 1, vec![a]),
        other => return Err(EncodeError::BadOperand(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(i: Insn, at: u16) -> Vec<u16> {
        i.encode(at).expect("encodable")
    }

    fn dec(at: u16, words: &[u16]) -> Insn {
        let mut it = words[1..].iter().copied();
        Insn::decode(at, words[0], || it.next().expect("enough words")).expect("decodable")
    }

    #[test]
    fn known_encodings_from_ti_toolchain() {
        // mov #21, r10
        assert_eq!(
            enc(
                Insn::Two {
                    op: Op2::Mov,
                    size: Size::Word,
                    src: Operand::Imm(21),
                    dst: Operand::Reg(Reg::R10)
                },
                0
            ),
            vec![0x403A, 0x0015]
        );
        // add r10, r10
        assert_eq!(
            enc(
                Insn::Two {
                    op: Op2::Add,
                    size: Size::Word,
                    src: Operand::Reg(Reg::R10),
                    dst: Operand::Reg(Reg::R10)
                },
                0
            ),
            vec![0x5A0A]
        );
        // clr r5 == mov #0, r5 (constant generator r3)
        assert_eq!(
            enc(
                Insn::Two {
                    op: Op2::Mov,
                    size: Size::Word,
                    src: Operand::Imm(0),
                    dst: Operand::Reg(Reg::R5)
                },
                0
            ),
            vec![0x4305]
        );
        // ret == mov @sp+, pc
        assert_eq!(
            enc(
                Insn::Two {
                    op: Op2::Mov,
                    size: Size::Word,
                    src: Operand::IndirectInc(Reg::SP),
                    dst: Operand::Reg(Reg::PC)
                },
                0
            ),
            vec![0x4130]
        );
        // push r15
        assert_eq!(
            enc(Insn::One { op: Op1::Push, size: Size::Word, sd: Operand::Reg(Reg::R15) }, 0),
            vec![0x120F]
        );
        // call #0xF000
        assert_eq!(
            enc(Insn::One { op: Op1::Call, size: Size::Word, sd: Operand::Imm(0xF000) }, 0),
            vec![0x12B0, 0xF000]
        );
        // reti
        assert_eq!(
            enc(Insn::One { op: Op1::Reti, size: Size::Word, sd: Operand::Reg(Reg::CG2) }, 0),
            vec![0x1300]
        );
        // swpb r5 / sxt r15 / rrc r4
        assert_eq!(
            enc(Insn::One { op: Op1::Swpb, size: Size::Word, sd: Operand::Reg(Reg::R5) }, 0),
            vec![0x1085]
        );
        assert_eq!(
            enc(Insn::One { op: Op1::Sxt, size: Size::Word, sd: Operand::Reg(Reg::R15) }, 0),
            vec![0x118F]
        );
        assert_eq!(
            enc(Insn::One { op: Op1::Rrc, size: Size::Word, sd: Operand::Reg(Reg::R4) }, 0),
            vec![0x1004]
        );
        // mov &0x0172, r6
        assert_eq!(
            enc(
                Insn::Two {
                    op: Op2::Mov,
                    size: Size::Word,
                    src: Operand::Absolute(0x0172),
                    dst: Operand::Reg(Reg::R6)
                },
                0
            ),
            vec![0x4216, 0x0172]
        );
        // mov.b @r15, r14 (the read instrumented in the paper's Fig. 5)
        assert_eq!(
            enc(
                Insn::Two {
                    op: Op2::Mov,
                    size: Size::Byte,
                    src: Operand::Indirect(Reg::R15),
                    dst: Operand::Reg(Reg::R14)
                },
                0
            ),
            vec![0x4F6E]
        );
        // jmp . (self loop): offset −1
        assert_eq!(enc(Insn::Jump { cond: Cond::Always, offset: -1 }, 0), vec![0x3FFF]);
        // jz $+4 (skip one word)
        assert_eq!(enc(Insn::Jump { cond: Cond::Z, offset: 1 }, 0), vec![0x2401]);
    }

    #[test]
    fn constant_generator_immediates_have_no_ext_word() {
        for v in [0u16, 1, 2, 4, 8, 0xFFFF] {
            let i = Insn::Two {
                op: Op2::Mov,
                size: Size::Word,
                src: Operand::Imm(v),
                dst: Operand::Reg(Reg::R5),
            };
            assert_eq!(i.len_words(), 1, "#{v}");
            assert_eq!(enc(i, 0).len(), 1, "#{v}");
        }
        let i = Insn::Two {
            op: Op2::Mov,
            size: Size::Word,
            src: Operand::Imm(3),
            dst: Operand::Reg(Reg::R5),
        };
        assert_eq!(i.len_words(), 2);
    }

    #[test]
    fn decode_recovers_const_generators() {
        // mov #4, r5 via r2 As=10.
        let i = dec(0, &[0x4225]);
        assert_eq!(
            i,
            Insn::Two {
                op: Op2::Mov,
                size: Size::Word,
                src: Operand::Imm(4),
                dst: Operand::Reg(Reg::R5)
            }
        );
        // mov #-1, r5 via r3 As=11.
        let i = dec(0, &[0x4335]);
        assert_eq!(
            i,
            Insn::Two {
                op: Op2::Mov,
                size: Size::Word,
                src: Operand::Imm(0xFFFF),
                dst: Operand::Reg(Reg::R5)
            }
        );
    }

    #[test]
    fn symbolic_round_trips_position_dependently() {
        let at = 0xE010;
        let i = Insn::Two {
            op: Op2::Mov,
            size: Size::Word,
            src: Operand::Symbolic(0xE100),
            dst: Operand::Reg(Reg::R7),
        };
        let w = enc(i, at);
        assert_eq!(w.len(), 2);
        // Offset is relative to the extension-word address (at + 2).
        assert_eq!(w[1], 0xE100u16.wrapping_sub(at + 2));
        assert_eq!(dec(at, &w), i);
        // Same instruction encoded elsewhere gets a different ext word but
        // decodes to the same normalised form.
        let w2 = enc(i, 0x1000);
        assert_ne!(w[1], w2[1]);
        assert_eq!(dec(0x1000, &w2), i);
    }

    #[test]
    fn symbolic_destination_round_trips() {
        let at = 0xC000;
        let i = Insn::Two {
            op: Op2::Add,
            size: Size::Word,
            src: Operand::Imm(100),
            dst: Operand::Symbolic(0xC200),
        };
        let w = enc(i, at);
        assert_eq!(w.len(), 3);
        assert_eq!(dec(at, &w), i);
    }

    #[test]
    fn invalid_opcodes_rejected() {
        assert!(matches!(Insn::decode(0, 0x0000, || 0), Err(DecodeError::InvalidOpcode(_))));
        // Format II code 111 (beyond RETI).
        assert!(matches!(
            Insn::decode(0, 0x1380 | 0x0080, || 0),
            Err(DecodeError::InvalidOpcode(_))
        ));
        // call.b
        assert!(matches!(
            Insn::decode(0, 0x12B0 | 0x0040, || 0),
            Err(DecodeError::ByteSizeUnsupported(_))
        ));
    }

    #[test]
    fn word_only_ops_reject_byte_encode() {
        let i = Insn::One { op: Op1::Call, size: Size::Byte, sd: Operand::Reg(Reg::R5) };
        assert!(matches!(i.encode(0), Err(EncodeError::ByteSizeUnsupported(Op1::Call))));
    }

    #[test]
    fn indirect_dst_is_rejected() {
        let i = Insn::Two {
            op: Op2::Mov,
            size: Size::Word,
            src: Operand::Reg(Reg::R8),
            dst: Operand::Indirect(Reg::R4),
        };
        assert!(matches!(i.encode(0), Err(EncodeError::BadOperand(_))));
    }

    #[test]
    fn jump_to_computes_offsets() {
        let j = Insn::jump_to(Cond::Always, 0xE000, 0xE000).unwrap();
        assert_eq!(j, Insn::Jump { cond: Cond::Always, offset: -1 });
        let j = Insn::jump_to(Cond::Z, 0xE000, 0xE006).unwrap();
        assert_eq!(j, Insn::Jump { cond: Cond::Z, offset: 2 });
        assert!(Insn::jump_to(Cond::Z, 0, 0x8000).is_err());
        assert!(Insn::jump_to(Cond::Z, 0, 3).is_err());
    }

    #[test]
    fn alters_control_flow_classification() {
        let ret = Insn::Two {
            op: Op2::Mov,
            size: Size::Word,
            src: Operand::IndirectInc(Reg::SP),
            dst: Operand::Reg(Reg::PC),
        };
        assert!(ret.alters_control_flow());
        let br = Insn::Two {
            op: Op2::Mov,
            size: Size::Word,
            src: Operand::Reg(Reg::R11),
            dst: Operand::Reg(Reg::PC),
        };
        assert!(br.alters_control_flow());
        // cmp to PC does not write the PC.
        let cmp = Insn::Two {
            op: Op2::Cmp,
            size: Size::Word,
            src: Operand::Imm(0),
            dst: Operand::Reg(Reg::PC),
        };
        assert!(!cmp.alters_control_flow());
        let call = Insn::One { op: Op1::Call, size: Size::Word, sd: Operand::Imm(0xF000) };
        assert!(call.alters_control_flow());
        let mov = Insn::Two {
            op: Op2::Mov,
            size: Size::Word,
            src: Operand::Reg(Reg::R5),
            dst: Operand::Reg(Reg::R6),
        };
        assert!(!mov.alters_control_flow());
        assert!(Insn::Jump { cond: Cond::N, offset: 3 }.alters_control_flow());
    }

    #[test]
    fn display_forms() {
        let i = Insn::Two {
            op: Op2::Mov,
            size: Size::Byte,
            src: Operand::Indirect(Reg::R15),
            dst: Operand::Reg(Reg::R14),
        };
        assert_eq!(i.to_string(), "mov.b @r15, r14");
        let j = Insn::Jump { cond: Cond::Always, offset: -1 };
        assert_eq!(j.to_string(), "jmp +0");
    }

    #[test]
    fn len_words_matches_encoding() {
        let cases = [
            Insn::Two {
                op: Op2::Mov,
                size: Size::Word,
                src: Operand::Indexed(Reg::R5, 4),
                dst: Operand::Indexed(Reg::R6, 8),
            },
            Insn::Two {
                op: Op2::Cmp,
                size: Size::Word,
                src: Operand::Imm(0x1234),
                dst: Operand::Absolute(0x200),
            },
            Insn::One { op: Op1::Push, size: Size::Word, sd: Operand::Imm(300) },
            Insn::One { op: Op1::Reti, size: Size::Word, sd: Operand::Reg(Reg::CG2) },
            Insn::Jump { cond: Cond::C, offset: 5 },
        ];
        for i in cases {
            assert_eq!(usize::from(i.len_words()), enc(i, 0x4000).len(), "{i}");
        }
    }
}
