//! Predecoded instruction cache for the emulation fast path.
//!
//! Replaying an attested operation executes the same instructions over and
//! over — every loop iteration, and (server-side) every proof of the same
//! operation — yet the baseline [`crate::cpu::Cpu`] re-ran the decoder on
//! each step. The cache is a PC-indexed table of decoded [`Insn`]s plus
//! their cycle counts and raw encodings, filled lazily the first time an
//! address executes.
//!
//! # Soundness: validation on hit
//!
//! A hit is only used after comparing the cached encoding words against the
//! words currently in memory. The decoder would have to read those words
//! anyway, so validation adds no bus traffic: the cached and uncached
//! paths perform *identical* reads in identical order.
//! Any write into code memory (a CPU store, self-modifying code, a
//! DMA master, the DIALED verifier's input injection, or a bulk image
//! reload between proofs) therefore forces a re-decode automatically, with
//! no invalidation hooks to forget. A mismatch repairs the entry in place.
//!
//! Instruction length is a function of the first encoding word alone (the
//! addressing-mode fields), so a partial match never over-reads: once the
//! first word matches, the live instruction spans exactly as many words as
//! the cached one.
//!
//! # Layout: paged table
//!
//! The table is split into [`PAGES`] pages of [`PAGE_SLOTS`] word-aligned
//! slots (1 KiB of address space per page), each allocated on first use.
//! Operations occupy a few KiB of code, so a cold verifier materialises a
//! handful of pages instead of a megabyte-sized dense table — keeping
//! one-shot verification as cheap as it was before the cache existed.

use crate::isa::Insn;

/// Maximum instruction length in words (opcode + src ext + dst ext).
pub(crate) const MAX_INSN_WORDS: usize = 3;

/// Bus write-generation stamp covering an entry's encoding bytes: the bus
/// identity plus the generations of the first and last pages the encoding
/// touches (equal when it sits in one page). While the live stamps match,
/// the bytes provably haven't changed and validation can skip the reads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Stamp {
    pub(crate) id: u64,
    pub(crate) lo: u64,
    pub(crate) hi: u64,
}

/// One cached decode: the raw words it was decoded from, the result, and
/// the precomputed cycle count.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Entry {
    pub(crate) words: [u16; MAX_INSN_WORDS],
    pub(crate) insn: Insn,
    pub(crate) cycles: u32,
    pub(crate) len_words: u8,
    /// `None` when the bus tracks no generations — always word-validate.
    pub(crate) stamp: Option<Stamp>,
}

/// Hit/miss counters, exposed for tests and throughput benches.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ICacheStats {
    /// Steps served from the cache (encoding matched memory).
    pub hits: u64,
    /// Steps that ran the decoder: cold entries and validation mismatches.
    pub misses: u64,
}

/// Word-aligned slots per page (1 KiB of address space).
const PAGE_SLOTS: usize = 512;
/// Pages covering the 64 KiB address space.
const PAGES: usize = 0x1_0000 / 2 / PAGE_SLOTS;

type Page = Box<[Option<Entry>; PAGE_SLOTS]>;

/// Paged PC-indexed table of predecoded instructions.
#[derive(Debug)]
pub(crate) struct ICache {
    pages: [Option<Page>; PAGES],
    stats: ICacheStats,
}

impl Default for ICache {
    fn default() -> Self {
        Self { pages: std::array::from_fn(|_| None), stats: ICacheStats::default() }
    }
}

/// The cache is a transparent accelerator: cloning a CPU starts the clone
/// with a cold cache rather than copying the table.
impl Clone for ICache {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl ICache {
    /// Looks up the entry for `pc`. Odd PCs are never cached: the slot
    /// index cannot distinguish `pc` from `pc & !1`, and a decode at an odd
    /// address resolves PC-relative operands differently than its aligned
    /// twin even though both read the same memory words.
    #[inline]
    pub(crate) fn lookup(&self, pc: u16) -> Option<Entry> {
        if pc & 1 != 0 {
            return None;
        }
        let slot = usize::from(pc) >> 1;
        let page = self.pages[slot / PAGE_SLOTS].as_ref()?;
        page[slot % PAGE_SLOTS]
    }

    /// Records a successful decode of `words[..len]` at `pc`.
    pub(crate) fn insert(
        &mut self,
        pc: u16,
        words: [u16; MAX_INSN_WORDS],
        len: usize,
        insn: Insn,
        cycles: u32,
        stamp: Option<Stamp>,
    ) {
        if pc & 1 != 0 || len == 0 || len > MAX_INSN_WORDS {
            return;
        }
        let slot = usize::from(pc) >> 1;
        let page =
            self.pages[slot / PAGE_SLOTS].get_or_insert_with(|| Box::new([None; PAGE_SLOTS]));
        page[slot % PAGE_SLOTS] = Some(Entry { words, insn, cycles, len_words: len as u8, stamp });
    }

    /// Refreshes the stamp of an existing entry after a successful word
    /// validation (the bytes are proven current; future hits may take the
    /// generation fast path again).
    #[inline]
    pub(crate) fn restamp(&mut self, pc: u16, stamp: Option<Stamp>) {
        if pc & 1 != 0 {
            return;
        }
        let slot = usize::from(pc) >> 1;
        if let Some(page) = self.pages[slot / PAGE_SLOTS].as_mut() {
            if let Some(e) = page[slot % PAGE_SLOTS].as_mut() {
                e.stamp = stamp;
            }
        }
    }

    /// Drops every entry (and returns the page allocations).
    pub(crate) fn flush(&mut self) {
        self.pages = std::array::from_fn(|_| None);
    }

    pub(crate) fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    pub(crate) fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    pub(crate) fn stats(&self) -> ICacheStats {
        self.stats
    }
}
