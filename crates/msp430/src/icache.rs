//! Predecoded instruction cache for the emulation fast path.
//!
//! Replaying an attested operation executes the same instructions over and
//! over — every loop iteration, and (server-side) every proof of the same
//! operation — yet the baseline [`crate::cpu::Cpu`] re-ran the decoder on
//! each step. The cache is a PC-indexed table of decoded [`Insn`]s plus
//! their cycle counts and raw encodings, filled lazily the first time an
//! address executes.
//!
//! # Soundness: validation on hit
//!
//! A hit is only used after comparing the cached encoding words against the
//! words currently in memory. The decoder would have to read those words
//! anyway, so validation adds no bus traffic: the cached and uncached
//! paths perform *identical* reads in identical order.
//! Any write into code memory (a CPU store, self-modifying code, a
//! DMA master, the DIALED verifier's input injection, or a bulk image
//! reload between proofs) therefore forces a re-decode automatically, with
//! no invalidation hooks to forget. A mismatch repairs the entry in place.
//!
//! Instruction length is a function of the first encoding word alone (the
//! addressing-mode fields), so a partial match never over-reads: once the
//! first word matches, the live instruction spans exactly as many words as
//! the cached one.
//!
//! # Layout: paged table
//!
//! The table is split into [`PAGES`] pages of [`PAGE_SLOTS`] word-aligned
//! slots (1 KiB of address space per page), each allocated on first use.
//! Operations occupy a few KiB of code, so a cold verifier materialises a
//! handful of pages instead of a megabyte-sized dense table — keeping
//! one-shot verification as cheap as it was before the cache existed.

use crate::isa::Insn;
use crate::mem::{Bus, GEN_PAGE_BYTES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum instruction length in words (opcode + src ext + dst ext).
pub(crate) const MAX_INSN_WORDS: usize = 3;

/// Bus write-generation stamp covering an entry's encoding bytes: the bus
/// identity plus the generations of the first and last pages the encoding
/// touches (equal when it sits in one page). While the live stamps match,
/// the bytes provably haven't changed and validation can skip the reads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Stamp {
    pub(crate) id: u64,
    pub(crate) lo: u64,
    pub(crate) hi: u64,
}

/// One cached decode: the raw words it was decoded from, the result, and
/// the precomputed cycle count.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Entry {
    pub(crate) words: [u16; MAX_INSN_WORDS],
    pub(crate) insn: Insn,
    pub(crate) cycles: u32,
    pub(crate) len_words: u8,
    /// `None` when the bus tracks no generations — always word-validate.
    pub(crate) stamp: Option<Stamp>,
}

/// Hit/miss counters, exposed for tests and throughput benches.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ICacheStats {
    /// Steps served from the cache (encoding matched memory).
    pub hits: u64,
    /// Steps that ran the decoder: cold entries and validation mismatches.
    pub misses: u64,
}

/// Word-aligned slots per page (1 KiB of address space).
const PAGE_SLOTS: usize = 512;
/// Pages covering the 64 KiB address space.
const PAGES: usize = 0x1_0000 / 2 / PAGE_SLOTS;

type Page = Box<[Option<Entry>; PAGE_SLOTS]>;

/// Paged PC-indexed table of predecoded instructions.
#[derive(Debug)]
pub(crate) struct ICache {
    pages: [Option<Page>; PAGES],
    stats: ICacheStats,
}

impl Default for ICache {
    fn default() -> Self {
        Self { pages: std::array::from_fn(|_| None), stats: ICacheStats::default() }
    }
}

/// The cache is a transparent accelerator: cloning a CPU starts the clone
/// with a cold cache rather than copying the table.
impl Clone for ICache {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl ICache {
    /// Looks up the entry for `pc`. Odd PCs are never cached: the slot
    /// index cannot distinguish `pc` from `pc & !1`, and a decode at an odd
    /// address resolves PC-relative operands differently than its aligned
    /// twin even though both read the same memory words.
    #[inline]
    pub(crate) fn lookup(&self, pc: u16) -> Option<Entry> {
        if pc & 1 != 0 {
            return None;
        }
        let slot = usize::from(pc) >> 1;
        let page = self.pages[slot / PAGE_SLOTS].as_ref()?;
        page[slot % PAGE_SLOTS]
    }

    /// Records a successful decode of `words[..len]` at `pc`.
    pub(crate) fn insert(
        &mut self,
        pc: u16,
        words: [u16; MAX_INSN_WORDS],
        len: usize,
        insn: Insn,
        cycles: u32,
        stamp: Option<Stamp>,
    ) {
        if pc & 1 != 0 || len == 0 || len > MAX_INSN_WORDS {
            return;
        }
        let slot = usize::from(pc) >> 1;
        let page =
            self.pages[slot / PAGE_SLOTS].get_or_insert_with(|| Box::new([None; PAGE_SLOTS]));
        page[slot % PAGE_SLOTS] = Some(Entry { words, insn, cycles, len_words: len as u8, stamp });
    }

    /// Refreshes the stamp of an existing entry after a successful word
    /// validation (the bytes are proven current; future hits may take the
    /// generation fast path again).
    #[inline]
    pub(crate) fn restamp(&mut self, pc: u16, stamp: Option<Stamp>) {
        if pc & 1 != 0 {
            return;
        }
        let slot = usize::from(pc) >> 1;
        if let Some(page) = self.pages[slot / PAGE_SLOTS].as_mut() {
            if let Some(e) = page[slot % PAGE_SLOTS].as_mut() {
                e.stamp = stamp;
            }
        }
    }

    /// Drops every entry (and returns the page allocations).
    pub(crate) fn flush(&mut self) {
        self.pages = std::array::from_fn(|_| None);
    }

    pub(crate) fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    pub(crate) fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    pub(crate) fn stats(&self) -> ICacheStats {
        self.stats
    }
}

// ------------------------------------------------------------- superblocks
//
// One level above the per-instruction cache: straight-line runs of
// predecoded instructions ("superblocks", the threaded-code/TB-chaining
// idea from emulator literature) dispatched block-at-a-time so the
// steady-state loop pays the cache probe, the log-site test and the
// halt/IRQ checks once per block instead of once per step.

/// Maximum instructions stitched into one superblock. Long enough to cover
/// the straight-line body between log sites of instrumented operations,
/// short enough that a step-budget-bounded dispatch rarely splits a block.
pub(crate) const MAX_BLOCK_INSNS: usize = 64;

/// Maximum distinct write-generation pages a block's code may span: every
/// instruction *starts* inside the entry page, and at most the extension
/// words of a tail instruction straddle into the following page.
pub(crate) const MAX_BLOCK_PAGES: usize = 2;

/// Base address of the write-generation page containing `addr`.
#[inline]
pub(crate) fn page_base(addr: u16) -> u16 {
    addr & !(GEN_PAGE_BYTES as u16 - 1)
}

/// One predecoded instruction inside a superblock: the decoded form plus
/// its precomputed fall-through PC and cycle count, so dispatch never
/// recomputes lengths or timings.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BlockInsn {
    pub(crate) pc: u16,
    pub(crate) next_pc: u16,
    pub(crate) insn: Insn,
    pub(crate) cycles: u32,
}

/// A straight-line superblock: predecoded instructions from the entry PC up
/// to the first control-flow instruction, SR write, break (log-site)
/// address, page-boundary crossing, or the [`MAX_BLOCK_INSNS`] cap.
///
/// Reuse is validated by comparing the live write-generations of every code
/// page the block was stitched from ([`Block::is_fresh`]); any mismatch
/// forces a re-stitch. This is the same no-invalidation-hooks discipline as
/// the per-instruction cache's stamps, amortized over the whole block: it
/// keeps self-modifying code and bulk image reloads sound without the block
/// ever re-reading its encoding words.
#[derive(Debug)]
pub(crate) struct Block {
    pub(crate) insns: Vec<BlockInsn>,
    bus_id: u64,
    /// (page base, generation at stitch time) per code page read.
    pages: [(u16, u64); MAX_BLOCK_PAGES],
    npages: u8,
}

impl Block {
    pub(crate) fn new(bus_id: u64, entry_page: u16, entry_gen: u64) -> Self {
        Self {
            insns: Vec::new(),
            bus_id,
            pages: [(entry_page, entry_gen); MAX_BLOCK_PAGES],
            npages: 1,
        }
    }

    /// Records an additional code page the block reads from (a tail
    /// instruction straddling past the entry page). Returns `false` when
    /// the page cannot be tracked (foreign bus identity or capacity).
    pub(crate) fn note_page(&mut self, bus_id: u64, base: u16, gen: u64) -> bool {
        if bus_id != self.bus_id {
            return false;
        }
        for &(b, g) in &self.pages[..usize::from(self.npages)] {
            if b == base {
                return g == gen;
            }
        }
        if usize::from(self.npages) == MAX_BLOCK_PAGES {
            return false;
        }
        self.pages[usize::from(self.npages)] = (base, gen);
        self.npages += 1;
        true
    }

    /// Do all code pages still carry the generations seen at stitch time?
    #[inline]
    pub(crate) fn is_fresh(&self, bus: &impl Bus) -> bool {
        self.pages[..usize::from(self.npages)]
            .iter()
            .all(|&(base, gen)| bus.page_generation(base) == Some((self.bus_id, gen)))
    }

    /// Does `addr` fall inside one of the block's code pages? Used to spot
    /// a store that may have patched an instruction later in this block.
    #[inline]
    pub(crate) fn covers(&self, addr: u16) -> bool {
        let base = page_base(addr);
        self.pages[..usize::from(self.npages)].iter().any(|&(b, _)| b == base)
    }
}

/// Superblock cache counters, exposed for tests and throughput benches.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SuperblockStats {
    /// Block dispatches served from the cache (every page generation matched).
    pub hits: u64,
    /// Cold stitches: no block existed at the entry PC.
    pub misses: u64,
    /// Re-stitches: a cached block's page generations no longer matched
    /// (self-modifying code, input injection, or an image reload).
    pub restitches: u64,
}

static PROC_HITS: AtomicU64 = AtomicU64::new(0);
static PROC_MISSES: AtomicU64 = AtomicU64::new(0);
static PROC_RESTITCHES: AtomicU64 = AtomicU64::new(0);

/// Process-wide aggregate of every core's superblock counters.
///
/// Fleet workloads create short-lived per-worker cores whose local stats
/// die with them; this aggregate is what the fleet throughput harness
/// reports. Counters are bumped once per block *dispatch*, not per step,
/// so the relaxed atomics stay off the per-instruction path.
#[must_use]
pub fn process_superblock_stats() -> SuperblockStats {
    SuperblockStats {
        hits: PROC_HITS.load(Ordering::Relaxed),
        misses: PROC_MISSES.load(Ordering::Relaxed),
        restitches: PROC_RESTITCHES.load(Ordering::Relaxed),
    }
}

/// Addresses at which a superblock must end *before* the instruction, so
/// the address only ever executes as a block **entry**.
///
/// This is how the per-step log-site bitmap probe is folded into block
/// construction: the DIALED verifier marks its input-log sites here, then
/// only tests `is_input` at block entries — a marked PC can never hide in
/// the middle of a block. One bit per address, like the verifier's
/// `SiteIndex`.
#[derive(Clone, Debug)]
pub struct BlockBreaks {
    bits: Box<[u8; 0x2000]>,
}

impl BlockBreaks {
    /// An empty break set.
    #[must_use]
    pub fn new() -> Self {
        Self { bits: Box::new([0; 0x2000]) }
    }

    /// Marks `addr` as a mandatory block boundary.
    pub fn insert(&mut self, addr: u16) {
        self.bits[usize::from(addr >> 3)] |= 1 << (addr & 7);
    }

    /// Is `addr` a mandatory block boundary?
    #[must_use]
    #[inline]
    pub fn contains(&self, addr: u16) -> bool {
        self.bits[usize::from(addr >> 3)] & (1 << (addr & 7)) != 0
    }
}

impl Default for BlockBreaks {
    fn default() -> Self {
        Self::new()
    }
}

type BlockPage = Box<[Option<Box<Block>>; PAGE_SLOTS]>;

/// Paged entry-PC-indexed table of superblocks (mirrors [`ICache`]'s
/// layout: 1 KiB of address space per lazily allocated page).
#[derive(Debug)]
pub(crate) struct SuperCache {
    pages: [Option<BlockPage>; PAGES],
    stats: SuperblockStats,
    breaks: Option<Arc<BlockBreaks>>,
}

impl Default for SuperCache {
    fn default() -> Self {
        Self {
            pages: std::array::from_fn(|_| None),
            stats: SuperblockStats::default(),
            breaks: None,
        }
    }
}

/// Like the instruction cache, cloning yields a cold cache; the break set
/// is configuration, not cached state, and is carried over.
impl Clone for SuperCache {
    fn clone(&self) -> Self {
        Self {
            pages: std::array::from_fn(|_| None),
            stats: SuperblockStats::default(),
            breaks: self.breaks.clone(),
        }
    }
}

impl SuperCache {
    /// Removes and returns the block entered at `pc`, if cached. Dispatch
    /// takes ownership while executing (freeing the core for `&mut self`
    /// instruction execution) and puts the block back afterwards.
    #[inline]
    pub(crate) fn take(&mut self, pc: u16) -> Option<Box<Block>> {
        if pc & 1 != 0 {
            return None;
        }
        let slot = usize::from(pc) >> 1;
        let page = self.pages[slot / PAGE_SLOTS].as_mut()?;
        page[slot % PAGE_SLOTS].take()
    }

    /// Stores `block` as the superblock entered at `pc`.
    pub(crate) fn put(&mut self, pc: u16, block: Box<Block>) {
        if pc & 1 != 0 {
            return;
        }
        let slot = usize::from(pc) >> 1;
        let page = self.pages[slot / PAGE_SLOTS]
            .get_or_insert_with(|| Box::new(std::array::from_fn(|_| None)));
        page[slot % PAGE_SLOTS] = Some(block);
    }

    /// Drops every block (and returns the page allocations).
    pub(crate) fn flush(&mut self) {
        self.pages = std::array::from_fn(|_| None);
    }

    /// Is `pc` in the configured break set?
    #[inline]
    pub(crate) fn breaks_contain(&self, pc: u16) -> bool {
        self.breaks.as_ref().is_some_and(|b| b.contains(pc))
    }

    /// Installs (or clears) the break set. Blocks already stitched under a
    /// different set may span new break addresses, so any *change* —
    /// detected by `Arc` pointer identity, making the per-proof re-install
    /// from a shared set free — flushes the cache.
    pub(crate) fn set_breaks(&mut self, breaks: Option<Arc<BlockBreaks>>) {
        let same = match (&self.breaks, &breaks) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        if !same {
            self.flush();
            self.breaks = breaks;
        }
    }

    pub(crate) fn note_hit(&mut self) {
        self.stats.hits += 1;
        PROC_HITS.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_miss(&mut self) {
        self.stats.misses += 1;
        PROC_MISSES.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_restitch(&mut self) {
        self.stats.restitches += 1;
        PROC_RESTITCHES.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> SuperblockStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_breaks_bitmap_round_trips() {
        let mut b = BlockBreaks::new();
        for addr in [0x0000u16, 0xE001, 0xE002, 0xFFFF] {
            assert!(!b.contains(addr));
            b.insert(addr);
            assert!(b.contains(addr));
        }
        assert!(!b.contains(0xE000));
        assert!(!b.contains(0xE003));
    }

    #[test]
    fn block_page_tracking_caps_and_dedupes() {
        let mut blk = Block::new(7, 0xE000, 3);
        assert!(blk.covers(0xE3FF));
        assert!(!blk.covers(0xE400));
        // Re-noting the entry page with the same generation is a no-op...
        assert!(blk.note_page(7, 0xE000, 3));
        // ...but a different generation or bus is a refusal.
        assert!(!blk.note_page(7, 0xE000, 4));
        assert!(!blk.note_page(8, 0xE400, 3));
        // Second page fits; a third does not.
        assert!(blk.note_page(7, 0xE400, 9));
        assert!(blk.covers(0xE400));
        assert!(!blk.note_page(7, 0xE800, 1));
    }
}
