//! Status-register (SR / `r2`) bit definitions and flag arithmetic.
//!
//! The MSP430 keeps its four condition codes (C, Z, N, V) together with the
//! interrupt-enable and low-power bits inside `r2`. This module defines the
//! bit masks and the arithmetic helpers that compute condition codes exactly
//! as the ALU does, for both word and byte operations.

use crate::isa::Size;

/// Carry flag (bit 0).
pub const C: u16 = 0x0001;
/// Zero flag (bit 1).
pub const Z: u16 = 0x0002;
/// Negative flag (bit 2).
pub const N: u16 = 0x0004;
/// General interrupt enable (bit 3).
pub const GIE: u16 = 0x0008;
/// CPU off — halts instruction execution (bit 4).
pub const CPUOFF: u16 = 0x0010;
/// Oscillator off (bit 5); modelled but has no behavioural effect here.
pub const OSCOFF: u16 = 0x0020;
/// System clock generator 0 (bit 6); no behavioural effect here.
pub const SCG0: u16 = 0x0040;
/// System clock generator 1 (bit 7); no behavioural effect here.
pub const SCG1: u16 = 0x0080;
/// Overflow flag (bit 8).
pub const V: u16 = 0x0100;

/// Result of an ALU operation: the (size-masked) value plus the four
/// condition codes it produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AluOut {
    /// Result masked to the operation size.
    pub value: u16,
    /// Carry out.
    pub c: bool,
    /// Result was zero.
    pub z: bool,
    /// Result msb set.
    pub n: bool,
    /// Signed overflow.
    pub v: bool,
}

/// Mask for the given operation size (0xFFFF or 0x00FF).
#[must_use]
pub fn mask(size: Size) -> u16 {
    match size {
        Size::Word => 0xFFFF,
        Size::Byte => 0x00FF,
    }
}

/// Most-significant-bit mask for the size.
#[must_use]
pub fn sign_bit(size: Size) -> u16 {
    match size {
        Size::Word => 0x8000,
        Size::Byte => 0x0080,
    }
}

/// Full adder over `a + b + carry_in`, producing the MSP430 condition codes.
///
/// Subtraction is expressed as `add(dst, !src, carry_in)` exactly like the
/// hardware (`SUB` uses carry-in 1, `SUBC` uses the C flag).
#[must_use]
pub fn add(a: u16, b: u16, carry_in: bool, size: Size) -> AluOut {
    let m = mask(size);
    let s = sign_bit(size);
    let (a, b) = (a & m, b & m);
    let wide = u32::from(a) + u32::from(b) + u32::from(carry_in);
    let value = (wide as u16) & m;
    let c = wide > u32::from(m);
    let n = value & s != 0;
    let z = value == 0;
    // Overflow: operands share a sign that the result does not.
    let v = ((a & s) == (b & s)) && ((value & s) != (a & s));
    AluOut { value, c, z, n, v }
}

/// `dst - src` (+ optional borrow chain through `carry_in`).
///
/// `SUB`/`CMP` pass `carry_in = true`; `SUBC` passes the current C flag.
#[must_use]
pub fn sub(dst: u16, src: u16, carry_in: bool, size: Size) -> AluOut {
    add(dst, !src & mask(size), carry_in, size)
}

/// Logic-group flags (`AND`, `BIT`, `SXT`): N and Z from the result,
/// C = "result not zero", V = 0.
#[must_use]
pub fn logic(value: u16, size: Size) -> AluOut {
    let value = value & mask(size);
    let z = value == 0;
    AluOut { value, c: !z, z, n: value & sign_bit(size) != 0, v: false }
}

/// `XOR` flags: like [`logic`] but V is set when *both* operands were
/// negative (per the family user's guide).
#[must_use]
pub fn xor(a: u16, b: u16, size: Size) -> AluOut {
    let s = sign_bit(size);
    let mut out = logic((a ^ b) & mask(size), size);
    out.v = (a & s != 0) && (b & s != 0);
    out
}

/// Decimal (BCD) addition used by `DADD`.
///
/// Adds digit-by-digit with decimal carries. V is architecturally undefined
/// after `DADD`; we report `false` and the CPU leaves the V bit untouched.
#[must_use]
pub fn dadd(a: u16, b: u16, carry_in: bool, size: Size) -> AluOut {
    let digits = match size {
        Size::Word => 4,
        Size::Byte => 2,
    };
    let mut carry = u16::from(carry_in);
    let mut value: u16 = 0;
    for d in 0..digits {
        let da = (a >> (4 * d)) & 0xF;
        let db = (b >> (4 * d)) & 0xF;
        let mut sum = da + db + carry;
        carry = 0;
        if sum > 9 {
            sum += 6;
            carry = 1;
        }
        value |= (sum & 0xF) << (4 * d);
    }
    let value = value & mask(size);
    AluOut { value, c: carry != 0, z: value == 0, n: value & sign_bit(size) != 0, v: false }
}

/// Packs condition codes into SR bits (leaving the rest of `sr` intact).
///
/// `keep_v` preserves the current V bit, used by `DADD` whose V output is
/// architecturally undefined.
#[must_use]
pub fn apply(sr: u16, out: &AluOut, keep_v: bool) -> u16 {
    let mut sr = sr & !(C | Z | N | if keep_v { 0 } else { V });
    if out.c {
        sr |= C;
    }
    if out.z {
        sr |= Z;
    }
    if out.n {
        sr |= N;
    }
    if out.v && !keep_v {
        sr |= V;
    }
    sr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Size::{Byte, Word};

    #[test]
    fn add_basic_carry_and_overflow() {
        let o = add(0xFFFF, 1, false, Word);
        assert_eq!(o.value, 0);
        assert!(o.c && o.z && !o.n && !o.v);

        let o = add(0x7FFF, 1, false, Word);
        assert_eq!(o.value, 0x8000);
        assert!(!o.c && !o.z && o.n && o.v);

        let o = add(0x8000, 0x8000, false, Word);
        assert_eq!(o.value, 0);
        assert!(o.c && o.z && o.v);
    }

    #[test]
    fn byte_add_ignores_high_bytes() {
        let o = add(0x12FF, 0xAB01, false, Byte);
        assert_eq!(o.value, 0x00);
        assert!(o.c && o.z);
    }

    #[test]
    fn sub_carry_means_no_borrow() {
        // 5 - 3: no borrow → C set.
        let o = sub(5, 3, true, Word);
        assert_eq!(o.value, 2);
        assert!(o.c && !o.z && !o.n);
        // 3 - 5: borrow → C clear, negative.
        let o = sub(3, 5, true, Word);
        assert_eq!(o.value, 0xFFFE);
        assert!(!o.c && o.n);
        // x - x = 0 with C set.
        let o = sub(0x1234, 0x1234, true, Word);
        assert!(o.c && o.z);
    }

    #[test]
    fn sub_signed_overflow() {
        // 0x8000 - 1 = 0x7FFF overflows (neg - pos = pos).
        let o = sub(0x8000, 1, true, Word);
        assert_eq!(o.value, 0x7FFF);
        assert!(o.v);
    }

    #[test]
    fn logic_carry_is_not_zero() {
        assert!(logic(0, Word).z);
        assert!(!logic(0, Word).c);
        assert!(logic(1, Word).c);
        assert!(logic(0x8000, Word).n);
        assert!(!logic(0x80, Word).n);
        assert!(logic(0x80, Byte).n);
    }

    #[test]
    fn xor_overflow_when_both_negative() {
        assert!(xor(0x8000, 0x8001, Word).v);
        assert!(!xor(0x8000, 0x0001, Word).v);
        assert!(xor(0x80, 0xFF, Byte).v);
    }

    #[test]
    fn dadd_decimal_digits() {
        // 0x0999 + 0x0001 = 0x1000 in BCD.
        let o = dadd(0x0999, 0x0001, false, Word);
        assert_eq!(o.value, 0x1000);
        assert!(!o.c);
        // 0x9999 + 0x0001 wraps with carry.
        let o = dadd(0x9999, 0x0001, false, Word);
        assert_eq!(o.value, 0x0000);
        assert!(o.c && o.z);
        // Carry-in participates: 99 + 00 + 1 = 100 (byte → 00 carry).
        let o = dadd(0x99, 0x00, true, Byte);
        assert_eq!(o.value, 0x00);
        assert!(o.c);
    }

    #[test]
    fn apply_sets_and_clears() {
        let out = AluOut { value: 0, c: true, z: true, n: false, v: false };
        let sr = apply(N | V | GIE, &out, false);
        assert_eq!(sr, C | Z | GIE);
        // keep_v preserves V.
        let sr = apply(V, &out, true);
        assert_eq!(sr & V, V);
    }
}
