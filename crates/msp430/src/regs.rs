//! The MSP430 register file.
//!
//! Sixteen 16-bit registers. `r0`–`r3` are special:
//!
//! | Register | Alias | Role |
//! |---|---|---|
//! | `r0` | `PC` | program counter (always even) |
//! | `r1` | `SP` | stack pointer (always even) |
//! | `r2` | `SR`/`CG1` | status register / constant generator 1 |
//! | `r3` | `CG2` | constant generator 2 |
//!
//! Tiny-CFA/DIALED additionally reserve `r4` as the log stack pointer `R`
//! (a software convention enforced at instrumentation time, not hardware).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the sixteen MSP430 registers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// Program counter alias.
    pub const PC: Reg = Reg::R0;
    /// Stack pointer alias.
    pub const SP: Reg = Reg::R1;
    /// Status register alias.
    pub const SR: Reg = Reg::R2;
    /// Constant generator 2 alias.
    pub const CG2: Reg = Reg::R3;

    /// All registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Numeric index 0..=15.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from its 4-bit field value.
    ///
    /// # Panics
    ///
    /// Panics if `idx > 15`; instruction fields are 4 bits wide so decoders
    /// can never trigger this.
    #[must_use]
    pub fn from_index(idx: u16) -> Reg {
        Reg::ALL[usize::from(idx) & 0xF]
    }

    /// True for `r0` (whose indirect/indexed semantics are PC-relative and
    /// whose auto-increment mode encodes immediates).
    #[must_use]
    pub fn is_pc(self) -> bool {
        self == Reg::PC
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// The architectural register file.
///
/// Word writes to `PC` and `SP` silently clear bit 0, matching the hardware
/// (both are always even).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RegFile {
    words: [u16; 16],
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// All registers zeroed.
    #[must_use]
    pub fn new() -> Self {
        Self { words: [0; 16] }
    }

    /// Reads a register.
    #[must_use]
    #[inline]
    pub fn get(&self, r: Reg) -> u16 {
        self.words[r.index()]
    }

    /// Writes a register, forcing PC/SP alignment.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u16) {
        let v = if r == Reg::PC || r == Reg::SP { v & !1 } else { v };
        self.words[r.index()] = v;
    }

    /// Writes only the low byte, clearing the high byte (MSP430 byte-op
    /// register write-back semantics).
    pub fn set_byte(&mut self, r: Reg, v: u8) {
        self.set(r, u16::from(v));
    }

    /// Program counter.
    #[must_use]
    pub fn pc(&self) -> u16 {
        self.get(Reg::PC)
    }

    /// Stack pointer.
    #[must_use]
    pub fn sp(&self) -> u16 {
        self.get(Reg::SP)
    }

    /// Status register.
    #[must_use]
    pub fn sr(&self) -> u16 {
        self.get(Reg::SR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i as u16), *r);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::PC.to_string(), "r0");
        assert_eq!(Reg::R15.to_string(), "r15");
    }

    #[test]
    fn pc_and_sp_stay_even() {
        let mut rf = RegFile::new();
        rf.set(Reg::PC, 0x1235);
        rf.set(Reg::SP, 0x27FF);
        rf.set(Reg::R5, 0x1235);
        assert_eq!(rf.pc(), 0x1234);
        assert_eq!(rf.sp(), 0x27FE);
        assert_eq!(rf.get(Reg::R5), 0x1235);
    }

    #[test]
    fn byte_write_clears_high_byte() {
        let mut rf = RegFile::new();
        rf.set(Reg::R9, 0xBEEF);
        rf.set_byte(Reg::R9, 0x42);
        assert_eq!(rf.get(Reg::R9), 0x0042);
    }
}
