//! Cycle-accurate simulator for the TI MSP430 class of 16-bit MCUs.
//!
//! This crate is the hardware substrate of the DIALED reproduction. The
//! original paper evaluates on a TI MSP430 (openMSP430 soft core on FPGA);
//! we reproduce the *machine* in software so that the rest of the stack —
//! VRASED-style attestation, the APEX proof-of-execution monitor, Tiny-CFA
//! and DIALED instrumentation — can run unchanged embedded operations and
//! report the same code-size / CPU-cycle / log-size metrics.
//!
//! # What is modelled
//!
//! * the complete MSP430 (non-X) instruction set: all 27 core instructions
//!   across Format I (two-operand), Format II (single-operand) and jump
//!   encodings, with byte/word variants and all seven addressing modes
//!   including both constant generators (`r2`/`r3`);
//! * instruction timing per the MSP430x1xx family user's guide cycle table
//!   ([`cycles`]);
//! * a 64 KiB little-endian address space with a configurable
//!   [`layout::MemoryMap`] (peripherals, SRAM data memory, program flash,
//!   interrupt vectors);
//! * memory-mapped peripherals ([`periph`]): GPIO ports, a SAR ADC with
//!   scriptable samples, a 16-bit timer, a UART with scriptable RX bytes,
//!   and a DMA engine (used by attack scenarios);
//! * maskable interrupts and a DMA port, both visible to bus monitors —
//!   these are exactly the signals the APEX hardware watches.
//!
//! Every architectural side effect of every executed instruction is reported
//! in a [`cpu::Step`] record (program counter, decoded instruction, cycle
//! count, and the full list of bus accesses). Hardware monitors such as the
//! APEX FSM consume this stream instead of probing Verilog wires.
//!
//! # Quickstart
//!
//! ```
//! use msp430::{cpu::Cpu, mem::Ram, regs::Reg};
//!
//! // mov #21, r10 ; add r10, r10 — computes 42 into r10.
//! let mut ram = Ram::new();
//! ram.load_words(0xE000, &[0x403A, 0x0015, 0x5A0A]);
//! let mut cpu = Cpu::new();
//! cpu.set_pc(0xE000);
//! cpu.step(&mut ram).unwrap();
//! cpu.step(&mut ram).unwrap();
//! assert_eq!(cpu.reg(msp430::Reg::R10), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod cycles;
pub mod flags;
mod icache;
pub mod isa;
pub mod layout;
pub mod mem;
pub mod periph;
pub mod platform;
pub mod regs;
pub mod trace;

pub use cpu::{superblocks_forced_off, Cpu, CpuFault, Step};
pub use icache::{process_superblock_stats, BlockBreaks, ICacheStats, SuperblockStats};
pub use isa::{Insn, Operand};
pub use mem::{Access, AccessBuf, AccessKind, Bus, Ram};
pub use platform::Platform;
pub use regs::Reg;
