//! Execution traces and summary statistics.
//!
//! A [`Trace`] collects [`Step`]s and summarises the quantities the paper's
//! Fig. 6 reports: executed instructions, total CPU cycles, and memory
//! traffic.

use crate::cpu::Step;
use crate::mem::AccessKind;
use std::fmt;

/// An ordered record of executed steps with aggregate statistics.
///
/// Instruction and cycle totals are maintained incrementally on
/// [`Trace::push`] (two adds), so those accessors are O(1) — verification
/// reads them once per proof and must not pay a full pass over a
/// multi-thousand-step trace each time. Read/write totals are computed on
/// demand; they are diagnostic only.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    steps: Vec<Step>,
    insns: usize,
    cycles: u64,
}

impl Trace {
    /// Empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step.
    #[inline]
    pub fn push(&mut self, step: Step) {
        self.insns += usize::from(step.insn.is_some());
        self.cycles += u64::from(step.cycles);
        self.steps.push(step);
    }

    /// Drops all recorded steps but keeps the allocation, so a recycled
    /// trace does not pay the buffer growth cost again.
    pub fn clear(&mut self) {
        self.steps.clear();
        self.insns = 0;
        self.cycles = 0;
    }

    /// All recorded steps in order.
    #[must_use]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of instruction steps (interrupt entries excluded).
    #[must_use]
    pub fn insn_count(&self) -> usize {
        self.insns
    }

    /// Total CPU cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total data reads / data writes across all steps.
    #[must_use]
    pub fn rw_counts(&self) -> (usize, usize) {
        let mut r = 0;
        let mut w = 0;
        for s in &self.steps {
            for a in &s.accesses {
                match a.kind {
                    AccessKind::Read => r += 1,
                    AccessKind::Write => w += 1,
                    AccessKind::Fetch => {}
                }
            }
        }
        (r, w)
    }
}

impl Extend<Step> for Trace {
    fn extend<T: IntoIterator<Item = Step>>(&mut self, iter: T) {
        for step in iter {
            self.push(step);
        }
    }
}

impl FromIterator<Step> for Trace {
    fn from_iter<T: IntoIterator<Item = Step>>(iter: T) -> Self {
        let mut t = Trace::new();
        t.extend(iter);
        t
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (r, w) = self.rw_counts();
        write!(f, "{} insns, {} cycles, {r} reads, {w} writes", self.insn_count(), self.cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::mem::Ram;

    #[test]
    fn trace_aggregates() {
        // mov #21, r10 ; add r10, r10 ; mov r10, &0x0200
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x403A, 0x0015, 0x5A0A, 0x4A82, 0x0200]);
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        let mut trace = Trace::new();
        for _ in 0..3 {
            trace.push(cpu.step(&mut ram).unwrap());
        }
        assert_eq!(trace.insn_count(), 3);
        assert_eq!(trace.cycles(), 2 + 1 + 4);
        let (_, w) = trace.rw_counts();
        assert_eq!(w, 1);
        assert!(trace.to_string().contains("3 insns"));
    }
}
