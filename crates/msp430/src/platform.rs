//! The full simulated device: CPU-visible bus with RAM, flash and
//! peripherals, plus an external DMA port.
//!
//! [`Platform`] implements [`Bus`]; addresses below `0x0200` dispatch to the
//! peripheral models, everything else hits the flat backing store. The
//! memory-map [`Region`](crate::layout::Region) of any address can be
//! queried, which the APEX monitor uses to classify accesses.

use crate::layout::{mmio, MemoryMap};
use crate::mem::{fresh_bus_id, Access, AccessKind, Bus, GEN_PAGES, GEN_PAGE_BYTES};
use crate::periph::{Adc, Dma, Gpio, Timer, Uart};

/// A complete MSP430 device (memory + peripherals).
///
/// Like [`crate::mem::Ram`], the backing store is a fixed-size boxed array
/// so `u16`-indexed access compiles without bounds checks, and every
/// memory mutation bumps its 1 KiB page's write generation (peripheral
/// pages report no generation, so cached decodes there always revalidate).
#[derive(Debug)]
pub struct Platform {
    bytes: Box<[u8; 0x1_0000]>,
    gens: Box<[u64; GEN_PAGES]>,
    id: u64,
    /// The physical memory map.
    pub map: MemoryMap,
    /// GPIO block.
    pub gpio: Gpio,
    /// UART ("network" interface of the applications).
    pub uart: Uart,
    /// ADC (sensor interface).
    pub adc: Adc,
    /// Timer A.
    pub timer: Timer,
}

/// A cloned platform is an independent bus: fresh identity, so generation
/// stamps can never cross instances (see [`Bus::page_generation`]).
impl Clone for Platform {
    fn clone(&self) -> Self {
        Self {
            bytes: self.bytes.clone(),
            gens: self.gens.clone(),
            id: fresh_bus_id(),
            map: self.map,
            gpio: self.gpio.clone(),
            uart: self.uart.clone(),
            adc: self.adc.clone(),
            timer: self.timer.clone(),
        }
    }
}

impl Default for Platform {
    fn default() -> Self {
        Self::new()
    }
}

impl Platform {
    /// A device with zeroed memory and idle peripherals.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bytes: Box::new([0; 0x1_0000]),
            gens: Box::new([0; GEN_PAGES]),
            id: fresh_bus_id(),
            map: MemoryMap::default(),
            gpio: Gpio::default(),
            uart: Uart::default(),
            adc: Adc::default(),
            timer: Timer::default(),
        }
    }

    #[inline]
    fn bump(&mut self, addr: u16) {
        self.gens[usize::from(addr) / GEN_PAGE_BYTES] += 1;
    }

    /// Copies `words` little-endian starting at `addr` (program loading).
    pub fn load_words(&mut self, addr: u16, words: &[u16]) {
        let mut a = addr;
        for w in words {
            self.bytes[usize::from(a)] = *w as u8;
            self.bytes[usize::from(a.wrapping_add(1))] = (*w >> 8) as u8;
            self.bump(a);
            self.bump(a.wrapping_add(1));
            a = a.wrapping_add(2);
        }
    }

    /// Copies raw bytes starting at `addr` (wrapping at the top of memory).
    pub fn load_bytes(&mut self, addr: u16, bytes: &[u8]) {
        let start = usize::from(addr);
        if let Some(dst) = self.bytes.get_mut(start..start + bytes.len()) {
            dst.copy_from_slice(bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.bytes[usize::from(addr.wrapping_add(i as u16))] = *b;
            }
        }
        // Stamp every generation page the span touched.
        for (i, _) in bytes.iter().enumerate().step_by(GEN_PAGE_BYTES) {
            self.bump(addr.wrapping_add(i as u16));
        }
        if let Some(last) = bytes.len().checked_sub(1) {
            self.bump(addr.wrapping_add(last as u16));
        }
    }

    /// Reads a word without peripheral side effects (attestation hashing,
    /// verifier inspection). Peripheral addresses read as zero.
    #[must_use]
    pub fn peek_word(&self, addr: u16) -> u16 {
        let a = addr & !1;
        if a < 0x0200 {
            return 0;
        }
        u16::from(self.bytes[usize::from(a)])
            | (u16::from(self.bytes[usize::from(a.wrapping_add(1))]) << 8)
    }

    /// Reads a byte without peripheral side effects.
    #[must_use]
    pub fn peek_byte(&self, addr: u16) -> u8 {
        if addr < 0x0200 {
            return 0;
        }
        self.bytes[usize::from(addr)]
    }

    /// Borrows a memory range (no peripheral dispatch) — used by SW-Att to
    /// hash attested regions exactly as stored.
    #[must_use]
    pub fn mem_range(&self, start: u16, end_inclusive: u16) -> &[u8] {
        &self.bytes[usize::from(start)..=usize::from(end_inclusive)]
    }

    /// Advances time-dependent peripherals by `cycles`.
    pub fn advance(&mut self, cycles: u32) {
        self.timer.advance(cycles);
    }

    /// Performs a DMA transfer as an external bus master, returning the bus
    /// events it generated so monitors can observe them.
    pub fn dma_transfer(&mut self, dma: &Dma) -> Vec<Access> {
        let mut events = Vec::with_capacity(dma.data.len());
        for (i, b) in dma.data.iter().enumerate() {
            let addr = dma.dst.wrapping_add(i as u16);
            self.write_byte(addr, *b);
            events.push(Access {
                addr,
                kind: AccessKind::Write,
                value: u16::from(*b),
                word: false,
            });
        }
        events
    }

    fn periph_read(&mut self, addr: u16) -> u8 {
        match addr {
            mmio::P1IN => self.gpio.p1.input,
            mmio::P1OUT => self.gpio.p1.output,
            mmio::P1DIR => self.gpio.p1.dir,
            mmio::P2IN => self.gpio.p2.input,
            mmio::P2OUT => self.gpio.p2.output,
            mmio::P2DIR => self.gpio.p2.dir,
            mmio::P3IN => self.gpio.p3.input,
            mmio::P3OUT => self.gpio.p3.output,
            mmio::P3DIR => self.gpio.p3.dir,
            // Reads *peek* (instrumented code re-reads every input
            // address); the program acks by writing RXBUF, which pops.
            mmio::UART_RXBUF => self.uart.peek_rx(),
            mmio::UART_STAT => self.uart.status(),
            mmio::ADC_MEM => self.adc.result as u8,
            a if a == mmio::ADC_MEM + 1 => (self.adc.result >> 8) as u8,
            // TA_R returns the value latched by writing 1 to TA_CTL, so a
            // read is idempotent within a run (required for re-reads by
            // instrumentation).
            mmio::TA_R => self.timer.latched as u8,
            a if a == mmio::TA_R + 1 => (self.timer.latched >> 8) as u8,
            _ => 0,
        }
    }

    fn periph_write(&mut self, addr: u16, v: u8) {
        match addr {
            mmio::P1OUT => self.gpio.p1.output = v,
            mmio::P1DIR => self.gpio.p1.dir = v,
            mmio::P2OUT => self.gpio.p2.output = v,
            mmio::P2DIR => self.gpio.p2.dir = v,
            mmio::P3OUT => self.gpio.p3.output = v,
            mmio::P3DIR => self.gpio.p3.dir = v,
            mmio::UART_TXBUF => self.uart.tx.push(v),
            mmio::UART_RXBUF => {
                // Ack: advance the RX FIFO.
                let _ = self.uart.pop_rx();
            }
            mmio::ADC_CTL if v & 1 != 0 => self.adc.convert(),
            mmio::TA_CTL => {
                if v == 0 {
                    self.timer.clear();
                } else if v & 1 != 0 {
                    self.timer.latch();
                }
            }
            _ => {}
        }
    }
}

impl Bus for Platform {
    fn read_byte(&mut self, addr: u16) -> u8 {
        if addr < 0x0200 {
            self.periph_read(addr)
        } else {
            self.bytes[usize::from(addr)]
        }
    }

    #[inline]
    fn write_byte(&mut self, addr: u16, value: u8) {
        if addr < 0x0200 {
            self.periph_write(addr, value);
        } else {
            self.bytes[usize::from(addr)] = value;
            self.bump(addr);
        }
    }

    // Non-peripheral word access straight off the backing store (an aligned
    // word at ≥ 0x0200 cannot straddle the peripheral window); peripheral
    // words keep the byte-wise dispatch.
    #[inline]
    fn read_word(&mut self, addr: u16) -> u16 {
        let a = usize::from(addr & !1);
        if a < 0x0200 {
            let lo = self.periph_read(a as u16);
            let hi = self.periph_read(a as u16 + 1);
            u16::from_le_bytes([lo, hi])
        } else {
            u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]])
        }
    }

    #[inline]
    fn write_word(&mut self, addr: u16, value: u16) {
        let a = usize::from(addr & !1);
        let [lo, hi] = value.to_le_bytes();
        if a < 0x0200 {
            self.periph_write(a as u16, lo);
            self.periph_write(a as u16 + 1, hi);
        } else {
            self.bytes[a] = lo;
            self.bytes[a + 1] = hi;
            // An aligned word never straddles a generation page.
            self.gens[a / GEN_PAGE_BYTES] += 1;
        }
    }

    /// Peripheral state (page 0) has no byte-level generation — reads there
    /// can have device semantics — so only plain-memory pages report one.
    #[inline]
    fn page_generation(&self, addr: u16) -> Option<(u64, u64)> {
        let page = usize::from(addr) / GEN_PAGE_BYTES;
        if page == 0 {
            return None;
        }
        Some((self.id, self.gens[page]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpio_round_trip() {
        let mut p = Platform::new();
        p.write_byte(mmio::P3OUT, 0x1);
        assert_eq!(p.gpio.p3.output, 0x1);
        assert_eq!(p.read_byte(mmio::P3OUT), 0x1);
        p.gpio.p1.input = 0xA5;
        assert_eq!(p.read_byte(mmio::P1IN), 0xA5);
    }

    #[test]
    fn uart_rx_peeks_on_read_pops_on_ack() {
        let mut p = Platform::new();
        p.uart.feed(&[0x11, 0x22]);
        assert_eq!(p.read_byte(mmio::UART_STAT) & 1, 1);
        // Reads are idempotent (instrumentation re-reads inputs).
        assert_eq!(p.read_byte(mmio::UART_RXBUF), 0x11);
        assert_eq!(p.read_byte(mmio::UART_RXBUF), 0x11);
        p.write_byte(mmio::UART_RXBUF, 0); // ack
        assert_eq!(p.read_byte(mmio::UART_RXBUF), 0x22);
        p.write_byte(mmio::UART_RXBUF, 0);
        assert_eq!(p.read_byte(mmio::UART_STAT) & 1, 0);
    }

    #[test]
    fn adc_conversion_via_ctl() {
        let mut p = Platform::new();
        p.adc.feed(&[0x0123]);
        p.write_byte(mmio::ADC_CTL, 1);
        assert_eq!(p.read_word(mmio::ADC_MEM), 0x0123);
    }

    #[test]
    fn timer_latches_on_ctl_write() {
        let mut p = Platform::new();
        p.advance(0x105);
        assert_eq!(p.read_word(mmio::TA_R), 0, "unlatched");
        p.write_byte(mmio::TA_CTL, 1);
        assert_eq!(p.read_word(mmio::TA_R), 0x105);
        p.advance(10);
        assert_eq!(p.read_word(mmio::TA_R), 0x105, "stable until next latch");
        p.write_byte(mmio::TA_CTL, 0);
        p.write_byte(mmio::TA_CTL, 1);
        assert_eq!(p.read_word(mmio::TA_R), 0);
    }

    #[test]
    fn peek_has_no_side_effects() {
        let mut p = Platform::new();
        p.uart.feed(&[0x99]);
        assert_eq!(p.peek_byte(mmio::UART_RXBUF), 0);
        assert_eq!(p.uart.rx_available(), 1, "peek must not pop the FIFO");
        p.load_words(0x0300, &[0xBEEF]);
        assert_eq!(p.peek_word(0x0300), 0xBEEF);
    }

    #[test]
    fn dma_writes_and_reports_events() {
        let mut p = Platform::new();
        let ev = p.dma_transfer(&Dma { dst: 0x0400, data: vec![0xAA, 0xBB] });
        assert_eq!(ev.len(), 2);
        assert_eq!(p.peek_byte(0x0400), 0xAA);
        assert_eq!(p.peek_byte(0x0401), 0xBB);
        assert_eq!(ev[0].kind, AccessKind::Write);
    }
}
