//! Evaluation workloads: the three real-world embedded operations the
//! DIALED paper measures (Section V-B), ported to our MSP430 assembly.
//!
//! | App | Origin | Character |
//! |---|---|---|
//! | [`syringe_pump`] | OpenSyringePump | command parsing + safety check + actuation delay loops (control-flow heavy) |
//! | [`fire_sensor`] | Grove temp/humi sensor sketch | ADC sampling + fixed-point scaling + alarm (data-input heavy, small) |
//! | [`ultrasonic_ranger`] | Grove ultrasonic ranger sketch | trigger + echo poll loop + division (input *and* control-flow heavy) |
//!
//! Each module provides the safe operation source, attack-vulnerable
//! variants where the paper defines them (Fig. 1 control-flow bug, Fig. 2
//! data-only bug for the syringe pump), nominal peripheral stimuli, the
//! app's verifier policies, and a [`Scenario`] descriptor the figure
//! harnesses iterate over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fire_sensor;
pub mod lifecycle;
pub mod syringe_pump;
pub mod ultrasonic_ranger;

use dialed::pipeline::{BuildOptions, InstrumentMode, InstrumentedOp};
use dialed::policy::Policy;
use msp430::platform::Platform;

/// OR region shared by all three applications (2 KiB, like the paper's
/// largest logs).
pub const OR_MIN: u16 = 0x0400;
/// Last OR byte.
pub const OR_MAX: u16 = 0x0BFF;
/// Stack top the canonical caller establishes.
pub const STACK_TOP: u16 = 0x11FC;
/// Globals base address used by the apps.
pub const GLOBALS: u16 = 0x0300;

/// Standard build options for the evaluation apps.
#[must_use]
pub fn app_build_options(mode: InstrumentMode) -> BuildOptions {
    BuildOptions {
        or_min: OR_MIN,
        or_max: OR_MAX,
        mode,
        stack_top: STACK_TOP,
        ..BuildOptions::default()
    }
}

/// A self-describing evaluation scenario: everything the figure harnesses
/// need to build, stimulate, run and verify one application.
pub struct Scenario {
    /// Short name ("SyringePump", …) as used in the paper's figures.
    pub name: &'static str,
    /// Operation source (safe variant).
    pub source: &'static str,
    /// Entry label.
    pub op_label: &'static str,
    /// Arguments passed in `r8..r15`.
    pub args: [u16; 8],
    /// Applies nominal peripheral stimuli.
    pub feed: fn(&mut Platform),
    /// Verifier policies for this app.
    pub policies: fn() -> Vec<Box<dyn Policy>>,
}

impl Scenario {
    /// Builds the op in the requested instrumentation mode.
    ///
    /// # Panics
    ///
    /// Panics if the app source fails to build (a bug in this crate).
    #[must_use]
    pub fn build(&self, mode: InstrumentMode) -> InstrumentedOp {
        InstrumentedOp::build(self.source, self.op_label, &app_build_options(mode))
            .unwrap_or_else(|e| panic!("{} failed to build: {e}", self.name))
    }
}

/// The three paper scenarios in figure order.
#[must_use]
pub fn scenarios() -> Vec<Scenario> {
    vec![syringe_pump::scenario(), fire_sensor::scenario(), ultrasonic_ranger::scenario()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build_in_all_modes() {
        for s in scenarios() {
            for mode in [InstrumentMode::Original, InstrumentMode::CfaOnly, InstrumentMode::Full] {
                let op = s.build(mode);
                assert!(op.code_size() > 0, "{}", s.name);
            }
        }
    }

    #[test]
    fn instrumentation_grows_monotonically() {
        for s in scenarios() {
            let orig = s.build(InstrumentMode::Original).code_size();
            let cfa = s.build(InstrumentMode::CfaOnly).code_size();
            let full = s.build(InstrumentMode::Full).code_size();
            assert!(orig < cfa && cfa < full, "{}: {orig} {cfa} {full}", s.name);
        }
    }
}
