//! The ultrasonic-ranger application (Grove ultrasonic ranger port) — the
//! distance sensor used in vehicles in the paper's evaluation.
//!
//! The operation emits a trigger pulse, polls the echo detector until the
//! reflection arrives (every poll is a *data input*, so this app stresses
//! the I-Log), latches the elapsed time from the timer, divides by 58 to
//! get centimetres (software restoring division — no hardware divider),
//! and reports the distance over the UART.

use crate::Scenario;
use dialed::policy::{GlobalWriteBounds, Policy};
use msp430::platform::Platform;

/// Trigger port (`P2OUT`).
pub const P2OUT: u16 = 0x0029;

/// Operation source.
pub const SOURCE: &str = r#"
        .equ P2OUT,   0x0029
        .equ ADC_CTL, 0x0142
        .equ ADC_MEM, 0x0140
        .equ TA_CTL,  0x0160
        .equ TA_R,    0x0170
        .equ UART_TX, 0x0067

        .org 0xE000
ranger_op:
        mov.b #0, &TA_CTL           ; reset the timer
        mov.b #1, &P2OUT            ; trigger pulse
        mov.b #0, &P2OUT
        clr r9                      ; pulseIn-style timeout counter
ur_wait:
        inc r9
        cmp #200, r9
        jhs ur_timeout              ; no echo: bail out with distance 0
        mov.b #1, &ADC_CTL          ; sample the echo detector
        mov &ADC_MEM, r10
        tst r10
        jz ur_wait                  ; poll until the echo arrives
        mov.b #1, &TA_CTL           ; latch elapsed time
        mov &TA_R, r10              ; echo round-trip time (cycles)
        mov #58, r11
        call #div16                 ; r12 = distance in cm
ur_report:
        mov.b r12, &UART_TX
        swpb r12
        mov.b r12, &UART_TX
        jmp ur_exit

ur_timeout:
        clr r12
        jmp ur_report

        ; r12 = r10 / r11, r13 = remainder (restoring division)
div16:
        clr r12
        clr r13
        mov #16, r14
div_loop:
        rla r10
        rlc r13
        rla r12
        cmp r11, r13
        jlo div_skip
        sub r11, r13
        inc r12
div_skip:
        dec r14
        jnz div_loop
        ret

ur_exit:
        ret                         ; single toplevel exit (er_exit)
"#;

/// Number of zero samples before the echo in the nominal stimulus (must
/// stay under the operation's 200-poll timeout).
pub const NOMINAL_POLLS: usize = 120;

/// Nominal stimulus: the echo detector reads zero for [`NOMINAL_POLLS`]
/// conversions, then fires.
pub fn feed_nominal(platform: &mut Platform) {
    let mut samples = vec![0u16; NOMINAL_POLLS];
    samples.push(1);
    platform.adc.feed(&samples);
}

/// A close obstacle: the echo arrives after only a few polls.
pub fn feed_close(platform: &mut Platform) {
    platform.adc.feed(&[0, 0, 0, 1]);
}

/// Verifier policies.
#[must_use]
pub fn policies() -> Vec<Box<dyn Policy>> {
    vec![Box::new(GlobalWriteBounds::new(vec![
        (P2OUT, P2OUT),   // trigger port
        (0x0067, 0x0067), // UART TX
        (0x0142, 0x0143), // ADC control
        (0x0160, 0x0161), // timer control
    ]))]
}

/// The figure-harness scenario.
#[must_use]
pub fn scenario() -> Scenario {
    Scenario {
        name: "UltrasonicRanger",
        source: SOURCE,
        op_label: "ranger_op",
        args: [0; 8],
        feed: feed_nominal,
        policies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app_build_options;
    use apex::pox::StopReason;
    use dialed::pipeline::{InstrumentMode, InstrumentedOp};
    use dialed::prelude::*;

    fn run(feed: impl FnOnce(&mut Platform)) -> (Report, DialedDevice) {
        let op =
            InstrumentedOp::build(SOURCE, "ranger_op", &app_build_options(InstrumentMode::Full))
                .unwrap();
        let ks = KeyStore::from_seed(41);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        feed(dev.platform_mut());
        let info = dev.invoke(&[0; 8]);
        assert_eq!(info.stop, StopReason::ReachedStop, "{:?}", dev.violation());
        let chal = Challenge::derive(b"ur", 0);
        let proof = dev.prove(&chal);
        let mut v = DialedVerifier::new(op, ks);
        for p in policies() {
            v = v.with_policy(p);
        }
        (v.verify(&VerifyRequest::new(&proof, &chal)), dev)
    }

    #[test]
    fn nominal_run_reports_distance_and_verifies() {
        let (report, dev) = run(feed_nominal);
        assert!(report.is_clean(), "{report}");
        let tx = &dev.platform().uart.tx;
        assert_eq!(tx.len(), 2);
        let distance = u16::from(tx[0]) | (u16::from(tx[1]) << 8);
        // Echo time grows with the poll count; distance = time / 58.
        assert!(distance > 10, "distance {distance}");
    }

    #[test]
    fn closer_obstacle_reports_smaller_distance() {
        let (_, far) = run(feed_nominal);
        let (report, near) = run(feed_close);
        assert!(report.is_clean(), "{report}");
        let d = |dev: &DialedDevice| {
            let tx = &dev.platform().uart.tx;
            u16::from(tx[0]) | (u16::from(tx[1]) << 8)
        };
        assert!(d(&near) < d(&far), "{} !< {}", d(&near), d(&far));
    }

    #[test]
    fn poll_loop_dominates_the_input_log() {
        let op =
            InstrumentedOp::build(SOURCE, "ranger_op", &app_build_options(InstrumentMode::Full))
                .unwrap();
        let ks = KeyStore::from_seed(42);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        feed_nominal(dev.platform_mut());
        dev.invoke(&[0; 8]);
        let proof = dev.prove(&Challenge::derive(b"ur", 1));
        let emu = DialedVerifier::new(op, ks).reconstruct(&proof.pox.or_data);
        let (_, inputs, _) = emu.log_counts;
        // One ADC read per poll plus the timer read.
        assert!(inputs > NOMINAL_POLLS, "{inputs}");
    }

    #[test]
    fn timeout_reports_zero_distance_and_verifies() {
        // No echo at all: the pulseIn-style timeout fires and the op
        // reports 0 — still a clean, verifiable run.
        let (report, dev) = run(|p| p.adc.feed(&[0]));
        assert!(report.is_clean(), "{report}");
        assert_eq!(dev.platform().uart.tx, vec![0, 0]);
    }

    #[test]
    fn timer_value_is_attested_not_trusted() {
        // The distance derives from TA_R, which the verifier only knows via
        // the I-Log. Verify the reconstruction reproduces the division.
        let (report, _) = run(feed_close);
        assert!(report.is_clean(), "{report}");
    }
}
