//! The fire-sensor application (Grove temperature/humidity sketch port).
//!
//! The operation samples temperature and humidity from the ADC, converts
//! the raw 12-bit codes to engineering units with a software shift-add
//! multiplier (the MSP430 core has no hardware multiply), raises the alarm
//! output when the temperature exceeds a configurable threshold, and
//! reports both values over the UART.
//!
//! This is the paper's *smallest* workload: few branches, a handful of
//! data inputs, so both its instrumentation overhead and its log are tiny
//! (Fig. 6's middle group).

use crate::{Scenario, GLOBALS};
use dialed::policy::{GlobalWriteBounds, Policy};
use msp430::platform::Platform;

/// Address of the alarm-threshold global.
pub const THRESH_ADDR: u16 = GLOBALS + 0x20;
/// Alarm output port (`P1OUT`).
pub const P1OUT: u16 = 0x0021;

/// Operation source.
pub const SOURCE: &str = r#"
        .equ ADC_CTL, 0x0142
        .equ ADC_MEM, 0x0140
        .equ P1OUT,   0x0021
        .equ UART_TX, 0x0067
        .equ THRESH,  0x0320

        .org 0x0320
thresh_data:
        .word 50                    ; alarm threshold, degrees C

        .org 0xE000
fire_op:
        ; temperature: t = ((raw >> 4) * 165) >> 8 - 40
        mov.b #1, &ADC_CTL
        mov &ADC_MEM, r10
        rra r10
        rra r10
        rra r10
        rra r10
        mov #165, r11
        call #mul16
        swpb r12
        mov.b r12, r12
        sub #40, r12
        mov r12, r9                 ; r9 = temperature
        ; humidity: h = ((raw >> 4) * 100) >> 8
        mov.b #1, &ADC_CTL
        mov &ADC_MEM, r10
        rra r10
        rra r10
        rra r10
        rra r10
        mov #100, r11
        call #mul16
        swpb r12
        mov.b r12, r12              ; r12 = humidity
        ; alarm when temperature >= threshold
        mov.b #0, &P1OUT
        cmp &THRESH, r9
        jl fs_no_alarm
        mov.b #1, &P1OUT
fs_no_alarm:
        mov.b r9, &UART_TX          ; report temperature
        mov.b r12, &UART_TX         ; report humidity
        jmp fs_exit

        ; r12 = r10 * r11 (low 16 bits), shift-add
mul16:
        clr r12
        mov #16, r13
mul_loop:
        clrc
        rrc r11
        jnc mul_skip
        add r10, r12
mul_skip:
        rla r10
        dec r13
        jnz mul_loop
        ret

fs_exit:
        ret                         ; single toplevel exit (er_exit)
"#;

/// Raw ADC code whose conversion yields the given temperature in °C.
#[must_use]
pub fn raw_for_temp(temp_c: i16) -> u16 {
    // Invert t = ((raw>>4) * 165) >> 8 - 40, approximately.
    let t = (i32::from(temp_c) + 40) * 256 / 165;
    ((t << 4) as u16) & 0x0FFF
}

/// Nominal stimulus: ~24 °C, ~40 % humidity — no alarm.
pub fn feed_nominal(platform: &mut Platform) {
    platform.adc.feed(&[raw_for_temp(24), 0x0680]);
}

/// Hot stimulus: ~80 °C — alarm expected.
pub fn feed_hot(platform: &mut Platform) {
    platform.adc.feed(&[raw_for_temp(80), 0x0680]);
}

/// Verifier policies.
#[must_use]
pub fn policies() -> Vec<Box<dyn Policy>> {
    vec![Box::new(GlobalWriteBounds::new(vec![
        (P1OUT, P1OUT),   // alarm port
        (0x0067, 0x0067), // UART TX
        (0x0142, 0x0143), // ADC control
    ]))]
}

/// The figure-harness scenario.
#[must_use]
pub fn scenario() -> Scenario {
    Scenario {
        name: "FireSensor",
        source: SOURCE,
        op_label: "fire_op",
        args: [0; 8],
        feed: feed_nominal,
        policies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app_build_options;
    use apex::pox::StopReason;
    use dialed::pipeline::{InstrumentMode, InstrumentedOp};
    use dialed::prelude::*;

    fn run(feed: impl FnOnce(&mut Platform)) -> (Report, DialedDevice) {
        let op = InstrumentedOp::build(SOURCE, "fire_op", &app_build_options(InstrumentMode::Full))
            .unwrap();
        let ks = KeyStore::from_seed(31);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        feed(dev.platform_mut());
        let info = dev.invoke(&[0; 8]);
        assert_eq!(info.stop, StopReason::ReachedStop, "{:?}", dev.violation());
        let chal = Challenge::derive(b"fs", 0);
        let proof = dev.prove(&chal);
        let mut v = DialedVerifier::new(op, ks);
        for p in policies() {
            v = v.with_policy(p);
        }
        (v.verify(&VerifyRequest::new(&proof, &chal)), dev)
    }

    #[test]
    fn nominal_no_alarm_and_clean() {
        let (report, dev) = verify_nominal();
        assert!(report.is_clean(), "{report}");
        assert_eq!(dev.platform().gpio.p1.output, 0, "no alarm at 24C");
        let tx = &dev.platform().uart.tx;
        assert_eq!(tx.len(), 2);
        let temp = tx[0] as i8;
        assert!((22..=26).contains(&temp), "temp {temp}");
    }

    fn verify_nominal() -> (Report, DialedDevice) {
        run(feed_nominal)
    }

    #[test]
    fn hot_sample_raises_alarm_and_verifies() {
        let (report, dev) = run(feed_hot);
        assert!(report.is_clean(), "{report}");
        assert_eq!(dev.platform().gpio.p1.output, 1, "alarm at 80C");
    }

    #[test]
    fn verifier_reconstructs_sensor_values_from_ilog() {
        // The verifier never sees the device ADC, yet its reconstruction
        // must contain the same UART report bytes.
        let op = InstrumentedOp::build(SOURCE, "fire_op", &app_build_options(InstrumentMode::Full))
            .unwrap();
        let ks = KeyStore::from_seed(32);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        feed_nominal(dev.platform_mut());
        dev.invoke(&[0; 8]);
        let device_tx = dev.platform().uart.tx.clone();
        let proof = dev.prove(&Challenge::derive(b"fs", 1));
        let emu = DialedVerifier::new(op, ks).reconstruct(&proof.pox.or_data);
        let emu_tx: Vec<u8> = emu
            .trace
            .steps()
            .iter()
            .flat_map(|s| s.writes().filter(|w| w.addr == 0x0067).map(|w| w.value as u8))
            .collect();
        assert_eq!(emu_tx, device_tx);
    }

    #[test]
    fn log_is_small() {
        let op = InstrumentedOp::build(SOURCE, "fire_op", &app_build_options(InstrumentMode::Full))
            .unwrap();
        let ks = KeyStore::from_seed(33);
        let mut dev = DialedDevice::new(op, ks);
        feed_nominal(dev.platform_mut());
        let info = dev.invoke(&[0; 8]);
        assert!(info.log_bytes_used < 400, "{}", info.log_bytes_used);
        assert!(info.log_bytes_used > 50, "{}", info.log_bytes_used);
    }

    #[test]
    fn raw_for_temp_round_trips() {
        for t in [0i16, 24, 50, 80, 100] {
            let raw = raw_for_temp(t);
            let back = ((i32::from(raw >> 4) * 165) >> 8) - 40;
            assert!((back - i32::from(t)).abs() <= 1, "t={t} back={back}");
        }
    }
}
