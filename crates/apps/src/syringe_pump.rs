//! The syringe-pump application (OpenSyringePump port) — the paper's
//! running example.
//!
//! The operation receives a `[index, new_setting]` command from the
//! network (UART), updates the dosage settings table, computes the dose,
//! and — after the safety check `dose < 10` — actuates port 1 of `P3OUT`
//! for a time proportional to the dose.
//!
//! Three variants:
//!
//! * [`SOURCE`] — safe: bounds-checks `index` (no known bugs);
//! * [`SOURCE_VULN_DF`] — the paper's **Fig. 2** data-only bug: the
//!   `index` bounds check is missing, so `settings[8]` overwrites the
//!   adjacent `set` global (actuation mask) without touching control flow;
//! * [`SOURCE_VULN_CF`] — the paper's **Fig. 1** control-flow bug:
//!   `parse_commands` copies a length-prefixed packet into a fixed 10-byte
//!   stack buffer, so an oversized packet overwrites the return address
//!   and can jump straight to the actuation code, skipping the dose check.

use crate::{Scenario, GLOBALS};
use dialed::policy::{ActuationPulse, GlobalWriteBounds, Policy};
use msp430::platform::Platform;

/// Address of the 8-word `settings` table.
pub const SETTINGS_ADDR: u16 = GLOBALS;
/// Address of the `set` actuation-mask global (adjacent to `settings` —
/// that adjacency is what Fig. 2 exploits).
pub const SET_ADDR: u16 = GLOBALS + 16;
/// `P3OUT` actuation port.
pub const P3OUT: u16 = 0x0019;
/// Iterations of the inner delay loop per dose unit.
pub const DELAY_UNIT: u16 = 50;
/// Actuation-pulse bound for the verifier: legal doses (≤ 9) pulse for at
/// most ~7.4k cycles on the fully instrumented build (measured: dose 5 ≈
/// 4.1k, dose 9 ≈ 7.4k, the Fig. 1 attack's dose 14 ≈ 11.4k).
pub const MAX_PULSE_CYCLES: u64 = 8_200;

/// Safe operation source.
pub const SOURCE: &str = r#"
        .equ P3OUT,      0x0019
        .equ UART_RX,    0x0066
        .equ UART_TX,    0x0067
        .equ SETTINGS,   0x0300
        .equ SET_G,      0x0310
        .equ DELAY_UNIT, 50

        ; default settings produce dose = 5; set = 0x1 actuates port 1
        .org 0x0300
settings_data:
        .word 5, 5, 5, 5, 5, 5, 5, 5
set_data:
        .word 1

        .org 0xE000
syringe_op:
        ; receive [index, new_setting] from the network
        mov.b &UART_RX, r10
        mov.b #0, &UART_RX          ; ack
        mov.b &UART_RX, r11
        mov.b #0, &UART_RX          ; ack
        ; safety: index must address settings[0..7]
        cmp #8, r10
        jhs sp_done
        rla r10
        mov #SETTINGS, r15
        add r10, r15
        mov r11, 0(r15)             ; settings[index] = new_setting
        call #define_dosage         ; r12 = dose
        cmp #10, r12                ; safety check preventing overdose
        jhs sp_done
sp_inject:
        mov &SET_G, r13
        mov.b r13, &P3OUT           ; actuate
        mov r12, r14
sp_outer:
        mov #DELAY_UNIT, r13
sp_inner:
        dec r13
        jnz sp_inner
        dec r14
        jnz sp_outer
        mov.b #0, &P3OUT
sp_done:
        mov.b r12, &UART_TX         ; report administered dose
        jmp sp_exit

define_dosage:
        mov #SETTINGS, r15
        clr r12
        mov #8, r13
dd_loop:
        add @r15+, r12
        dec r13
        jnz dd_loop
        rra r12
        rra r12
        rra r12
        ret

sp_exit:
        ret                         ; single toplevel exit (er_exit)
"#;

/// Fig. 2 variant: identical, minus the `index` bounds check.
pub const SOURCE_VULN_DF: &str = r#"
        .equ P3OUT,      0x0019
        .equ UART_RX,    0x0066
        .equ UART_TX,    0x0067
        .equ SETTINGS,   0x0300
        .equ SET_G,      0x0310
        .equ DELAY_UNIT, 50

        .org 0x0300
settings_data:
        .word 5, 5, 5, 5, 5, 5, 5, 5
set_data:
        .word 1

        .org 0xE000
syringe_op:
        mov.b &UART_RX, r10
        mov.b #0, &UART_RX
        mov.b &UART_RX, r11
        mov.b #0, &UART_RX
        ; (the index bounds check is missing — Fig. 2's bug)
        rla r10
        mov #SETTINGS, r15
        add r10, r15
        mov r11, 0(r15)             ; settings[index] = new_setting
        call #define_dosage
        cmp #10, r12
        jhs sp_done
sp_inject:
        mov &SET_G, r13
        mov.b r13, &P3OUT
        mov r12, r14
sp_outer:
        mov #DELAY_UNIT, r13
sp_inner:
        dec r13
        jnz sp_inner
        dec r14
        jnz sp_outer
        mov.b #0, &P3OUT
sp_done:
        mov.b r12, &UART_TX
        jmp sp_exit

define_dosage:
        mov #SETTINGS, r15
        clr r12
        mov #8, r13
dd_loop:
        add @r15+, r12
        dec r13
        jnz dd_loop
        rra r12
        rra r12
        rra r12
        ret

sp_exit:
        ret                         ; single toplevel exit (er_exit)
"#;

/// Fig. 1 variant: `parse_commands` copies a length-prefixed packet into a
/// 10-byte stack buffer with no bounds check.
pub const SOURCE_VULN_CF: &str = r#"
        .equ P3OUT,      0x0019
        .equ UART_RX,    0x0066
        .equ UART_TX,    0x0067
        .equ SET_G,      0x0310
        .equ DELAY_UNIT, 50

        .org 0x0310
set_data:
        .word 1

        .org 0xE000
syringe_op:
        call #parse_commands        ; r12 = requested dose
        cmp #10, r12                ; safety check preventing overdose
        jhs spc_done
spc_inject:
        mov &SET_G, r13
        mov.b r13, &P3OUT
        mov r12, r14
spc_outer:
        mov #DELAY_UNIT, r13
spc_inner:
        dec r13
        jnz spc_inner
        dec r14
        jnz spc_outer
        mov.b #0, &P3OUT
spc_done:
        mov.b r12, &UART_TX
        jmp spc_exit

parse_commands:
        sub #10, r1                 ; int copy_of_commands[5]
        mov.b &UART_RX, r10         ; packet length (bytes)
        mov.b #0, &UART_RX
        mov r1, r15
pc_copy:
        tst r10
        jz pc_parsed
        mov.b &UART_RX, r11
        mov.b #0, &UART_RX
        mov.b r11, 0(r15)           ; memcpy with no bounds check (Fig. 1)
        inc r15
        dec r10
        jmp pc_copy
pc_parsed:
        mov.b 0(r1), r12            ; dose = commands[0]
        add #10, r1
        ret

spc_exit:
        ret                         ; single toplevel exit (er_exit)
"#;

/// Nominal stimulus: set `settings[2] = 5` (keeps dose at 5).
pub fn feed_nominal(platform: &mut Platform) {
    platform.uart.feed(&[2, 5]);
}

/// Fig. 2 attack packet: `index = 8` reaches `set`; `new_setting = 0`
/// silently disables actuation.
pub fn feed_attack_df(platform: &mut Platform) {
    platform.uart.feed(&[8, 0]);
}

/// Nominal packet for the Fig. 1 variant: 1-byte payload, dose 5.
pub fn feed_nominal_cf(platform: &mut Platform) {
    platform.uart.feed(&[1, 5]);
}

/// Fig. 1 attack packet for the `parse_commands` overflow: 12 bytes, the
/// last word overwriting the return address with `target` (the address of
/// the post-check actuation code), byte 0 carrying the overdose.
#[must_use]
pub fn attack_packet_cf(target: u16) -> Vec<u8> {
    let mut pkt = vec![12u8];
    pkt.push(14); // dose = 14: overdose
    pkt.extend_from_slice(&[0; 9]); // filler through the buffer
    pkt.push((target & 0xFF) as u8); // overwrite saved return address
    pkt.push((target >> 8) as u8);
    pkt
}

/// Verifier policies for this app.
#[must_use]
pub fn policies() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(GlobalWriteBounds::new(vec![
            (SETTINGS_ADDR, SETTINGS_ADDR + 15), // the settings table
            (P3OUT, P3OUT),                      // actuation port
            (0x0066, 0x0067),                    // UART ack + TX
        ])),
        Box::new(ActuationPulse::new(P3OUT, MAX_PULSE_CYCLES)),
    ]
}

/// The figure-harness scenario (safe variant).
#[must_use]
pub fn scenario() -> Scenario {
    Scenario {
        name: "SyringePump",
        source: SOURCE,
        op_label: "syringe_op",
        args: [0; 8],
        feed: feed_nominal,
        policies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app_build_options;
    use apex::pox::StopReason;
    use dialed::pipeline::{InstrumentMode, InstrumentedOp};
    use dialed::prelude::*;

    fn full() -> InstrumentedOp {
        InstrumentedOp::build(SOURCE, "syringe_op", &app_build_options(InstrumentMode::Full))
            .unwrap()
    }

    fn verify_run(op: InstrumentedOp, feed: impl FnOnce(&mut Platform)) -> (Report, DialedDevice) {
        let ks = KeyStore::from_seed(21);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        feed(dev.platform_mut());
        let info = dev.invoke(&[0; 8]);
        assert_eq!(info.stop, StopReason::ReachedStop, "{:?}", dev.violation());
        let chal = Challenge::derive(b"sp", 0);
        let proof = dev.prove(&chal);
        let mut verifier = DialedVerifier::new(op, ks);
        for p in policies() {
            verifier = verifier.with_policy(p);
        }
        (verifier.verify(&VerifyRequest::new(&proof, &chal)), dev)
    }

    #[test]
    fn nominal_run_is_clean_and_actuates() {
        let (report, dev) = verify_run(full(), feed_nominal);
        assert!(report.is_clean(), "{report}");
        // Dose 5 was reported over UART.
        assert_eq!(dev.platform().uart.tx, vec![5]);
    }

    #[test]
    fn fig2_data_only_attack_detected_without_annotations() {
        let op = InstrumentedOp::build(
            SOURCE_VULN_DF,
            "syringe_op",
            &app_build_options(InstrumentMode::Full),
        )
        .unwrap();
        let (report, dev) = verify_run(op, feed_attack_df);
        // The attack changes no control flow and the proof itself is valid…
        assert_eq!(report.verdict, Verdict::Attack, "{report}");
        // …but the reconstruction exposes the out-of-bounds settings write.
        assert!(
            report.findings.iter().any(|f| matches!(
                f,
                Finding::OutOfBoundsWrite { addr, .. } if *addr == SET_ADDR
            )),
            "{report}"
        );
        // And indeed no medicine was injected on the device (set == 0).
        assert_eq!(dev.platform().gpio.p3.output, 0);
    }

    #[test]
    fn fig2_vulnerable_op_with_benign_input_is_clean() {
        let op = InstrumentedOp::build(
            SOURCE_VULN_DF,
            "syringe_op",
            &app_build_options(InstrumentMode::Full),
        )
        .unwrap();
        let (report, _) = verify_run(op, feed_nominal);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn fig1_control_flow_attack_detected() {
        let op = InstrumentedOp::build(
            SOURCE_VULN_CF,
            "syringe_op",
            &app_build_options(InstrumentMode::Full),
        )
        .unwrap();
        let inject = op.image.symbol("spc_inject").unwrap();
        let (report, _) = verify_run(op, |p| p.uart.feed(&attack_packet_cf(inject)));
        assert_eq!(report.verdict, Verdict::Attack, "{report}");
        assert!(
            report.findings.iter().any(|f| matches!(
                f,
                Finding::ReturnHijack { actual, .. } if *actual == inject
            )),
            "shadow stack must catch the hijack: {report}"
        );
        assert!(
            report.findings.iter().any(|f| matches!(f, Finding::ActuationViolation { .. })),
            "the overdose itself must also be flagged: {report}"
        );
    }

    #[test]
    fn fig1_vulnerable_op_with_benign_packet_is_clean() {
        let op = InstrumentedOp::build(
            SOURCE_VULN_CF,
            "syringe_op",
            &app_build_options(InstrumentMode::Full),
        )
        .unwrap();
        let (report, dev) = verify_run(op, feed_nominal_cf);
        assert!(report.is_clean(), "{report}");
        assert_eq!(dev.platform().uart.tx, vec![5]);
    }

    #[test]
    fn log_fits_or_with_headroom() {
        let op = full();
        let ks = KeyStore::from_seed(1);
        let mut dev = DialedDevice::new(op, ks);
        feed_nominal(dev.platform_mut());
        let info = dev.invoke(&[0; 8]);
        assert!(info.log_bytes_used > 400, "{}", info.log_bytes_used);
        assert!(info.log_bytes_used < 1600, "{}", info.log_bytes_used);
    }
}
