//! Firmware-lifecycle descriptors for the device simulator.
//!
//! A real deployed device does not run one invocation against one fixed
//! stimulus: it cycles through duty periods (sensor poll → compute → log →
//! attest), receives configuration updates over its management channel,
//! and occasionally reboots into a freshly flashed firmware image. Each
//! [`LifecycleSpec`] captures those three axes for one evaluation app, so
//! the `simdev` crate can drive realistic multi-round sessions through the
//! real emulated stack:
//!
//! * **stimuli** — a rotation of nominal peripheral feeds (different
//!   sensor readings, different management packets), all of which an
//!   honest device must attest cleanly;
//! * **config updates** — writes to a *data* global outside the executable
//!   region. The new value reaches the verifier through the I-Log, so
//!   honest config churn never perturbs verification — and the simulator
//!   leans on exactly that to assert config updates are not false
//!   positives;
//! * **OTA patch** — a one-site source edit *inside* the operation's code.
//!   Building the patched source yields the "V2" firmware image: flashing
//!   it honestly re-binds the verifier's expected-ER digest, while a
//!   device still attesting with V1 after the fleet rolled to V2 is the
//!   stale-image attack and must die as a MAC mismatch.

use crate::{fire_sensor, syringe_pump, ultrasonic_ranger, Scenario};
use dialed::pipeline::{InstrumentMode, InstrumentedOp};
use msp430::platform::Platform;

/// A configuration update a device receives mid-lifecycle: one word
/// written to a data global (outside ER), cycled through `values`.
#[derive(Clone, Copy, Debug)]
pub struct ConfigUpdate {
    /// The global's address.
    pub addr: u16,
    /// Values the management plane cycles through. Every value must keep
    /// the app's behaviour safe (honest lifecycles always verify).
    pub values: &'static [u16],
}

/// One app's lifecycle description: duty-cycle stimuli, config churn, and
/// the V2 firmware patch.
pub struct LifecycleSpec {
    /// The underlying evaluation scenario (source, entry label, args,
    /// policies).
    pub scenario: Scenario,
    /// Rotation of honest peripheral feeds, applied round-robin across
    /// duty cycles. Never empty.
    pub stimuli: &'static [fn(&mut Platform)],
    /// Management-plane config update, when the app has a config global.
    pub config: Option<ConfigUpdate>,
    /// `(needle, replacement)` applied once to the source to produce the
    /// V2 firmware image. The needle is a code site inside ER, so V1 and
    /// V2 differ in their expected-ER digests.
    pub ota_patch: (&'static str, &'static str),
}

impl LifecycleSpec {
    /// The V2 (post-OTA) firmware source.
    ///
    /// # Panics
    ///
    /// Panics if the patch needle is missing from the scenario source or
    /// the patch is a no-op (a stale spec — caught in tests).
    #[must_use]
    pub fn v2_source(&self) -> String {
        let (needle, replacement) = self.ota_patch;
        assert!(
            self.scenario.source.contains(needle),
            "{}: OTA patch needle {needle:?} not in source",
            self.scenario.name
        );
        assert_ne!(needle, replacement, "{}: OTA patch is a no-op", self.scenario.name);
        self.scenario.source.replacen(needle, replacement, 1)
    }

    /// Builds the V2 firmware in the requested instrumentation mode.
    ///
    /// # Panics
    ///
    /// Panics if the patched source fails to build (a bug in this crate).
    #[must_use]
    pub fn build_v2(&self, mode: InstrumentMode) -> InstrumentedOp {
        InstrumentedOp::build(
            &self.v2_source(),
            self.scenario.op_label,
            &crate::app_build_options(mode),
        )
        .unwrap_or_else(|e| panic!("{} v2 failed to build: {e}", self.scenario.name))
    }

    /// The stimulus for duty-cycle `round` (round-robin rotation).
    #[must_use]
    pub fn stimulus(&self, round: usize) -> fn(&mut Platform) {
        self.stimuli[round % self.stimuli.len()]
    }

    /// The config value for `round`, if the app has a config global.
    #[must_use]
    pub fn config_for(&self, round: usize) -> Option<(u16, u16)> {
        self.config.map(|c| (c.addr, c.values[round % c.values.len()]))
    }
}

/// Warm stimulus: ~45 °C, just under the default 50 °C threshold.
fn fire_feed_warm(platform: &mut Platform) {
    platform.adc.feed(&[fire_sensor::raw_for_temp(45), 0x0680]);
}

/// A different safe management packet: `settings[3] = 5` (dose stays 5).
fn syringe_feed_alt(platform: &mut Platform) {
    platform.uart.feed(&[3, 5]);
}

/// A dose-lowering packet: `settings[1] = 2` (dose drops to 4, still
/// administered).
fn syringe_feed_low(platform: &mut Platform) {
    platform.uart.feed(&[1, 2]);
}

/// The lifecycle descriptors for all three evaluation apps.
#[must_use]
pub fn lifecycles() -> Vec<LifecycleSpec> {
    vec![
        LifecycleSpec {
            scenario: syringe_pump::scenario(),
            stimuli: &[syringe_pump::feed_nominal, syringe_feed_alt, syringe_feed_low],
            config: Some(ConfigUpdate {
                // settings[0]: every value keeps the dose under the safety
                // bound (sum >> 3 < 10).
                addr: syringe_pump::SETTINGS_ADDR,
                values: &[5, 4, 6, 3],
            }),
            // V2 tightens the overdose bound from 10 to 9 — a code change
            // inside ER; nominal doses (≤ 5) behave identically.
            ota_patch: ("cmp #10, r12", "cmp #9, r12"),
        },
        LifecycleSpec {
            scenario: fire_sensor::scenario(),
            stimuli: &[fire_sensor::feed_nominal, fire_feed_warm, fire_sensor::feed_hot],
            config: Some(ConfigUpdate {
                // Alarm threshold in °C; stimuli on either side of each
                // value keep both branch outcomes exercised.
                addr: fire_sensor::THRESH_ADDR,
                values: &[50, 60, 42, 75],
            }),
            // V2 recalibrates the sensor offset from 40 to 41 — inside ER.
            ota_patch: ("sub #40, r12", "sub #41, r12"),
        },
        LifecycleSpec {
            scenario: ultrasonic_ranger::scenario(),
            stimuli: &[ultrasonic_ranger::feed_nominal, ultrasonic_ranger::feed_close],
            config: None,
            // V2 extends the echo timeout from 200 to 220 polls — inside
            // ER; nominal echoes (≤ 120 polls) behave identically.
            ota_patch: ("cmp #200, r9", "cmp #220, r9"),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v2_images_build_and_differ_from_v1_inside_er() {
        for lc in lifecycles() {
            let v1 = lc.scenario.build(InstrumentMode::Full);
            let v2 = lc.build_v2(InstrumentMode::Full);
            assert_eq!(v1.pox, v2.pox, "{}: regions must not move", lc.scenario.name);
            assert_ne!(
                v1.er_bytes, v2.er_bytes,
                "{}: the OTA patch must change the attested code",
                lc.scenario.name
            );
        }
    }

    #[test]
    fn config_values_land_outside_er() {
        for lc in lifecycles() {
            let op = lc.scenario.build(InstrumentMode::Full);
            if let Some(c) = lc.config {
                assert!(
                    c.addr < op.pox.er_min || c.addr > op.pox.er_max,
                    "{}: config global {:#06x} must be data, not code",
                    lc.scenario.name,
                    c.addr,
                );
                assert!(!c.values.is_empty());
            }
            assert!(!lc.stimuli.is_empty());
        }
    }
}
