//! Equivalence properties for the request-based verification API.
//!
//! These properties were established against the legacy entry points
//! (direct proof/challenge `verify`, workspace-reusing and per-key
//! variants, keyed batch jobs) before those were deleted, and now pin the
//! surviving surface: every shape of the
//! request API — embedded key, explicit [`StaticKeys`], [`PerDevice`]
//! lookup, warm-workspace `verify_in`, and the generic batch engine —
//! must produce **identical** [`Report`]s for the same proof, challenge
//! and key, honest or corrupted.

use dialed::prelude::*;
use proptest::prelude::*;
use vrased::RaVerifier;

const OP: &str = "\
    .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n xor r13, r10\n mov r10, &0x0060\n ret\n";

/// Builds one proof of the shared op under `seed`'s key.
fn proven(args: [u16; 8], seed: u64, round: u64) -> (InstrumentedOp, DialedProof, Challenge) {
    let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).expect("op builds");
    let mut dev = DialedDevice::new(op.clone(), KeyStore::from_seed(seed));
    dev.invoke(&args);
    let chal = Challenge::derive(b"equiv", round);
    (op, dev.prove(&chal), chal)
}

/// Verifies `proof` through every request-API shape and asserts all of
/// them return the same report, which is then returned for inspection.
fn all_shapes_agree(
    op: &InstrumentedOp,
    proof: &DialedProof,
    chal: &Challenge,
    seed: u64,
    device: u64,
) -> Report {
    let verifier = DialedVerifier::new(op.clone(), KeyStore::from_seed(seed));

    // 1. One-shot, embedded key (replaces legacy `verify`).
    let embedded = verifier.verify(&VerifyRequest::new(proof, chal));

    // 2. Warm reused workspace (replaces the legacy workspace-reusing
    //    variant) — run twice so the second pass sees a dirty workspace.
    let mut ws = EmuWorkspace::new();
    let _ = verifier.verify_in(&mut ws, &VerifyRequest::new(proof, chal));
    let warm = verifier.verify_in(&mut ws, &VerifyRequest::new(proof, chal));

    // 3. Explicit static key source (replaces the legacy per-key variant
    //    called with the construction key).
    let statics = StaticKeys::new(KeyStore::from_seed(seed));
    let keyed = verifier.verify(&VerifyRequest::new(proof, chal).for_device(device).keys(&statics));

    // 4. Per-device lookup source (the fleet shape).
    let ra = RaVerifier::new(KeyStore::from_seed(seed));
    let lookup = PerDevice::new(|d| (d == device).then_some(&ra));
    let looked = verifier.verify(&VerifyRequest::new(proof, chal).for_device(device).keys(&lookup));

    // 5. Through the generic batch engine, keyed and unkeyed.
    let engine = BatchVerifier::new(verifier).with_workers(2);
    let jobs = [BatchJob::new(device, proof.clone(), *chal)];
    let batch_unkeyed = engine.verify_batch(&jobs, None).outcomes.remove(0).report;
    let batch_keyed = engine.verify_batch(&jobs, Some(&lookup)).outcomes.remove(0).report;

    assert_eq!(embedded, warm, "warm workspace diverged");
    assert_eq!(embedded, keyed, "StaticKeys diverged");
    assert_eq!(embedded, looked, "PerDevice diverged");
    assert_eq!(embedded, batch_unkeyed, "unkeyed batch diverged");
    assert_eq!(embedded, batch_keyed, "keyed batch diverged");
    embedded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Honest proofs: every entry shape yields the same clean report.
    #[test]
    fn honest_proofs_agree_across_all_entry_shapes(
        args in proptest::array::uniform8(any::<u16>()),
        seed in any::<u64>(),
        round in any::<u64>(),
        device in any::<u64>(),
    ) {
        let (op, proof, chal) = proven(args, seed, round);
        let report = all_shapes_agree(&op, &proof, &chal, seed, device);
        prop_assert!(report.is_clean(), "{report}");
    }

    /// Corrupted proofs: every entry shape yields the same rejection or
    /// attack report, bit for bit.
    #[test]
    fn corrupted_proofs_agree_across_all_entry_shapes(
        args in proptest::array::uniform8(any::<u16>()),
        seed in any::<u64>(),
        round in any::<u64>(),
        device in any::<u64>(),
        offset in any::<u16>(),
        flip in 1u8..=255,
    ) {
        let (op, mut proof, chal) = proven(args, seed, round);
        let len = proof.pox.or_data.len();
        proof.pox.or_data[usize::from(offset) % len] ^= flip;
        let report = all_shapes_agree(&op, &proof, &chal, seed, device);
        prop_assert!(!report.is_clean(), "corrupted proof must not verify");
    }

    /// A key source that does not know the device rejects identically
    /// through direct and batch paths, with the structured reason.
    #[test]
    fn unknown_devices_reject_identically(
        seed in any::<u64>(),
        device in any::<u64>(),
    ) {
        let (op, proof, chal) = proven([0; 8], seed, 1);
        let verifier = DialedVerifier::new(op, KeyStore::from_seed(seed));
        let empty = PerDevice::new(|_| None);
        let direct =
            verifier.verify(&VerifyRequest::new(&proof, &chal).for_device(device).keys(&empty));
        let engine = BatchVerifier::new(verifier).with_workers(1);
        let jobs = [BatchJob::new(device, proof.clone(), chal)];
        let batch = engine.verify_batch(&jobs, Some(&empty)).outcomes.remove(0).report;
        prop_assert_eq!(&direct, &batch);
        prop_assert_eq!(
            direct.findings,
            vec![Finding::PoxRejected { reason: RejectReason::UnknownKey { device } }]
        );
    }
}
