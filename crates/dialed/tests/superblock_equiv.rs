//! Dispatch-equivalence property for DIALED verification.
//!
//! The abstract-execution emulator has three dispatch configurations:
//! decode-every-step (the oracle), the predecoded instruction cache, and
//! superblock block-at-a-time dispatch stacked on the cache. A verifier's
//! [`Report`] — attack findings, statistics, outcome — must be **byte
//! identical** across all three, for honest and corrupted proofs alike:
//! the dispatch layer is a throughput optimisation, never an observable.

use dialed::prelude::*;
use proptest::prelude::*;

/// A looping op so superblock dispatch re-enters stitched blocks: the
/// `loop` body executes `r13 & 7 (+1)` times before the result is logged.
const OP: &str = "\
    .org 0xE000\n\
    op:\n\
     mov r15, r10\n\
     mov r13, r11\n\
     and #7, r11\n\
     inc r11\n\
    loop:\n\
     add r14, r10\n\
     dec r11\n\
     jnz loop\n\
     mov r10, &0x0060\n\
     ret\n";

/// Verifies `proof` under each dispatch configuration with a warm,
/// recycled workspace and asserts the reports are identical.
fn reports_agree(op: &InstrumentedOp, proof: &DialedProof, chal: &Challenge, seed: u64) -> Report {
    let verifier = DialedVerifier::new(op.clone(), KeyStore::from_seed(seed));
    let mut reports = Vec::new();
    for (icache, superblocks) in [(false, false), (true, false), (true, true)] {
        let mut ws = EmuWorkspace::new();
        ws.set_dispatch(icache, superblocks);
        // Verify twice so the second pass runs against warm caches (the
        // interesting case for block reuse across proofs).
        let _ = verifier.verify_in(&mut ws, &VerifyRequest::new(proof, chal));
        reports.push(verifier.verify_in(&mut ws, &VerifyRequest::new(proof, chal)));
    }
    let (forced, icache_only, superblock) =
        (reports.remove(0), reports.remove(0), reports.remove(0));
    assert_eq!(forced, icache_only, "icache dispatch changed the report");
    assert_eq!(forced, superblock, "superblock dispatch changed the report");
    forced
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Honest proofs verify clean, identically, under all three dispatch
    /// configurations.
    #[test]
    fn honest_reports_identical_across_dispatch_configs(
        args in proptest::array::uniform8(any::<u16>()),
        seed in any::<u64>(),
        round in any::<u64>(),
    ) {
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).expect("op builds");
        let mut dev = DialedDevice::new(op.clone(), KeyStore::from_seed(seed));
        dev.invoke(&args);
        let chal = Challenge::derive(b"sb-equiv", round);
        let proof = dev.prove(&chal);
        let report = reports_agree(&op, &proof, &chal, seed);
        prop_assert!(report.is_clean(), "{report}");
    }

    /// Corrupted proofs are rejected identically — the emulated trace the
    /// report is built from does not depend on the dispatch strategy even
    /// when the OR log steers execution somewhere unexpected.
    #[test]
    fn corrupted_reports_identical_across_dispatch_configs(
        args in proptest::array::uniform8(any::<u16>()),
        seed in any::<u64>(),
        offset in any::<u16>(),
        flip in 1u8..=255,
    ) {
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).expect("op builds");
        let mut dev = DialedDevice::new(op.clone(), KeyStore::from_seed(seed));
        dev.invoke(&args);
        let chal = Challenge::derive(b"sb-equiv-bad", 7);
        let mut proof = dev.prove(&chal);
        let len = proof.pox.or_data.len();
        proof.pox.or_data[usize::from(offset) % len] ^= flip;
        let report = reports_agree(&op, &proof, &chal, seed);
        prop_assert!(!report.is_clean(), "corrupted proof must not verify");
    }
}
