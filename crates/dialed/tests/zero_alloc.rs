//! Proof that the request-based verification path performs **zero heap
//! allocations** per proof in the steady state — the ISSUE 4 acceptance
//! criterion for the API redesign: `VerifyRequest` is a stack value of
//! borrows, key resolution borrows out of the [`KeySource`], and a warm
//! [`EmuWorkspace`] recycles every emulation buffer.
//!
//! The workspace otherwise denies `unsafe_code`; this test binary opts out
//! locally because the shared counting-allocator harness (see
//! `crates/msp430/tests/support/counting_alloc.rs`) implements
//! `GlobalAlloc`.

#![allow(unsafe_code)]

use dialed::prelude::*;

include!("../../msp430/tests/support/counting_alloc.rs");

const OP: &str = "\
    .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";

/// Runs without the libtest harness (see `Cargo.toml`): the measurement
/// must be the only thing executing in the process, since harness threads
/// allocate concurrently and would pollute the counters.
fn main() {
    steady_state_request_verification_is_allocation_free();
    lane_precheck_batch_path_is_allocation_free();
    println!("zero_alloc: ok");
}

fn steady_state_request_verification_is_allocation_free() {
    let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).expect("op builds");
    let key = KeyStore::from_seed(0x2A);
    let mut dev = DialedDevice::new(op.clone(), key.clone());
    dev.invoke(&[0, 0, 0, 0, 0, 0, 3, 4]);
    let challenge = Challenge::derive(b"zero-alloc", 0);
    let proof = dev.prove(&challenge);

    let verifier = DialedVerifier::new(op, key.clone());
    let keys = StaticKeys::new(key);
    let mut ws = EmuWorkspace::new();

    // Warm-up: first proofs grow the workspace's RAM/trace/OR buffers.
    for _ in 0..4 {
        let req = VerifyRequest::new(&proof, &challenge).for_device(7).keys(&keys);
        assert!(verifier.verify_in(&mut ws, &req).is_clean());
    }

    // Steady state, embedded key: building the request and verifying must
    // not touch the heap.
    let before = allocations();
    for _ in 0..200 {
        let req = VerifyRequest::new(&proof, &challenge);
        let report = verifier.verify_in(&mut ws, &req);
        assert!(report.is_clean());
        std::hint::black_box(&report);
    }
    assert_eq!(allocations() - before, 0, "embedded-key request path must not allocate");

    // Steady state, explicit key source: key resolution is a borrow, so
    // the keyed path is equally allocation-free.
    let before = allocations();
    for _ in 0..200 {
        let req = VerifyRequest::new(&proof, &challenge).for_device(7).keys(&keys);
        let report = verifier.verify_in(&mut ws, &req);
        assert!(report.is_clean());
        std::hint::black_box(&report);
    }
    assert_eq!(allocations() - before, 0, "keyed request path must not allocate");

    // Sanity: the harness actually counts (one boxed value = ≥1 count).
    let before = allocations();
    let boxed = std::hint::black_box(Box::new(0xABu8));
    assert!(allocations() > before, "counting allocator must observe allocations");
    drop(boxed);
}

/// The lane-batched MAC path — `precheck_macs` over multi-buffer HMAC
/// lanes followed by hint-carrying per-job verification — is also
/// allocation-free once warm: the ER digest is memoized, the lane scratch
/// lives on the stack, and the hint vector keeps its capacity.
fn lane_precheck_batch_path_is_allocation_free() {
    let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).expect("op builds");
    let key = KeyStore::from_seed(0x51);
    let mut dev = DialedDevice::new(op.clone(), key.clone());
    dev.invoke(&[0, 0, 0, 0, 0, 0, 3, 4]);
    let verifier = DialedVerifier::new(op, key);

    // Nine jobs: one full 8-wide lane chunk plus a remainder lane.
    let jobs: Vec<BatchJob> = (0..9)
        .map(|d| {
            let challenge = Challenge::derive(b"zero-alloc-lanes", d);
            let proof = dev.prove(&challenge);
            BatchJob::new(d, proof, challenge)
        })
        .collect();

    let mut ws = EmuWorkspace::new();
    let mut hints: Vec<Option<bool>> = Vec::new();

    // Warm-up: grows the workspace buffers and the hint vector, and primes
    // the verifier's ER-digest cache. Every honest job must precheck true.
    for _ in 0..4 {
        assert!(verifier.precheck_macs(&jobs, None, &mut hints));
        assert!(hints.iter().all(|h| *h == Some(true)), "{hints:?}");
        for (job, hint) in jobs.iter().zip(&hints) {
            let mut req = VerifyRequest::new(&job.proof, &job.challenge);
            if let Some(ok) = *hint {
                req = req.with_mac_precheck(ok);
            }
            assert!(verifier.verify_in(&mut ws, &req).is_clean());
        }
    }

    // Steady state: the whole lane-batched path stays off the heap.
    let before = allocations();
    for _ in 0..100 {
        assert!(verifier.precheck_macs(&jobs, None, &mut hints));
        for (job, hint) in jobs.iter().zip(&hints) {
            let mut req = VerifyRequest::new(&job.proof, &job.challenge);
            if let Some(ok) = *hint {
                req = req.with_mac_precheck(ok);
            }
            let report = verifier.verify_in(&mut ws, &req);
            assert!(report.is_clean());
            std::hint::black_box(&report);
        }
    }
    assert_eq!(allocations() - before, 0, "lane-batched verify path must not allocate");
}
