//! Proof that the request-based verification path performs **zero heap
//! allocations** per proof in the steady state — the ISSUE 4 acceptance
//! criterion for the API redesign: `VerifyRequest` is a stack value of
//! borrows, key resolution borrows out of the [`KeySource`], and a warm
//! [`EmuWorkspace`] recycles every emulation buffer.
//!
//! The workspace otherwise denies `unsafe_code`; this test binary opts out
//! locally because the shared counting-allocator harness (see
//! `crates/msp430/tests/support/counting_alloc.rs`) implements
//! `GlobalAlloc`.

#![allow(unsafe_code)]

use dialed::prelude::*;

include!("../../msp430/tests/support/counting_alloc.rs");

const OP: &str = "\
    .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";

/// Runs without the libtest harness (see `Cargo.toml`): the measurement
/// must be the only thing executing in the process, since harness threads
/// allocate concurrently and would pollute the counters.
fn main() {
    steady_state_request_verification_is_allocation_free();
    println!("zero_alloc: ok");
}

fn steady_state_request_verification_is_allocation_free() {
    let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).expect("op builds");
    let key = KeyStore::from_seed(0x2A);
    let mut dev = DialedDevice::new(op.clone(), key.clone());
    dev.invoke(&[0, 0, 0, 0, 0, 0, 3, 4]);
    let challenge = Challenge::derive(b"zero-alloc", 0);
    let proof = dev.prove(&challenge);

    let verifier = DialedVerifier::new(op, key.clone());
    let keys = StaticKeys::new(key);
    let mut ws = EmuWorkspace::new();

    // Warm-up: first proofs grow the workspace's RAM/trace/OR buffers.
    for _ in 0..4 {
        let req = VerifyRequest::new(&proof, &challenge).for_device(7).keys(&keys);
        assert!(verifier.verify_in(&mut ws, &req).is_clean());
    }

    // Steady state, embedded key: building the request and verifying must
    // not touch the heap.
    let before = allocations();
    for _ in 0..200 {
        let req = VerifyRequest::new(&proof, &challenge);
        let report = verifier.verify_in(&mut ws, &req);
        assert!(report.is_clean());
        std::hint::black_box(&report);
    }
    assert_eq!(allocations() - before, 0, "embedded-key request path must not allocate");

    // Steady state, explicit key source: key resolution is a borrow, so
    // the keyed path is equally allocation-free.
    let before = allocations();
    for _ in 0..200 {
        let req = VerifyRequest::new(&proof, &challenge).for_device(7).keys(&keys);
        let report = verifier.verify_in(&mut ws, &req);
        assert!(report.is_clean());
        std::hint::black_box(&report);
    }
    assert_eq!(allocations() - before, 0, "keyed request path must not allocate");

    // Sanity: the harness actually counts (one boxed value = ≥1 count).
    let before = allocations();
    let boxed = std::hint::black_box(Box::new(0xABu8));
    assert!(allocations() > before, "counting allocator must observe allocations");
    drop(boxed);
}
