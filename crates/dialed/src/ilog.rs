//! I-Log / CF-Log breakdown utilities.
//!
//! CF-Log and I-Log share one physical stack in OR (F5); this module
//! derives the logical split from a reconstruction — the quantity behind
//! the paper's Fig. 6(c) comparison (Tiny-CFA log vs. DIALED log).

use crate::verifier::Emulation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Logical composition of an operation's attestation log.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct LogBreakdown {
    /// Control-flow entries (Tiny-CFA).
    pub cf_entries: usize,
    /// Runtime data-input entries (DIALED F4).
    pub input_entries: usize,
    /// Entry-block entries: SP base + 8 argument registers (DIALED F3).
    pub arg_entries: usize,
    /// Total bytes of OR consumed.
    pub bytes_used: usize,
}

impl LogBreakdown {
    /// Derives the breakdown from a reconstruction.
    #[must_use]
    pub fn from_emulation(emu: &Emulation) -> Self {
        let (cf_entries, input_entries, arg_entries) = emu.log_counts;
        let r_top = emu.pox.or_max & !1;
        Self {
            cf_entries,
            input_entries,
            arg_entries,
            bytes_used: usize::from(r_top.saturating_sub(emu.final_r4)),
        }
    }

    /// Bytes attributable to CFA alone.
    #[must_use]
    pub fn cf_bytes(&self) -> usize {
        self.cf_entries * 2
    }

    /// Bytes attributable to DFA (inputs + entry block).
    #[must_use]
    pub fn dfa_bytes(&self) -> usize {
        (self.input_entries + self.arg_entries) * 2
    }
}

impl fmt::Display for LogBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} B used ({} cf + {} input + {} arg entries)",
            self.bytes_used, self.cf_entries, self.input_entries, self.arg_entries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::DialedDevice;
    use crate::pipeline::{BuildOptions, InstrumentedOp};
    use crate::verifier::DialedVerifier;
    use vrased::{Challenge, KeyStore};

    #[test]
    fn breakdown_accounts_for_every_logged_word() {
        let src = "\
            .org 0xE000\nop:\n mov &0x0020, r14\n tst r14\n jz z\n nop\nz:\n ret\n";
        let op = InstrumentedOp::build(src, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(6);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        dev.platform_mut().gpio.p1.input = 1;
        dev.invoke(&[0; 8]);
        let proof = dev.prove(&Challenge::derive(b"b", 0));
        let emu = DialedVerifier::new(op, ks).reconstruct(&proof.pox.or_data);
        let b = LogBreakdown::from_emulation(&emu);
        assert_eq!(b.arg_entries, 9);
        assert_eq!(b.input_entries, 1);
        assert_eq!(b.cf_entries, 2, "jz + ret");
        assert_eq!(b.bytes_used, (9 + 1 + 2) * 2);
        assert_eq!(b.cf_bytes() + b.dfa_bytes(), b.bytes_used);
        assert!(b.to_string().contains("24 B used"));
    }
}
