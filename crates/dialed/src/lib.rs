//! DIALED: Data Integrity Attestation for Low-end Embedded Devices
//! (DAC 2021) — reference reproduction.
//!
//! DIALED is the first *data-flow attestation* (DFA) scheme for the
//! lowest-end MCUs. Composed with Tiny-CFA (control-flow attestation) over
//! the APEX proof-of-execution architecture, it lets a verifier detect
//! **all** known classes of runtime software exploits — code modification,
//! control-flow hijacks, and data-only attacks — on devices as small as a
//! TI MSP430.
//!
//! # How it works
//!
//! The attested *embedded operation* is instrumented twice:
//!
//! * **Tiny-CFA** logs the destination of every control-flow transfer into
//!   the APEX Output Range (CF-Log);
//! * **DIALED** ([`pass`]) additionally logs every *data input* — any value
//!   read from outside the operation's own stack (Definition 1 of the
//!   paper): operation arguments at entry (feature F3) and runtime inputs
//!   from peripherals/globals/network (feature F4) — into the same
//!   downward-growing log stack (I-Log, feature F5).
//!
//! APEX proves that exactly this instrumented code ran start-to-finish and
//! produced exactly this OR content. The verifier ([`verifier`]) then
//! *abstractly executes* the instrumented program, injecting the logged
//! inputs at the recorded log sites, and
//!
//! 1. recomputes the entire OR and compares it with the attested one (any
//!    divergence of device behaviour from the logs is an attack);
//! 2. maintains a shadow call stack over the reconstructed execution
//!    (control-flow hijacks like the paper's Fig. 1 reproduce and are
//!    flagged);
//! 3. evaluates application [`policy`] predicates on the reconstructed
//!    trace (data-only attacks like the paper's Fig. 2 reproduce and are
//!    flagged — no code annotations needed).
//!
//! # Verification API
//!
//! All verification flows through one request-based entry point (the
//! [`request`] module): build a [`VerifyRequest`], hand it to anything
//! implementing [`Verifier`] — [`DialedVerifier`] for full data-flow
//! verification, [`apex::PoxVerifier`] for PoX-only — directly or through
//! the generic [`BatchVerifier`]. Per-device keys come from a
//! [`KeySource`]; rejections carry a structured [`RejectReason`].
//!
//! # End-to-end example
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use dialed::prelude::*;
//!
//! let source = "\
//!     .org 0xE000\n\
//! op:\n sub #2, r1\n mov r15, 0(r1)\n mov &0x0020, r14\n add #2, r1\n ret\n";
//! let op = InstrumentedOp::build(source, "op", &BuildOptions::default())?;
//! let mut device = DialedDevice::new(op.clone(), KeyStore::from_seed(1));
//! device.platform_mut().gpio.p1.input = 0x42;
//! let run = device.invoke(&[0, 0, 0, 0, 0, 0, 0, 7]);
//! let proof = device.prove(&Challenge::derive(b"doc", 0));
//!
//! let verifier = DialedVerifier::new(op, KeyStore::from_seed(1));
//! let challenge = Challenge::derive(b"doc", 0);
//! let report = verifier.verify(&VerifyRequest::new(&proof, &challenge));
//! assert!(report.is_clean(), "{report}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attest;
pub mod batch;
pub mod ilog;
pub mod pass;
pub mod pipeline;
pub mod policy;
pub mod report;
pub mod request;
pub mod verifier;

pub use attest::{DialedDevice, DialedProof, RunInfo};
pub use batch::{BatchJob, BatchVerifier};
pub use pass::{DfaConfig, ReadCheckPolicy};
pub use pipeline::{BuildOptions, InstrumentedOp};
pub use report::{
    BatchOutcome, BatchReport, BatchStats, Finding, RejectClass, RejectReason, Report, Verdict,
};
pub use request::{KeySource, PerDevice, StaticKeys, Verifier, VerifyRequest};
pub use verifier::{DialedVerifier, EmuWorkspace, SlotClass};

/// Convenient re-exports for end-to-end users.
pub mod prelude {
    pub use crate::attest::{DialedDevice, DialedProof};
    pub use crate::batch::{BatchJob, BatchVerifier};
    pub use crate::pipeline::{BuildOptions, InstrumentedOp};
    pub use crate::policy::{ActuationPulse, GlobalWriteBounds, Policy};
    pub use crate::report::{
        BatchOutcome, BatchReport, BatchStats, Finding, RejectClass, RejectReason, Report, Verdict,
    };
    pub use crate::request::{KeySource, PerDevice, StaticKeys, Verifier, VerifyRequest};
    pub use crate::verifier::{DialedVerifier, EmuWorkspace};
    pub use vrased::{Challenge, KeyStore};
}
