//! Application policies evaluated on the reconstructed execution.
//!
//! DIALED's verifier reconstructs the complete execution (all inputs, all
//! intermediate state). Data-only attacks *reproduce* in that
//! reconstruction; policies are the predicates that turn a reproduced
//! behaviour into a verdict. Unlike OAT's source annotations, policies live
//! entirely at the verifier — no device-side cooperation or programmer
//! annotation is needed.

use crate::report::Finding;
use crate::verifier::Emulation;
use std::fmt;

/// A verifier-side predicate over a reconstructed execution.
///
/// Policies are `Send + Sync` so one [`crate::verifier::DialedVerifier`]
/// can be shared by the batch-verification worker threads.
pub trait Policy: fmt::Debug + Send + Sync {
    /// Human-readable policy name (appears in findings).
    fn name(&self) -> &str;
    /// Evaluates the policy; returns findings (empty when satisfied).
    fn check(&self, emu: &Emulation) -> Vec<Finding>;
}

/// Spatial memory-safety policy: every store the *operation* performs must
/// land in its own stack, the OR log region, or an explicitly declared
/// writable region (globals it owns, actuation ports).
///
/// This is the generic detector for the paper's Fig. 2 data-only attack:
/// `settings[index] = v` with a corrupted `index` writes outside the
/// declared `settings` array and is flagged — no annotation of `set`
/// needed.
#[derive(Clone, Debug)]
pub struct GlobalWriteBounds {
    /// Inclusive address ranges the operation may legitimately write.
    pub writable: Vec<(u16, u16)>,
}

impl GlobalWriteBounds {
    /// Declares the writable ranges.
    #[must_use]
    pub fn new(writable: Vec<(u16, u16)>) -> Self {
        Self { writable }
    }
}

impl Policy for GlobalWriteBounds {
    fn name(&self) -> &str {
        "global-write-bounds"
    }

    fn check(&self, emu: &Emulation) -> Vec<Finding> {
        let mut findings = Vec::new();
        let in_stack = |a: u16| a >= emu.min_sp && a <= emu.sp_base.wrapping_add(1);
        let in_or = |a: u16| a >= emu.pox.or_min && a <= emu.pox.or_max;
        let declared = |a: u16| self.writable.iter().any(|(lo, hi)| a >= *lo && a <= *hi);
        for step in emu.trace.steps() {
            // Only stores issued by the operation's code matter.
            if !emu.pox.in_er(step.pc) {
                continue;
            }
            for w in step.writes() {
                if !(in_stack(w.addr) || in_or(w.addr) || declared(w.addr)) {
                    findings.push(Finding::OutOfBoundsWrite { pc: step.pc, addr: w.addr });
                }
            }
        }
        findings
    }
}

/// Actuation-safety policy: the time an actuator port is driven non-zero
/// must not exceed `max_cycles` — catching both the Fig. 1 overdose (safety
/// check bypassed via control-flow hijack) and any data-only path to the
/// same effect.
#[derive(Clone, Debug)]
pub struct ActuationPulse {
    /// Actuator port address (e.g. `P3OUT`).
    pub port: u16,
    /// Maximum allowed pulse length in CPU cycles.
    pub max_cycles: u64,
}

impl ActuationPulse {
    /// Declares the bound.
    #[must_use]
    pub fn new(port: u16, max_cycles: u64) -> Self {
        Self { port, max_cycles }
    }

    /// Measures all pulses (cycles between a non-zero write and the next
    /// zero write to the port) in a reconstruction.
    #[must_use]
    pub fn pulses(&self, emu: &Emulation) -> Vec<u64> {
        let mut pulses = Vec::new();
        let mut cum: u64 = 0;
        let mut started: Option<u64> = None;
        for step in emu.trace.steps() {
            for w in step.writes() {
                if w.addr == self.port {
                    if w.value != 0 && started.is_none() {
                        started = Some(cum);
                    } else if w.value == 0 {
                        if let Some(s) = started.take() {
                            pulses.push(cum - s);
                        }
                    }
                }
            }
            cum += u64::from(step.cycles);
        }
        if let Some(s) = started {
            pulses.push(cum - s); // still on at end of run
        }
        pulses
    }
}

impl Policy for ActuationPulse {
    fn name(&self) -> &str {
        "actuation-pulse"
    }

    fn check(&self, emu: &Emulation) -> Vec<Finding> {
        self.pulses(emu)
            .into_iter()
            .filter(|c| *c > self.max_cycles)
            .map(|cycles| Finding::ActuationViolation {
                port: self.port,
                cycles,
                max: self.max_cycles,
            })
            .collect()
    }
}

/// A policy wrapping a custom closure (for app-specific invariants that do
/// not fit the built-ins).
pub struct Custom<F> {
    name: String,
    f: F,
}

impl<F> fmt::Debug for Custom<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Custom({})", self.name)
    }
}

impl<F: Fn(&Emulation) -> Vec<Finding>> Custom<F> {
    /// Wraps `f` as a policy called `name`.
    pub fn new(name: &str, f: F) -> Self {
        Self { name: name.to_string(), f }
    }
}

impl<F: Fn(&Emulation) -> Vec<Finding> + Send + Sync> Policy for Custom<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&self, emu: &Emulation) -> Vec<Finding> {
        (self.f)(emu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::DialedDevice;
    use crate::pipeline::{BuildOptions, InstrumentedOp};
    use vrased::{Challenge, KeyStore};

    fn reconstruct(src: &str, args: &[u16; 8]) -> Emulation {
        let op = InstrumentedOp::build(src, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(8);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        let info = dev.invoke(args);
        assert_eq!(info.stop, apex::pox::StopReason::ReachedStop);
        let proof = dev.prove(&Challenge::derive(b"p", 0));
        crate::verifier::DialedVerifier::new(op, ks).reconstruct(&proof.pox.or_data)
    }

    #[test]
    fn write_bounds_accepts_declared_global() {
        let src = ".org 0xE000\nop:\n mov r15, &0x0300\n ret\n";
        let emu = reconstruct(src, &[0, 0, 0, 0, 0, 0, 0, 42]);
        let ok = GlobalWriteBounds::new(vec![(0x0300, 0x0301)]);
        assert!(ok.check(&emu).is_empty());
        let strict = GlobalWriteBounds::new(vec![]);
        let findings = strict.check(&emu);
        assert_eq!(findings.len(), 1);
        assert!(matches!(findings[0], Finding::OutOfBoundsWrite { addr: 0x0300, .. }));
    }

    #[test]
    fn write_bounds_ignores_stack_and_or_writes() {
        let src = ".org 0xE000\nop:\n push r15\n pop r15\n ret\n";
        let emu = reconstruct(src, &[0; 8]);
        let strict = GlobalWriteBounds::new(vec![]);
        assert!(strict.check(&emu).is_empty(), "stack pushes and log writes are fine");
    }

    #[test]
    fn actuation_pulse_measures_on_off() {
        // Drive P3OUT high, idle ~a few cycles, then low.
        let src = "\
            .org 0xE000\nop:\n mov.b #1, &0x0019\n mov #3, r10\nd:\n dec r10\n jnz d\n mov.b #0, &0x0019\n ret\n";
        let emu = reconstruct(src, &[0; 8]);
        let p = ActuationPulse::new(0x0019, 10_000);
        let pulses = p.pulses(&emu);
        assert_eq!(pulses.len(), 1);
        assert!(pulses[0] > 0);
        assert!(p.check(&emu).is_empty());
        let tight = ActuationPulse::new(0x0019, 1);
        assert_eq!(tight.check(&emu).len(), 1);
    }

    #[test]
    fn custom_policy_runs() {
        let src = ".org 0xE000\nop:\n ret\n";
        let emu = reconstruct(src, &[0; 8]);
        let p = Custom::new("always-fires", |_e: &Emulation| {
            vec![Finding::PolicyViolation { policy: "always-fires".into(), detail: "x".into() }]
        });
        assert_eq!(p.check(&emu).len(), 1);
        assert_eq!(p.name(), "always-fires");
    }
}
