//! Verifier-side abstract execution and the complete verification flow.
//!
//! Given an authentic OR snapshot (APEX-verified), the verifier re-executes
//! the *instrumented* operation locally:
//!
//! * initial state comes from the log head: the saved SP base and the eight
//!   argument registers (F3 entries);
//! * at every `__dfa_in_*` input-log site, the logged word is *injected*
//!   into the emulated memory at the read's effective address before the
//!   log instruction runs — so the subsequent original read consumes
//!   exactly the device's input;
//! * everything else (ALU, stack, control flow, the CF-Log writes
//!   themselves) is recomputed deterministically.
//!
//! The recomputed OR must equal the attested OR word-for-word over the used
//! span; any divergence means the device's execution did not follow its own
//! logs. A shadow call stack over the reconstruction reproduces control-flow
//! hijacks (Fig. 1), and application policies evaluated on the
//! reconstructed trace expose data-only attacks (Fig. 2).

use crate::batch::BatchJob;
use crate::pipeline::InstrumentedOp;
use crate::policy::Policy;
use crate::report::{Finding, RejectReason, Report, Verdict, VerifyStats};
use crate::request::{KeySource, Verifier, VerifyRequest, MIN_EMU_BUDGET};
use apex::{ErDigestCache, PoxConfig, PoxVerifier};
use msp430::cpu::{Cpu, CpuFault, Step};
use msp430::isa::{Insn, Op1, Op2, Operand};
use msp430::mem::{Bus, Ram};
use msp430::regs::Reg;
use msp430::trace::Trace;
use msp430::BlockBreaks;
use std::sync::Arc;
use tinycfa::OrStack;
use vrased::KeyStore;

/// Why abstract execution stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EmuOutcome {
    /// Reached the operation's return site.
    Completed,
    /// Step budget exhausted (abort spin or livelock).
    Budget,
    /// CPU fault during emulation.
    Fault,
}

/// The result of abstractly executing an operation against a device log.
#[derive(Clone, Debug)]
pub struct Emulation {
    /// Reconstructed execution trace (instrumented program, device inputs).
    pub trace: Trace,
    /// Shadow-stack findings discovered during reconstruction.
    pub findings: Vec<Finding>,
    /// Termination.
    pub outcome: EmuOutcome,
    /// The operation's stack base (SP at entry), from the log head.
    pub sp_base: u16,
    /// Deepest SP observed (stack extent for spatial policies).
    pub min_sp: u16,
    /// Final log stack pointer `R`.
    pub final_r4: u16,
    /// The recomputed OR region bytes.
    pub or_emulated: Vec<u8>,
    /// APEX regions.
    pub pox: PoxConfig,
    /// The op's legitimate return site.
    pub caller_return: u16,
    /// Log classification counts (cf / input / arg entries).
    pub log_counts: (usize, usize, usize),
}

/// Default abstract-execution step budget.
pub const DEFAULT_EMU_BUDGET: usize = 4_000_000;

/// Word slots of the log head: the saved SP base plus the eight argument
/// registers (feature F3). Abstract execution reads exactly these entries
/// to seed its initial state.
pub const LOG_HEAD_WORDS: usize = 9;

/// O(1) membership bitmaps over the instrumentation log sites.
///
/// The emulation loop asks "is this PC an input-log site?" on **every**
/// step and classifies every OR write against both site lists; binary
/// searches there were a measurable slice of per-step cost. One bit per
/// address (8 KiB per class) turns each query into a mask test. Built once
/// per [`DialedVerifier`], not per proof.
#[derive(Debug)]
pub(crate) struct SiteIndex {
    input: Box<[u8; 0x2000]>,
    args: Box<[u8; 0x2000]>,
    /// Input sites as superblock break addresses: stitched blocks end
    /// before them, so the per-step `is_input` probe collapses into a
    /// per-block-entry probe. Shared (`Arc`) so re-installing it on a
    /// recycled workspace core is a pointer compare, not a cache flush.
    breaks: Arc<BlockBreaks>,
    /// The operation image as contiguous runs, so per-proof re-imaging is
    /// a handful of bulk copies instead of a walk over the sparse byte map.
    image_runs: Vec<(u16, Vec<u8>)>,
}

impl SiteIndex {
    pub(crate) fn new(op: &InstrumentedOp) -> Self {
        let mut input = Box::new([0u8; 0x2000]);
        let mut args = Box::new([0u8; 0x2000]);
        let mut breaks = BlockBreaks::new();
        for &a in &op.sites.input {
            input[usize::from(a >> 3)] |= 1 << (a & 7);
            breaks.insert(a);
        }
        for &a in &op.sites.args {
            args[usize::from(a >> 3)] |= 1 << (a & 7);
        }
        Self { input, args, breaks: Arc::new(breaks), image_runs: op.image.runs() }
    }

    #[inline]
    fn is_input(&self, addr: u16) -> bool {
        self.input[usize::from(addr >> 3)] & (1 << (addr & 7)) != 0
    }

    #[inline]
    fn is_arg(&self, addr: u16) -> bool {
        self.args[usize::from(addr >> 3)] & (1 << (addr & 7)) != 0
    }
}

/// Reusable per-verifier (or per-worker) emulation buffers.
///
/// Abstract execution needs a 64 KiB RAM image, a step trace and an OR
/// snapshot per proof. Allocating those per proof dominates the fixed cost
/// of verifying small operations, so batch verification keeps one workspace
/// per worker thread and recycles the allocations across proofs (see
/// [`crate::batch::BatchVerifier`]).
#[derive(Debug, Default)]
pub struct EmuWorkspace {
    /// Lazily allocated so constructing a workspace is free: a proof that
    /// fails the cryptographic check never pays for the 64 KiB image.
    ram: Option<Ram>,
    /// Reused across proofs so the predecoded instruction cache stays warm:
    /// every batch proof replays the same operation, and cache hits are
    /// validated against live memory, so reuse is observationally pure.
    cpu: Cpu,
    /// Scratch [`Step`] for the allocation-free `step_into` loop.
    step: Step,
    trace: Trace,
    shadow: Vec<u16>,
    or_emulated: Vec<u8>,
}

impl EmuWorkspace {
    /// A fresh workspace (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns an [`Emulation`]'s large buffers to the workspace so the
    /// next proof reuses their allocations.
    pub fn reclaim(&mut self, emu: Emulation) {
        self.trace = emu.trace;
        self.or_emulated = emu.or_emulated;
    }

    /// Selects the emulator dispatch strategy for subsequent proofs.
    ///
    /// `icache` toggles the predecoded instruction cache, `superblocks` the
    /// block-at-a-time dispatch layer on top of it. Both default to on; the
    /// equivalence tests pin all three configurations (forced decode,
    /// per-step icache, superblocks) to byte-identical reports.
    pub fn set_dispatch(&mut self, icache: bool, superblocks: bool) {
        self.cpu.set_icache_enabled(icache);
        self.cpu.set_superblocks_enabled(superblocks);
    }
}

/// Abstractly executes `op` against the device's attested OR bytes.
///
/// `device_or` must span exactly `or_min..=or_max`.
#[must_use]
pub fn abstract_execute(op: &InstrumentedOp, device_or: &[u8], budget: usize) -> Emulation {
    abstract_execute_in(&mut EmuWorkspace::new(), op, device_or, budget)
}

/// [`abstract_execute`] reusing `ws`'s buffers instead of allocating.
///
/// The returned [`Emulation`] owns the workspace's trace and OR buffers;
/// hand them back with [`EmuWorkspace::reclaim`] once the emulation has
/// been consumed.
#[must_use]
pub fn abstract_execute_in(
    ws: &mut EmuWorkspace,
    op: &InstrumentedOp,
    device_or: &[u8],
    budget: usize,
) -> Emulation {
    let sites = SiteIndex::new(op);
    abstract_execute_indexed(ws, op, &sites, device_or, budget)
}

/// The innermost emulation loop; `sites` is prebuilt by the verifier so
/// repeated proofs of one operation share it.
fn abstract_execute_indexed(
    ws: &mut EmuWorkspace,
    op: &InstrumentedOp,
    sites: &SiteIndex,
    device_or: &[u8],
    budget: usize,
) -> Emulation {
    let pox = op.pox;
    let or_stack = OrStack::new(device_or, pox.or_min, pox.or_max);
    let r_top = or_stack.r_top();

    // Log head: SP base then r8..r15 (entry block order). The workspace
    // CPU is recycled (warm instruction cache); only its architectural
    // state is reset.
    let sp_base = or_stack.entry(0).unwrap_or(0);
    let cpu = &mut ws.cpu;
    cpu.reset_regs();
    cpu.set_reg(Reg::SP, sp_base.wrapping_add(2)); // caller's SP before `call`
    cpu.set_reg(Reg::R4, r_top);
    for i in 0..8u16 {
        let v = or_stack.entry(1 + usize::from(i)).unwrap_or(0);
        cpu.set_reg(Reg::from_index(8 + i), v);
    }
    cpu.set_pc(op.options.caller_site);

    let ram = ws.ram.get_or_insert_with(Ram::new);
    // Generation-preserving reset: pages whose content is unchanged from
    // the previous proof (the code image, when replaying one operation)
    // keep their write generation, so the CPU's superblock cache stays
    // warm across proofs instead of restitching every block.
    ram.reset_to(sites.image_runs.iter().map(|(start, bytes)| (*start, bytes.as_slice())));

    let mut trace = std::mem::take(&mut ws.trace);
    trace.clear();
    let mut findings = Vec::new();
    let shadow = &mut ws.shadow;
    shadow.clear();
    let mut min_sp = cpu.reg(Reg::SP);
    let mut outcome = EmuOutcome::Budget;
    let (mut cf_n, mut in_n, mut arg_n) = (0usize, 0usize, 0usize);

    // Superblock dispatch: every input-log site is a block break, so a
    // marked PC only ever executes as a block *entry* — the `is_input`
    // probe (and the injection it guards) runs per block, not per step.
    // The per-step work below (shadow stack, write classification, trace
    // copy) observes every step through the dispatch callback, unchanged.
    cpu.set_block_breaks(Some(sites.breaks.clone()));
    let step = &mut ws.step;
    let mut remaining = budget;
    while remaining > 0 {
        let pc = cpu.pc();
        if pc == op.return_addr {
            outcome = EmuOutcome::Completed;
            break;
        }

        // Input injection: before an input-log instruction executes, place
        // the device's logged word at the read's effective address.
        if sites.is_input(pc) {
            inject(cpu, ram, &or_stack, pox.or_min);
        }

        // Allocation-free: the scratch Step is refilled in place; only the
        // flat copy appended to the trace below touches the trace buffer.
        let r = cpu.step_block_into(&mut *ram, op.return_addr, remaining, step, |_, regs, step| {
            min_sp = min_sp.min(regs.sp());

            // Shadow call stack over *original* control flow.
            if let Some(insn) = &step.insn {
                match insn {
                    Insn::One { op: Op1::Call, .. } => {
                        if let Some(w) = step.writes().next() {
                            shadow.push(w.value);
                        }
                    }
                    Insn::Two {
                        op: Op2::Mov,
                        src: Operand::IndirectInc(Reg::R1),
                        dst: Operand::Reg(Reg::R0),
                        ..
                    } => {
                        let expected = shadow.pop().unwrap_or(op.return_addr);
                        if step.next_pc != expected {
                            findings.push(Finding::ReturnHijack {
                                at: step.pc,
                                expected,
                                actual: step.next_pc,
                            });
                        }
                    }
                    _ => {}
                }
            }

            // Classify OR log writes for the statistics.
            for w in step.writes() {
                if w.addr >= pox.or_min && w.addr <= pox.or_max {
                    if sites.is_input(step.pc) {
                        in_n += 1;
                    } else if sites.is_arg(step.pc) {
                        arg_n += 1;
                    } else {
                        cf_n += 1;
                    }
                }
            }

            trace.push(*step);
        });
        match r {
            Ok(n) => remaining -= n,
            Err(CpuFault::Halted | CpuFault::Decode { .. }) => {
                outcome = EmuOutcome::Fault;
                break;
            }
        }
    }

    let final_r4 = cpu.reg(Reg::R4);
    let mut or_emulated = std::mem::take(&mut ws.or_emulated);
    or_emulated.clear();
    or_emulated
        .extend_from_slice(&ram.as_slice()[usize::from(pox.or_min)..=usize::from(pox.or_max)]);

    Emulation {
        trace,
        findings,
        outcome,
        sp_base,
        min_sp,
        final_r4,
        or_emulated,
        pox,
        caller_return: op.return_addr,
        log_counts: (cf_n, in_n, arg_n),
    }
}

/// Injects the device-logged word for the input-log instruction at the
/// current PC: decodes `mov <src>, 0(r4)`, resolves `<src>`'s effective
/// address from emulated registers, and stores the device's word there.
fn inject(cpu: &mut Cpu, ram: &mut Ram, or_stack: &OrStack<'_>, or_min: u16) {
    let pc = cpu.pc();
    let first = ram.read_word(pc);
    let mut cursor = pc.wrapping_add(2);
    let decoded = Insn::decode(pc, first, || {
        let w = ram.read_word(cursor);
        cursor = cursor.wrapping_add(2);
        w
    });
    let Ok(Insn::Two { src, .. }) = decoded else { return };
    let ea = match src {
        Operand::Indirect(r) | Operand::IndirectInc(r) => cpu.reg(r),
        Operand::Indexed(r, x) => cpu.reg(r).wrapping_add(x),
        Operand::Symbolic(a) | Operand::Absolute(a) => a,
        _ => return,
    };
    let slot = cpu.reg(Reg::R4);
    if slot < or_min {
        return; // device log overflowed; the emulated check will abort too
    }
    let idx = usize::from(or_stack.r_top().wrapping_sub(slot)) / 2;
    if let Some(v) = or_stack.entry(idx) {
        ram.write_word(ea & !1, v);
    }
}

/// What one word slot of the output region holds, according to the
/// verifier's own reconstruction — see [`DialedVerifier::or_slot_classes`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotClass {
    /// Log-head entry (saved SP base or one of the eight argument
    /// registers), written by the entry block's instrumentation.
    Head,
    /// CF-Log entry (call/return/branch record) — *recomputed* by abstract
    /// execution, so an authenticated splice of such a slot is guaranteed
    /// to surface as a [`Finding::LogDivergence`].
    ControlFlow,
    /// I-Log entry (a logged data input) — *injected* into the emulated
    /// memory, so forging it only shows up if the forged value changes
    /// behaviour that reaches the OR (e.g. flips a logged branch).
    Input,
    /// Never written during reconstruction (below the log watermark).
    Unused,
}

/// The DIALED verifier: PoX check + abstract execution + policies.
#[derive(Debug)]
pub struct DialedVerifier {
    op: InstrumentedOp,
    pox_verifier: PoxVerifier,
    policies: Vec<Box<dyn Policy>>,
    emu_budget: usize,
    /// Prebuilt log-site bitmaps shared by every proof of this op.
    sites: SiteIndex,
}

impl DialedVerifier {
    /// A verifier for `op` sharing `keystore` with the device.
    #[must_use]
    pub fn new(op: InstrumentedOp, keystore: KeyStore) -> Self {
        let pox_verifier = PoxVerifier::new(keystore, op.pox, op.er_bytes.clone());
        let sites = SiteIndex::new(&op);
        Self { op, pox_verifier, policies: Vec::new(), emu_budget: DEFAULT_EMU_BUDGET, sites }
    }

    /// Registers an application policy evaluated on every reconstruction.
    #[must_use]
    pub fn with_policy(mut self, policy: Box<dyn Policy>) -> Self {
        self.policies.push(policy);
        self
    }

    /// Overrides the default abstract-execution step budget (clamped up to
    /// [`MIN_EMU_BUDGET`]; requests may override it again per proof).
    #[must_use]
    pub fn with_emu_budget(mut self, budget: usize) -> Self {
        self.emu_budget = budget.max(MIN_EMU_BUDGET);
        self
    }

    /// The policies registered on this verifier (a request without a
    /// policy override is checked against exactly these).
    #[must_use]
    pub fn policies(&self) -> &[Box<dyn Policy>] {
        &self.policies
    }

    /// Runs only the abstract-execution stage (for tooling/benchmarks);
    /// callers must have verified the OR's authenticity themselves.
    #[must_use]
    pub fn reconstruct(&self, device_or: &[u8]) -> Emulation {
        abstract_execute_indexed(
            &mut EmuWorkspace::new(),
            &self.op,
            &self.sites,
            device_or,
            self.emu_budget,
        )
    }

    /// Classifies every word slot of `device_or` by what the verifier's own
    /// reconstruction writes there: log-head, CF-Log, I-Log, or unused.
    ///
    /// This is the mutation engine's targeting map. The security argument
    /// differs per class — CF slots are recomputed (any authenticated
    /// splice must diverge), input slots are injected (forging one is only
    /// caught through its behavioural consequences), head slots seed the
    /// emulated initial state (forging one is indistinguishable from an
    /// honest run with different arguments) — so an oracle asserting "this
    /// mutant must be rejected" has to know which kind of slot it hit.
    ///
    /// Index `i` of the returned vector covers OR bytes `2*i..2*i + 2`
    /// (from `or_min`). The map is derived from a full reconstruction of
    /// `device_or`, so call it with the honest snapshot being mutated.
    #[must_use]
    pub fn or_slot_classes(&self, device_or: &[u8]) -> Vec<SlotClass> {
        let emu = self.reconstruct(device_or);
        let pox = self.op.pox;
        let mut classes = vec![SlotClass::Unused; pox.or_len() / 2];
        for step in emu.trace.steps() {
            for w in step.writes() {
                if w.addr >= pox.or_min && w.addr <= pox.or_max {
                    let idx = usize::from(w.addr - pox.or_min) / 2;
                    classes[idx] = if self.sites.is_input(step.pc) {
                        SlotClass::Input
                    } else if self.sites.is_arg(step.pc) {
                        SlotClass::Head
                    } else {
                        SlotClass::ControlFlow
                    };
                }
            }
        }
        classes
    }
}

/// Full data-flow verification: cryptographic PoX check, abstract
/// execution with input injection, OR comparison, shadow call stack, and
/// application policies. Honours every [`VerifyRequest`] override: key
/// source, emulation budget, and policy set.
impl Verifier for DialedVerifier {
    fn verify_in(&self, ws: &mut EmuWorkspace, req: &VerifyRequest<'_>) -> Report {
        let (proof, challenge) = (req.proof(), req.challenge());
        // 1. Cryptographic proof of execution (code + OR + EXEC), under
        //    the request's resolved key.
        let ra = match req.resolve_key() {
            Ok(ra) => ra,
            Err(reason) => return Report::rejected(reason),
        };
        let or = match self.pox_verifier.check_with_mac_hint(
            &proof.pox,
            challenge,
            ra,
            req.mac_precheck(),
        ) {
            Ok(or) => or,
            Err(reason) => return Report::rejected(reason),
        };
        if self.op.sites.args.len() != 9 {
            return Report::rejected(RejectReason::NotFullyInstrumented);
        }
        // The OR must hold the full log head; a smaller region would make
        // abstract execution seed `sp_base` and the argument registers from
        // zero-filled slots — verifying the proof against fabricated state
        // instead of rejecting it.
        let capacity = (usize::from(self.op.r_top() - self.op.pox.or_min) + 2) / 2;
        if capacity < LOG_HEAD_WORDS {
            return Report {
                verdict: Verdict::Rejected,
                findings: vec![Finding::OrHeadTruncated { capacity, required: LOG_HEAD_WORDS }],
                stats: VerifyStats::default(),
            };
        }

        // 2. Abstract execution with input injection. Findings stay on the
        //    emulation until policies (which may inspect `emu.findings`)
        //    have run; verification-stage findings accumulate separately.
        let budget = req.emu_budget().unwrap_or(self.emu_budget);
        let mut emu = abstract_execute_indexed(ws, &self.op, &self.sites, or, budget);
        let mut extra = Vec::new();

        if emu.outcome != EmuOutcome::Completed {
            extra.push(Finding::EmulationStuck);
        }

        // 3. The recomputed OR must match the attested OR over the used
        //    span [final_r4 + 2, r_top + 1]. One slice comparison covers
        //    the clean case; the word-by-word walk only runs to locate the
        //    topmost divergence for the finding.
        let r_top = self.op.r_top();
        let used_lo = emu.final_r4.wrapping_add(2).max(self.op.pox.or_min);
        if used_lo <= r_top {
            let lo = usize::from(used_lo - self.op.pox.or_min);
            let hi = usize::from(r_top - self.op.pox.or_min) + 2;
            if or[lo..hi] != emu.or_emulated[lo..hi] {
                let mut slot = r_top;
                while slot >= used_lo {
                    let off = usize::from(slot - self.op.pox.or_min);
                    let dev = u16::from(or[off]) | (u16::from(or[off + 1]) << 8);
                    let emul = u16::from(emu.or_emulated[off])
                        | (u16::from(emu.or_emulated[off + 1]) << 8);
                    if dev != emul {
                        extra.push(Finding::LogDivergence {
                            addr: slot,
                            device: dev,
                            emulated: emul,
                        });
                        break;
                    }
                    if slot < 2 {
                        break;
                    }
                    slot -= 2;
                }
            }
        }

        // 4. Application policies on the reconstructed execution (with the
        //    shadow-stack findings still visible on `emu`).
        for policy in req.policy_overrides().unwrap_or(&self.policies) {
            extra.extend(policy.check(&emu));
        }

        let mut findings = std::mem::take(&mut emu.findings);
        findings.append(&mut extra);

        let (cf_entries, input_entries, arg_entries) = emu.log_counts;
        let stats = VerifyStats {
            emulated_insns: emu.trace.insn_count(),
            log_bytes_used: usize::from(r_top.saturating_sub(emu.final_r4)),
            cf_entries,
            input_entries,
            arg_entries,
        };

        // The emulation is fully consumed: recycle its buffers.
        ws.reclaim(emu);

        if findings.is_empty() {
            Report::clean(stats)
        } else {
            Report::attack(findings, stats)
        }
    }

    fn precheck_macs(
        &self,
        jobs: &[BatchJob],
        keys: Option<&dyn KeySource>,
        out: &mut Vec<Option<bool>>,
    ) -> bool {
        crate::request::precheck_pox_macs(&self.pox_verifier, jobs, keys, out)
    }

    fn er_digest_cache(&self) -> Option<&ErDigestCache> {
        Some(self.pox_verifier.er_digest_cache())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::{DialedDevice, DialedProof};
    use crate::pipeline::BuildOptions;
    use vrased::Challenge;

    fn round_trip(src: &str, args: &[u16; 8], setup: impl FnOnce(&mut msp430::Platform)) -> Report {
        let op = InstrumentedOp::build(src, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(77);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        setup(dev.platform_mut());
        let info = dev.invoke(args);
        assert_eq!(info.stop, apex::pox::StopReason::ReachedStop, "{:?}", dev.violation());
        let chal = Challenge::derive(b"verif", 9);
        let proof = dev.prove(&chal);
        DialedVerifier::new(op, ks).verify(&VerifyRequest::new(&proof, &chal))
    }

    #[test]
    fn honest_pure_computation_verifies() {
        let src = "\
            .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";
        let report = round_trip(src, &[0, 0, 0, 0, 0, 0, 20, 22], |_| {});
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.stats.arg_entries, 9);
    }

    #[test]
    fn honest_peripheral_input_verifies() {
        // Reads P1IN (a data input) and acts on it.
        let src = "\
            .org 0xE000\nop:\n mov.b &0x0020, r14\n mov.b r14, &0x0019\n ret\n";
        let report = round_trip(src, &[0; 8], |p| p.gpio.p1.input = 0x42);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.stats.input_entries, 1);
    }

    #[test]
    fn honest_loop_with_branches_verifies() {
        let src = "\
            .org 0xE000\nop:\n mov #5, r10\n clr r11\nloop:\n add r10, r11\n dec r10\n jnz loop\n mov r11, &0x0060\n ret\n";
        let report = round_trip(src, &[0; 8], |_| {});
        assert!(report.is_clean(), "{report}");
        // 5 loop iterations → 5 conditional entries + final ret.
        assert!(report.stats.cf_entries >= 6);
    }

    #[test]
    fn honest_pointer_walk_over_globals_verifies() {
        // Walks a 3-word table at 0x0300 (outside the stack → all logged).
        let src = "\
            .org 0xE000\nop:\n mov #0x0300, r15\n clr r11\n mov #3, r10\nloop:\n add @r15+, r11\n dec r10\n jnz loop\n mov r11, &0x0060\n ret\n";
        let report = round_trip(src, &[0; 8], |p| p.load_words(0x0300, &[7, 11, 13]));
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.stats.input_entries, 3);
    }

    #[test]
    fn device_input_values_reach_the_verifier_via_ilog() {
        // The op copies P1IN to a global; the verifier reconstructs the
        // same write even though it never saw the device's peripheral.
        let src = "\
            .org 0xE000\nop:\n mov.b &0x0020, r14\n mov.b r14, &0x0300\n ret\n";
        let op = InstrumentedOp::build(src, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(3);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        dev.platform_mut().gpio.p1.input = 0xA7;
        dev.invoke(&[0; 8]);
        let chal = Challenge::derive(b"v", 0);
        let proof = dev.prove(&chal);
        let verifier = DialedVerifier::new(op, ks);
        let report = verifier.verify(&VerifyRequest::new(&proof, &chal));
        assert!(report.is_clean(), "{report}");
        let emu = verifier.reconstruct(&proof.pox.or_data);
        // The reconstructed trace contains the store of 0xA7 to 0x0300.
        let wrote = emu
            .trace
            .steps()
            .iter()
            .any(|s| s.writes().any(|w| w.addr == 0x0300 && w.value == 0xA7));
        assert!(wrote, "verifier must reconstruct the device's data flow");
    }

    #[test]
    fn tiny_or_proof_is_rejected_not_verified_against_fabricated_head() {
        // Regression: an OR with fewer than 9 word slots cannot hold the
        // log head; the verifier used to zero-fill `sp_base` and the args
        // and emulate anyway. Forge an *authentic-looking* proof (correct
        // key, EXEC claimed) over the tiny region and check it is rejected
        // before emulation.
        let src = ".org 0xE000\nop:\n mov r15, &0x0060\n ret\n";
        let opts = BuildOptions { or_min: 0x0600, or_max: 0x060F, ..BuildOptions::default() }; // 8 slots
        let op = InstrumentedOp::build(src, "op", &opts).unwrap();
        let ks = KeyStore::from_seed(55);
        let chal = Challenge::derive(b"tiny", 0);
        let or_data = vec![0u8; op.pox.or_len()];
        let mut extra = [0u8; 11];
        extra[..10].copy_from_slice(&op.pox.to_metadata_bytes());
        extra[10] = 1;
        let tag = vrased::SwAtt::new(ks.clone()).attest_region_bytes(
            &chal,
            &[
                (op.pox.er_min, op.pox.er_max, &op.er_bytes[..]),
                (op.pox.or_min, op.pox.or_max, or_data.as_slice()),
            ],
            &extra,
        );
        let proof = DialedProof { pox: apex::PoxProof { cfg: op.pox, exec: true, or_data, tag } };
        let report = DialedVerifier::new(op, ks).verify(&VerifyRequest::new(&proof, &chal));
        assert_eq!(report.verdict, Verdict::Rejected);
        assert!(
            matches!(report.findings[0], Finding::OrHeadTruncated { capacity: 8, required: 9 }),
            "{report}"
        );
    }

    #[test]
    fn slot_classes_cover_head_cf_and_input_entries() {
        // Reads P1IN (input log), loops (cf log), and has the 9-word head.
        let src = "\
            .org 0xE000\nop:\n mov.b &0x0020, r14\n mov #3, r10\nloop:\n dec r10\n jnz loop\n mov.b r14, &0x0019\n ret\n";
        let op = InstrumentedOp::build(src, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(21);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        dev.platform_mut().gpio.p1.input = 0x5A;
        dev.invoke(&[0; 8]);
        let proof = dev.prove(&Challenge::derive(b"slots", 0));
        let verifier = DialedVerifier::new(op.clone(), ks);
        let classes = verifier.or_slot_classes(&proof.pox.or_data);
        assert_eq!(classes.len(), op.pox.or_len() / 2);
        let count = |c: SlotClass| classes.iter().filter(|&&x| x == c).count();
        assert_eq!(count(SlotClass::Head), LOG_HEAD_WORDS);
        assert_eq!(count(SlotClass::Input), 1, "one P1IN read");
        assert!(count(SlotClass::ControlFlow) >= 4, "3 loop branches + ret");
        assert!(count(SlotClass::Unused) > 0, "OR is larger than the log");
        // The head occupies the topmost slots (r_top downwards).
        let top = usize::from(op.r_top() - op.pox.or_min) / 2;
        for i in 0..LOG_HEAD_WORDS {
            assert_eq!(classes[top - i], SlotClass::Head, "head slot {i}");
        }
    }

    #[test]
    fn resealed_cf_splice_passes_mac_but_diverges() {
        // The reseal hook models compromised software invoking SW-Att over
        // a tampered OR: the MAC verifies, and the tamper must instead die
        // in abstract execution as a log divergence.
        let src = "\
            .org 0xE000\nop:\n mov #4, r10\nloop:\n dec r10\n jnz loop\n mov r10, &0x0060\n ret\n";
        let op = InstrumentedOp::build(src, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(22);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        dev.invoke(&[0; 8]);
        let chal = Challenge::derive(b"reseal", 0);
        let mut proof = dev.prove(&chal);
        let verifier = DialedVerifier::new(op.clone(), ks.clone());
        let classes = verifier.or_slot_classes(&proof.pox.or_data);
        let slot = classes
            .iter()
            .position(|&c| c == SlotClass::ControlFlow)
            .expect("loop op must log cf entries");
        proof.pox.or_data[slot * 2] ^= 0x3C;
        proof.pox.reseal(ks.clone(), &chal, &op.er_bytes);
        let report = verifier.verify(&VerifyRequest::new(&proof, &chal));
        assert_eq!(report.verdict, Verdict::Attack, "{report}");
        assert!(
            report.findings.iter().any(|f| matches!(f, Finding::LogDivergence { .. })),
            "{report}"
        );
    }

    #[test]
    fn tampered_or_is_rejected_cryptographically() {
        let src = ".org 0xE000\nop:\n mov r15, &0x0060\n ret\n";
        let op = InstrumentedOp::build(src, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(4);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        dev.invoke(&[0; 8]);
        let chal = Challenge::derive(b"v", 1);
        let mut proof = dev.prove(&chal);
        proof.pox.or_data[4] ^= 0xFF;
        let report = DialedVerifier::new(op, ks).verify(&VerifyRequest::new(&proof, &chal));
        assert_eq!(report.verdict, crate::report::Verdict::Rejected);
    }
}
