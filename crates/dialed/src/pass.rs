//! The DIALED instrumentation pass: features **F3** (argument logging) and
//! **F4** (runtime data-input logging).
//!
//! Inserted blocks follow the paper's Figs. 4 and 5, adapted as recorded in
//! DESIGN.md:
//!
//! * the log stack is word-granular (`decd r4`, not `dec r4`);
//! * blocks that clobber condition codes are wrapped in `push sr … pop sr`
//!   (flag liveness across reads is real in chained-branch code);
//! * the abort is a branch-to-self spin, identical in effect to the paper's
//!   jump to `.L11` (execution never reaches the legal ER exit, so EXEC
//!   never latches);
//! * every input-log `mov` carries a `__dfa_in_<n>` label; the verifier uses
//!   those addresses as injection sites during abstract execution.

use msp430::regs::Reg;
use msp430_asm::{parse_snippet, Expr, Item, Program, SourceLine, Stmt, TOperand, Template};
use serde::{Deserialize, Serialize};
use tinycfa::pass::PassError;

/// Prefix of the labels marking input-log instructions.
pub const INPUT_SITE_PREFIX: &str = "__dfa_in_";
/// Prefix of the labels marking argument-log instructions (entry block).
pub const ARG_SITE_PREFIX: &str = "__dfa_arg_";

/// Which memory reads receive runtime stack-range checks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum ReadCheckPolicy {
    /// Every memory read is checked at runtime (paper-faithful F4).
    #[default]
    AllReads,
    /// Reads addressed as `x(sp)` with `x ≥ 0` are assumed in-stack and not
    /// instrumented — an ablation quantifying the cost of checking stack
    /// locals.
    SkipStackLocals,
}

/// DIALED pass configuration.
#[derive(Clone, Copy, Debug)]
pub struct DfaConfig {
    /// First OR byte.
    pub or_min: u16,
    /// Last OR byte (inclusive).
    pub or_max: u16,
    /// Read-check policy.
    pub read_policy: ReadCheckPolicy,
    /// Emit the `r4` entry check (`cmp #R_TOP, r4 ; jne $`). Off by default
    /// because Tiny-CFA already provides it when the passes are composed.
    pub entry_check: bool,
}

impl DfaConfig {
    /// The initial `R` value (top word slot of OR) — also the address where
    /// the entry block saves the stack-pointer base.
    #[must_use]
    pub fn r_top(&self) -> u16 {
        self.or_max & !1
    }
}

fn expr_uses_here(e: &Expr) -> bool {
    match e {
        Expr::Here => true,
        Expr::Num(_) | Expr::Sym(_) => false,
        Expr::Add(a, b) | Expr::Sub(a, b) => expr_uses_here(a) || expr_uses_here(b),
        Expr::Neg(a) => expr_uses_here(a),
    }
}

/// Registers an operand *uses as a base* (for scratch avoidance).
fn base_regs(t: &Template) -> Vec<Reg> {
    let mut out = Vec::new();
    let mut add = |o: &TOperand| match o {
        TOperand::Reg(r)
        | TOperand::Indexed(_, r)
        | TOperand::Indirect(r)
        | TOperand::IndirectInc(r) => out.push(*r),
        _ => {}
    };
    match t {
        Template::Jcc { .. } => {}
        Template::One { sd, .. } => add(sd),
        Template::Two { src, dst, .. } => {
            add(src);
            add(dst);
        }
    }
    out
}

/// Instruments `program` with DIALED's F3+F4. Run *after* the Tiny-CFA pass
/// (which owns the entry `r4` check and all control-flow instructions).
///
/// # Errors
///
/// See [`PassError`]; notably reads based on `pc` and `$`-relative
/// addresses are unsupported.
pub fn instrument(
    program: &Program,
    op_label: &str,
    cfg: &DfaConfig,
) -> Result<Program, PassError> {
    let mut out = Program::new();
    let mut n = 0usize;
    let mut found = false;
    let snip = |text: &str| -> Result<Vec<SourceLine>, PassError> {
        parse_snippet(text).map_err(|e| PassError::Snippet(e.to_string()))
    };

    let mut idx = 0usize;
    while idx < program.lines.len() {
        let line = &program.lines[idx];
        match &line.item {
            Item::Label(l) if l == op_label && !found => {
                found = true;
                out.lines.push(line.clone());
                // Keep Tiny-CFA's entry check (`cmp #R_TOP, r4 ; jne $`)
                // ahead of our entry block — but nothing else: other
                // synthetic lines right after the label belong to the first
                // instruction's instrumentation and must stay after F3.
                while let Some(next) = program.lines.get(idx + 1) {
                    if next.synthetic && is_entry_check_line(&next.item) {
                        out.lines.push(next.clone());
                        idx += 1;
                    } else {
                        break;
                    }
                }
                out.lines.extend(snip(&entry_block_text(cfg))?);
            }
            Item::Stmt(Stmt::Insn(t)) if !line.synthetic && !t.alters_control_flow() => {
                let preserve = msp430_asm::ast::flags_live_from(&program.lines, idx);
                let reads: Vec<TOperand> = t.memory_reads().into_iter().cloned().collect();
                for op in &reads {
                    if let Some(text) = read_block_text(op, t, &mut n, cfg, line.line, preserve)? {
                        out.lines.extend(snip(&text)?);
                    }
                }
                out.lines.push(line.clone());
            }
            _ => out.lines.push(line.clone()),
        }
        idx += 1;
    }

    if !found {
        return Err(PassError::OpLabelNotFound(op_label.to_string()));
    }
    Ok(out)
}

/// Recognises the two lines of Tiny-CFA's entry check: `cmp #K, r4` and the
/// abort spin `jne $`.
fn is_entry_check_line(item: &Item) -> bool {
    matches!(
        item,
        Item::Stmt(Stmt::Insn(Template::Two {
            op: msp430::isa::Op2::Cmp,
            dst: TOperand::Reg(Reg::R4),
            ..
        })) | Item::Stmt(Stmt::Insn(Template::Jcc {
            cond: msp430::isa::Cond::Nz,
            target: Expr::Here,
        }))
    )
}

/// The F3 entry block: optional `r4` check, save SP base at `[R_TOP]`, then
/// log the eight argument registers `r8`–`r15` (Fig. 4(b)).
fn entry_block_text(cfg: &DfaConfig) -> String {
    let mut s = String::new();
    if cfg.entry_check {
        s.push_str(&format!(" cmp #{}, r4\n jne $\n", cfg.r_top()));
    }
    let or_min = cfg.or_min;
    // Save the stack pointer to [R_TOP] (the slot r4 points at on entry).
    s.push_str(&format!("__dfa_arg_sp:\n mov r1, 0(r4)\n decd r4\n cmp #{or_min}, r4\n jn $\n"));
    for (i, reg) in (8..16).enumerate() {
        s.push_str(&format!(
            "{ARG_SITE_PREFIX}{i}:\n mov r{reg}, 0(r4)\n decd r4\n cmp #{or_min}, r4\n jn $\n"
        ));
    }
    s
}

/// The F4 read block for one memory operand, or `None` when the policy (or
/// a static guarantee) says the read cannot be a data input.
fn read_block_text(
    op: &TOperand,
    t: &Template,
    n: &mut usize,
    cfg: &DfaConfig,
    line: usize,
    preserve: bool,
) -> Result<Option<String>, PassError> {
    let or_min = cfg.or_min;
    let r_top = cfg.r_top();
    match op {
        // `@sp` / `@sp+` read the top of the stack — always in-stack.
        TOperand::Indirect(Reg::R1) | TOperand::IndirectInc(Reg::R1) => Ok(None),
        TOperand::Indirect(Reg::R0) | TOperand::IndirectInc(Reg::R0) => {
            Err(PassError::Unsupported {
                line,
                msg: "pc-based indirect reads are not instrumentable".into(),
            })
        }
        TOperand::Indirect(Reg::R4) | TOperand::IndirectInc(Reg::R4) => {
            Err(PassError::ReservedRegister { line })
        }
        TOperand::Indirect(r) | TOperand::IndirectInc(r) => {
            *n += 1;
            let i = *n;
            // Runtime range check against [SP, base), then log (Fig. 5(b)).
            let body = format!(
                " cmp &{r_top}, {r}\n jhs __dfa{i}_log\n cmp r1, {r}\n jhs __dfa{i}_skip\n__dfa{i}_log:\n{INPUT_SITE_PREFIX}{i}:\n mov @{r}, 0(r4)\n decd r4\n cmp #{or_min}, r4\n jn $\n__dfa{i}_skip:\n"
            );
            Ok(Some(if preserve { format!(" push sr\n{body} pop sr\n") } else { body }))
        }
        TOperand::Indexed(e, r) => {
            if expr_uses_here(e) {
                return Err(PassError::Unsupported {
                    line,
                    msg: "`$`-relative indexed reads are not instrumentable".into(),
                });
            }
            if *r == Reg::R4 {
                return Err(PassError::ReservedRegister { line });
            }
            if *r == Reg::R0 {
                return Err(PassError::Unsupported {
                    line,
                    msg: "pc-based indexed reads are not instrumentable".into(),
                });
            }
            if *r == Reg::R1 && cfg.read_policy == ReadCheckPolicy::SkipStackLocals {
                if let Some(v) = e.eval(&std::collections::BTreeMap::new(), 0) {
                    if v >= 0 {
                        return Ok(None);
                    }
                }
            }
            *n += 1;
            let i = *n;
            let scratch = pick_scratch(t);
            // EA = r + e; SP shifts by 2 per push active inside the block,
            // so an SP base needs compensation.
            let shift = if preserve { 4 } else { 2 };
            let ea_setup = if *r == Reg::R1 {
                format!(" mov r1, {scratch}\n add #{e}+{shift}, {scratch}\n")
            } else {
                format!(" mov {r}, {scratch}\n add #{e}, {scratch}\n")
            };
            let body = format!(
                " push {scratch}\n{ea_setup} cmp &{r_top}, {scratch}\n jhs __dfa{i}_log\n cmp r1, {scratch}\n jhs __dfa{i}_skip\n__dfa{i}_log:\n{INPUT_SITE_PREFIX}{i}:\n mov @{scratch}, 0(r4)\n decd r4\n cmp #{or_min}, r4\n jn $\n__dfa{i}_skip:\n pop {scratch}\n"
            );
            Ok(Some(if preserve { format!(" push sr\n{body} pop sr\n") } else { body }))
        }
        // Static addresses (globals, peripherals, constant tables) are by
        // definition outside the operation's stack: unconditional log.
        TOperand::Absolute(e) | TOperand::Symbolic(e) => {
            if expr_uses_here(e) {
                return Err(PassError::Unsupported {
                    line,
                    msg: "`$`-relative reads are not instrumentable".into(),
                });
            }
            *n += 1;
            let i = *n;
            let src = match op {
                TOperand::Absolute(_) => format!("&{e}"),
                _ => format!("{e}"),
            };
            let body = format!(
                "{INPUT_SITE_PREFIX}{i}:\n mov {src}, 0(r4)\n decd r4\n cmp #{or_min}, r4\n jn $\n"
            );
            Ok(Some(if preserve { format!(" push sr\n{body} pop sr\n") } else { body }))
        }
        TOperand::Reg(_) | TOperand::Imm(_) => Ok(None),
    }
}

/// Picks a scratch register not used by the instruction (it is push/popped,
/// so correctness only needs it distinct from the bases read inside the
/// block).
fn pick_scratch(t: &Template) -> Reg {
    let used = base_regs(t);
    for idx in (5..16).rev() {
        let r = Reg::from_index(idx);
        if r != Reg::R4 && !used.contains(&r) {
            return r;
        }
    }
    // An instruction can reference at most three registers; unreachable.
    Reg::R15
}

/// Collects the addresses of all input/argument log sites from an assembled
/// image's symbol table.
#[must_use]
pub fn collect_log_sites(image: &msp430_asm::Image) -> LogSites {
    let mut input = Vec::new();
    let mut args = Vec::new();
    for (name, addr) in &image.symbols {
        if name.starts_with(INPUT_SITE_PREFIX) {
            input.push(*addr);
        } else if name.starts_with(ARG_SITE_PREFIX) || name == "__dfa_arg_sp" {
            args.push(*addr);
        }
    }
    input.sort_unstable();
    args.sort_unstable();
    LogSites { input, args }
}

/// Addresses of the instrumentation's log instructions.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogSites {
    /// `__dfa_in_*` — runtime data-input logs (injection points).
    pub input: Vec<u16>,
    /// `__dfa_arg_*` — entry block logs (SP base + argument registers).
    pub args: Vec<u16>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp430_asm::{assemble_program, parse_program};

    fn cfg() -> DfaConfig {
        DfaConfig {
            or_min: 0x0600,
            or_max: 0x06FF,
            read_policy: ReadCheckPolicy::AllReads,
            entry_check: true,
        }
    }

    fn build(src: &str) -> (Program, msp430_asm::Image) {
        let p = parse_program(src).unwrap();
        let inst = instrument(&p, "op", &cfg()).unwrap();
        let img = assemble_program(&inst).unwrap();
        (inst, img)
    }

    #[test]
    fn entry_block_logs_sp_and_eight_args() {
        let (_, img) = build(".org 0xE000\nop:\n ret\n");
        let sites = collect_log_sites(&img);
        assert_eq!(sites.args.len(), 9, "SP base + r8..r15");
        assert!(sites.input.is_empty());
    }

    #[test]
    fn peripheral_read_gets_unconditional_log() {
        let (_, img) = build(".org 0xE000\nop:\n mov &0x0020, r14\n ret\n");
        let sites = collect_log_sites(&img);
        assert_eq!(sites.input.len(), 1);
    }

    #[test]
    fn indirect_read_gets_range_check() {
        let (prog, img) = build(".org 0xE000\nop:\n mov.b @r15, r14\n ret\n");
        let sites = collect_log_sites(&img);
        assert_eq!(sites.input.len(), 1);
        // The block contains the two comparisons of Fig. 5(b).
        let text = format!("{prog:?}");
        assert!(text.contains("Indirect(R15)"));
    }

    #[test]
    fn stack_relative_reads_skipped_statically_only_under_ablation() {
        let src = ".org 0xE000\nop:\n mov 2(r1), r14\n ret\n";
        let (_, img) = build(src);
        assert_eq!(collect_log_sites(&img).input.len(), 1, "AllReads instruments x(sp)");

        let p = parse_program(src).unwrap();
        let mut c = cfg();
        c.read_policy = ReadCheckPolicy::SkipStackLocals;
        let inst = instrument(&p, "op", &c).unwrap();
        let img = assemble_program(&inst).unwrap();
        assert_eq!(collect_log_sites(&img).input.len(), 0, "ablation skips x(sp)");
    }

    #[test]
    fn rmw_destination_read_is_instrumented() {
        // add r5, &0x0300 reads the destination.
        let (_, img) = build(".org 0xE000\nop:\n add r5, &0x0300\n ret\n");
        assert_eq!(collect_log_sites(&img).input.len(), 1);
        // mov r5, &0x0300 writes without reading: no log.
        let (_, img) = build(".org 0xE000\nop:\n mov r5, &0x0300\n ret\n");
        assert_eq!(collect_log_sites(&img).input.len(), 0);
    }

    #[test]
    fn two_reads_one_insn_two_sites() {
        let (_, img) = build(".org 0xE000\nop:\n add @r14, 2(r15)\n ret\n");
        assert_eq!(collect_log_sites(&img).input.len(), 2);
    }

    #[test]
    fn control_flow_insns_left_to_tinycfa() {
        // `call #f` and `ret` are CF instructions: no __dfa sites for them.
        let (_, img) = build(".org 0xE000\nop:\n call #0xF800\n ret\n");
        assert_eq!(collect_log_sites(&img).input.len(), 0);
    }

    #[test]
    fn pop_like_stack_reads_not_instrumented() {
        let (_, img) = build(".org 0xE000\nop:\n pop r11\n ret\n");
        assert_eq!(collect_log_sites(&img).input.len(), 0, "@sp+ is in-stack");
    }

    #[test]
    fn scratch_register_avoids_instruction_bases() {
        let t = Template::Two {
            op: msp430::isa::Op2::Mov,
            size: msp430::isa::Size::Word,
            src: TOperand::Indexed(Expr::num(2), Reg::R15),
            dst: TOperand::Reg(Reg::R14),
        };
        let s = pick_scratch(&t);
        assert_ne!(s, Reg::R15);
        assert_ne!(s, Reg::R14);
        assert_ne!(s, Reg::R4);
    }

    #[test]
    fn pc_based_reads_rejected() {
        let p = parse_program(".org 0xE000\nop:\n mov @r0, r5\n ret\n").unwrap();
        assert!(matches!(instrument(&p, "op", &cfg()), Err(PassError::Unsupported { .. })));
    }

    #[test]
    fn composes_after_tinycfa() {
        let src = ".org 0xE000\nop:\n mov &0x0020, r14\n tst r14\n jz done\n nop\ndone:\n ret\n";
        let p = parse_program(src).unwrap();
        let cfa = tinycfa::instrument(
            &p,
            "op",
            &tinycfa::CfaConfig {
                or_min: 0x0600,
                or_max: 0x06FF,
                policy: tinycfa::LogPolicy::AllTransfers,
            },
        )
        .unwrap();
        let mut c = cfg();
        c.entry_check = false; // Tiny-CFA provides it
        let both = instrument(&cfa, "op", &c).unwrap();
        let img = assemble_program(&both).unwrap();
        let sites = collect_log_sites(&img);
        assert_eq!(sites.args.len(), 9);
        assert_eq!(sites.input.len(), 1);
        // Instrumented image is strictly larger than CFA-only.
        let cfa_only = assemble_program(&cfa).unwrap();
        assert!(img.size_bytes() > cfa_only.size_bytes());
    }
}
