//! Verification reports, attack findings, and structured rejections.

use apex::PoxRejection;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a proof (or submission) was rejected before reconstruction-level
/// findings could be produced.
///
/// Every layer of the stack maps its failures into this one enum: the
/// cryptographic PoX check ([`PoxRejection`] via [`From`]), the request
/// layer ([`RejectReason::UnknownKey`], [`RejectReason::NotFullyInstrumented`]),
/// and the fleet service's wire, session and registry layers (which
/// provide their own `From` conversions into the three service-layer
/// variants). Consumers match on the class; [`fmt::Display`] renders the
/// operator-facing text.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RejectReason {
    /// The proof's region metadata differs from what the verifier expects.
    RegionMismatch,
    /// EXEC flag clear — the operation did not run untouched start-to-finish.
    ExecClear,
    /// The verifier's expected ER image does not span the configured region.
    ErLengthMismatch,
    /// The OR snapshot does not span the configured output region.
    OrLengthMismatch,
    /// The MAC did not verify (wrong key/challenge, or tampered content).
    MacMismatch,
    /// Full data-flow verification was requested for an operation that was
    /// not built with full DIALED instrumentation.
    NotFullyInstrumented,
    /// The request's [`KeySource`](crate::request::KeySource) had no key
    /// for the device being verified.
    UnknownKey {
        /// The device id the key lookup failed for.
        device: u64,
    },
    /// The submission could not be decoded off the wire.
    MalformedSubmission {
        /// Human-readable decode failure.
        detail: String,
    },
    /// The session layer refused the submission (duplicate, replay,
    /// deadline, device mismatch, …).
    SessionViolation {
        /// Human-readable session failure.
        detail: String,
    },
    /// The registry does not know the referenced device or operation.
    UnknownPrincipal {
        /// Human-readable registry failure.
        detail: String,
    },
    /// The service shed the submission because its ingest queues backed up
    /// past the load-shedding watermark — explicit backpressure, not a
    /// verdict on the proof. The device should retry after a pause.
    Overloaded {
        /// Queue depth observed at the shedding decision.
        pending: u64,
    },
}

/// The payload-free classification of a [`RejectReason`] — one class per
/// variant, with the detail fields (device ids, human-readable strings,
/// queue depths) stripped.
///
/// The mutation-oracle and accounting layers need to say "this mutant must
/// die as a MAC mismatch" or "count session-layer rejects" without caring
/// which device or which detail string was involved; comparing full
/// [`RejectReason`] values would make every expectation depend on
/// free-text. `RejectClass` is `Copy`, `Eq` and densely indexable
/// ([`RejectClass::index`]), so per-class counters are a flat array.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum RejectClass {
    /// [`RejectReason::RegionMismatch`].
    Region,
    /// [`RejectReason::ExecClear`].
    Exec,
    /// [`RejectReason::ErLengthMismatch`].
    ErLength,
    /// [`RejectReason::OrLengthMismatch`].
    OrLength,
    /// [`RejectReason::MacMismatch`].
    Mac,
    /// [`RejectReason::NotFullyInstrumented`].
    NotInstrumented,
    /// [`RejectReason::UnknownKey`].
    UnknownKey,
    /// [`RejectReason::MalformedSubmission`].
    Malformed,
    /// [`RejectReason::SessionViolation`].
    Session,
    /// [`RejectReason::UnknownPrincipal`].
    Principal,
    /// [`RejectReason::Overloaded`].
    Overloaded,
}

impl RejectClass {
    /// Every class, in wire-tag order (the order of
    /// [`RejectReason`]'s variants).
    pub const ALL: [RejectClass; 11] = [
        RejectClass::Region,
        RejectClass::Exec,
        RejectClass::ErLength,
        RejectClass::OrLength,
        RejectClass::Mac,
        RejectClass::NotInstrumented,
        RejectClass::UnknownKey,
        RejectClass::Malformed,
        RejectClass::Session,
        RejectClass::Principal,
        RejectClass::Overloaded,
    ];

    /// Dense index of this class within [`RejectClass::ALL`] — stable, and
    /// equal to the variant's wire tag.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short stable label ("mac", "session", …) for corpus case files and
    /// counter displays.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RejectClass::Region => "region",
            RejectClass::Exec => "exec",
            RejectClass::ErLength => "er-length",
            RejectClass::OrLength => "or-length",
            RejectClass::Mac => "mac",
            RejectClass::NotInstrumented => "not-instrumented",
            RejectClass::UnknownKey => "unknown-key",
            RejectClass::Malformed => "malformed",
            RejectClass::Session => "session",
            RejectClass::Principal => "principal",
            RejectClass::Overloaded => "overloaded",
        }
    }
}

impl fmt::Display for RejectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl RejectReason {
    /// This reason's payload-free [`RejectClass`].
    #[must_use]
    pub fn class(&self) -> RejectClass {
        match self {
            RejectReason::RegionMismatch => RejectClass::Region,
            RejectReason::ExecClear => RejectClass::Exec,
            RejectReason::ErLengthMismatch => RejectClass::ErLength,
            RejectReason::OrLengthMismatch => RejectClass::OrLength,
            RejectReason::MacMismatch => RejectClass::Mac,
            RejectReason::NotFullyInstrumented => RejectClass::NotInstrumented,
            RejectReason::UnknownKey { .. } => RejectClass::UnknownKey,
            RejectReason::MalformedSubmission { .. } => RejectClass::Malformed,
            RejectReason::SessionViolation { .. } => RejectClass::Session,
            RejectReason::UnknownPrincipal { .. } => RejectClass::Principal,
            RejectReason::Overloaded { .. } => RejectClass::Overloaded,
        }
    }
}

impl From<PoxRejection> for RejectReason {
    fn from(r: PoxRejection) -> Self {
        match r {
            PoxRejection::RegionMismatch => RejectReason::RegionMismatch,
            PoxRejection::ExecClear => RejectReason::ExecClear,
            PoxRejection::ErLengthMismatch => RejectReason::ErLengthMismatch,
            PoxRejection::OrLengthMismatch => RejectReason::OrLengthMismatch,
            PoxRejection::MacMismatch => RejectReason::MacMismatch,
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::RegionMismatch => PoxRejection::RegionMismatch.fmt(f),
            RejectReason::ExecClear => PoxRejection::ExecClear.fmt(f),
            RejectReason::ErLengthMismatch => PoxRejection::ErLengthMismatch.fmt(f),
            RejectReason::OrLengthMismatch => PoxRejection::OrLengthMismatch.fmt(f),
            RejectReason::MacMismatch => PoxRejection::MacMismatch.fmt(f),
            RejectReason::NotFullyInstrumented => {
                write!(f, "operation was not built with full DIALED instrumentation")
            }
            RejectReason::UnknownKey { device } => {
                write!(f, "no verification key for device {device}")
            }
            RejectReason::MalformedSubmission { detail } => {
                write!(f, "malformed submission: {detail}")
            }
            RejectReason::SessionViolation { detail } => {
                write!(f, "session violation: {detail}")
            }
            RejectReason::UnknownPrincipal { detail } => {
                write!(f, "unknown principal: {detail}")
            }
            RejectReason::Overloaded { pending } => {
                write!(f, "service overloaded: {pending} submissions queued, retry later")
            }
        }
    }
}

/// One concrete finding from verification.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Finding {
    /// The proof itself did not verify (wrong code, tampered OR, cleared
    /// EXEC, replay, missing key, …).
    PoxRejected {
        /// Structured rejection class.
        reason: RejectReason,
    },
    /// A `ret` (or the toplevel return) went somewhere other than its call
    /// site — the Fig. 1 class of control-flow hijack, reproduced by the
    /// verifier's shadow stack during abstract execution.
    ReturnHijack {
        /// Address of the return instruction.
        at: u16,
        /// The legitimate return target.
        expected: u16,
        /// Where control actually went.
        actual: u16,
    },
    /// The attested OR differs from the OR recomputed by abstract
    /// execution — device behaviour diverged from its own logs.
    LogDivergence {
        /// First diverging OR address.
        addr: u16,
        /// Device word at that slot.
        device: u16,
        /// Recomputed word at that slot.
        emulated: u16,
    },
    /// A store targeted memory outside the operation's stack and its
    /// declared writable regions — the Fig. 2 class of data-only attack.
    OutOfBoundsWrite {
        /// PC of the store.
        pc: u16,
        /// Target address.
        addr: u16,
    },
    /// Actuation pulse exceeded the declared safety bound.
    ActuationViolation {
        /// Actuator port address.
        port: u16,
        /// Measured pulse length in CPU cycles.
        cycles: u64,
        /// Declared maximum.
        max: u64,
    },
    /// The OR region is too small to hold the 9-word log head (SP base +
    /// eight argument registers), so the proof carries no trustworthy
    /// initial state to re-execute from.
    OrHeadTruncated {
        /// Word slots the region actually holds.
        capacity: usize,
        /// Word slots the log head requires.
        required: usize,
    },
    /// Abstract execution did not terminate within its budget (the device
    /// log drives the program into an abort or livelock).
    EmulationStuck,
    /// A custom policy flagged the execution.
    PolicyViolation {
        /// Policy name.
        policy: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::PoxRejected { reason } => write!(f, "PoX rejected: {reason}"),
            Finding::ReturnHijack { at, expected, actual } => write!(
                f,
                "control-flow hijack: ret at {at:#06x} went to {actual:#06x}, expected {expected:#06x}"
            ),
            Finding::LogDivergence { addr, device, emulated } => write!(
                f,
                "log divergence at {addr:#06x}: device {device:#06x} ≠ recomputed {emulated:#06x}"
            ),
            Finding::OutOfBoundsWrite { pc, addr } => {
                write!(f, "data-only attack: store from {pc:#06x} to {addr:#06x} out of bounds")
            }
            Finding::ActuationViolation { port, cycles, max } => write!(
                f,
                "actuation violation: port {port:#06x} pulsed {cycles} cycles (max {max})"
            ),
            Finding::OrHeadTruncated { capacity, required } => write!(
                f,
                "OR region holds {capacity} word slots but the log head needs {required}"
            ),
            Finding::EmulationStuck => write!(f, "abstract execution did not terminate"),
            Finding::PolicyViolation { policy, detail } => {
                write!(f, "policy `{policy}`: {detail}")
            }
        }
    }
}

/// Overall verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Verdict {
    /// Proof valid and the reconstructed execution is benign.
    Clean,
    /// The cryptographic proof itself failed.
    Rejected,
    /// Proof valid but the reconstructed execution shows an attack.
    Attack,
}

/// Statistics the verifier gathered (useful for the Fig. 6 harness).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct VerifyStats {
    /// Instructions abstractly executed.
    pub emulated_insns: usize,
    /// Log bytes the device consumed in OR.
    pub log_bytes_used: usize,
    /// Number of logged words classified as control-flow entries.
    pub cf_entries: usize,
    /// Number of logged words classified as data-input entries.
    pub input_entries: usize,
    /// Number of logged words from the entry block (SP base + args).
    pub arg_entries: usize,
}

/// The verifier's complete answer.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Report {
    /// Verdict.
    pub verdict: Verdict,
    /// All findings (empty when clean).
    pub findings: Vec<Finding>,
    /// Verification statistics.
    pub stats: VerifyStats,
}

impl Report {
    /// A clean report with statistics.
    #[must_use]
    pub fn clean(stats: VerifyStats) -> Self {
        Self { verdict: Verdict::Clean, findings: Vec::new(), stats }
    }

    /// A rejection carrying its structured [`RejectReason`].
    #[must_use]
    pub fn rejected(reason: impl Into<RejectReason>) -> Self {
        Self {
            verdict: Verdict::Rejected,
            findings: vec![Finding::PoxRejected { reason: reason.into() }],
            stats: VerifyStats::default(),
        }
    }

    /// An attack report.
    #[must_use]
    pub fn attack(findings: Vec<Finding>, stats: VerifyStats) -> Self {
        Self { verdict: Verdict::Attack, findings, stats }
    }

    /// Is the execution proven benign?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.verdict == Verdict::Clean
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.verdict {
            Verdict::Clean => write!(
                f,
                "CLEAN ({} insns emulated, {} log bytes: {} cf / {} input / {} arg entries)",
                self.stats.emulated_insns,
                self.stats.log_bytes_used,
                self.stats.cf_entries,
                self.stats.input_entries,
                self.stats.arg_entries
            ),
            Verdict::Rejected | Verdict::Attack => {
                let label = if self.verdict == Verdict::Rejected { "REJECTED" } else { "ATTACK" };
                write!(f, "{label}:")?;
                for finding in &self.findings {
                    write!(f, "\n  - {finding}")?;
                }
                Ok(())
            }
        }
    }
}

/// One proof's verdict within a batch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchOutcome {
    /// Position of the job in the submitted batch.
    pub index: usize,
    /// Caller-assigned device identifier (opaque to the verifier).
    pub device_id: u64,
    /// The full per-proof report.
    pub report: Report,
}

/// Aggregate statistics for one batch-verification run.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct BatchStats {
    /// Jobs submitted.
    pub total: usize,
    /// Proofs verified clean.
    pub clean: usize,
    /// Proofs whose cryptographic PoX check failed.
    pub rejected: usize,
    /// Proofs with valid PoX but a reconstructed attack.
    pub attacks: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs a worker stole from another worker's queue.
    pub steals: usize,
    /// Wall-clock time for the whole batch.
    pub wall: std::time::Duration,
    /// Throughput over the wall-clock time.
    pub proofs_per_sec: f64,
    /// Total instructions abstractly executed across all proofs.
    pub emulated_insns: usize,
}

/// The verifier's answer for a whole batch of proofs.
#[derive(Clone, PartialEq, Debug)]
pub struct BatchReport {
    /// Per-proof outcomes, ordered by submission index.
    pub outcomes: Vec<BatchOutcome>,
    /// Aggregate statistics.
    pub stats: BatchStats,
}

impl BatchReport {
    /// Did every proof in the batch verify clean?
    #[must_use]
    pub fn all_clean(&self) -> bool {
        self.outcomes.iter().all(|o| o.report.is_clean())
    }

    /// The report for the job submitted at `index`.
    #[must_use]
    pub fn report(&self, index: usize) -> Option<&Report> {
        self.outcomes.get(index).map(|o| &o.report)
    }

    /// Outcomes that are not clean (attacks and rejections), for triage.
    pub fn flagged(&self) -> impl Iterator<Item = &BatchOutcome> {
        self.outcomes.iter().filter(|o| !o.report.is_clean())
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.stats;
        write!(
            f,
            "batch: {} proofs in {:.1?} ({:.0} proofs/s, {} workers, {} steals) — \
             {} clean / {} attack / {} rejected",
            s.total, s.wall, s.proofs_per_sec, s.workers, s.steals, s.clean, s.attacks, s.rejected
        )?;
        for o in self.flagged() {
            write!(f, "\n  #{} dev={}: {}", o.index, o.device_id, o.report)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reason_maps_onto_its_class_and_indexes_densely() {
        let reasons = [
            RejectReason::RegionMismatch,
            RejectReason::ExecClear,
            RejectReason::ErLengthMismatch,
            RejectReason::OrLengthMismatch,
            RejectReason::MacMismatch,
            RejectReason::NotFullyInstrumented,
            RejectReason::UnknownKey { device: 3 },
            RejectReason::MalformedSubmission { detail: "x".into() },
            RejectReason::SessionViolation { detail: "y".into() },
            RejectReason::UnknownPrincipal { detail: "z".into() },
            RejectReason::Overloaded { pending: 9 },
        ];
        assert_eq!(reasons.len(), RejectClass::ALL.len());
        for (i, reason) in reasons.iter().enumerate() {
            assert_eq!(reason.class(), RejectClass::ALL[i]);
            assert_eq!(reason.class().index(), i);
        }
        // Labels are distinct (corpus case files key on them).
        let mut labels: Vec<_> = RejectClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), RejectClass::ALL.len());
    }

    #[test]
    fn display_forms() {
        let r = Report::rejected(RejectReason::MacMismatch);
        assert!(r.to_string().contains("REJECTED"));
        assert!(r.to_string().contains("MAC verification failed"));
        assert!(!r.is_clean());

        // PoX-layer rejections convert losslessly into the shared enum.
        let r = Report::rejected(apex::PoxRejection::ExecClear);
        assert_eq!(r.findings, vec![Finding::PoxRejected { reason: RejectReason::ExecClear }]);

        let r = Report::attack(
            vec![Finding::ReturnHijack { at: 0xE010, expected: 0xE020, actual: 0xE004 }],
            VerifyStats::default(),
        );
        assert!(r.to_string().contains("hijack"));

        let r = Report::clean(VerifyStats { emulated_insns: 10, ..Default::default() });
        assert!(r.is_clean());
        assert!(r.to_string().contains("CLEAN"));
    }
}
