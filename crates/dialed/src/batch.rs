//! Parallel batch verification — the server-side hot path at fleet scale.
//!
//! A deployment attesting millions of devices verifies vast numbers of
//! *independent* proofs against the same instrumented operation. Each
//! verification is CPU-bound (abstract execution + OR recomputation) and
//! shares nothing with its neighbours except the read-only verifier state,
//! so the batch engine:
//!
//! * is generic over the [`Verifier`] backend — full DIALED data-flow
//!   verification and PoX-only checks drain through the same engine;
//! * spawns one worker per core (configurable) under [`std::thread::scope`]
//!   — no detached threads, no `'static` bounds on the job slice;
//! * distributes jobs round-robin into per-worker queues and lets idle
//!   workers **steal** from the busiest tail, so a batch of wildly uneven
//!   proofs (a livelocked log next to a two-instruction op) still saturates
//!   every core;
//! * gives each worker one long-lived [`EmuWorkspace`], so the 64 KiB RAM
//!   image, the step trace and the OR snapshot are allocated once per
//!   worker instead of once per proof;
//! * resolves per-device keys through a shared [`KeySource`] — requests
//!   borrow into it, so keyed batches add no per-proof allocation;
//! * returns a [`BatchReport`] with the per-proof verdicts (identical to
//!   sequential [`Verifier::verify`]) plus throughput statistics.

use crate::attest::DialedProof;
use crate::report::{BatchOutcome, BatchReport, BatchStats, Report};
use crate::request::{KeySource, Verifier, VerifyRequest};
use crate::verifier::EmuWorkspace;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use vrased::Challenge;

/// Fewest worker threads a [`BatchVerifier`] will run with. Degenerate
/// requests (`with_workers(0)`) are clamped up to this value.
pub const MIN_WORKERS: usize = 1;

/// One unit of batch work: a proof and the challenge it must answer.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// Caller-assigned device identifier: echoed into the outcome, and
    /// resolved against the batch's [`KeySource`] when one is supplied.
    pub device_id: u64,
    /// The attestation response to verify.
    pub proof: DialedProof,
    /// The challenge the verifier issued to this device.
    pub challenge: Challenge,
}

impl BatchJob {
    /// A job for `device_id`.
    #[must_use]
    pub fn new(device_id: u64, proof: DialedProof, challenge: Challenge) -> Self {
        Self { device_id, proof, challenge }
    }
}

/// Verifies batches of independent proofs of one operation across cores,
/// generic over the [`Verifier`] backend.
#[derive(Debug)]
pub struct BatchVerifier<V> {
    verifier: V,
    workers: usize,
}

impl<V: Verifier> BatchVerifier<V> {
    /// Wraps `verifier`, defaulting to one worker per available core.
    #[must_use]
    pub fn new(verifier: V) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        Self { verifier, workers }
    }

    /// Overrides the worker count, clamped up to [`MIN_WORKERS`]: asking
    /// for zero workers runs with one.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(MIN_WORKERS);
        self
    }

    /// The wrapped sequential verifier.
    #[must_use]
    pub fn verifier(&self) -> &V {
        &self.verifier
    }

    /// The worker count batches will run with.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Verifies every job, returning per-proof verdicts in submission order
    /// plus aggregate throughput statistics.
    ///
    /// With `keys` set, each job's MAC is checked under its device's key
    /// from the source (fleet deployments); without, every job verifies
    /// under the backend's embedded key.
    ///
    /// Verdicts are bit-identical to building a [`VerifyRequest`] per job
    /// and calling [`Verifier::verify`] sequentially; only the schedule is
    /// parallel.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (i.e. verification itself
    /// panicked — never expected for well-formed jobs).
    #[must_use]
    pub fn verify_batch(&self, jobs: &[BatchJob], keys: Option<&dyn KeySource>) -> BatchReport {
        let started = Instant::now();
        let workers = self.workers.min(jobs.len()).max(1);

        // Lane-batched MAC pre-pass: backends with a multi-buffer path
        // tag-check the whole batch in lockstep lanes up front (one memoized
        // expected-region digest fetch per batch), and workers then skip the
        // per-job tag recomputation. Verdicts are unchanged — the precheck
        // computes the identical boolean under identical key resolution.
        let mut prechecks: Vec<Option<bool>> = Vec::new();
        let prechecked = self.verifier.precheck_macs(jobs, keys, &mut prechecks);

        // One request construction shared by both schedules, so the
        // single-worker and multi-worker paths cannot drift apart.
        let verify_job = |ws: &mut EmuWorkspace, idx: usize| -> Report {
            let job = &jobs[idx];
            let mut req = VerifyRequest::new(&job.proof, &job.challenge).for_device(job.device_id);
            if let Some(keys) = keys {
                req = req.keys(keys);
            }
            if prechecked {
                if let Some(ok) = prechecks[idx] {
                    req = req.with_mac_precheck(ok);
                }
            }
            self.verifier.verify_in(ws, &req)
        };

        // A lone worker needs no queues, no locks and no thread spawn:
        // verify inline on the calling thread. Small shards on small
        // hosts hit this path on every drain.
        if workers == 1 {
            let mut ws = EmuWorkspace::new();
            let outcomes: Vec<BatchOutcome> = jobs
                .iter()
                .enumerate()
                .map(|(index, job)| BatchOutcome {
                    index,
                    device_id: job.device_id,
                    report: verify_job(&mut ws, index),
                })
                .collect();
            return finish(outcomes, jobs.len(), 1, 0, started);
        }

        // Round-robin initial distribution into per-worker deques.
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for idx in 0..jobs.len() {
            queues[idx % workers].push_back(idx);
        }
        let queues: Vec<Mutex<VecDeque<usize>>> = queues.into_iter().map(Mutex::new).collect();
        let steals = AtomicUsize::new(0);

        let mut outcomes: Vec<BatchOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let queues = &queues;
                    let steals = &steals;
                    let verify_job = &verify_job;
                    scope.spawn(move || {
                        let mut ws = EmuWorkspace::new();
                        let mut done: Vec<(usize, Report)> = Vec::new();
                        while let Some(idx) = next_job(queues, me, steals) {
                            done.push((idx, verify_job(&mut ws, idx)));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch worker panicked"))
                .map(|(index, report)| BatchOutcome {
                    index,
                    device_id: jobs[index].device_id,
                    report,
                })
                .collect()
        });
        outcomes.sort_unstable_by_key(|o| o.index);
        finish(outcomes, jobs.len(), workers, steals.into_inner(), started)
    }
}

/// Assembles the [`BatchReport`] from ordered outcomes plus run metadata.
fn finish(
    outcomes: Vec<BatchOutcome>,
    total: usize,
    workers: usize,
    steals: usize,
    started: Instant,
) -> BatchReport {
    let wall = started.elapsed();
    let mut stats = BatchStats {
        total,
        workers,
        steals,
        wall,
        proofs_per_sec: total as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
        ..BatchStats::default()
    };
    for o in &outcomes {
        match o.report.verdict {
            crate::report::Verdict::Clean => stats.clean += 1,
            crate::report::Verdict::Rejected => stats.rejected += 1,
            crate::report::Verdict::Attack => stats.attacks += 1,
        }
        stats.emulated_insns += o.report.stats.emulated_insns;
    }
    BatchReport { outcomes, stats }
}

/// Pops the next job for worker `me`: own queue first (front, FIFO), then a
/// steal from another worker's tail (LIFO from the victim's perspective,
/// minimising contention on the victim's hot end).
fn next_job(queues: &[Mutex<VecDeque<usize>>], me: usize, steals: &AtomicUsize) -> Option<usize> {
    if let Some(idx) = lock(&queues[me]).pop_front() {
        return Some(idx);
    }
    let n = queues.len();
    for off in 1..n {
        if let Some(idx) = lock(&queues[(me + off) % n]).pop_back() {
            steals.fetch_add(1, Ordering::Relaxed);
            return Some(idx);
        }
    }
    None
}

/// Locks a queue, tolerating poison: a panicked worker cannot leave a queue
/// logically inconsistent (every operation is a single pop).
fn lock<'q>(q: &'q Mutex<VecDeque<usize>>) -> std::sync::MutexGuard<'q, VecDeque<usize>> {
    q.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::DialedDevice;
    use crate::pipeline::{BuildOptions, InstrumentedOp};
    use crate::policy::GlobalWriteBounds;
    use crate::request::PerDevice;
    use crate::verifier::DialedVerifier;
    use vrased::{KeyStore, RaVerifier};

    const OP: &str = "\
        .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";

    /// Builds one op and produces `n` proofs with per-device args and
    /// challenges (device i computes i + 100·i).
    fn make_jobs(n: usize, ks: &KeyStore, op: &InstrumentedOp) -> Vec<BatchJob> {
        (0..n)
            .map(|i| {
                let mut dev = DialedDevice::new(op.clone(), ks.clone());
                let mut args = [0u16; 8];
                args[6] = i as u16;
                args[7] = 100 * i as u16;
                let info = dev.invoke(&args);
                assert_eq!(info.stop, apex::pox::StopReason::ReachedStop);
                let chal = Challenge::derive(b"batch", i as u64);
                BatchJob::new(i as u64, dev.prove(&chal), chal)
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_verdicts() {
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(21);
        let mut jobs = make_jobs(12, &ks, &op);
        // Sabotage two jobs: one OR corruption (Attack or Rejected), one
        // wrong challenge (Rejected).
        jobs[3].proof.pox.or_data[7] ^= 0x40;
        jobs[9].challenge = Challenge::derive(b"wrong", 9);

        let verifier = DialedVerifier::new(op.clone(), ks.clone());
        let sequential: Vec<Report> = jobs
            .iter()
            .map(|j| verifier.verify(&VerifyRequest::new(&j.proof, &j.challenge)))
            .collect();

        let batch = BatchVerifier::new(DialedVerifier::new(op, ks)).with_workers(4);
        let report = batch.verify_batch(&jobs, None);

        assert_eq!(report.stats.total, 12);
        assert_eq!(report.outcomes.len(), 12);
        for (i, (outcome, seq)) in report.outcomes.iter().zip(&sequential).enumerate() {
            assert_eq!(outcome.index, i, "outcomes must be in submission order");
            assert_eq!(outcome.device_id, i as u64);
            assert_eq!(&outcome.report, seq, "job {i} diverged from sequential");
        }
        assert!(!report.all_clean());
        assert_eq!(report.stats.clean + report.stats.attacks + report.stats.rejected, 12);
        assert_eq!(report.flagged().count(), 2);
        assert!(report.stats.proofs_per_sec > 0.0);
    }

    #[test]
    fn eight_proofs_verify_concurrently_clean() {
        // ≥ 8 proofs, concurrent verdicts identical to sequential
        // request-based verification.
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(22);
        let jobs = make_jobs(8, &ks, &op);
        let batch = BatchVerifier::new(DialedVerifier::new(op.clone(), ks.clone())).with_workers(8);
        let report = batch.verify_batch(&jobs, None);
        assert!(report.all_clean(), "{report}");
        assert_eq!(report.stats.clean, 8);
        assert_eq!(report.stats.workers, 8);
        let verifier = DialedVerifier::new(op, ks);
        for (job, outcome) in jobs.iter().zip(&report.outcomes) {
            assert_eq!(
                outcome.report,
                verifier.verify(&VerifyRequest::new(&job.proof, &job.challenge))
            );
        }
    }

    #[test]
    fn workspace_reuse_is_observationally_pure() {
        // One workspace pushed through clean, corrupted and clean-again
        // proofs must give the same reports as fresh workspaces.
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(23);
        let mut jobs = make_jobs(3, &ks, &op);
        jobs[1].proof.pox.or_data[5] ^= 0xFF;
        let verifier = DialedVerifier::new(op, ks);
        let mut ws = EmuWorkspace::new();
        for job in &jobs {
            let req = VerifyRequest::new(&job.proof, &job.challenge);
            let reused = verifier.verify_in(&mut ws, &req);
            let fresh = verifier.verify(&req);
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn empty_batch_is_trivially_clean() {
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(24);
        let batch = BatchVerifier::new(DialedVerifier::new(op, ks));
        let report = batch.verify_batch(&[], None);
        assert!(report.all_clean());
        assert_eq!(report.stats.total, 0);
        assert!(report.outcomes.is_empty());
    }

    #[test]
    fn policies_apply_across_workers() {
        // A policy that rejects the op's global store must flag *every*
        // proof, from whichever worker verifies it.
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(25);
        let jobs = make_jobs(9, &ks, &op);
        let verifier =
            DialedVerifier::new(op, ks).with_policy(Box::new(GlobalWriteBounds::new(vec![])));
        let report = BatchVerifier::new(verifier).with_workers(3).verify_batch(&jobs, None);
        assert_eq!(report.stats.attacks, 9, "{report}");
    }

    #[test]
    fn per_device_keys_verify_under_their_own_keys() {
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        // Each device holds its own key; the batch verifier is built with
        // an unrelated key that keyed batches must never fall back to.
        let table: Vec<RaVerifier> =
            (0u64..6).map(|i| RaVerifier::new(KeyStore::from_seed(1000 + i))).collect();
        let jobs: Vec<BatchJob> = (0u64..6)
            .map(|i| {
                let ks = KeyStore::from_seed(1000 + i);
                let mut dev = DialedDevice::new(op.clone(), ks);
                let mut args = [0u16; 8];
                args[7] = i as u16;
                let info = dev.invoke(&args);
                assert_eq!(info.stop, apex::pox::StopReason::ReachedStop);
                let chal = Challenge::derive(b"keyed", i);
                BatchJob::new(i, dev.prove(&chal), chal)
            })
            .collect();
        let keys = PerDevice::new(|device| table.get(usize::try_from(device).ok()?));
        let batch =
            BatchVerifier::new(DialedVerifier::new(op, KeyStore::from_seed(9999))).with_workers(3);
        let report = batch.verify_batch(&jobs, Some(&keys));
        assert!(report.all_clean(), "{report}");
        // Without the key source the batch falls back to the verifier's
        // own (wrong) key and every MAC fails.
        let r = batch.verify_batch(&jobs, None);
        assert_eq!(r.stats.rejected, 6, "{r}");
    }

    #[test]
    fn single_worker_degrades_to_sequential() {
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(26);
        let jobs = make_jobs(5, &ks, &op);
        let report = BatchVerifier::new(DialedVerifier::new(op, ks))
            .with_workers(1)
            .verify_batch(&jobs, None);
        assert!(report.all_clean());
        assert_eq!(report.stats.workers, 1);
        assert_eq!(report.stats.steals, 0, "a lone worker has nobody to steal from");
    }

    #[test]
    fn zero_workers_clamps_to_the_documented_minimum() {
        // Degenerate builder input: `with_workers(0)` must run, not hang
        // or panic — pinned to MIN_WORKERS.
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(27);
        let jobs = make_jobs(2, &ks, &op);
        let batch = BatchVerifier::new(DialedVerifier::new(op, ks)).with_workers(0);
        assert_eq!(batch.workers(), MIN_WORKERS);
        let report = batch.verify_batch(&jobs, None);
        assert!(report.all_clean(), "{report}");
        assert_eq!(report.stats.workers, MIN_WORKERS);
    }
}
