//! Device-side protocol: invoking an attested operation and producing a
//! DIALED proof.

use crate::pipeline::InstrumentedOp;
use apex::pox::{PoxProver, StopReason};
use apex::PoxProof;
use msp430::platform::Platform;
use msp430::regs::Reg;
use vrased::{Challenge, KeyStore};

/// Default step budget per invocation (generous; honest ops finish in tens
/// of thousands of steps).
pub const DEFAULT_STEP_BUDGET: usize = 2_000_000;

/// A DIALED attestation response: the APEX proof whose OR carries CF-Log
/// and I-Log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DialedProof {
    /// The underlying proof of execution.
    pub pox: PoxProof,
}

/// Outcome statistics of one device-side invocation.
#[derive(Clone, Copy, Debug)]
pub struct RunInfo {
    /// Instructions executed.
    pub insns: usize,
    /// CPU cycles consumed — the Fig. 6(b) metric.
    pub cycles: u64,
    /// OR bytes consumed by the logs — the Fig. 6(c) metric.
    pub log_bytes_used: usize,
    /// Why execution stopped.
    pub stop: StopReason,
}

/// The simulated prover device running one attested operation.
#[derive(Debug)]
pub struct DialedDevice {
    op: InstrumentedOp,
    prover: PoxProver,
}

impl DialedDevice {
    /// Boots a device with the operation (and caller stub) flashed.
    #[must_use]
    pub fn new(op: InstrumentedOp, keystore: KeyStore) -> Self {
        let mut platform = Platform::new();
        op.image.load_into_platform(&mut platform);
        let prover = PoxProver::new(platform, op.pox, keystore);
        Self { op, prover }
    }

    /// Scriptable peripherals (feed UART commands, ADC samples, pin levels)
    /// — and, for attack experiments, arbitrary memory tampering.
    pub fn platform_mut(&mut self) -> &mut Platform {
        &mut self.prover.platform
    }

    /// Read-only platform access.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.prover.platform
    }

    /// Direct CPU access (attack experiments set up adversarial register
    /// state; the adversary controls all software).
    pub fn cpu_mut(&mut self) -> &mut msp430::cpu::Cpu {
        &mut self.prover.cpu
    }

    /// The built operation.
    #[must_use]
    pub fn op(&self) -> &InstrumentedOp {
        &self.op
    }

    /// Invokes the operation through the canonical caller with arguments in
    /// `r8..r15` (the paper logs all eight), running until the op returns
    /// or the budget expires.
    pub fn invoke(&mut self, args: &[u16; 8]) -> RunInfo {
        self.invoke_with_budget(args, DEFAULT_STEP_BUDGET)
    }

    /// [`DialedDevice::invoke`] with an explicit step budget.
    pub fn invoke_with_budget(&mut self, args: &[u16; 8], budget: usize) -> RunInfo {
        let cpu = &mut self.prover.cpu;
        cpu.set_reg(Reg::SP, self.op.options.stack_top);
        cpu.set_reg(Reg::R4, self.op.r_top());
        for (i, v) in args.iter().enumerate() {
            cpu.set_reg(Reg::from_index(8 + i as u16), *v);
        }
        cpu.set_pc(self.op.options.caller_site);
        let outcome = self.prover.run_to(self.op.return_addr, budget);
        let r4 = self.prover.cpu.reg(Reg::R4);
        let log_bytes_used = usize::from(self.op.r_top().saturating_sub(r4));
        RunInfo {
            insns: outcome.trace.insn_count(),
            cycles: outcome.trace.cycles(),
            log_bytes_used,
            stop: outcome.stop,
        }
    }

    /// Runs from the *current* CPU state (no register setup) until the op
    /// returns or the budget expires — for attack experiments that stage
    /// adversarial register/PC state via [`DialedDevice::cpu_mut`].
    pub fn run_raw(&mut self, budget: usize) -> RunInfo {
        let outcome = self.prover.run_to(self.op.return_addr, budget);
        let r4 = self.prover.cpu.reg(Reg::R4);
        RunInfo {
            insns: outcome.trace.insn_count(),
            cycles: outcome.trace.cycles(),
            log_bytes_used: usize::from(self.op.r_top().saturating_sub(r4)),
            stop: outcome.stop,
        }
    }

    /// Performs a mid- or post-run DMA transfer (attack scenarios), visible
    /// to the APEX monitor.
    pub fn dma(&mut self, dma: &msp430::periph::Dma) {
        self.prover.dma(dma);
    }

    /// Produces the attestation response for `challenge`.
    #[must_use]
    pub fn prove(&self, challenge: &Challenge) -> DialedProof {
        DialedProof { pox: self.prover.prove(challenge) }
    }

    /// Diagnostic: the APEX monitor's first violation, if any.
    #[must_use]
    pub fn violation(&self) -> Option<apex::Violation> {
        self.prover.violation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::BuildOptions;

    const OP: &str = "\
        .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";

    #[test]
    fn invoke_runs_to_completion() {
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        let mut dev = DialedDevice::new(op, KeyStore::from_seed(5));
        let info = dev.invoke(&[0, 0, 0, 0, 0, 0, 20, 22]);
        assert_eq!(info.stop, StopReason::ReachedStop, "{:?}", dev.violation());
        assert!(info.cycles > 0);
        // SP base + 8 args + final ret CF entry at minimum.
        assert!(info.log_bytes_used >= 20, "{}", info.log_bytes_used);
    }

    #[test]
    fn proof_after_honest_run_has_exec() {
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        let mut dev = DialedDevice::new(op, KeyStore::from_seed(5));
        dev.invoke(&[0; 8]);
        let proof = dev.prove(&Challenge::derive(b"t", 0));
        assert!(proof.pox.exec);
    }

    #[test]
    fn wrong_r4_from_malicious_caller_yields_no_exec() {
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        let mut dev = DialedDevice::new(op, KeyStore::from_seed(5));
        // Sabotage: set r4 after invoke() would have set it — simulate by
        // calling the op directly with a bad r4.
        dev.cpu_mut().set_reg(Reg::SP, 0x09FE);
        dev.cpu_mut().set_reg(Reg::R4, 0x0700);
        let entry = dev.op().op_entry;
        dev.cpu_mut().set_pc(entry);
        // It will spin at the entry check.
        let outcome = {
            let ret = dev.op().return_addr;
            dev.prover.run_to(ret, 5_000)
        };
        assert_eq!(outcome.stop, StopReason::StepBudgetExhausted);
        let proof = dev.prove(&Challenge::derive(b"t", 1));
        assert!(!proof.pox.exec);
    }
}
