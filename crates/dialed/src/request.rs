//! The unified request-based verification API.
//!
//! Every way of verifying a proof — single key or per-device keys, full
//! DIALED data-flow verification or PoX-only, one proof at a time or a
//! sharded batch — goes through one entry point: build a [`VerifyRequest`]
//! and hand it to a [`Verifier`].
//!
//! * [`VerifyRequest`] carries the proof, the challenge it must answer,
//!   the device identity, and optional per-request overrides (emulation
//!   budget, policy set, key source). It borrows everything, so building
//!   one costs nothing on the fleet-scale hot path.
//! * [`KeySource`] answers "which key does this device verify under?".
//!   [`StaticKeys`] is the embedded single-key default; [`PerDevice`]
//!   adapts any lookup (e.g. `fleet::Registry`) without materialising a
//!   key store per job.
//! * [`Verifier`] is the backend: [`DialedVerifier`](crate::DialedVerifier)
//!   performs full data-flow verification, [`apex::PoxVerifier`] checks
//!   only the cryptographic proof of execution. The batch engine
//!   ([`crate::BatchVerifier`]) is generic over this trait, so fleets
//!   drain both kinds of operation through the same work-stealing core.
//!
//! # Example
//!
//! ```
//! use dialed::prelude::*;
//!
//! let source = ".org 0xE000\nop:\n mov r15, &0x0060\n ret\n";
//! let op = InstrumentedOp::build(source, "op", &BuildOptions::default())?;
//! let key = KeyStore::from_seed(9);
//! let mut device = DialedDevice::new(op.clone(), key.clone());
//! device.invoke(&[0; 8]);
//! let challenge = Challenge::derive(b"request-doc", 0);
//! let proof = device.prove(&challenge);
//!
//! let verifier = DialedVerifier::new(op, key.clone());
//! // Default: the verifier's embedded key.
//! let report = verifier.verify(&VerifyRequest::new(&proof, &challenge));
//! assert!(report.is_clean(), "{report}");
//! // Explicit key source: identical verdict for the same key.
//! let keys = StaticKeys::new(key);
//! let req = VerifyRequest::new(&proof, &challenge).for_device(7).keys(&keys);
//! assert_eq!(verifier.verify(&req), report);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::attest::DialedProof;
use crate::batch::BatchJob;
use crate::policy::Policy;
use crate::report::{RejectReason, Report, VerifyStats};
use crate::verifier::EmuWorkspace;
use apex::pox::{ErDigestCache, MacCheckItem, MAX_MAC_LANES};
use apex::PoxVerifier;
use std::marker::PhantomData;
use vrased::{Challenge, KeyStore, RaVerifier};

/// Smallest abstract-execution step budget a request or verifier accepts.
///
/// A zero budget would classify every proof as stuck before executing a
/// single instruction; degenerate budgets are clamped up to this value.
pub const MIN_EMU_BUDGET: usize = 1;

/// Where per-device verification keys come from.
///
/// A key source resolves a device identity to the RA verifier (key
/// schedule) its proofs must be checked under. Implementations return
/// borrowed [`RaVerifier`]s so the per-proof path performs no key-store
/// cloning and no HMAC-pad recomputation.
///
/// `Sync` is a supertrait because batch workers share one source across
/// threads.
pub trait KeySource: Sync {
    /// The RA verifier for `device`, or `None` if this source does not
    /// know the device (the request is then rejected with
    /// [`RejectReason::UnknownKey`]).
    fn key_for(&self, device: u64) -> Option<&RaVerifier>;
}

/// The embedded single-key default: every device verifies under the same
/// key — the right source for single-tenant deployments and tests.
#[derive(Clone, Debug)]
pub struct StaticKeys {
    ra: RaVerifier,
}

impl StaticKeys {
    /// A source answering every lookup with `keystore`'s key.
    #[must_use]
    pub fn new(keystore: KeyStore) -> Self {
        Self { ra: RaVerifier::new(keystore) }
    }
}

impl KeySource for StaticKeys {
    fn key_for(&self, _device: u64) -> Option<&RaVerifier> {
        Some(&self.ra)
    }
}

/// Per-device keys resolved through a borrowed lookup.
///
/// Adapts any `Fn(u64) -> Option<&RaVerifier>` — typically a closure over
/// a registry — into a [`KeySource`], so a fleet's device table plugs into
/// the batch engine without materialising a key store per job:
///
/// ```
/// use dialed::request::{KeySource, PerDevice};
/// use vrased::{KeyStore, RaVerifier};
///
/// let table: Vec<RaVerifier> =
///     (0..3).map(|i| RaVerifier::new(KeyStore::from_seed(i))).collect();
/// let keys = PerDevice::new(|device| table.get(device as usize));
/// assert!(keys.key_for(2).is_some());
/// assert!(keys.key_for(9).is_none());
/// ```
pub struct PerDevice<'k, F> {
    lookup: F,
    _keys: PhantomData<&'k RaVerifier>,
}

impl<'k, F: Fn(u64) -> Option<&'k RaVerifier>> PerDevice<'k, F> {
    /// Wraps `lookup` as a key source.
    #[must_use]
    pub fn new(lookup: F) -> Self {
        Self { lookup, _keys: PhantomData }
    }
}

impl<'k, F: Fn(u64) -> Option<&'k RaVerifier> + Sync> KeySource for PerDevice<'k, F> {
    fn key_for(&self, device: u64) -> Option<&RaVerifier> {
        (self.lookup)(device)
    }
}

/// One verification request: a proof, the challenge it must answer, the
/// claimed device identity, and optional per-request overrides.
///
/// Built with a borrowing builder — a request is a handful of references
/// on the stack, so constructing one per proof adds nothing to the batch
/// hot path. Defaults: device `0`, the verifier's embedded key, the
/// verifier's configured emulation budget and policy set.
#[derive(Clone, Copy)]
pub struct VerifyRequest<'a> {
    proof: &'a DialedProof,
    challenge: &'a Challenge,
    device: u64,
    emu_budget: Option<usize>,
    policies: Option<&'a [Box<dyn Policy>]>,
    keys: Option<&'a dyn KeySource>,
    mac_precheck: Option<bool>,
}

impl<'a> VerifyRequest<'a> {
    /// A request to verify `proof` against `challenge`.
    #[must_use]
    pub fn new(proof: &'a DialedProof, challenge: &'a Challenge) -> Self {
        Self {
            proof,
            challenge,
            device: 0,
            emu_budget: None,
            policies: None,
            keys: None,
            mac_precheck: None,
        }
    }

    /// Sets the device identity this proof claims (resolved through the
    /// request's [`KeySource`], echoed into fleet bookkeeping).
    #[must_use]
    pub fn for_device(mut self, device: u64) -> Self {
        self.device = device;
        self
    }

    /// Overrides the abstract-execution step budget for this request
    /// (clamped up to [`MIN_EMU_BUDGET`]).
    #[must_use]
    pub fn with_emu_budget(mut self, budget: usize) -> Self {
        self.emu_budget = Some(budget.max(MIN_EMU_BUDGET));
        self
    }

    /// Overrides the policy set evaluated on the reconstruction — this
    /// request is checked against exactly `policies` instead of the
    /// verifier's registered set.
    #[must_use]
    pub fn with_policies(mut self, policies: &'a [Box<dyn Policy>]) -> Self {
        self.policies = Some(policies);
        self
    }

    /// Resolves this request's key through `source` instead of the
    /// verifier's embedded key.
    #[must_use]
    pub fn keys(mut self, source: &'a dyn KeySource) -> Self {
        self.keys = Some(source);
        self
    }

    /// Supplies a precomputed MAC verdict from a lane-batched pre-pass
    /// ([`Verifier::precheck_macs`]).
    ///
    /// Server-internal performance contract: `ok` must be the precheck's
    /// verdict for exactly this (proof, challenge, key) triple — the
    /// backend then skips recomputing the identical tag comparison (all
    /// structural checks still run). Never set it from untrusted input.
    #[must_use]
    pub fn with_mac_precheck(mut self, ok: bool) -> Self {
        self.mac_precheck = Some(ok);
        self
    }

    /// The proof under verification.
    #[must_use]
    pub fn proof(&self) -> &'a DialedProof {
        self.proof
    }

    /// The challenge the proof must answer.
    #[must_use]
    pub fn challenge(&self) -> &'a Challenge {
        self.challenge
    }

    /// The claimed device identity.
    #[must_use]
    pub fn device(&self) -> u64 {
        self.device
    }

    /// The emulation-budget override, if any.
    #[must_use]
    pub fn emu_budget(&self) -> Option<usize> {
        self.emu_budget
    }

    /// The policy-set override, if any.
    #[must_use]
    pub fn policy_overrides(&self) -> Option<&'a [Box<dyn Policy>]> {
        self.policies
    }

    /// The key-source override, if any.
    #[must_use]
    pub fn key_source(&self) -> Option<&'a dyn KeySource> {
        self.keys
    }

    /// The precomputed MAC verdict, if a pre-pass supplied one.
    #[must_use]
    pub fn mac_precheck(&self) -> Option<bool> {
        self.mac_precheck
    }

    /// Resolves the RA verifier this request must be checked under:
    /// `Ok(None)` means "use the verifier's embedded key" (no source set),
    /// `Ok(Some(ra))` is the source's answer for this device.
    ///
    /// # Errors
    ///
    /// [`RejectReason::UnknownKey`] when a source is set but does not know
    /// the device.
    pub fn resolve_key(&self) -> Result<Option<&'a RaVerifier>, RejectReason> {
        match self.keys {
            None => Ok(None),
            Some(source) => match source.key_for(self.device) {
                Some(ra) => Ok(Some(ra)),
                None => Err(RejectReason::UnknownKey { device: self.device }),
            },
        }
    }
}

impl std::fmt::Debug for VerifyRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyRequest")
            .field("device", &self.device)
            .field("emu_budget", &self.emu_budget)
            .field("policy_overrides", &self.policies.map(<[_]>::len))
            .field("keyed", &self.keys.is_some())
            .field("mac_precheck", &self.mac_precheck)
            .finish_non_exhaustive()
    }
}

/// A verification backend: turns a [`VerifyRequest`] into a [`Report`].
///
/// Implemented by [`DialedVerifier`](crate::DialedVerifier) (full
/// data-flow verification: PoX check + abstract execution + policies) and
/// [`apex::PoxVerifier`] (cryptographic proof of execution only).
/// [`BatchVerifier<V>`](crate::BatchVerifier) is generic over this trait.
///
/// `Sync` is a supertrait so batch workers can share one verifier by
/// reference; the trait is object-safe, so heterogeneous deployments can
/// store `Box<dyn Verifier>` backends side by side.
pub trait Verifier: Sync {
    /// Verifies `req`, reusing `ws`'s emulation buffers.
    ///
    /// Verdicts must not depend on the workspace's history: a warm
    /// workspace and a fresh one yield identical reports. Backends that
    /// do not emulate (e.g. PoX-only) ignore `ws`.
    #[must_use]
    fn verify_in(&self, ws: &mut EmuWorkspace, req: &VerifyRequest<'_>) -> Report;

    /// [`Verifier::verify_in`] with a throwaway workspace — the one-shot
    /// convenience form.
    #[must_use]
    fn verify(&self, req: &VerifyRequest<'_>) -> Report {
        self.verify_in(&mut EmuWorkspace::new(), req)
    }

    /// Lane-batched MAC pre-pass over a whole batch.
    ///
    /// Returns `true` if the backend prechecked: `out` then holds one entry
    /// per job — `Some(mac verdict)` for jobs whose tag was compared (feed
    /// it back via [`VerifyRequest::with_mac_precheck`]), `None` for jobs
    /// that must take the full path (structural failure, unknown device
    /// key). The default (`false`, `out` untouched) means the backend has
    /// no lane path; callers fall back to per-job verification.
    ///
    /// Key resolution mirrors per-job verification: `keys` when supplied,
    /// the backend's embedded key otherwise — so hinted verdicts are
    /// identical to unhinted ones by construction.
    fn precheck_macs(
        &self,
        _jobs: &[BatchJob],
        _keys: Option<&dyn KeySource>,
        _out: &mut Vec<Option<bool>>,
    ) -> bool {
        false
    }

    /// The backend's expected-region digest memo, if it keeps one — the
    /// fleet layer reads hit rates and invalidates through this.
    fn er_digest_cache(&self) -> Option<&ErDigestCache> {
        None
    }
}

// Provided methods do NOT forward through blanket impls automatically:
// `&V` and `Box<V>` must delegate explicitly or boxed fleet engines would
// silently lose the precheck fast path and cache access.
impl<V: Verifier + ?Sized> Verifier for &V {
    fn verify_in(&self, ws: &mut EmuWorkspace, req: &VerifyRequest<'_>) -> Report {
        (**self).verify_in(ws, req)
    }

    fn precheck_macs(
        &self,
        jobs: &[BatchJob],
        keys: Option<&dyn KeySource>,
        out: &mut Vec<Option<bool>>,
    ) -> bool {
        (**self).precheck_macs(jobs, keys, out)
    }

    fn er_digest_cache(&self) -> Option<&ErDigestCache> {
        (**self).er_digest_cache()
    }
}

impl<V: Verifier + ?Sized> Verifier for Box<V> {
    fn verify_in(&self, ws: &mut EmuWorkspace, req: &VerifyRequest<'_>) -> Report {
        (**self).verify_in(ws, req)
    }

    fn precheck_macs(
        &self,
        jobs: &[BatchJob],
        keys: Option<&dyn KeySource>,
        out: &mut Vec<Option<bool>>,
    ) -> bool {
        (**self).precheck_macs(jobs, keys, out)
    }

    fn er_digest_cache(&self) -> Option<&ErDigestCache> {
        (**self).er_digest_cache()
    }
}

/// Lane-batched PoX MAC pre-pass shared by the [`PoxVerifier`] and
/// [`DialedVerifier`](crate::DialedVerifier) backends: resolves each job's
/// key exactly as per-job verification would, then tag-checks the batch in
/// chunks of [`MAX_MAC_LANES`] multi-buffer HMAC lanes.
///
/// Jobs whose device the key source does not know keep `None` (the per-job
/// path rejects them with [`RejectReason::UnknownKey`]). Steady-state
/// allocation-free: `out` is reshaped in place and the chunk scratch lives
/// on the stack.
pub(crate) fn precheck_pox_macs(
    pox: &PoxVerifier,
    jobs: &[BatchJob],
    keys: Option<&dyn KeySource>,
    out: &mut Vec<Option<bool>>,
) -> bool {
    out.clear();
    out.resize(jobs.len(), None);
    let mut start = 0;
    while start < jobs.len() {
        let end = (start + MAX_MAC_LANES).min(jobs.len());
        // Dense chunk: positions and resolved keys of precheckable jobs.
        let mut pos = [0usize; MAX_MAC_LANES];
        let mut ras: [Option<&RaVerifier>; MAX_MAC_LANES] = [None; MAX_MAC_LANES];
        let mut n = 0;
        for (j, job) in jobs.iter().enumerate().take(end).skip(start) {
            let ra = match keys {
                None => None,
                Some(source) => match source.key_for(job.device_id) {
                    Some(ra) => Some(ra),
                    None => continue,
                },
            };
            pos[n] = j;
            ras[n] = ra;
            n += 1;
        }
        if n > 0 {
            // Index-clamped duplicates beyond `n` are never read.
            let items: [MacCheckItem<'_>; MAX_MAC_LANES] = std::array::from_fn(|s| {
                let s = s.min(n - 1);
                let job = &jobs[pos[s]];
                MacCheckItem { proof: &job.proof.pox, challenge: &job.challenge, ra: ras[s] }
            });
            let mut chunk = [None; MAX_MAC_LANES];
            pox.precheck_mac_lanes(&items[..n], &mut chunk[..n]);
            for s in 0..n {
                out[pos[s]] = chunk[s];
            }
        }
        start = end;
    }
    true
}

/// PoX-only verification: the cryptographic proof of execution (correct
/// code, correct regions, EXEC set, authentic OR) without data-flow
/// re-execution — the backend for operations built without the full
/// DIALED instrumentation. Emulation-budget and policy overrides do not
/// apply and are ignored.
impl Verifier for PoxVerifier {
    fn verify_in(&self, _ws: &mut EmuWorkspace, req: &VerifyRequest<'_>) -> Report {
        let ra = match req.resolve_key() {
            Ok(ra) => ra,
            Err(reason) => return Report::rejected(reason),
        };
        match self.check_with_mac_hint(&req.proof().pox, req.challenge(), ra, req.mac_precheck()) {
            Ok(_) => Report::clean(VerifyStats::default()),
            Err(reason) => Report::rejected(reason),
        }
    }

    fn precheck_macs(
        &self,
        jobs: &[BatchJob],
        keys: Option<&dyn KeySource>,
        out: &mut Vec<Option<bool>>,
    ) -> bool {
        precheck_pox_macs(self, jobs, keys, out)
    }

    fn er_digest_cache(&self) -> Option<&ErDigestCache> {
        Some(PoxVerifier::er_digest_cache(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attest::DialedDevice;
    use crate::pipeline::{BuildOptions, InstrumentedOp};
    use crate::report::{Finding, Verdict};
    use crate::DialedVerifier;
    use vrased::KeyStore;

    const OP: &str = ".org 0xE000\nop:\n mov r15, &0x0060\n ret\n";

    fn proven(seed: u64) -> (InstrumentedOp, DialedProof, Challenge, KeyStore) {
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(seed);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        dev.invoke(&[0; 8]);
        let chal = Challenge::derive(b"request", seed);
        (op, dev.prove(&chal), chal, ks)
    }

    #[test]
    fn default_and_static_keys_agree() {
        let (op, proof, chal, ks) = proven(31);
        let verifier = DialedVerifier::new(op, ks.clone());
        let embedded = verifier.verify(&VerifyRequest::new(&proof, &chal));
        let keys = StaticKeys::new(ks);
        let explicit =
            verifier.verify(&VerifyRequest::new(&proof, &chal).for_device(99).keys(&keys));
        assert!(embedded.is_clean(), "{embedded}");
        assert_eq!(embedded, explicit);
    }

    #[test]
    fn unknown_device_is_a_structured_rejection() {
        let (op, proof, chal, ks) = proven(32);
        let verifier = DialedVerifier::new(op, ks);
        let keys = PerDevice::new(|_| None);
        let report = verifier.verify(&VerifyRequest::new(&proof, &chal).for_device(5).keys(&keys));
        assert_eq!(report.verdict, Verdict::Rejected);
        assert_eq!(
            report.findings,
            vec![Finding::PoxRejected { reason: RejectReason::UnknownKey { device: 5 } }]
        );
    }

    #[test]
    fn pox_verifier_is_a_request_backend() {
        let (op, proof, chal, ks) = proven(33);
        let pox = PoxVerifier::new(ks, op.pox, op.er_bytes.clone());
        let report = pox.verify(&VerifyRequest::new(&proof, &chal));
        assert!(report.is_clean(), "{report}");

        let mut forged = proof.clone();
        forged.pox.or_data[0] ^= 1;
        let report = pox.verify(&VerifyRequest::new(&forged, &chal));
        assert_eq!(
            report.findings,
            vec![Finding::PoxRejected { reason: RejectReason::MacMismatch }]
        );
    }

    #[test]
    fn degenerate_budget_is_clamped() {
        let (_, proof, chal, _) = proven(34);
        let req = VerifyRequest::new(&proof, &chal).with_emu_budget(0);
        assert_eq!(req.emu_budget(), Some(MIN_EMU_BUDGET));
    }
}
