//! The instrumentation pipeline: source → Tiny-CFA pass → DIALED pass →
//! assembled, APEX-configured operation bundle.

use crate::pass::{self, DfaConfig, LogSites, ReadCheckPolicy};
use apex::PoxConfig;
use msp430_asm::{assemble_program, parse_program, parse_snippet, Image, Program};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use tinycfa::{CfaConfig, LogPolicy};

/// Which instrumentation stages to apply — the three Fig. 6 variants.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum InstrumentMode {
    /// No instrumentation (paper's "Original" bars).
    Original,
    /// Tiny-CFA only (CFA guarantee).
    CfaOnly,
    /// Tiny-CFA + DIALED (CFA + DFA) — the full system.
    #[default]
    Full,
}

/// Build parameters for an attested operation.
#[derive(Clone, Debug)]
pub struct BuildOptions {
    /// First OR byte.
    pub or_min: u16,
    /// Last OR byte (inclusive).
    pub or_max: u16,
    /// Instrumentation stages.
    pub mode: InstrumentMode,
    /// CF-Log coverage.
    pub cfa_policy: LogPolicy,
    /// Data-read check policy.
    pub read_policy: ReadCheckPolicy,
    /// Address of the canonical (untrusted) caller stub. The protocol fixes
    /// this so the verifier knows the op's return address.
    pub caller_site: u16,
    /// Initial stack pointer the caller establishes before `call #op`.
    pub stack_top: u16,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            or_min: 0x0600,
            or_max: 0x06FF,
            mode: InstrumentMode::Full,
            cfa_policy: LogPolicy::AllTransfers,
            read_policy: ReadCheckPolicy::AllReads,
            caller_site: 0xF800,
            stack_top: 0x09FE,
        }
    }
}

/// Build failures.
#[derive(Clone, Debug)]
pub enum BuildError {
    /// Source failed to parse.
    Parse(String),
    /// An instrumentation pass failed.
    Pass(String),
    /// Assembly failed.
    Assemble(String),
    /// Structural convention violated (entry label, final `ret`, regions).
    Convention(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Parse(m) => write!(f, "parse error: {m}"),
            BuildError::Pass(m) => write!(f, "instrumentation error: {m}"),
            BuildError::Assemble(m) => write!(f, "assembly error: {m}"),
            BuildError::Convention(m) => write!(f, "operation convention: {m}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A fully built attested operation: instrumented program, loadable image
/// (operation + canonical caller stub), APEX configuration, and the log-site
/// map the verifier needs.
#[derive(Clone, Debug)]
pub struct InstrumentedOp {
    /// The instrumented program (with the caller stub appended).
    pub program: Program,
    /// Assembled image of everything.
    pub image: Image,
    /// APEX region configuration.
    pub pox: PoxConfig,
    /// Input/argument log-site addresses.
    pub sites: LogSites,
    /// The options used.
    pub options: BuildOptions,
    /// Entry address of the operation (= `er_min`).
    pub op_entry: u16,
    /// Where the op returns to (caller stub's halt label).
    pub return_addr: u16,
    /// Dense ER contents for the verifier, shared per op: every
    /// `PoxVerifier`/engine registered for this op clones the `Arc`, not
    /// the image bytes.
    pub er_bytes: Arc<[u8]>,
}

impl InstrumentedOp {
    /// Parses, instruments, assembles and validates an operation.
    ///
    /// Conventions enforced:
    ///
    /// * `op_label` must exist and be the lowest address of its contiguous
    ///   code segment (it becomes `er_min`);
    /// * the segment's last instruction must be the operation's single
    ///   toplevel `ret` (it becomes `er_exit`);
    /// * the segment must not overlap OR or the caller stub.
    ///
    /// # Errors
    ///
    /// See [`BuildError`].
    pub fn build(source: &str, op_label: &str, options: &BuildOptions) -> Result<Self, BuildError> {
        let program = parse_program(source).map_err(|e| BuildError::Parse(e.to_string()))?;
        Self::build_from_program(&program, op_label, options)
    }

    /// Like [`InstrumentedOp::build`] but from an already-parsed program
    /// (used when callers synthesise programs).
    ///
    /// # Errors
    ///
    /// See [`BuildError`].
    pub fn build_from_program(
        program: &Program,
        op_label: &str,
        options: &BuildOptions,
    ) -> Result<Self, BuildError> {
        let mut instrumented = program.clone();

        if options.mode != InstrumentMode::Original {
            let cfa = CfaConfig {
                or_min: options.or_min,
                or_max: options.or_max,
                policy: options.cfa_policy,
            };
            instrumented = tinycfa::instrument(&instrumented, op_label, &cfa)
                .map_err(|e| BuildError::Pass(e.to_string()))?;
        }
        if options.mode == InstrumentMode::Full {
            let dfa = DfaConfig {
                or_min: options.or_min,
                or_max: options.or_max,
                read_policy: options.read_policy,
                entry_check: false, // Tiny-CFA already emitted it
            };
            instrumented = pass::instrument(&instrumented, op_label, &dfa)
                .map_err(|e| BuildError::Pass(e.to_string()))?;
        }

        // Canonical caller stub: sets nothing itself (the device harness
        // initialises registers); it just calls the op and halts.
        let caller = format!(
            ".org {}\n__caller:\n call #{op_label}\n__caller_ret:\n jmp __caller_ret\n",
            options.caller_site
        );
        instrumented
            .lines
            .extend(parse_snippet(&caller).map_err(|e| BuildError::Pass(e.to_string()))?);

        let image =
            assemble_program(&instrumented).map_err(|e| BuildError::Assemble(e.to_string()))?;

        let op_entry = image
            .symbol(op_label)
            .ok_or_else(|| BuildError::Convention(format!("label `{op_label}` not found")))?;
        let (er_min, er_max) = image
            .contiguous_extent(op_entry)
            .ok_or_else(|| BuildError::Convention("empty operation".into()))?;
        if er_min != op_entry {
            return Err(BuildError::Convention(format!(
                "operation entry {op_entry:#06x} must begin its code segment (starts {er_min:#06x})"
            )));
        }
        // The segment must end in the toplevel `ret` (mov @sp+, pc =
        // 0x4130); it becomes er_exit.
        let er_exit = er_max.wrapping_sub(1);
        let last = image.words_at(er_exit);
        if last.first() != Some(&0x4130) {
            return Err(BuildError::Convention(
                "operation must end with its single toplevel `ret`".into(),
            ));
        }
        let pox = PoxConfig::new(er_min, er_max, er_exit, options.or_min, options.or_max)
            .map_err(|e| BuildError::Convention(e.to_string()))?;

        let return_addr = image
            .symbol("__caller_ret")
            .ok_or_else(|| BuildError::Convention("caller stub missing".into()))?;

        let sites = pass::collect_log_sites(&image);
        let er_bytes: Arc<[u8]> = image
            .contiguous_bytes(op_entry)
            .ok_or_else(|| BuildError::Convention("empty operation".into()))?
            .into();

        Ok(Self {
            program: instrumented,
            image,
            pox,
            sites,
            options: options.clone(),
            op_entry,
            return_addr,
            er_bytes,
        })
    }

    /// The initial `R` (`r4`) value the caller must establish.
    #[must_use]
    pub fn r_top(&self) -> u16 {
        self.options.or_max & !1
    }

    /// Code size of the operation in bytes — the Fig. 6(a) metric.
    #[must_use]
    pub fn code_size(&self) -> usize {
        self.er_bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OP: &str = "\
        .org 0xE000\nop:\n mov &0x0020, r14\n tst r14\n jz done\n nop\ndone:\n ret\n";

    #[test]
    fn builds_all_three_modes_with_increasing_size() {
        let mut opts = BuildOptions { mode: InstrumentMode::Original, ..Default::default() };
        let orig = InstrumentedOp::build(OP, "op", &opts).unwrap();
        opts.mode = InstrumentMode::CfaOnly;
        let cfa = InstrumentedOp::build(OP, "op", &opts).unwrap();
        opts.mode = InstrumentMode::Full;
        let full = InstrumentedOp::build(OP, "op", &opts).unwrap();
        assert!(orig.code_size() < cfa.code_size());
        assert!(cfa.code_size() < full.code_size());
        assert_eq!(full.sites.args.len(), 9);
        assert_eq!(full.sites.input.len(), 1);
    }

    #[test]
    fn er_exit_is_the_final_ret() {
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        assert_eq!(op.image.words_at(op.pox.er_exit)[0], 0x4130);
        assert_eq!(op.pox.er_min, op.op_entry);
    }

    #[test]
    fn missing_final_ret_rejected() {
        let src = ".org 0xE000\nop:\n nop\n jmp op\n";
        let err = InstrumentedOp::build(src, "op", &BuildOptions::default()).unwrap_err();
        assert!(matches!(err, BuildError::Convention(_)), "{err}");
    }

    #[test]
    fn missing_label_rejected() {
        let err =
            InstrumentedOp::build(".org 0xE000\nother:\n ret\n", "op", &BuildOptions::default())
                .unwrap_err();
        assert!(matches!(err, BuildError::Pass(_) | BuildError::Convention(_)));
    }

    #[test]
    fn caller_stub_present() {
        let op = InstrumentedOp::build(OP, "op", &BuildOptions::default()).unwrap();
        assert_eq!(op.return_addr, op.options.caller_site + 4);
        // call #op at the caller site.
        assert_eq!(op.image.words_at(op.options.caller_site)[0], 0x12B0);
    }
}
