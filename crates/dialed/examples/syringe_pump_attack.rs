//! The paper's two running attacks against the syringe pump, end to end:
//!
//! * **Fig. 1** — a control-flow hijack: an oversized command packet
//!   overflows `parse_commands`' stack buffer, overwrites the return
//!   address, and jumps straight to the actuation code, skipping the
//!   `dose < 10` safety check;
//! * **Fig. 2** — a data-only attack: an out-of-bounds `settings[8]` write
//!   silently zeroes the adjacent `set` actuation mask; control flow is
//!   completely normal, yet no medicine is injected.
//!
//! Both runs produce *cryptographically valid* proofs of execution — the
//! code is unmodified and APEX's EXEC flag is set. Detection happens at the
//! verifier, which reconstructs each execution from CF-Log + I-Log and
//! reproduces the attack.
//!
//! ```text
//! cargo run -p dialed --example syringe_pump_attack
//! ```

use apps::{app_build_options, syringe_pump};
use dialed::pipeline::{InstrumentMode, InstrumentedOp};
use dialed::prelude::*;

fn verify(op: &InstrumentedOp, dev: &DialedDevice, round: u64, key: &KeyStore) -> Report {
    let challenge = Challenge::derive(b"syringe", round);
    let proof = dev.prove(&challenge);
    println!("    proof EXEC = {}", proof.pox.exec);
    let mut verifier = DialedVerifier::new(op.clone(), key.clone());
    for p in syringe_pump::policies() {
        verifier = verifier.with_policy(p);
    }
    verifier.verify(&VerifyRequest::new(&proof, &challenge))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = KeyStore::from_seed(7);
    let opts = app_build_options(InstrumentMode::Full);

    println!("== baseline: safe pump, nominal command ==");
    let op = InstrumentedOp::build(syringe_pump::SOURCE, "syringe_op", &opts)?;
    let mut dev = DialedDevice::new(op.clone(), key.clone());
    syringe_pump::feed_nominal(dev.platform_mut());
    dev.invoke(&[0; 8]);
    println!("    administered dose (UART): {:?}", dev.platform().uart.tx);
    let report = verify(&op, &dev, 0, &key);
    println!("    verdict: {report}\n");
    assert!(report.is_clean());

    println!("== Fig. 2: data-only attack (settings[8] overwrites `set`) ==");
    let op = InstrumentedOp::build(syringe_pump::SOURCE_VULN_DF, "syringe_op", &opts)?;
    let mut dev = DialedDevice::new(op.clone(), key.clone());
    syringe_pump::feed_attack_df(dev.platform_mut());
    dev.invoke(&[0; 8]);
    println!(
        "    P3OUT after 'actuation': {:#04x}  (medicine was silently NOT injected)",
        dev.platform().gpio.p3.output
    );
    let report = verify(&op, &dev, 1, &key);
    println!("    verdict: {report}\n");
    assert_eq!(report.verdict, Verdict::Attack);

    println!("== Fig. 1: control-flow attack (return-address overwrite) ==");
    let op = InstrumentedOp::build(syringe_pump::SOURCE_VULN_CF, "syringe_op", &opts)?;
    let inject = op.image.symbol("spc_inject").expect("actuation label");
    let mut dev = DialedDevice::new(op.clone(), key.clone());
    dev.platform_mut().uart.feed(&syringe_pump::attack_packet_cf(inject));
    dev.invoke(&[0; 8]);
    println!(
        "    dose reported over UART: {:?}  (safety check was bypassed)",
        dev.platform().uart.tx
    );
    let report = verify(&op, &dev, 2, &key);
    println!("    verdict: {report}");
    assert_eq!(report.verdict, Verdict::Attack);

    Ok(())
}
