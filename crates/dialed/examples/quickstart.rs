//! Quickstart: attest a tiny embedded operation end to end.
//!
//! ```text
//! cargo run -p dialed --example quickstart
//! ```
//!
//! The operation reads a GPIO pin (a *data input*), doubles an argument,
//! and stores the result to a global. We build it with full Tiny-CFA +
//! DIALED instrumentation, run it on the simulated MSP430 under the APEX
//! monitor, produce a proof, and verify it — then flip one bit of the
//! attested log to show the proof break.

use dialed::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An embedded operation in MSP430 assembly. Conventions: entry label
    // first, one toplevel `ret` last, arguments arrive in r8..r15.
    let source = r#"
        .org 0xE000
demo_op:
        mov r15, r10            ; argument
        add r10, r10            ; double it
        mov.b &0x0020, r11      ; read P1IN — a data input
        add r11, r10
        mov r10, &0x0300        ; publish to a global
        ret
"#;

    // 1. Instrument (Tiny-CFA + DIALED) and assemble.
    let op = InstrumentedOp::build(source, "demo_op", &BuildOptions::default())?;
    println!(
        "built demo_op: {} bytes of instrumented code, ER {:#06x}..{:#06x}, OR {:#06x}..{:#06x}",
        op.code_size(),
        op.pox.er_min,
        op.pox.er_max,
        op.pox.or_min,
        op.pox.or_max
    );

    // 2. Boot a device sharing a key with the verifier, stimulate, run.
    let key = KeyStore::from_seed(2024);
    let mut device = DialedDevice::new(op.clone(), key.clone());
    device.platform_mut().gpio.p1.input = 0x11;
    let run = device.invoke(&[0, 0, 0, 0, 0, 0, 0, 21]);
    println!(
        "device run: {} instructions, {} cycles, {} log bytes",
        run.insns, run.cycles, run.log_bytes_used
    );

    // 3. Attest under a fresh challenge.
    let challenge = Challenge::derive(b"quickstart", 1);
    let proof = device.prove(&challenge);
    println!("proof: EXEC={}, OR snapshot {} bytes", proof.pox.exec, proof.pox.or_data.len());

    // 4. Verify: PoX check + abstract execution + policies.
    let verifier = DialedVerifier::new(op, key)
        .with_policy(Box::new(GlobalWriteBounds::new(vec![(0x0300, 0x0301)])));
    let report = verifier.verify(&VerifyRequest::new(&proof, &challenge));
    println!("verification: {report}");
    assert!(report.is_clean());

    // 5. Any tampering with the attested output breaks the proof.
    let mut forged = proof.clone();
    forged.pox.or_data[0] ^= 0x01;
    let report = verifier.verify(&VerifyRequest::new(&forged, &challenge));
    println!("after flipping one OR bit: {report}");
    assert!(!report.is_clean());

    Ok(())
}
