//! Shows exactly what the Tiny-CFA and DIALED passes inject — the
//! reproduction's equivalent of the paper's Fig. 4/5 "before vs after"
//! listings, for a real operation.
//!
//! ```text
//! cargo run -p dialed --example instrumentation_listing
//! ```
//!
//! Pass-inserted lines are marked with `+` in the left margin.

use dialed::pipeline::{BuildOptions, InstrumentMode, InstrumentedOp};
use msp430_asm::{assemble_program, listing::listing, parse_program};

const SOURCE: &str = r#"
        .org 0xE000
demo_op:
        mov.b &0x0020, r14      ; data input from P1IN (F4 logs this)
        tst r14
        jz zero_case            ; conditional transfer (CFA diamond)
        mov r14, 2(r15)         ; pointer store (F5 write check)
zero_case:
        ret                     ; toplevel exit (CF-logged)
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("================ original operation ================\n");
    let original = parse_program(SOURCE)?;
    let img = assemble_program(&original)?;
    print!("{}", listing(&original, &img)?);

    for (mode, title) in [
        (InstrumentMode::CfaOnly, "after the Tiny-CFA pass (CF-Log + F5 write checks)"),
        (InstrumentMode::Full, "after Tiny-CFA + DIALED (adds F3 entry block, F4 read logs)"),
    ] {
        let opts = BuildOptions { mode, ..BuildOptions::default() };
        let op = InstrumentedOp::build(SOURCE, "demo_op", &opts)?;
        println!("\n================ {title} ================\n");
        let text = listing(&op.program, &op.image)?;
        // Trim the caller stub tail for readability.
        for line in text.lines() {
            if line.contains("__caller") {
                break;
            }
            println!("{line}");
        }
        println!(
            "\n  {} bytes of code; {} input-log sites, {} entry-log sites",
            op.code_size(),
            op.sites.input.len(),
            op.sites.args.len()
        );
    }
    Ok(())
}
