//! A tour of the APEX monitor: the ways an adversary can interfere with an
//! attested execution, and how each attempt surfaces to the verifier.
//!
//! ```text
//! cargo run -p dialed --example apex_violations
//! ```

use dialed::prelude::*;
use msp430::periph::Dma;

const SOURCE: &str = r#"
        .org 0xE000
op:
        mov #0x1234, r10
        mov r10, &0x0300
        ret
"#;

fn fresh(key: &KeyStore) -> (InstrumentedOp, DialedDevice) {
    let op = InstrumentedOp::build(SOURCE, "op", &BuildOptions::default()).expect("builds");
    let dev = DialedDevice::new(op.clone(), key.clone());
    (op, dev)
}

fn main() {
    let key = KeyStore::from_seed(3);
    let mut round = 0u64;
    println!("{:<44} {:<6} {:<26} verdict", "scenario", "EXEC", "monitor violation");
    println!("{}", "-".repeat(96));
    let mut check = |name: &str, op: InstrumentedOp, dev: &DialedDevice| {
        round += 1;
        let chal = Challenge::derive(b"tour", round);
        let proof = dev.prove(&chal);
        let report =
            DialedVerifier::new(op, key.clone()).verify(&VerifyRequest::new(&proof, &chal));
        let violation =
            dev.violation().map_or("-".to_string(), |v| v.to_string().chars().take(26).collect());
        println!("{name:<44} {:<6} {:<26} {:?}", proof.pox.exec, violation, report.verdict);
    };

    // Honest run.
    let (op, mut dev) = fresh(&key);
    dev.invoke(&[0; 8]);
    check("honest execution", op, &dev);

    // DMA fired while the operation runs.
    let (op, mut dev) = fresh(&key);
    dev.invoke_with_budget(&[0; 8], 5); // a handful of steps into the op
    dev.dma(&Dma { dst: 0x0500, data: vec![0xFF] });
    dev.run_raw(100_000); // let the op finish
    check("DMA transfer during execution", op, &dev);

    // Jump into the middle of the operation (skipping its entry).
    let (op, mut dev) = fresh(&key);
    dev.cpu_mut().set_reg(msp430::Reg::SP, 0x11FC);
    dev.cpu_mut().set_reg(msp430::Reg::R4, op.r_top());
    dev.cpu_mut().set_pc(op.op_entry + 4);
    dev.run_raw(100_000);
    check("control entered mid-ER (entry skipped)", op, &dev);

    // Interrupt taken mid-execution.
    let irq_src = r#"
        .org 0xE000
op:
        bis #8, sr
        mov #1, r10
        mov #2, r11
        ret
"#;
    let op = InstrumentedOp::build(irq_src, "op", &BuildOptions::default()).expect("builds");
    let mut dev = DialedDevice::new(op.clone(), key.clone());
    dev.platform_mut().load_words(0xFFE0 + 18, &[0xF700]);
    dev.platform_mut().load_words(0xF700, &[0x1300]); // reti
    dev.cpu_mut().raise_irq(9);
    dev.invoke(&[0; 8]);
    check("interrupt serviced during execution", op, &dev);

    // Code patched before the run (static RA catches it even if EXEC held).
    let (op, mut dev) = fresh(&key);
    dev.platform_mut().load_words(op.op_entry + 4, &[0x4303]);
    dev.invoke(&[0; 8]);
    check("code patched before execution", op, &dev);

    // OR tampered after a clean run (external master).
    let (op, mut dev) = fresh(&key);
    dev.invoke(&[0; 8]);
    dev.dma(&Dma { dst: op.pox.or_min, data: vec![0xAD, 0xDE] });
    check("OR rewritten after execution (DMA)", op, &dev);

    println!("\nOnly the honest execution yields a verifiable proof.");
}
