//! Attested telemetry from a fleet of fire sensors.
//!
//! A verifier polls a field of sensors; each returns an attested reading.
//! The verifier reconstructs every execution from the attested logs and
//! only then trusts the reported temperatures — including the alarm
//! decisions — without trusting any device software.
//!
//! ```text
//! cargo run -p dialed --example fire_sensor_field
//! ```

use apps::{app_build_options, fire_sensor};
use dialed::pipeline::{InstrumentMode, InstrumentedOp};
use dialed::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let op = InstrumentedOp::build(
        fire_sensor::SOURCE,
        "fire_op",
        &app_build_options(InstrumentMode::Full),
    )?;
    let key = KeyStore::from_seed(99);

    println!("site          raw temp   attested °C   alarm   verdict");
    println!("{}", "-".repeat(60));
    for (site, temp_c) in [("atrium", 21i16), ("kitchen", 38), ("server-room", 55), ("furnace", 92)]
    {
        let mut device = DialedDevice::new(op.clone(), key.clone());
        device.platform_mut().adc.feed(&[fire_sensor::raw_for_temp(temp_c), 0x0600]);
        device.invoke(&[0; 8]);

        let challenge = Challenge::derive(site.as_bytes(), u64::from(temp_c as u16));
        let proof = device.prove(&challenge);
        let mut verifier = DialedVerifier::new(op.clone(), key.clone());
        for p in fire_sensor::policies() {
            verifier = verifier.with_policy(p);
        }
        let report = verifier.verify(&VerifyRequest::new(&proof, &challenge));

        let tx = &device.platform().uart.tx;
        let alarm = device.platform().gpio.p1.output != 0;
        println!(
            "{:<12} {:>9} {:>12}° {:>7} {:>10}",
            site,
            fire_sensor::raw_for_temp(temp_c),
            tx[0] as i8,
            if alarm { "ON" } else { "off" },
            if report.is_clean() { "CLEAN" } else { "ATTACK" },
        );
        assert!(report.is_clean(), "{report}");
        assert_eq!(alarm, temp_c >= 50, "alarm threshold is 50°C");
    }

    println!("\nEvery reading above was reconstructed by the verifier from the");
    println!("attested I-Log — the devices' ADCs are never trusted directly.");
    Ok(())
}
