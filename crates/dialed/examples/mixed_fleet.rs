//! A mixed fleet through the generic batch engine: one PoX-only operation
//! and one full-DIALED operation, each with individually keyed devices,
//! both drained through the same `BatchVerifier<V>` machinery.
//!
//! The fire sensor here ships a `CfaOnly` image — no I-Log, so the best
//! the server can do is the cryptographic proof of execution
//! ([`apex::PoxVerifier`] as the backend). The syringe pump ships a `Full`
//! image and gets complete data-flow verification plus its safety
//! policies ([`DialedVerifier`] as the backend). Per-device keys resolve
//! through one [`PerDevice`] key source; the engine, the job type and the
//! request path are identical for both.
//!
//! ```text
//! cargo run -p dialed --example mixed_fleet
//! ```

use apps::{app_build_options, fire_sensor, syringe_pump};
use dialed::pipeline::InstrumentMode;
use dialed::prelude::*;
use vrased::RaVerifier;

/// Runs `n` devices of one scenario and returns their jobs; device `i`
/// attests under key seed `seed0 + i`.
fn attest_round(
    op: &InstrumentedOp,
    feed: impl Fn(&mut msp430::Platform),
    label: &[u8],
    seed0: u64,
    n: u64,
) -> Vec<BatchJob> {
    (0..n)
        .map(|i| {
            let mut dev = DialedDevice::new(op.clone(), KeyStore::from_seed(seed0 + i));
            feed(dev.platform_mut());
            dev.invoke(&[0; 8]);
            let challenge = Challenge::derive(label, i);
            BatchJob::new(seed0 + i, dev.prove(&challenge), challenge)
        })
        .collect()
}

/// One drain, any backend: the engine is generic over [`Verifier`].
fn drain<V: Verifier>(
    name: &str,
    engine: &BatchVerifier<V>,
    jobs: &[BatchJob],
    keys: &dyn KeySource,
) {
    let report = engine.verify_batch(jobs, Some(keys));
    println!("  {name}: {report}");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const DEVICES: u64 = 4;

    // Op A — fire sensor, CfaOnly image: PoX-only backend.
    let sensor_op = InstrumentedOp::build(
        fire_sensor::SOURCE,
        "fire_op",
        &app_build_options(InstrumentMode::CfaOnly),
    )?;
    let sensor_engine = BatchVerifier::new(apex::PoxVerifier::new(
        KeyStore::from_seed(0xA0),
        sensor_op.pox,
        sensor_op.er_bytes.clone(),
    ))
    .with_workers(2);

    // Op B — syringe pump, Full image: complete data-flow verification.
    let pump_op = InstrumentedOp::build(
        syringe_pump::SOURCE,
        "syringe_op",
        &app_build_options(InstrumentMode::Full),
    )?;
    let mut pump_verifier = DialedVerifier::new(pump_op.clone(), KeyStore::from_seed(0xB0));
    for p in syringe_pump::policies() {
        pump_verifier = pump_verifier.with_policy(p);
    }
    let pump_engine = BatchVerifier::new(pump_verifier).with_workers(2);

    // Every device owns a key; one source serves both shards.
    let sensor_jobs = attest_round(
        &sensor_op,
        |p| p.adc.feed(&[fire_sensor::raw_for_temp(30), 0x0600]),
        b"mixed-sensor",
        100,
        DEVICES,
    );
    let pump_jobs = attest_round(&pump_op, syringe_pump::feed_nominal, b"mixed-pump", 200, DEVICES);
    let table: Vec<(u64, RaVerifier)> = sensor_jobs
        .iter()
        .chain(&pump_jobs)
        .map(|j| (j.device_id, RaVerifier::new(KeyStore::from_seed(j.device_id))))
        .collect();
    let keys = PerDevice::new(|id| table.iter().find(|(d, _)| *d == id).map(|(_, ra)| ra));

    println!("mixed fleet: {DEVICES} PoX-only sensors + {DEVICES} full-DIALED pumps");
    drain("sensors (PoX-only)", &sensor_engine, &sensor_jobs, &keys);
    drain("pumps   (full DFA)", &pump_engine, &pump_jobs, &keys);

    // Both backends reject an alien proof the same structured way: a pump
    // proof submitted to the sensor shard fails region/MAC checks, and an
    // unknown device id fails key resolution before any cryptography.
    let mut alien = pump_jobs[0].clone();
    let sensor_verdict = sensor_engine.verify_batch(std::slice::from_ref(&alien), Some(&keys));
    println!("  pump proof in the sensor shard: {sensor_verdict}");
    assert_eq!(sensor_verdict.stats.rejected, 1);
    alien.device_id = 999;
    let unknown = pump_engine.verify_batch(std::slice::from_ref(&alien), Some(&keys));
    let first = &unknown.outcomes[0].report;
    println!("  unknown device id 999: {first}");
    assert_eq!(
        first.findings,
        vec![Finding::PoxRejected { reason: RejectReason::UnknownKey { device: 999 } }]
    );

    Ok(())
}
