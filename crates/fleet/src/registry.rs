//! The device registry: which devices exist, which operation each is
//! provisioned for, which key it attests under, and how far its verified
//! history reaches.
//!
//! The registry is the service's source of truth. Operations are
//! registered once per fleet (a fleet may serve many distinct operations —
//! one per firmware build); devices are then bound to exactly one
//! operation and an individual attestation key derived from a
//! provisioning seed. Verified verdicts flow back in from the ingest
//! stage, advancing each device's last-verified counter.

use dialed::pipeline::{InstrumentMode, InstrumentedOp};
use dialed::policy::Policy;
use dialed::report::RejectReason;
use dialed::request::Verifier;
use dialed::{BatchVerifier, DialedVerifier};
use std::fmt;
use vrased::{KeyStore, RaVerifier};

/// Identifies one registered operation within a fleet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u32);

/// Identifies one registered device within a fleet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DeviceId(pub u64);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev#{}", self.0)
    }
}

/// Registry failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegistryError {
    /// The referenced operation is not registered.
    UnknownOp(OpId),
    /// The referenced device is not registered.
    UnknownDevice(DeviceId),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownOp(id) => write!(f, "{id} is not registered"),
            RegistryError::UnknownDevice(id) => write!(f, "{id} is not registered"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<RegistryError> for RejectReason {
    /// Registry failures reject as [`RejectReason::UnknownPrincipal`]: the
    /// service does not know the device or operation the submission names.
    fn from(e: RegistryError) -> Self {
        RejectReason::UnknownPrincipal { detail: e.to_string() }
    }
}

/// One registered operation: the instrumented image plus the shared
/// verification machinery every proof of this operation goes through.
pub struct OpRecord {
    /// The operation's id.
    pub id: OpId,
    /// Operator-facing name.
    pub name: String,
    /// Instrumentation stages the image was built with. Only
    /// [`InstrumentMode::Full`] images carry the I-Log the DIALED verifier
    /// re-executes; the other modes are verified at the PoX level (code,
    /// regions, EXEC, OR authenticity).
    pub mode: InstrumentMode,
    /// Devices bound to this operation.
    pub devices: u64,
    /// The shared batch engine. The backend is chosen once, at
    /// registration: full data-flow verification for
    /// [`InstrumentMode::Full`] images, PoX-only for the rest — ingest
    /// drains every shard through this one engine with no per-mode
    /// branching (per-device keys resolve through the drain's
    /// [`KeySource`](dialed::request::KeySource)).
    pub(crate) engine: BatchVerifier<Box<dyn Verifier>>,
}

impl fmt::Debug for OpRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpRecord")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("mode", &self.mode)
            .field("devices", &self.devices)
            .finish_non_exhaustive()
    }
}

/// Per-device registry state.
#[derive(Clone, Debug)]
pub struct DeviceRecord {
    /// The device's id.
    pub id: DeviceId,
    /// The operation this device is provisioned to run.
    pub op: OpId,
    /// Highest challenge nonce this device has a *verified* proof for.
    /// Monotonic: ingest only ever advances it.
    pub last_verified: Option<u64>,
    /// Sessions that ended `Verified`.
    pub verified: u64,
    /// Sessions that ended `Rejected`.
    pub rejected: u64,
    /// The device's individual attestation key.
    pub(crate) keystore: KeyStore,
    /// The precomputed verification-side key schedule — built once at
    /// registration so drains resolve keys by borrow, with no per-proof
    /// HMAC-pad recomputation.
    pub(crate) ra: RaVerifier,
}

impl DeviceRecord {
    /// The device's attestation key — needed by provisioning (to install
    /// the same key on the physical device) and by ingest (to check MACs).
    #[must_use]
    pub fn keystore(&self) -> &KeyStore {
        &self.keystore
    }

    /// The verifier-side key schedule proofs from this device are checked
    /// under (the [`KeySource`](dialed::request::KeySource) answer for
    /// this device).
    #[must_use]
    pub fn ra(&self) -> &RaVerifier {
        &self.ra
    }
}

/// The fleet's device and operation registry.
#[derive(Debug, Default)]
pub struct Registry {
    ops: Vec<OpRecord>,
    devices: Vec<DeviceRecord>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an operation; every proof of it is verified through one
    /// shared [`BatchVerifier`] (built over `op` and `policies`).
    ///
    /// `workers` overrides the batch verifier's thread count
    /// (`None` = one per core).
    pub fn register_op(
        &mut self,
        name: &str,
        op: InstrumentedOp,
        policies: Vec<Box<dyn Policy>>,
        workers: Option<usize>,
    ) -> OpId {
        let id = OpId(u32::try_from(self.ops.len()).expect("more than u32::MAX operations"));
        let mode = op.options.mode;
        // The per-op fallback key is never used for fleet jobs — every
        // drain resolves its devices' own keys — but the verifiers require
        // one at construction, so derive a per-op placeholder.
        let placeholder = KeyStore::from_seed(0xF1EE7 ^ u64::from(id.0));
        // Backend selection happens exactly once, here: Full images carry
        // the I-Log the DIALED verifier re-executes; the other modes are
        // verified at the PoX level (code, regions, EXEC, OR authenticity),
        // where reconstruction policies cannot apply.
        let backend: Box<dyn Verifier> = if mode == InstrumentMode::Full {
            let mut verifier = DialedVerifier::new(op, placeholder);
            for p in policies {
                verifier = verifier.with_policy(p);
            }
            Box::new(verifier)
        } else {
            Box::new(apex::PoxVerifier::new(placeholder, op.pox, op.er_bytes.clone()))
        };
        let mut engine = BatchVerifier::new(backend);
        if let Some(w) = workers {
            engine = engine.with_workers(w);
        }
        self.ops.push(OpRecord { id, name: name.to_string(), mode, devices: 0, engine });
        id
    }

    /// Registers a device bound to `op`, deriving its individual
    /// attestation key from `key_seed` (the provisioning secret shared
    /// with the physical device).
    ///
    /// # Errors
    ///
    /// Fails if `op` is unknown.
    pub fn register_device(&mut self, op: OpId, key_seed: u64) -> Result<DeviceId, RegistryError> {
        let record = self.op_mut(op)?;
        record.devices += 1;
        let id = DeviceId(self.devices.len() as u64);
        let keystore = KeyStore::from_seed(key_seed);
        let ra = RaVerifier::new(keystore.clone());
        self.devices.push(DeviceRecord {
            id,
            op,
            last_verified: None,
            verified: 0,
            rejected: 0,
            keystore,
            ra,
        });
        Ok(id)
    }

    /// Looks up a device.
    ///
    /// # Errors
    ///
    /// Fails if the device is unknown.
    pub fn device(&self, id: DeviceId) -> Result<&DeviceRecord, RegistryError> {
        usize::try_from(id.0)
            .ok()
            .and_then(|i| self.devices.get(i))
            .ok_or(RegistryError::UnknownDevice(id))
    }

    pub(crate) fn device_mut(&mut self, id: DeviceId) -> Result<&mut DeviceRecord, RegistryError> {
        usize::try_from(id.0)
            .ok()
            .and_then(|i| self.devices.get_mut(i))
            .ok_or(RegistryError::UnknownDevice(id))
    }

    /// Looks up an operation.
    ///
    /// # Errors
    ///
    /// Fails if the operation is unknown.
    pub fn op(&self, id: OpId) -> Result<&OpRecord, RegistryError> {
        self.ops.get(id.0 as usize).ok_or(RegistryError::UnknownOp(id))
    }

    pub(crate) fn op_mut(&mut self, id: OpId) -> Result<&mut OpRecord, RegistryError> {
        self.ops.get_mut(id.0 as usize).ok_or(RegistryError::UnknownOp(id))
    }

    /// All registered operations.
    pub fn ops(&self) -> impl Iterator<Item = &OpRecord> {
        self.ops.iter()
    }

    /// All registered devices.
    pub fn devices(&self) -> impl Iterator<Item = &DeviceRecord> {
        self.devices.iter()
    }

    /// Records a verdict for `device`: bumps its counters and, for a
    /// verified session, advances the last-verified counter (never
    /// backwards — a stale verdict cannot regress history).
    pub(crate) fn record_verdict(&mut self, device: DeviceId, nonce: u64, verified: bool) {
        let Ok(rec) = self.device_mut(device) else { return };
        if verified {
            rec.verified += 1;
            let advance = match rec.last_verified {
                Some(prev) => nonce > prev,
                None => true,
            };
            if advance {
                rec.last_verified = Some(nonce);
            }
        } else {
            rec.rejected += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialed::pipeline::BuildOptions;

    fn tiny_op() -> InstrumentedOp {
        let src = ".org 0xE000\nop:\n mov r15, &0x0060\n ret\n";
        InstrumentedOp::build(src, "op", &BuildOptions::default()).unwrap()
    }

    #[test]
    fn multiple_ops_and_devices_register() {
        let mut reg = Registry::new();
        let a = reg.register_op("alpha", tiny_op(), vec![], Some(1));
        let b = reg.register_op("beta", tiny_op(), vec![], Some(1));
        assert_ne!(a, b);
        let d0 = reg.register_device(a, 100).unwrap();
        let d1 = reg.register_device(b, 101).unwrap();
        let d2 = reg.register_device(a, 102).unwrap();
        assert_eq!(reg.op(a).unwrap().devices, 2);
        assert_eq!(reg.op(b).unwrap().devices, 1);
        assert_eq!(reg.device(d0).unwrap().op, a);
        assert_eq!(reg.device(d1).unwrap().op, b);
        assert_eq!(reg.device(d2).unwrap().op, a);
        assert_eq!(reg.devices().count(), 3);
    }

    #[test]
    fn unknown_ids_error() {
        let mut reg = Registry::new();
        assert_eq!(reg.register_device(OpId(9), 0).unwrap_err(), RegistryError::UnknownOp(OpId(9)));
        assert_eq!(reg.device(DeviceId(3)).unwrap_err(), RegistryError::UnknownDevice(DeviceId(3)));
    }

    #[test]
    fn last_verified_counter_is_monotonic() {
        let mut reg = Registry::new();
        let op = reg.register_op("alpha", tiny_op(), vec![], Some(1));
        let dev = reg.register_device(op, 7).unwrap();
        reg.record_verdict(dev, 5, true);
        assert_eq!(reg.device(dev).unwrap().last_verified, Some(5));
        // A stale verdict (e.g. a late-drained older session) cannot
        // regress the counter.
        reg.record_verdict(dev, 3, true);
        assert_eq!(reg.device(dev).unwrap().last_verified, Some(5));
        reg.record_verdict(dev, 8, false);
        let rec = reg.device(dev).unwrap();
        assert_eq!(rec.last_verified, Some(5));
        assert_eq!((rec.verified, rec.rejected), (2, 1));
    }
}
