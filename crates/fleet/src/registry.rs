//! The device registry: which devices exist, which operation each is
//! provisioned for, which key it attests under, and how far its verified
//! history reaches.
//!
//! Since the sharded-state refactor this splits in two:
//!
//! * [`OpTable`] — the fleet-global operation table. Operations are code
//!   artifacts (an instrumented image plus the shared [`BatchVerifier`]
//!   built over it); they are registered once per fleet and *shared* by
//!   every shard's drain. The table is immutable during a drain, so
//!   parallel shard drains borrow it concurrently without locking.
//! * [`Registry`] — one per shard, holding the [`DeviceRecord`]s the
//!   shard's consistent-hash slice of the device space routes to. Device
//!   state is pure data (seed, epoch, counters) and is what the shard's
//!   write-ahead log and snapshots persist; the derived key schedule is
//!   rebuilt from `seed ⊕ f(epoch)` on install, never serialized.
//!
//! Verified verdicts flow back in from the ingest stage, advancing each
//! device's last-verified counter.

use dialed::pipeline::{InstrumentMode, InstrumentedOp};
use dialed::policy::Policy;
use dialed::report::RejectReason;
use dialed::request::Verifier;
use dialed::{BatchVerifier, DialedVerifier};
use std::collections::BTreeMap;
use std::fmt;
use vrased::{KeyStore, RaVerifier};

/// Identifies one registered operation within a fleet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u32);

/// Identifies one registered device within a fleet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DeviceId(pub u64);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev#{}", self.0)
    }
}

/// Registry failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegistryError {
    /// The referenced operation is not registered.
    UnknownOp(OpId),
    /// The referenced device is not registered (or was deregistered).
    UnknownDevice(DeviceId),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownOp(id) => write!(f, "{id} is not registered"),
            RegistryError::UnknownDevice(id) => write!(f, "{id} is not registered"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<RegistryError> for RejectReason {
    /// Registry failures reject as [`RejectReason::UnknownPrincipal`]: the
    /// service does not know the device or operation the submission names.
    fn from(e: RegistryError) -> Self {
        RejectReason::UnknownPrincipal { detail: e.to_string() }
    }
}

/// Mixes a key-rotation epoch into a provisioning seed. Epoch 0 is the
/// identity, so fleets that never rotate keep their original keys; each
/// bump moves every *subsequently provisioned* device onto a fresh key
/// schedule without touching already-installed devices.
#[must_use]
pub(crate) fn effective_seed(key_seed: u64, epoch: u64) -> u64 {
    key_seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One registered operation: the instrumented image plus the shared
/// verification machinery every proof of this operation goes through.
pub struct OpRecord {
    /// The operation's id.
    pub id: OpId,
    /// Operator-facing name.
    pub name: String,
    /// Instrumentation stages the image was built with. Only
    /// [`InstrumentMode::Full`] images carry the I-Log the DIALED verifier
    /// re-executes; the other modes are verified at the PoX level (code,
    /// regions, EXEC, OR authenticity).
    pub mode: InstrumentMode,
    /// Devices currently bound to this operation, across all shards.
    pub devices: u64,
    /// The shared batch engine. The backend is chosen once, at
    /// registration: full data-flow verification for
    /// [`InstrumentMode::Full`] images, PoX-only for the rest — every
    /// shard drains through this one engine with no per-mode branching
    /// (per-device keys resolve through the drain's
    /// [`KeySource`](dialed::request::KeySource)).
    // `+ Send` so a whole [`Fleet`](crate::Fleet) can move into the
    // network frontend's core thread; the backends are plain data + keys.
    pub(crate) engine: BatchVerifier<Box<dyn Verifier + Send>>,
}

impl OpRecord {
    /// Hit/miss counters of this operation's expected-ER digest cache, or
    /// `None` if the backend does not memoize (it always does for the
    /// PoX-carrying backends registered today).
    ///
    /// A healthy steady state shows exactly one miss per
    /// invalidation cycle (registration, [epoch
    /// rotation](crate::Fleet::rotate_provisioning_epoch), or recovery)
    /// and a hit for every subsequent batch drain.
    #[must_use]
    pub fn digest_cache_stats(&self) -> Option<apex::pox::DigestCacheStats> {
        self.engine.verifier().er_digest_cache().map(apex::ErDigestCache::stats)
    }

    /// Drops the memoized expected-ER digest so the next drain recomputes
    /// it — called when the binding between this op and its image version
    /// may have changed (re-registration, provisioning-epoch rotation).
    pub(crate) fn invalidate_digest_cache(&self) {
        if let Some(cache) = self.engine.verifier().er_digest_cache() {
            cache.invalidate();
        }
    }
}

impl fmt::Debug for OpRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpRecord")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("mode", &self.mode)
            .field("devices", &self.devices)
            .finish_non_exhaustive()
    }
}

/// The fleet-global operation table. Shared read-only by every shard's
/// drain; see the module docs for the split with [`Registry`].
#[derive(Debug, Default)]
pub struct OpTable {
    ops: Vec<OpRecord>,
}

impl OpTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an operation; every proof of it is verified through one
    /// shared [`BatchVerifier`] (built over `op` and `policies`).
    ///
    /// `workers` overrides the batch verifier's thread count
    /// (`None` = one per core).
    pub fn register_op(
        &mut self,
        name: &str,
        op: InstrumentedOp,
        policies: Vec<Box<dyn Policy>>,
        workers: Option<usize>,
    ) -> OpId {
        let id = OpId(u32::try_from(self.ops.len()).expect("more than u32::MAX operations"));
        let mode = op.options.mode;
        // The per-op fallback key is never used for fleet jobs — every
        // drain resolves its devices' own keys — but the verifiers require
        // one at construction, so derive a per-op placeholder.
        let placeholder = KeyStore::from_seed(0xF1EE7 ^ u64::from(id.0));
        // Backend selection happens exactly once, here: Full images carry
        // the I-Log the DIALED verifier re-executes; the other modes are
        // verified at the PoX level (code, regions, EXEC, OR authenticity),
        // where reconstruction policies cannot apply.
        let backend: Box<dyn Verifier + Send> = if mode == InstrumentMode::Full {
            let mut verifier = DialedVerifier::new(op, placeholder);
            for p in policies {
                verifier = verifier.with_policy(p);
            }
            Box::new(verifier)
        } else {
            Box::new(apex::PoxVerifier::new(placeholder, op.pox, op.er_bytes.clone()))
        };
        let mut engine = BatchVerifier::new(backend);
        if let Some(w) = workers {
            engine = engine.with_workers(w);
        }
        self.ops.push(OpRecord { id, name: name.to_string(), mode, devices: 0, engine });
        id
    }

    /// Looks up an operation.
    ///
    /// # Errors
    ///
    /// Fails if the operation is unknown.
    pub fn op(&self, id: OpId) -> Result<&OpRecord, RegistryError> {
        self.ops.get(id.0 as usize).ok_or(RegistryError::UnknownOp(id))
    }

    pub(crate) fn op_mut(&mut self, id: OpId) -> Result<&mut OpRecord, RegistryError> {
        self.ops.get_mut(id.0 as usize).ok_or(RegistryError::UnknownOp(id))
    }

    /// All registered operations.
    pub fn ops(&self) -> impl Iterator<Item = &OpRecord> {
        self.ops.iter()
    }

    /// Number of registered operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Per-device registry state.
#[derive(Clone, Debug)]
pub struct DeviceRecord {
    /// The device's id.
    pub id: DeviceId,
    /// The operation this device is provisioned to run.
    pub op: OpId,
    /// Highest challenge nonce this device has a *verified* proof for.
    /// Monotonic: ingest only ever advances it, and recovery restores it,
    /// so a restart can never re-open an already-verified round.
    pub last_verified: Option<u64>,
    /// Sessions that ended `Verified`.
    pub verified: u64,
    /// Sessions that ended `Rejected`.
    pub rejected: u64,
    /// The provisioning seed the device's key derives from — the durable
    /// half of the key material (what the WAL and snapshots persist).
    pub(crate) key_seed: u64,
    /// The key-rotation epoch the device was provisioned under.
    pub(crate) epoch: u64,
    /// The device's individual attestation key, derived from
    /// `effective_seed(key_seed, epoch)` at install time.
    pub(crate) keystore: KeyStore,
    /// The precomputed verification-side key schedule — built once at
    /// install so drains resolve keys by borrow, with no per-proof
    /// HMAC-pad recomputation.
    pub(crate) ra: RaVerifier,
}

impl DeviceRecord {
    /// The device's attestation key — needed by provisioning (to install
    /// the same key on the physical device) and by ingest (to check MACs).
    #[must_use]
    pub fn keystore(&self) -> &KeyStore {
        &self.keystore
    }

    /// The verifier-side key schedule proofs from this device are checked
    /// under (the [`KeySource`](dialed::request::KeySource) answer for
    /// this device).
    #[must_use]
    pub fn ra(&self) -> &RaVerifier {
        &self.ra
    }

    /// The key-rotation epoch this device was provisioned under.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// One shard's slice of the device space. Device ids are fleet-global
/// (allocated by the facade's router); each shard only ever sees the ids
/// the consistent-hash ring maps to it, so the map is sparse by design.
#[derive(Debug, Default)]
pub struct Registry {
    devices: BTreeMap<u64, DeviceRecord>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a device record — the apply half of registration, driven
    /// both live and by event replay. The key schedule is (re)derived from
    /// the durable `(key_seed, epoch)` pair, so a recovered device checks
    /// MACs under exactly the key it was provisioned with.
    pub(crate) fn install_device(&mut self, id: DeviceId, op: OpId, key_seed: u64, epoch: u64) {
        let keystore = KeyStore::from_seed(effective_seed(key_seed, epoch));
        let ra = RaVerifier::new(keystore.clone());
        self.devices.insert(
            id.0,
            DeviceRecord {
                id,
                op,
                last_verified: None,
                verified: 0,
                rejected: 0,
                key_seed,
                epoch,
                keystore,
                ra,
            },
        );
    }

    /// Removes a device, returning its record (the apply half of
    /// deregistration).
    pub(crate) fn remove_device(&mut self, id: DeviceId) -> Option<DeviceRecord> {
        self.devices.remove(&id.0)
    }

    /// Looks up a device.
    ///
    /// # Errors
    ///
    /// Fails if the device is unknown (never registered, routed to a
    /// different shard, or deregistered).
    pub fn device(&self, id: DeviceId) -> Result<&DeviceRecord, RegistryError> {
        self.devices.get(&id.0).ok_or(RegistryError::UnknownDevice(id))
    }

    pub(crate) fn device_mut(&mut self, id: DeviceId) -> Result<&mut DeviceRecord, RegistryError> {
        self.devices.get_mut(&id.0).ok_or(RegistryError::UnknownDevice(id))
    }

    /// All devices on this shard, in id order.
    pub fn devices(&self) -> impl Iterator<Item = &DeviceRecord> {
        self.devices.values()
    }

    /// Number of devices on this shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether this shard holds no devices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Records a verdict for `device`: bumps its counters and, for a
    /// verified session, advances the last-verified counter (never
    /// backwards — a stale verdict cannot regress history).
    pub(crate) fn record_verdict(&mut self, device: DeviceId, nonce: u64, verified: bool) {
        let Ok(rec) = self.device_mut(device) else { return };
        if verified {
            rec.verified += 1;
            let advance = match rec.last_verified {
                Some(prev) => nonce > prev,
                None => true,
            };
            if advance {
                rec.last_verified = Some(nonce);
            }
        } else {
            rec.rejected += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialed::pipeline::BuildOptions;

    fn tiny_op() -> InstrumentedOp {
        let src = ".org 0xE000\nop:\n mov r15, &0x0060\n ret\n";
        InstrumentedOp::build(src, "op", &BuildOptions::default()).unwrap()
    }

    #[test]
    fn multiple_ops_and_devices_register() {
        let mut ops = OpTable::new();
        let a = ops.register_op("alpha", tiny_op(), vec![], Some(1));
        let b = ops.register_op("beta", tiny_op(), vec![], Some(1));
        assert_ne!(a, b);
        assert_eq!(ops.len(), 2);

        let mut reg = Registry::new();
        reg.install_device(DeviceId(0), a, 100, 0);
        reg.install_device(DeviceId(1), b, 101, 0);
        reg.install_device(DeviceId(2), a, 102, 0);
        assert_eq!(reg.device(DeviceId(0)).unwrap().op, a);
        assert_eq!(reg.device(DeviceId(1)).unwrap().op, b);
        assert_eq!(reg.device(DeviceId(2)).unwrap().op, a);
        assert_eq!(reg.devices().count(), 3);
    }

    #[test]
    fn unknown_ids_error() {
        let ops = OpTable::new();
        assert_eq!(ops.op(OpId(9)).unwrap_err(), RegistryError::UnknownOp(OpId(9)));
        let mut reg = Registry::new();
        assert_eq!(reg.device(DeviceId(3)).unwrap_err(), RegistryError::UnknownDevice(DeviceId(3)));
        reg.install_device(DeviceId(3), OpId(0), 1, 0);
        assert!(reg.device(DeviceId(3)).is_ok());
        assert!(reg.remove_device(DeviceId(3)).is_some());
        assert_eq!(reg.device(DeviceId(3)).unwrap_err(), RegistryError::UnknownDevice(DeviceId(3)));
    }

    #[test]
    fn last_verified_counter_is_monotonic() {
        let mut reg = Registry::new();
        let dev = DeviceId(0);
        reg.install_device(dev, OpId(0), 7, 0);
        reg.record_verdict(dev, 5, true);
        assert_eq!(reg.device(dev).unwrap().last_verified, Some(5));
        // A stale verdict (e.g. a late-drained older session) cannot
        // regress the counter.
        reg.record_verdict(dev, 3, true);
        assert_eq!(reg.device(dev).unwrap().last_verified, Some(5));
        reg.record_verdict(dev, 8, false);
        let rec = reg.device(dev).unwrap();
        assert_eq!(rec.last_verified, Some(5));
        assert_eq!((rec.verified, rec.rejected), (2, 1));
    }

    #[test]
    fn epoch_rotates_the_derived_key() {
        use vrased::{Challenge, SwAtt};

        let mut reg = Registry::new();
        reg.install_device(DeviceId(0), OpId(0), 42, 0);
        reg.install_device(DeviceId(1), OpId(0), 42, 1);
        // Same seed, different epoch ⇒ different key schedule; epoch 0 is
        // the identity so pre-rotation fleets keep their original keys.
        assert_eq!(effective_seed(42, 0), 42);
        assert_ne!(effective_seed(42, 0), effective_seed(42, 1));

        // A device provisioned with the epoch-mixed seed MACs under
        // exactly the key the installed record checks — the property
        // recovery (which re-derives keys from the durable pair) relies
        // on — while the pre-rotation record rejects the same response.
        let device_side = SwAtt::new(KeyStore::from_seed(effective_seed(42, 1)));
        let chal = Challenge::derive(b"epoch-test", 0);
        let regions: &[(u16, u16, &[u8])] = &[(0, 1, &[0xAA, 0xBB])];
        let resp = device_side.attest_region_bytes(&chal, regions, b"");
        assert!(reg
            .device(DeviceId(1))
            .unwrap()
            .ra()
            .check_region_bytes(&chal, regions, b"", &resp));
        assert!(!reg
            .device(DeviceId(0))
            .unwrap()
            .ra()
            .check_region_bytes(&chal, regions, b"", &resp));
    }
}
