//! Sharded ingest: accepted submissions queue per operation and drain
//! through that operation's [`BatchVerifier`](dialed::BatchVerifier).
//!
//! Proofs of one operation share everything that makes verification fast —
//! the instrumented image, the prebuilt site bitmaps, the warm per-worker
//! emulation workspaces — so the queue shards by [`OpId`]. A drain walks
//! each shard once, hands the whole shard to the op's batch verifier (each
//! job carrying its device's individual key), and feeds the verdicts back
//! into the sessions and the registry.

use crate::registry::{DeviceId, OpId, Registry};
use crate::session::{SessionId, SessionManager, SessionState};
use dialed::pipeline::InstrumentMode;
use dialed::report::Report;
use dialed::BatchJob;
use std::collections::BTreeMap;
use std::fmt;
use vrased::RaVerifier;

/// Aggregate result of one [`IngestQueue::drain`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DrainStats {
    /// Sessions resolved by this drain.
    pub drained: usize,
    /// Operation shards that had pending work.
    pub shards: usize,
    /// Sessions that ended `Verified`.
    pub verified: usize,
    /// Sessions that ended `Rejected`.
    pub rejected: usize,
}

impl fmt::Display for DrainStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drained {} sessions over {} shards: {} verified / {} rejected",
            self.drained, self.shards, self.verified, self.rejected
        )
    }
}

/// The pending-submission queue, sharded by operation.
#[derive(Debug, Default)]
pub struct IngestQueue {
    shards: BTreeMap<OpId, Vec<SessionId>>,
}

impl IngestQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a submitted session for its operation's shard.
    pub fn enqueue(&mut self, op: OpId, session: SessionId) {
        self.shards.entry(op).or_default().push(session);
    }

    /// Total pending sessions.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shards.values().map(Vec::len).sum()
    }

    /// Pending sessions for one operation.
    #[must_use]
    pub fn pending_for(&self, op: OpId) -> usize {
        self.shards.get(&op).map_or(0, Vec::len)
    }

    /// Drains every shard through its operation's verifier, resolving each
    /// queued session to `Verified` or `Rejected` and feeding the verdicts
    /// back into the registry's per-device records.
    pub fn drain(&mut self, registry: &mut Registry, sessions: &mut SessionManager) -> DrainStats {
        let shards = std::mem::take(&mut self.shards);
        let mut stats = DrainStats::default();
        for (op, sids) in shards {
            let (resolved, verified) = drain_shard(op, &sids, registry, sessions);
            if resolved > 0 {
                stats.shards += 1;
            }
            stats.drained += resolved;
            stats.verified += verified;
            stats.rejected += resolved - verified;
        }
        stats
    }
}

/// Session bookkeeping for one queued job, parallel to the jobs vector —
/// kept apart so the proofs are not cloned a second time just to hand
/// `verify_batch` a contiguous `&[BatchJob]`.
struct PendingMeta {
    session: SessionId,
    device: DeviceId,
    nonce: u64,
}

/// Drains one operation shard; returns `(resolved, verified)`.
fn drain_shard(
    op: OpId,
    sids: &[SessionId],
    registry: &mut Registry,
    sessions: &mut SessionManager,
) -> (usize, usize) {
    // Collect the shard's jobs: each consumes its session's held proof and
    // carries its device's individual key.
    let mut jobs: Vec<BatchJob> = Vec::with_capacity(sids.len());
    let mut meta: Vec<PendingMeta> = Vec::with_capacity(sids.len());
    for &sid in sids {
        let Some(s) = sessions.session_mut(sid) else { continue };
        if s.state != SessionState::Submitted {
            continue;
        }
        let Some(proof) = s.proof.take() else { continue };
        let (device, nonce, challenge) = (s.device, s.nonce, s.challenge);
        let Ok(dev) = registry.device(device) else { continue };
        jobs.push(BatchJob::with_key(device.0, proof, challenge, dev.keystore().clone()));
        meta.push(PendingMeta { session: sid, device, nonce });
    }
    if jobs.is_empty() {
        return (0, 0);
    }

    let Ok(record) = registry.op(op) else { return (0, 0) };
    let reports: Vec<Report> = if record.mode == InstrumentMode::Full {
        let batch = record.batch.verify_batch(&jobs);
        batch.outcomes.into_iter().map(|o| o.report).collect()
    } else {
        // Non-Full images carry no I-Log to re-execute; verify at the PoX
        // level (correct code, regions, EXEC, authentic OR) under each
        // device's key.
        jobs.iter()
            .map(|job| {
                let ra =
                    RaVerifier::new(job.keystore.clone().expect("fleet jobs always carry a key"));
                match record.pox.verify_keyed(&job.proof.pox, &job.challenge, &ra) {
                    Ok(_) => Report::clean(dialed::report::VerifyStats::default()),
                    Err(reason) => Report::rejected(reason),
                }
            })
            .collect()
    };

    let mut verified = 0;
    let resolved = meta.len();
    for (m, report) in meta.into_iter().zip(reports) {
        let clean = report.is_clean();
        if clean {
            verified += 1;
        }
        registry.record_verdict(m.device, m.nonce, clean);
        if let Some(s) = sessions.session_mut(m.session) {
            s.state = if clean { SessionState::Verified } else { SessionState::Rejected };
            s.report = Some(report);
        }
    }
    (resolved, verified)
}
