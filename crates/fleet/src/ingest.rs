//! Sharded ingest: accepted submissions queue per operation and drain
//! through that operation's batch engine.
//!
//! Proofs of one operation share everything that makes verification fast —
//! the instrumented image, the prebuilt site bitmaps, the warm per-worker
//! emulation workspaces — so the queue shards by [`OpId`]. A drain walks
//! each shard once, hands the whole shard to the op's
//! [`BatchVerifier`](dialed::BatchVerifier), and feeds the verdicts back
//! into the sessions and the registry.
//!
//! The drain is verifier-agnostic: each operation's backend (full DIALED
//! data-flow verification or PoX-only) was fixed at registration, and
//! per-device keys resolve through a [`PerDevice`] key source borrowing
//! straight out of the registry — no key store is materialised per job.

use crate::registry::{DeviceId, OpId, Registry};
use crate::session::{SessionId, SessionManager, SessionState};
use dialed::report::Report;
use dialed::request::PerDevice;
use dialed::BatchJob;
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate result of one [`IngestQueue::drain`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DrainStats {
    /// Sessions resolved by this drain.
    pub drained: usize,
    /// Operation shards that had pending work.
    pub shards: usize,
    /// Sessions that ended `Verified`.
    pub verified: usize,
    /// Sessions that ended `Rejected`.
    pub rejected: usize,
}

impl fmt::Display for DrainStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drained {} sessions over {} shards: {} verified / {} rejected",
            self.drained, self.shards, self.verified, self.rejected
        )
    }
}

/// The pending-submission queue, sharded by operation.
#[derive(Debug, Default)]
pub struct IngestQueue {
    shards: BTreeMap<OpId, Vec<SessionId>>,
}

impl IngestQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a submitted session for its operation's shard.
    pub fn enqueue(&mut self, op: OpId, session: SessionId) {
        self.shards.entry(op).or_default().push(session);
    }

    /// Total pending sessions.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shards.values().map(Vec::len).sum()
    }

    /// Pending sessions for one operation.
    #[must_use]
    pub fn pending_for(&self, op: OpId) -> usize {
        self.shards.get(&op).map_or(0, Vec::len)
    }

    /// Drains every shard through its operation's batch engine, resolving
    /// each queued session to `Verified` or `Rejected` and feeding the
    /// verdicts back into the registry's per-device records.
    pub fn drain(&mut self, registry: &mut Registry, sessions: &mut SessionManager) -> DrainStats {
        let shards = std::mem::take(&mut self.shards);
        let mut stats = DrainStats::default();
        for (op, sids) in shards {
            let (resolved, verified) = drain_shard(op, &sids, registry, sessions);
            if resolved > 0 {
                stats.shards += 1;
            }
            stats.drained += resolved;
            stats.verified += verified;
            stats.rejected += resolved - verified;
        }
        stats
    }
}

/// Session bookkeeping for one queued job, parallel to the jobs vector —
/// kept apart so the proofs are not cloned a second time just to hand
/// `verify_batch` a contiguous `&[BatchJob]`.
struct PendingMeta {
    session: SessionId,
    device: DeviceId,
    nonce: u64,
}

/// Drains one operation shard; returns `(resolved, verified)`.
fn drain_shard(
    op: OpId,
    sids: &[SessionId],
    registry: &mut Registry,
    sessions: &mut SessionManager,
) -> (usize, usize) {
    // Collect the shard's jobs: each consumes its session's held proof.
    let mut jobs: Vec<BatchJob> = Vec::with_capacity(sids.len());
    let mut meta: Vec<PendingMeta> = Vec::with_capacity(sids.len());
    for &sid in sids {
        let Some(s) = sessions.session_mut(sid) else { continue };
        if s.state != SessionState::Submitted {
            continue;
        }
        let Some(proof) = s.proof.take() else { continue };
        let (device, nonce, challenge) = (s.device, s.nonce, s.challenge);
        if registry.device(device).is_err() {
            continue;
        }
        jobs.push(BatchJob::new(device.0, proof, challenge));
        meta.push(PendingMeta { session: sid, device, nonce });
    }
    if jobs.is_empty() {
        return (0, 0);
    }

    let reports: Vec<Report> = {
        let reg: &Registry = registry;
        let Ok(record) = reg.op(op) else { return (0, 0) };
        // Per-device keys resolve by borrow out of the registry's device
        // records for the whole drain.
        let keys = PerDevice::new(|device| Some(reg.device(DeviceId(device)).ok()?.ra()));
        let batch = record.engine.verify_batch(&jobs, Some(&keys));
        batch.outcomes.into_iter().map(|o| o.report).collect()
    };

    let mut verified = 0;
    let resolved = meta.len();
    for (m, report) in meta.into_iter().zip(reports) {
        let clean = report.is_clean();
        if clean {
            verified += 1;
        }
        registry.record_verdict(m.device, m.nonce, clean);
        if let Some(s) = sessions.session_mut(m.session) {
            s.state = if clean { SessionState::Verified } else { SessionState::Rejected };
            s.report = Some(report);
        }
    }
    (resolved, verified)
}
