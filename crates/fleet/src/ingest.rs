//! Ingest queues: accepted submissions waiting for batch verification.
//!
//! Each state shard owns one [`IngestQueue`], internally keyed by
//! [`OpId`]: proofs of one operation share everything that makes
//! verification fast — the instrumented image, the prebuilt site bitmaps,
//! the warm per-worker emulation workspaces — so a drain hands each
//! per-op batch to that operation's shared
//! [`BatchVerifier`](dialed::BatchVerifier) in one call. The drain itself
//! lives in [`crate::shard`]; this module only owns the queue and the
//! [`DrainStats`] aggregate the facade sums across shards.

use crate::registry::OpId;
use crate::session::SessionId;
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate result of one drain (per shard, or summed fleet-wide).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DrainStats {
    /// Sessions resolved by this drain.
    pub drained: usize,
    /// State shards that resolved at least one session.
    pub shards: usize,
    /// Per-operation batches handed to a batch engine (a shard draining
    /// two operations contributes two).
    pub batches: usize,
    /// Sessions that ended `Verified`.
    pub verified: usize,
    /// Sessions that ended `Rejected`.
    pub rejected: usize,
}

impl DrainStats {
    /// Folds another drain's counters into this one (used by the facade
    /// to sum per-shard results).
    pub fn merge(&mut self, other: DrainStats) {
        self.drained += other.drained;
        self.shards += other.shards;
        self.batches += other.batches;
        self.verified += other.verified;
        self.rejected += other.rejected;
    }
}

impl fmt::Display for DrainStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drained {} sessions over {} shards ({} batches): {} verified / {} rejected",
            self.drained, self.shards, self.batches, self.verified, self.rejected
        )
    }
}

/// The pending-submission queue of one state shard, keyed by operation.
#[derive(Debug, Default)]
pub struct IngestQueue {
    batches: BTreeMap<OpId, Vec<SessionId>>,
}

impl IngestQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a submitted session for its operation's batch.
    pub fn enqueue(&mut self, op: OpId, session: SessionId) {
        self.batches.entry(op).or_default().push(session);
    }

    /// Drops a queued session (the device was deregistered, or the
    /// session resolved through replay while the entry was still queued).
    pub fn discard(&mut self, op: OpId, session: SessionId) {
        if let Some(batch) = self.batches.get_mut(&op) {
            batch.retain(|&s| s != session);
            if batch.is_empty() {
                self.batches.remove(&op);
            }
        }
    }

    /// Total pending sessions.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.batches.values().map(Vec::len).sum()
    }

    /// Queue depth — the load-shedding signal. Identical to
    /// [`pending`](Self::pending) today, but named for its role: the
    /// network frontend compares this against its shed watermark before
    /// accepting a submission, so its meaning is "work a drain must chew
    /// through", not merely "entries stored".
    #[must_use]
    pub fn depth(&self) -> usize {
        self.pending()
    }

    /// Pending sessions for one operation.
    #[must_use]
    pub fn pending_for(&self, op: OpId) -> usize {
        self.batches.get(&op).map_or(0, Vec::len)
    }

    /// Takes every queued batch, leaving the queue empty — the first step
    /// of a shard drain.
    pub(crate) fn take_all(&mut self) -> BTreeMap<OpId, Vec<SessionId>> {
        std::mem::take(&mut self.batches)
    }

    /// Iterates the queued `(op, session)` entries (snapshot encoding).
    pub(crate) fn entries(&self) -> impl Iterator<Item = (OpId, SessionId)> + '_ {
        self.batches.iter().flat_map(|(&op, sids)| sids.iter().map(move |&s| (op, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_discard_and_take_round_trip() {
        let mut q = IngestQueue::new();
        q.enqueue(OpId(0), SessionId(1));
        q.enqueue(OpId(1), SessionId(2));
        q.enqueue(OpId(0), SessionId(3));
        assert_eq!(q.pending(), 3);
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pending_for(OpId(0)), 2);

        q.discard(OpId(0), SessionId(1));
        assert_eq!(q.pending_for(OpId(0)), 1);
        // Discarding the last entry of a batch removes the batch.
        q.discard(OpId(1), SessionId(2));
        assert_eq!(q.pending_for(OpId(1)), 0);

        let taken = q.take_all();
        assert_eq!(q.pending(), 0);
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[&OpId(0)], vec![SessionId(3)]);
    }

    #[test]
    fn stats_merge_sums_counters() {
        let mut a = DrainStats { drained: 2, shards: 1, batches: 1, verified: 2, rejected: 0 };
        let b = DrainStats { drained: 3, shards: 1, batches: 2, verified: 1, rejected: 2 };
        a.merge(b);
        assert_eq!(a, DrainStats { drained: 5, shards: 2, batches: 3, verified: 3, rejected: 2 });
    }
}
