//! Challenge sessions: issuance, the per-session state machine, and
//! anti-replay enforcement.
//!
//! Every attestation round is a **session**:
//!
//! ```text
//!            issue()            submit()           drain (ingest)
//! (created) ───────► Issued ───────────► Submitted ───────► Verified
//!                      │                     ▲    │             or
//!                      │ deadline passed     │    └───────► Rejected
//!                      ▼                     │
//!                   Expired          duplicate/replay ⇒ error, state
//!                                    unchanged, nothing queued
//! ```
//!
//! Freshness comes from a **monotonic per-device nonce**: each issued
//! challenge is derived from the fleet label, the device id and a counter
//! that only ever increases, so no two sessions ever share a challenge and
//! an old proof can never satisfy a new session's MAC. On top of that, an
//! **anti-replay window** remembers the tags of recently accepted proofs
//! per device; re-submitting a captured proof — to the same session or to
//! any later one — is rejected at the session layer, before any
//! cryptographic or emulation work is spent.
//!
//! Since the sharded-state refactor, mutations are split into a *check*
//! half (pure, e.g. [`SessionManager::check_submit`]) and an *apply* half
//! driven by the shard's event log, so the write-ahead log in
//! [`crate::store`] replays through exactly the code the live service
//! runs. A manager constructed with [`SessionManager::with_ids`] allocates
//! session ids on a stride (`first`, `first + stride`, …) so each state
//! shard mints ids that encode its own index — `id % shards` routes a
//! session back to its shard with no shared counter.
//!
//! Time is a caller-supplied logical clock (`u64` ticks), keeping the
//! whole service deterministic and testable; a deployment maps it to
//! seconds.

use crate::registry::{DeviceId, OpId};
use dialed::attest::DialedProof;
use dialed::report::Report;
use hacl::{Digest, Sha256};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use vrased::Challenge;

/// Identifies one session within a fleet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sess#{}", self.0)
    }
}

/// Where a session is in its lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionState {
    /// Challenge issued, waiting for the device's proof.
    Issued,
    /// Proof accepted into the ingest queue, waiting for verification.
    Submitted,
    /// The proof verified clean.
    Verified,
    /// The proof failed verification (cryptographically or by
    /// reconstruction).
    Rejected,
    /// The deadline passed with no accepted submission — or the device was
    /// deregistered while the session was still open.
    Expired,
}

/// Session-layer failures. All of these are detected *before* any
/// cryptographic or emulation work.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionError {
    /// The referenced session does not exist.
    UnknownSession(SessionId),
    /// The submitting device is not the one the session was issued to.
    DeviceMismatch {
        /// Device the session belongs to.
        expected: DeviceId,
        /// Device that submitted.
        got: DeviceId,
    },
    /// The session already left `Issued` — a duplicate or late submission.
    NotAwaitingProof(SessionState),
    /// The session's deadline passed before the submission arrived.
    Expired {
        /// The deadline that was missed.
        deadline: u64,
    },
    /// The proof's tag was already accepted recently for this device — a
    /// replayed capture.
    ReplayedProof,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownSession(id) => write!(f, "{id} does not exist"),
            SessionError::DeviceMismatch { expected, got } => {
                write!(f, "session belongs to {expected}, not {got}")
            }
            SessionError::NotAwaitingProof(state) => {
                write!(f, "session is {state:?}, not awaiting a proof")
            }
            SessionError::Expired { deadline } => {
                write!(f, "session expired at t={deadline}")
            }
            SessionError::ReplayedProof => write!(f, "proof tag replayed within the window"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<SessionError> for dialed::report::RejectReason {
    /// Session failures reject as
    /// [`SessionViolation`](dialed::report::RejectReason::SessionViolation):
    /// the submission died at the protocol layer, before any cryptography.
    fn from(e: SessionError) -> Self {
        dialed::report::RejectReason::SessionViolation { detail: e.to_string() }
    }
}

/// One attestation round.
#[derive(Clone, Debug)]
pub struct Session {
    /// The session's id.
    pub id: SessionId,
    /// Device the challenge was issued to.
    pub device: DeviceId,
    /// Operation the device must prove.
    pub op: OpId,
    /// The device's monotonic challenge counter value for this session.
    pub nonce: u64,
    /// The issued challenge.
    pub challenge: Challenge,
    /// Logical time of issuance.
    pub issued_at: u64,
    /// Logical deadline (inclusive) for submission.
    pub deadline: u64,
    /// Lifecycle state.
    pub state: SessionState,
    /// The verifier's report once the session resolved.
    pub report: Option<Report>,
    /// The submitted proof, held until ingest consumes it.
    pub(crate) proof: Option<DialedProof>,
}

/// Sliding window of recently accepted proof tags for one device.
#[derive(Clone, Debug, Default)]
pub(crate) struct ReplayWindow {
    pub(crate) tags: VecDeque<Digest>,
}

impl ReplayWindow {
    fn contains(&self, tag: &Digest) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    fn push(&mut self, tag: Digest, cap: usize) {
        while self.tags.len() >= cap.max(1) {
            self.tags.pop_front();
        }
        self.tags.push_back(tag);
    }
}

/// Per-device session-layer state.
#[derive(Clone, Debug, Default)]
pub(crate) struct DeviceSessions {
    /// Next challenge nonce — strictly monotonic, never reused.
    pub(crate) next_nonce: u64,
    pub(crate) window: ReplayWindow,
}

/// Issues challenges and walks sessions through their state machine.
#[derive(Debug)]
pub struct SessionManager {
    label: Vec<u8>,
    ttl: u64,
    window_cap: usize,
    pub(crate) next_id: u64,
    stride: u64,
    pub(crate) sessions: BTreeMap<u64, Session>,
    pub(crate) per_device: HashMap<DeviceId, DeviceSessions>,
}

impl SessionManager {
    /// A manager issuing challenges derived from `label`, with sessions
    /// valid for `ttl` logical ticks and a per-device anti-replay window
    /// remembering `window_cap` tags. Session ids count `0, 1, 2, …`.
    #[must_use]
    pub fn new(label: &[u8], ttl: u64, window_cap: usize) -> Self {
        Self::with_ids(label, ttl, window_cap, 0, 1)
    }

    /// Like [`SessionManager::new`] but allocating session ids on a stride
    /// (`first`, `first + stride`, …). A fleet of `N` shards gives shard
    /// `s` the parameters `(s, N)`, so `id % N` identifies the owning
    /// shard with no cross-shard counter.
    #[must_use]
    pub fn with_ids(label: &[u8], ttl: u64, window_cap: usize, first: u64, stride: u64) -> Self {
        Self {
            label: label.to_vec(),
            ttl,
            window_cap,
            next_id: first,
            stride: stride.max(1),
            sessions: BTreeMap::new(),
            per_device: HashMap::new(),
        }
    }

    /// The session ttl this manager issues under.
    #[must_use]
    pub fn ttl(&self) -> u64 {
        self.ttl
    }

    /// The id the next issued session will carry.
    #[must_use]
    pub fn peek_next_id(&self) -> SessionId {
        SessionId(self.next_id)
    }

    /// The challenge `device` answers under for `nonce`:
    /// `H(fleet label ‖ device id)` bound with the monotonic nonce —
    /// unique per (fleet, device, round), and re-derivable at recovery so
    /// snapshots and events never need to persist challenge bytes.
    #[must_use]
    pub(crate) fn derive_challenge(&self, device: DeviceId, nonce: u64) -> Challenge {
        let mut h = Sha256::new();
        h.update(&self.label);
        h.update(&device.0.to_le_bytes());
        Challenge::derive(&h.finalize(), nonce)
    }

    /// Installs a session with explicit coordinates — the apply half of
    /// issuance, driven both by the live [`SessionManager::issue`] path
    /// and by event replay. Counters advance past the installed values so
    /// ids and nonces stay monotonic whichever path ran.
    pub(crate) fn install(
        &mut self,
        id: SessionId,
        device: DeviceId,
        op: OpId,
        nonce: u64,
        issued_at: u64,
        deadline: u64,
    ) -> &Session {
        let challenge = self.derive_challenge(device, nonce);
        let per = self.per_device.entry(device).or_default();
        per.next_nonce = per.next_nonce.max(nonce.saturating_add(1));
        if id.0 >= self.next_id {
            self.next_id = id.0.saturating_add(self.stride);
        }
        self.sessions.insert(
            id.0,
            Session {
                id,
                device,
                op,
                nonce,
                challenge,
                issued_at,
                deadline,
                state: SessionState::Issued,
                report: None,
                proof: None,
            },
        );
        &self.sessions[&id.0]
    }

    /// Issues a fresh challenge to `device` for `op` at logical time
    /// `now`, consuming the device's next nonce.
    pub fn issue(&mut self, device: DeviceId, op: OpId, now: u64) -> &Session {
        let id = SessionId(self.next_id);
        let nonce = self.next_nonce(device);
        self.install(id, device, op, nonce, now, now.saturating_add(self.ttl))
    }

    /// Validates a submission without mutating anything: the state
    /// machine, the deadline and the anti-replay window are all enforced
    /// here, *before* the accepted submission becomes a durable event.
    /// Returns the session's operation on success.
    ///
    /// Submission is *not* authenticated beyond the device id it claims:
    /// the proof's MAC is only checked at drain time. An active network
    /// adversary who sees a challenge can therefore occupy its session
    /// with a garbage proof (the round then resolves `Rejected` and the
    /// operator re-issues) — equivalent in power to dropping the device's
    /// packets, and accepted here so the session layer stays free of
    /// per-submission cryptography.
    ///
    /// # Errors
    ///
    /// See [`SessionError`]. A missed deadline reports
    /// [`SessionError::Expired`] but leaves the flip to `Expired` to the
    /// next expiry sweep, so the check stays pure.
    pub fn check_submit(
        &self,
        session: SessionId,
        device: DeviceId,
        tag: &Digest,
        now: u64,
    ) -> Result<OpId, SessionError> {
        let s = self.sessions.get(&session.0).ok_or(SessionError::UnknownSession(session))?;
        if s.device != device {
            return Err(SessionError::DeviceMismatch { expected: s.device, got: device });
        }
        match s.state {
            SessionState::Issued => {}
            state => return Err(SessionError::NotAwaitingProof(state)),
        }
        if now > s.deadline {
            return Err(SessionError::Expired { deadline: s.deadline });
        }
        if self.per_device.get(&device).is_some_and(|per| per.window.contains(tag)) {
            return Err(SessionError::ReplayedProof);
        }
        Ok(s.op)
    }

    /// The apply half of submission: records the accepted proof, pushes
    /// its tag into the device's anti-replay window and marks the session
    /// `Submitted`. The caller (live path or event replay) has already
    /// validated via [`SessionManager::check_submit`].
    pub(crate) fn apply_submit(
        &mut self,
        session: SessionId,
        device: DeviceId,
        proof: DialedProof,
    ) {
        let Some(s) = self.sessions.get_mut(&session.0) else { return };
        self.per_device.entry(device).or_default().window.push(proof.pox.tag, self.window_cap);
        s.state = SessionState::Submitted;
        s.proof = Some(proof);
    }

    /// Accepts `proof` for `session`: [`SessionManager::check_submit`]
    /// followed by the crate-private apply half. Standalone (non-fleet)
    /// users get the one-call form; the fleet splits the halves around its
    /// write-ahead log.
    ///
    /// # Errors
    ///
    /// See [`SessionError`]; the session state is unchanged on error.
    pub fn submit(
        &mut self,
        session: SessionId,
        device: DeviceId,
        proof: DialedProof,
        now: u64,
    ) -> Result<(), SessionError> {
        self.check_submit(session, device, &proof.pox.tag, now)?;
        self.apply_submit(session, device, proof);
        Ok(())
    }

    /// How many `Issued` sessions an expiry sweep at `now` would flip —
    /// the pure peek the fleet uses to decide whether a sweep is worth a
    /// durable event.
    #[must_use]
    pub fn due(&self, now: u64) -> usize {
        self.sessions
            .values()
            .filter(|s| s.state == SessionState::Issued && now > s.deadline)
            .count()
    }

    /// Expires every `Issued` session whose deadline lies before `now`.
    /// Returns how many sessions flipped to `Expired`.
    pub fn expire_due(&mut self, now: u64) -> usize {
        let mut flipped = 0;
        for s in self.sessions.values_mut() {
            if s.state == SessionState::Issued && now > s.deadline {
                s.state = SessionState::Expired;
                flipped += 1;
            }
        }
        flipped
    }

    /// Expires every open (`Issued`/`Submitted`) session of `device` —
    /// the session-layer half of deregistration. Held proofs are dropped.
    /// Returns the flipped sessions as `(op, id)` pairs so the caller can
    /// purge any ingest-queue entries.
    pub(crate) fn expire_open_for(&mut self, device: DeviceId) -> Vec<(OpId, SessionId)> {
        let mut flipped = Vec::new();
        for s in self.sessions.values_mut() {
            if s.device == device
                && matches!(s.state, SessionState::Issued | SessionState::Submitted)
            {
                s.state = SessionState::Expired;
                s.proof = None;
                flipped.push((s.op, s.id));
            }
        }
        flipped
    }

    /// Resolves a session with the verifier's verdict — the apply half of
    /// draining. Returns the session's `(device, nonce)` for registry
    /// bookkeeping, or `None` if the session is unknown.
    pub(crate) fn apply_verdict(
        &mut self,
        session: SessionId,
        report: Report,
    ) -> Option<(DeviceId, u64)> {
        let s = self.sessions.get_mut(&session.0)?;
        s.state = if report.is_clean() { SessionState::Verified } else { SessionState::Rejected };
        s.proof = None;
        s.report = Some(report);
        Some((s.device, s.nonce))
    }

    /// How many resolved sessions a prune at `now` would evict (pure peek).
    #[must_use]
    pub fn prunable(&self, now: u64) -> usize {
        self.sessions
            .values()
            .filter(|s| {
                !matches!(s.state, SessionState::Issued | SessionState::Submitted)
                    && s.deadline < now
            })
            .count()
    }

    /// Evicts resolved sessions (`Verified`/`Rejected`/`Expired`) whose
    /// deadline lies before `now`, returning how many were removed. A
    /// long-running service calls this periodically so the session store
    /// stays proportional to the *open* rounds, not to history; session
    /// ids are never reused.
    pub fn prune_resolved(&mut self, now: u64) -> usize {
        let before = self.sessions.len();
        self.sessions.retain(|_, s| {
            matches!(s.state, SessionState::Issued | SessionState::Submitted) || s.deadline >= now
        });
        before - self.sessions.len()
    }

    /// Looks up a session.
    #[must_use]
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(&id.0)
    }

    pub(crate) fn session_mut(&mut self, id: SessionId) -> Option<&mut Session> {
        self.sessions.get_mut(&id.0)
    }

    /// All retained sessions in issuance order.
    pub fn sessions(&self) -> impl Iterator<Item = &Session> {
        self.sessions.values()
    }

    /// Retained session count (open rounds plus not-yet-pruned history).
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no sessions are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The next nonce `device` would be issued (diagnostics/tests).
    #[must_use]
    pub fn next_nonce(&self, device: DeviceId) -> u64 {
        self.per_device.get(&device).map_or(0, |p| p.next_nonce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex::{PoxConfig, PoxProof};

    fn dummy_proof(tag_byte: u8) -> DialedProof {
        let cfg = PoxConfig::new(0xE000, 0xE00F, 0xE00E, 0x0600, 0x06FF).unwrap();
        DialedProof {
            pox: PoxProof { cfg, exec: true, or_data: vec![0; cfg.or_len()], tag: [tag_byte; 32] },
        }
    }

    const DEV: DeviceId = DeviceId(0);
    const OP: OpId = OpId(0);

    #[test]
    fn nonces_are_monotonic_and_challenges_unique() {
        let mut mgr = SessionManager::new(b"fleet-test", 10, 4);
        let c0 = mgr.issue(DEV, OP, 0).clone();
        let c1 = mgr.issue(DEV, OP, 1).clone();
        let other = mgr.issue(DeviceId(1), OP, 1).clone();
        assert_eq!((c0.nonce, c1.nonce), (0, 1));
        assert_ne!(c0.challenge, c1.challenge);
        assert_ne!(c0.challenge, other.challenge, "devices must not share challenges");
        assert_eq!(mgr.next_nonce(DEV), 2);
    }

    #[test]
    fn strided_ids_encode_the_shard() {
        // Shard 2 of 5: ids 2, 7, 12, … — id % 5 routes back to the shard.
        let mut mgr = SessionManager::with_ids(b"t", 10, 4, 2, 5);
        let ids: Vec<u64> = (0..3).map(|_| mgr.issue(DEV, OP, 0).id.0).collect();
        assert_eq!(ids, vec![2, 7, 12]);
        assert!(ids.iter().all(|id| id % 5 == 2));
        assert_eq!(mgr.peek_next_id(), SessionId(17));
    }

    #[test]
    fn install_replays_to_identical_state() {
        // Replaying the coordinates of a live issue through install()
        // reproduces the same session, challenge included, and leaves the
        // counters where the live path left them.
        let mut live = SessionManager::new(b"t", 10, 4);
        let s = live.issue(DEV, OP, 3).clone();
        let mut replayed = SessionManager::new(b"t", 10, 4);
        let r = replayed.install(s.id, s.device, s.op, s.nonce, s.issued_at, s.deadline).clone();
        assert_eq!(r.challenge, s.challenge);
        assert_eq!(r.deadline, s.deadline);
        assert_eq!(replayed.peek_next_id(), live.peek_next_id());
        assert_eq!(replayed.next_nonce(DEV), live.next_nonce(DEV));
    }

    #[test]
    fn happy_path_walks_issued_to_submitted() {
        let mut mgr = SessionManager::new(b"t", 10, 4);
        let sid = mgr.issue(DEV, OP, 0).id;
        mgr.submit(sid, DEV, dummy_proof(1), 5).unwrap();
        assert_eq!(mgr.session(sid).unwrap().state, SessionState::Submitted);
    }

    #[test]
    fn duplicate_submission_rejected_state_unchanged() {
        let mut mgr = SessionManager::new(b"t", 10, 4);
        let sid = mgr.issue(DEV, OP, 0).id;
        mgr.submit(sid, DEV, dummy_proof(1), 1).unwrap();
        let err = mgr.submit(sid, DEV, dummy_proof(2), 2).unwrap_err();
        assert_eq!(err, SessionError::NotAwaitingProof(SessionState::Submitted));
        assert_eq!(mgr.session(sid).unwrap().state, SessionState::Submitted);
    }

    #[test]
    fn replayed_tag_rejected_across_sessions() {
        let mut mgr = SessionManager::new(b"t", 10, 4);
        let s0 = mgr.issue(DEV, OP, 0).id;
        mgr.submit(s0, DEV, dummy_proof(7), 1).unwrap();
        // The same captured proof against a *new* session must die at the
        // session layer.
        let s1 = mgr.issue(DEV, OP, 2).id;
        assert_eq!(mgr.submit(s1, DEV, dummy_proof(7), 3), Err(SessionError::ReplayedProof));
        assert_eq!(mgr.session(s1).unwrap().state, SessionState::Issued);
        // Another device may legitimately produce an identical-tag proof
        // (it cannot in practice, but windows are per-device).
        let s2 = mgr.issue(DeviceId(1), OP, 2).id;
        mgr.submit(s2, DeviceId(1), dummy_proof(7), 3).unwrap();
    }

    #[test]
    fn replay_window_is_bounded_and_sliding() {
        let mut mgr = SessionManager::new(b"t", 100, 2);
        for i in 0..3u8 {
            let sid = mgr.issue(DEV, OP, 0).id;
            mgr.submit(sid, DEV, dummy_proof(i), 1).unwrap();
        }
        // Tag 0 slid out of the 2-deep window; tag 2 is still inside.
        let s_old = mgr.issue(DEV, OP, 2).id;
        mgr.submit(s_old, DEV, dummy_proof(0), 3).unwrap();
        let s_new = mgr.issue(DEV, OP, 2).id;
        assert_eq!(mgr.submit(s_new, DEV, dummy_proof(2), 3), Err(SessionError::ReplayedProof));
    }

    #[test]
    fn zero_window_cap_still_blocks_the_immediate_replay() {
        // A degenerate window_cap of 0 clamps to a depth of one: the most
        // recently accepted tag is always remembered, so the cheapest
        // replay (same proof, next session) can never slip through a
        // misconfigured fleet.
        let mut mgr = SessionManager::new(b"t", 100, 0);
        let s0 = mgr.issue(DEV, OP, 0).id;
        mgr.submit(s0, DEV, dummy_proof(9), 1).unwrap();
        let s1 = mgr.issue(DEV, OP, 1).id;
        assert_eq!(mgr.submit(s1, DEV, dummy_proof(9), 2), Err(SessionError::ReplayedProof));
        // A different tag displaces the only slot…
        mgr.submit(s1, DEV, dummy_proof(10), 2).unwrap();
        // …after which the depth-1 window has forgotten tag 9.
        let s2 = mgr.issue(DEV, OP, 3).id;
        mgr.submit(s2, DEV, dummy_proof(9), 4).unwrap();
    }

    #[test]
    fn deadline_expires_sessions() {
        let mut mgr = SessionManager::new(b"t", 5, 4);
        let sid = mgr.issue(DEV, OP, 10).id;
        assert_eq!(mgr.session(sid).unwrap().deadline, 15);
        // Late submission is rejected; the flip to Expired is the expiry
        // sweep's job (checks are pure so they can sit before the WAL).
        let err = mgr.submit(sid, DEV, dummy_proof(1), 16).unwrap_err();
        assert_eq!(err, SessionError::Expired { deadline: 15 });
        assert_eq!(mgr.session(sid).unwrap().state, SessionState::Issued);
        assert_eq!(mgr.due(16), 1);
        assert_eq!(mgr.expire_due(16), 1);
        assert_eq!(mgr.session(sid).unwrap().state, SessionState::Expired);
        // Sweep-based expiry for sessions nobody ever answers.
        let s2 = mgr.issue(DEV, OP, 20).id;
        assert_eq!(mgr.expire_due(100), 1);
        assert_eq!(mgr.session(s2).unwrap().state, SessionState::Expired);
    }

    #[test]
    fn deadline_boundary_is_inclusive() {
        // deadline == now is still in time, for both the submit check and
        // the sweep: expiry requires now to lie strictly past the deadline.
        let mut mgr = SessionManager::new(b"t", 5, 4);
        let sid = mgr.issue(DEV, OP, 0).id;
        assert_eq!(mgr.session(sid).unwrap().deadline, 5);
        assert_eq!(mgr.due(5), 0, "a sweep exactly at the deadline expires nothing");
        assert_eq!(mgr.expire_due(5), 0);
        mgr.submit(sid, DEV, dummy_proof(1), 5).unwrap();
        assert_eq!(mgr.session(sid).unwrap().state, SessionState::Submitted);
    }

    #[test]
    fn pruning_evicts_only_resolved_history() {
        let mut mgr = SessionManager::new(b"t", 5, 4);
        let resolved = mgr.issue(DEV, OP, 0).id;
        mgr.submit(resolved, DEV, dummy_proof(1), 1).unwrap();
        mgr.session_mut(resolved).unwrap().state = SessionState::Verified;
        let expired = mgr.issue(DEV, OP, 0).id;
        mgr.expire_due(100);
        let open = mgr.issue(DEV, OP, 100).id;
        assert_eq!(mgr.len(), 3);

        assert_eq!(mgr.prunable(200), 2);
        assert_eq!(mgr.prune_resolved(200), 2);
        assert!(mgr.session(resolved).is_none());
        assert!(mgr.session(expired).is_none());
        assert_eq!(mgr.session(open).unwrap().state, SessionState::Issued);
        // Ids keep advancing — a pruned id is never reissued.
        assert!(mgr.issue(DEV, OP, 100).id.0 > open.0);
    }

    #[test]
    fn prune_boundary_retains_deadline_equal_to_now() {
        // A resolved session whose deadline is exactly `now` survives the
        // prune (eviction requires deadline strictly before now), so an
        // operator polling at the deadline tick can still read the report.
        let mut mgr = SessionManager::new(b"t", 5, 4);
        let sid = mgr.issue(DEV, OP, 0).id; // deadline = 5
        mgr.submit(sid, DEV, dummy_proof(1), 1).unwrap();
        mgr.session_mut(sid).unwrap().state = SessionState::Rejected;
        assert_eq!(mgr.prunable(5), 0);
        assert_eq!(mgr.prune_resolved(5), 0);
        assert!(mgr.session(sid).is_some());
        assert_eq!(mgr.prunable(6), 1);
        assert_eq!(mgr.prune_resolved(6), 1);
        assert!(mgr.session(sid).is_none());
    }

    #[test]
    fn deregistration_expires_open_sessions_only() {
        let mut mgr = SessionManager::new(b"t", 10, 4);
        let done = mgr.issue(DEV, OP, 0).id;
        mgr.submit(done, DEV, dummy_proof(1), 1).unwrap();
        mgr.apply_verdict(done, Report::clean(Default::default()));
        let open = mgr.issue(DEV, OP, 2).id;
        let pending = mgr.issue(DEV, OP, 2).id;
        mgr.submit(pending, DEV, dummy_proof(2), 3).unwrap();
        let other = mgr.issue(DeviceId(9), OP, 2).id;

        let flipped = mgr.expire_open_for(DEV);
        assert_eq!(flipped.len(), 2);
        assert!(flipped.iter().any(|&(_, sid)| sid == pending));
        assert_eq!(mgr.session(open).unwrap().state, SessionState::Expired);
        assert_eq!(mgr.session(pending).unwrap().state, SessionState::Expired);
        assert!(mgr.session(pending).unwrap().proof.is_none(), "held proof dropped");
        assert_eq!(mgr.session(done).unwrap().state, SessionState::Verified);
        assert_eq!(mgr.session(other).unwrap().state, SessionState::Issued);
    }

    #[test]
    fn wrong_device_cannot_submit() {
        let mut mgr = SessionManager::new(b"t", 10, 4);
        let sid = mgr.issue(DEV, OP, 0).id;
        let err = mgr.submit(sid, DeviceId(9), dummy_proof(1), 1).unwrap_err();
        assert_eq!(err, SessionError::DeviceMismatch { expected: DEV, got: DeviceId(9) });
        assert_eq!(
            mgr.submit(SessionId(99), DEV, dummy_proof(1), 1),
            Err(SessionError::UnknownSession(SessionId(99)))
        );
    }
}
