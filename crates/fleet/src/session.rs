//! Challenge sessions: issuance, the per-session state machine, and
//! anti-replay enforcement.
//!
//! Every attestation round is a **session**:
//!
//! ```text
//!            issue()            submit()           drain (ingest)
//! (created) ───────► Issued ───────────► Submitted ───────► Verified
//!                      │                     ▲    │             or
//!                      │ deadline passed     │    └───────► Rejected
//!                      ▼                     │
//!                   Expired          duplicate/replay ⇒ error, state
//!                                    unchanged, nothing queued
//! ```
//!
//! Freshness comes from a **monotonic per-device nonce**: each issued
//! challenge is derived from the fleet label, the device id and a counter
//! that only ever increases, so no two sessions ever share a challenge and
//! an old proof can never satisfy a new session's MAC. On top of that, an
//! **anti-replay window** remembers the tags of recently accepted proofs
//! per device; re-submitting a captured proof — to the same session or to
//! any later one — is rejected at the session layer, before any
//! cryptographic or emulation work is spent.
//!
//! Time is a caller-supplied logical clock (`u64` ticks), keeping the
//! whole service deterministic and testable; a deployment maps it to
//! seconds.

use crate::registry::{DeviceId, OpId};
use dialed::attest::DialedProof;
use dialed::report::Report;
use hacl::{Digest, Sha256};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use vrased::Challenge;

/// Identifies one session within a fleet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sess#{}", self.0)
    }
}

/// Where a session is in its lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionState {
    /// Challenge issued, waiting for the device's proof.
    Issued,
    /// Proof accepted into the ingest queue, waiting for verification.
    Submitted,
    /// The proof verified clean.
    Verified,
    /// The proof failed verification (cryptographically or by
    /// reconstruction).
    Rejected,
    /// The deadline passed with no accepted submission.
    Expired,
}

/// Session-layer failures. All of these are detected *before* any
/// cryptographic or emulation work.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionError {
    /// The referenced session does not exist.
    UnknownSession(SessionId),
    /// The submitting device is not the one the session was issued to.
    DeviceMismatch {
        /// Device the session belongs to.
        expected: DeviceId,
        /// Device that submitted.
        got: DeviceId,
    },
    /// The session already left `Issued` — a duplicate or late submission.
    NotAwaitingProof(SessionState),
    /// The session's deadline passed before the submission arrived.
    Expired {
        /// The deadline that was missed.
        deadline: u64,
    },
    /// The proof's tag was already accepted recently for this device — a
    /// replayed capture.
    ReplayedProof,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownSession(id) => write!(f, "{id} does not exist"),
            SessionError::DeviceMismatch { expected, got } => {
                write!(f, "session belongs to {expected}, not {got}")
            }
            SessionError::NotAwaitingProof(state) => {
                write!(f, "session is {state:?}, not awaiting a proof")
            }
            SessionError::Expired { deadline } => {
                write!(f, "session expired at t={deadline}")
            }
            SessionError::ReplayedProof => write!(f, "proof tag replayed within the window"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<SessionError> for dialed::report::RejectReason {
    /// Session failures reject as
    /// [`SessionViolation`](dialed::report::RejectReason::SessionViolation):
    /// the submission died at the protocol layer, before any cryptography.
    fn from(e: SessionError) -> Self {
        dialed::report::RejectReason::SessionViolation { detail: e.to_string() }
    }
}

/// One attestation round.
#[derive(Clone, Debug)]
pub struct Session {
    /// The session's id.
    pub id: SessionId,
    /// Device the challenge was issued to.
    pub device: DeviceId,
    /// Operation the device must prove.
    pub op: OpId,
    /// The device's monotonic challenge counter value for this session.
    pub nonce: u64,
    /// The issued challenge.
    pub challenge: Challenge,
    /// Logical time of issuance.
    pub issued_at: u64,
    /// Logical deadline (inclusive) for submission.
    pub deadline: u64,
    /// Lifecycle state.
    pub state: SessionState,
    /// The verifier's report once the session resolved.
    pub report: Option<Report>,
    /// The submitted proof, held until ingest consumes it.
    pub(crate) proof: Option<DialedProof>,
}

/// Sliding window of recently accepted proof tags for one device.
#[derive(Clone, Debug, Default)]
struct ReplayWindow {
    tags: VecDeque<Digest>,
}

impl ReplayWindow {
    fn contains(&self, tag: &Digest) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    fn push(&mut self, tag: Digest, cap: usize) {
        while self.tags.len() >= cap.max(1) {
            self.tags.pop_front();
        }
        self.tags.push_back(tag);
    }
}

/// Per-device session-layer state.
#[derive(Clone, Debug, Default)]
struct DeviceSessions {
    /// Next challenge nonce — strictly monotonic, never reused.
    next_nonce: u64,
    window: ReplayWindow,
}

/// Issues challenges and walks sessions through their state machine.
#[derive(Debug)]
pub struct SessionManager {
    label: Vec<u8>,
    ttl: u64,
    window_cap: usize,
    next_id: u64,
    sessions: BTreeMap<u64, Session>,
    per_device: HashMap<DeviceId, DeviceSessions>,
}

impl SessionManager {
    /// A manager issuing challenges derived from `label`, with sessions
    /// valid for `ttl` logical ticks and a per-device anti-replay window
    /// remembering `window_cap` tags.
    #[must_use]
    pub fn new(label: &[u8], ttl: u64, window_cap: usize) -> Self {
        Self {
            label: label.to_vec(),
            ttl,
            window_cap,
            next_id: 0,
            sessions: BTreeMap::new(),
            per_device: HashMap::new(),
        }
    }

    /// Issues a fresh challenge to `device` for `op` at logical time
    /// `now`, consuming the device's next nonce.
    pub fn issue(&mut self, device: DeviceId, op: OpId, now: u64) -> &Session {
        let per = self.per_device.entry(device).or_default();
        let nonce = per.next_nonce;
        per.next_nonce += 1;

        // Challenge = H(fleet label ‖ device id) bound with the monotonic
        // nonce — unique per (fleet, device, round).
        let mut h = Sha256::new();
        h.update(&self.label);
        h.update(&device.0.to_le_bytes());
        let challenge = Challenge::derive(&h.finalize(), nonce);

        let id = SessionId(self.next_id);
        self.next_id += 1;
        self.sessions.insert(
            id.0,
            Session {
                id,
                device,
                op,
                nonce,
                challenge,
                issued_at: now,
                deadline: now.saturating_add(self.ttl),
                state: SessionState::Issued,
                report: None,
                proof: None,
            },
        );
        &self.sessions[&id.0]
    }

    /// Accepts `proof` for `session`, enforcing the state machine, the
    /// deadline and the anti-replay window. On success the session is
    /// `Submitted` and the proof is queued for ingest.
    ///
    /// Submission is *not* authenticated beyond the device id it claims:
    /// the proof's MAC is only checked at drain time. An active network
    /// adversary who sees a challenge can therefore occupy its session
    /// with a garbage proof (the round then resolves `Rejected` and the
    /// operator re-issues) — equivalent in power to dropping the device's
    /// packets, and accepted here so the session layer stays free of
    /// per-submission cryptography.
    ///
    /// # Errors
    ///
    /// See [`SessionError`]; the session state is unchanged on error
    /// except for a missed deadline, which marks it `Expired`.
    pub fn submit(
        &mut self,
        session: SessionId,
        device: DeviceId,
        proof: DialedProof,
        now: u64,
    ) -> Result<(), SessionError> {
        let s = self.sessions.get_mut(&session.0).ok_or(SessionError::UnknownSession(session))?;
        if s.device != device {
            return Err(SessionError::DeviceMismatch { expected: s.device, got: device });
        }
        match s.state {
            SessionState::Issued => {}
            state => return Err(SessionError::NotAwaitingProof(state)),
        }
        if now > s.deadline {
            s.state = SessionState::Expired;
            return Err(SessionError::Expired { deadline: s.deadline });
        }
        let per = match self.per_device.entry(device) {
            Entry::Occupied(e) => e.into_mut(),
            // Unreachable in practice: issuing created the entry.
            Entry::Vacant(e) => e.insert(DeviceSessions::default()),
        };
        if per.window.contains(&proof.pox.tag) {
            return Err(SessionError::ReplayedProof);
        }
        per.window.push(proof.pox.tag, self.window_cap);
        s.state = SessionState::Submitted;
        s.proof = Some(proof);
        Ok(())
    }

    /// Expires every `Issued` session whose deadline lies before `now`.
    /// Returns how many sessions flipped to `Expired`.
    pub fn expire_due(&mut self, now: u64) -> usize {
        let mut flipped = 0;
        for s in self.sessions.values_mut() {
            if s.state == SessionState::Issued && now > s.deadline {
                s.state = SessionState::Expired;
                flipped += 1;
            }
        }
        flipped
    }

    /// Evicts resolved sessions (`Verified`/`Rejected`/`Expired`) whose
    /// deadline lies before `now`, returning how many were removed. A
    /// long-running service calls this periodically so the session store
    /// stays proportional to the *open* rounds, not to history; session
    /// ids are never reused.
    pub fn prune_resolved(&mut self, now: u64) -> usize {
        let before = self.sessions.len();
        self.sessions.retain(|_, s| {
            matches!(s.state, SessionState::Issued | SessionState::Submitted) || s.deadline >= now
        });
        before - self.sessions.len()
    }

    /// Looks up a session.
    #[must_use]
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(&id.0)
    }

    pub(crate) fn session_mut(&mut self, id: SessionId) -> Option<&mut Session> {
        self.sessions.get_mut(&id.0)
    }

    /// All retained sessions in issuance order.
    pub fn sessions(&self) -> impl Iterator<Item = &Session> {
        self.sessions.values()
    }

    /// Retained session count (open rounds plus not-yet-pruned history).
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no sessions are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The next nonce `device` would be issued (diagnostics/tests).
    #[must_use]
    pub fn next_nonce(&self, device: DeviceId) -> u64 {
        self.per_device.get(&device).map_or(0, |p| p.next_nonce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex::{PoxConfig, PoxProof};

    fn dummy_proof(tag_byte: u8) -> DialedProof {
        let cfg = PoxConfig::new(0xE000, 0xE00F, 0xE00E, 0x0600, 0x06FF).unwrap();
        DialedProof {
            pox: PoxProof { cfg, exec: true, or_data: vec![0; cfg.or_len()], tag: [tag_byte; 32] },
        }
    }

    const DEV: DeviceId = DeviceId(0);
    const OP: OpId = OpId(0);

    #[test]
    fn nonces_are_monotonic_and_challenges_unique() {
        let mut mgr = SessionManager::new(b"fleet-test", 10, 4);
        let c0 = mgr.issue(DEV, OP, 0).clone();
        let c1 = mgr.issue(DEV, OP, 1).clone();
        let other = mgr.issue(DeviceId(1), OP, 1).clone();
        assert_eq!((c0.nonce, c1.nonce), (0, 1));
        assert_ne!(c0.challenge, c1.challenge);
        assert_ne!(c0.challenge, other.challenge, "devices must not share challenges");
        assert_eq!(mgr.next_nonce(DEV), 2);
    }

    #[test]
    fn happy_path_walks_issued_to_submitted() {
        let mut mgr = SessionManager::new(b"t", 10, 4);
        let sid = mgr.issue(DEV, OP, 0).id;
        mgr.submit(sid, DEV, dummy_proof(1), 5).unwrap();
        assert_eq!(mgr.session(sid).unwrap().state, SessionState::Submitted);
    }

    #[test]
    fn duplicate_submission_rejected_state_unchanged() {
        let mut mgr = SessionManager::new(b"t", 10, 4);
        let sid = mgr.issue(DEV, OP, 0).id;
        mgr.submit(sid, DEV, dummy_proof(1), 1).unwrap();
        let err = mgr.submit(sid, DEV, dummy_proof(2), 2).unwrap_err();
        assert_eq!(err, SessionError::NotAwaitingProof(SessionState::Submitted));
        assert_eq!(mgr.session(sid).unwrap().state, SessionState::Submitted);
    }

    #[test]
    fn replayed_tag_rejected_across_sessions() {
        let mut mgr = SessionManager::new(b"t", 10, 4);
        let s0 = mgr.issue(DEV, OP, 0).id;
        mgr.submit(s0, DEV, dummy_proof(7), 1).unwrap();
        // The same captured proof against a *new* session must die at the
        // session layer.
        let s1 = mgr.issue(DEV, OP, 2).id;
        assert_eq!(mgr.submit(s1, DEV, dummy_proof(7), 3), Err(SessionError::ReplayedProof));
        assert_eq!(mgr.session(s1).unwrap().state, SessionState::Issued);
        // Another device may legitimately produce an identical-tag proof
        // (it cannot in practice, but windows are per-device).
        let s2 = mgr.issue(DeviceId(1), OP, 2).id;
        mgr.submit(s2, DeviceId(1), dummy_proof(7), 3).unwrap();
    }

    #[test]
    fn replay_window_is_bounded_and_sliding() {
        let mut mgr = SessionManager::new(b"t", 100, 2);
        for i in 0..3u8 {
            let sid = mgr.issue(DEV, OP, 0).id;
            mgr.submit(sid, DEV, dummy_proof(i), 1).unwrap();
        }
        // Tag 0 slid out of the 2-deep window; tag 2 is still inside.
        let s_old = mgr.issue(DEV, OP, 2).id;
        mgr.submit(s_old, DEV, dummy_proof(0), 3).unwrap();
        let s_new = mgr.issue(DEV, OP, 2).id;
        assert_eq!(mgr.submit(s_new, DEV, dummy_proof(2), 3), Err(SessionError::ReplayedProof));
    }

    #[test]
    fn deadline_expires_sessions() {
        let mut mgr = SessionManager::new(b"t", 5, 4);
        let sid = mgr.issue(DEV, OP, 10).id;
        assert_eq!(mgr.session(sid).unwrap().deadline, 15);
        // Late submission flips the session to Expired.
        let err = mgr.submit(sid, DEV, dummy_proof(1), 16).unwrap_err();
        assert_eq!(err, SessionError::Expired { deadline: 15 });
        assert_eq!(mgr.session(sid).unwrap().state, SessionState::Expired);
        // Sweep-based expiry for sessions nobody ever answers.
        let s2 = mgr.issue(DEV, OP, 20).id;
        assert_eq!(mgr.expire_due(100), 1);
        assert_eq!(mgr.session(s2).unwrap().state, SessionState::Expired);
    }

    #[test]
    fn pruning_evicts_only_resolved_history() {
        let mut mgr = SessionManager::new(b"t", 5, 4);
        let resolved = mgr.issue(DEV, OP, 0).id;
        mgr.submit(resolved, DEV, dummy_proof(1), 1).unwrap();
        mgr.session_mut(resolved).unwrap().state = SessionState::Verified;
        let expired = mgr.issue(DEV, OP, 0).id;
        mgr.expire_due(100);
        let open = mgr.issue(DEV, OP, 100).id;
        assert_eq!(mgr.len(), 3);

        assert_eq!(mgr.prune_resolved(200), 2);
        assert!(mgr.session(resolved).is_none());
        assert!(mgr.session(expired).is_none());
        assert_eq!(mgr.session(open).unwrap().state, SessionState::Issued);
        // Ids keep advancing — a pruned id is never reissued.
        assert!(mgr.issue(DEV, OP, 100).id.0 > open.0);
    }

    #[test]
    fn wrong_device_cannot_submit() {
        let mut mgr = SessionManager::new(b"t", 10, 4);
        let sid = mgr.issue(DEV, OP, 0).id;
        let err = mgr.submit(sid, DeviceId(9), dummy_proof(1), 1).unwrap_err();
        assert_eq!(err, SessionError::DeviceMismatch { expected: DEV, got: DeviceId(9) });
        assert_eq!(
            mgr.submit(SessionId(99), DEV, dummy_proof(1), 1),
            Err(SessionError::UnknownSession(SessionId(99)))
        );
    }
}
