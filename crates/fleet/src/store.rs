//! The durable store: versioned state events, the write-ahead log they
//! append to, and the atomic-write helper snapshots go through.
//!
//! Every mutation of fleet state is a [`StateEvent`]. The live path and
//! crash recovery share one `apply` code path (in [`crate::shard`]): a
//! mutation is first encoded and appended to the shard's WAL, then applied
//! to the in-memory state; recovery replays the same events through the
//! same apply. What is persisted is therefore exactly what is executed —
//! there is no separate serialization of "the state" that could drift
//! from the state machine.
//!
//! # Framing
//!
//! Events are encoded with the same total-decode, length-prefixed
//! discipline as the wire codec in [`crate::wire`] (they share its
//! `Writer`/`Reader` internals): little-endian integers, `u32`
//! length-prefixed byte strings, and no announced length able to drive an
//! allocation past the input size. A log file is:
//!
//! ```text
//! [ b"DWAL" ][ version u8 ]            file header
//! [ len u32 ][ crc u32 ][ payload ]*   records, until EOF
//! ```
//!
//! where `crc` is a chunked FNV-1a/64 folded to 32 bits over the payload
//! and each payload is one versioned event
//! (`[EVENT_VERSION][tag][fields…]`).
//!
//! # Corruption tolerance
//!
//! A crash can tear the final record (partial write) or leave trailing
//! garbage. [`read_events`] therefore stops at the first record that is
//! short, fails its checksum, or does not decode — returning the valid
//! prefix and **never panicking**. Anti-replay soundness only requires
//! that accepted history is not *lost*; a torn suffix is by definition a
//! mutation that never completed, so dropping it recovers a consistent
//! earlier state.

use crate::registry::{DeviceId, OpId};
use crate::session::SessionId;
use crate::wire::{
    decode_dialed_proof, decode_report_fields, encode_dialed_proof, encode_report_fields, Reader,
    WireError, Writer,
};
use dialed::attest::DialedProof;
use dialed::pipeline::InstrumentMode;
use dialed::report::Report;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Current event-encoding version, bumped on any incompatible change.
pub const EVENT_VERSION: u8 = 1;

/// WAL file magic: "Dialed WAL".
pub const WAL_MAGIC: [u8; 4] = *b"DWAL";

/// Current WAL file-format version.
pub const WAL_VERSION: u8 = 1;

/// One durable state mutation. Fleet-level events (layout, operations,
/// epoch) live in the meta log; everything else is per-shard.
#[derive(Clone, PartialEq, Debug)]
pub enum StateEvent {
    /// Pins the shard count the fleet's state was laid out with. Always
    /// the first event of a meta log; recovery fails without it rather
    /// than guess a layout that would re-route devices.
    ShardLayout {
        /// Number of state shards.
        shards: u32,
    },
    /// An operation was registered. The instrumented image itself is a
    /// code artifact re-supplied at recovery (via
    /// [`OpCatalog`](crate::OpCatalog)); the event pins its identity.
    OpRegistered {
        /// Assigned operation id.
        op: OpId,
        /// Operator-facing name — the catalog lookup key at recovery.
        name: String,
        /// Instrumentation mode the image was registered with.
        mode: InstrumentMode,
    },
    /// The provisioning-key epoch advanced to `epoch`.
    EpochBumped {
        /// The new epoch value.
        epoch: u64,
    },
    /// A device was provisioned. `key_seed` and `epoch` are the durable
    /// key material — the record's key schedule is re-derived from them.
    DeviceRegistered {
        /// Assigned device id.
        device: DeviceId,
        /// Operation the device is bound to.
        op: OpId,
        /// Provisioning seed.
        key_seed: u64,
        /// Key-rotation epoch at provisioning time.
        epoch: u64,
    },
    /// A device was removed from the fleet.
    DeviceDeregistered {
        /// The removed device.
        device: DeviceId,
    },
    /// A challenge was issued. The challenge bytes are *not* stored —
    /// they re-derive from the fleet label, device and nonce.
    ChallengeIssued {
        /// The new session.
        session: SessionId,
        /// Challenged device.
        device: DeviceId,
        /// Operation to prove.
        op: OpId,
        /// The device's monotonic challenge nonce.
        nonce: u64,
        /// Logical issue time.
        issued_at: u64,
        /// Logical submission deadline (inclusive).
        deadline: u64,
    },
    /// A submission passed the session checks and was queued for
    /// verification. The full proof is persisted so a crash between
    /// accept and drain loses nothing: recovery re-queues it.
    ProofAccepted {
        /// The session answered.
        session: SessionId,
        /// Submitting device.
        device: DeviceId,
        /// The accepted proof.
        proof: DialedProof,
    },
    /// Verification resolved a session.
    VerdictRecorded {
        /// The resolved session.
        session: SessionId,
        /// The verifier's report.
        report: Report,
    },
    /// An expiry sweep ran at logical time `now` (replayed
    /// deterministically from the timestamp).
    ExpirySweep {
        /// Sweep time.
        now: u64,
    },
    /// A prune of resolved sessions ran at logical time `now`.
    PruneSweep {
        /// Prune time.
        now: u64,
    },
}

const TAG_SHARD_LAYOUT: u8 = 1;
const TAG_OP_REGISTERED: u8 = 2;
const TAG_EPOCH_BUMPED: u8 = 3;
const TAG_DEVICE_REGISTERED: u8 = 4;
const TAG_DEVICE_DEREGISTERED: u8 = 5;
const TAG_CHALLENGE_ISSUED: u8 = 6;
const TAG_PROOF_ACCEPTED: u8 = 7;
const TAG_VERDICT_RECORDED: u8 = 8;
const TAG_EXPIRY_SWEEP: u8 = 9;
const TAG_PRUNE_SWEEP: u8 = 10;

fn encode_mode(w: &mut Writer, mode: InstrumentMode) {
    w.u8(match mode {
        InstrumentMode::Original => 0,
        InstrumentMode::CfaOnly => 1,
        InstrumentMode::Full => 2,
    });
}

fn decode_mode(r: &mut Reader<'_>) -> Result<InstrumentMode, WireError> {
    match r.u8()? {
        0 => Ok(InstrumentMode::Original),
        1 => Ok(InstrumentMode::CfaOnly),
        2 => Ok(InstrumentMode::Full),
        tag => Err(WireError::UnknownTag { what: "instrument mode", tag }),
    }
}

/// Encodes one event as a versioned payload (no record framing — the WAL
/// adds length and checksum when appending).
#[must_use]
pub fn encode_event(ev: &StateEvent) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    encode_event_into(&mut w, ev);
    w.0
}

/// [`encode_event`] into an existing writer (the WAL's reusable record
/// buffer).
fn encode_event_into(w: &mut Writer, ev: &StateEvent) {
    w.u8(EVENT_VERSION);
    match ev {
        StateEvent::ShardLayout { shards } => {
            w.u8(TAG_SHARD_LAYOUT);
            w.u32(*shards);
        }
        StateEvent::OpRegistered { op, name, mode } => {
            w.u8(TAG_OP_REGISTERED);
            w.u32(op.0);
            w.string(name);
            encode_mode(w, *mode);
        }
        StateEvent::EpochBumped { epoch } => {
            w.u8(TAG_EPOCH_BUMPED);
            w.u64(*epoch);
        }
        StateEvent::DeviceRegistered { device, op, key_seed, epoch } => {
            w.u8(TAG_DEVICE_REGISTERED);
            w.u64(device.0);
            w.u32(op.0);
            w.u64(*key_seed);
            w.u64(*epoch);
        }
        StateEvent::DeviceDeregistered { device } => {
            w.u8(TAG_DEVICE_DEREGISTERED);
            w.u64(device.0);
        }
        StateEvent::ChallengeIssued { session, device, op, nonce, issued_at, deadline } => {
            w.u8(TAG_CHALLENGE_ISSUED);
            w.u64(session.0);
            w.u64(device.0);
            w.u32(op.0);
            w.u64(*nonce);
            w.u64(*issued_at);
            w.u64(*deadline);
        }
        StateEvent::ProofAccepted { session, device, proof } => {
            w.u8(TAG_PROOF_ACCEPTED);
            w.u64(session.0);
            w.u64(device.0);
            encode_dialed_proof(w, proof);
        }
        StateEvent::VerdictRecorded { session, report } => {
            w.u8(TAG_VERDICT_RECORDED);
            w.u64(session.0);
            encode_report_fields(w, report);
        }
        StateEvent::ExpirySweep { now } => {
            w.u8(TAG_EXPIRY_SWEEP);
            w.u64(*now);
        }
        StateEvent::PruneSweep { now } => {
            w.u8(TAG_PRUNE_SWEEP);
            w.u64(*now);
        }
    }
}

/// Decodes one event payload. Total: any malformed input yields a
/// [`WireError`], never a panic.
///
/// # Errors
///
/// Fails on an unknown version or tag, any truncation, or trailing bytes.
pub fn decode_event(bytes: &[u8]) -> Result<StateEvent, WireError> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    if version != EVENT_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let tag = r.u8()?;
    let ev = match tag {
        TAG_SHARD_LAYOUT => StateEvent::ShardLayout { shards: r.u32()? },
        TAG_OP_REGISTERED => StateEvent::OpRegistered {
            op: OpId(r.u32()?),
            name: r.string()?,
            mode: decode_mode(&mut r)?,
        },
        TAG_EPOCH_BUMPED => StateEvent::EpochBumped { epoch: r.u64()? },
        TAG_DEVICE_REGISTERED => StateEvent::DeviceRegistered {
            device: DeviceId(r.u64()?),
            op: OpId(r.u32()?),
            key_seed: r.u64()?,
            epoch: r.u64()?,
        },
        TAG_DEVICE_DEREGISTERED => StateEvent::DeviceDeregistered { device: DeviceId(r.u64()?) },
        TAG_CHALLENGE_ISSUED => StateEvent::ChallengeIssued {
            session: SessionId(r.u64()?),
            device: DeviceId(r.u64()?),
            op: OpId(r.u32()?),
            nonce: r.u64()?,
            issued_at: r.u64()?,
            deadline: r.u64()?,
        },
        TAG_PROOF_ACCEPTED => StateEvent::ProofAccepted {
            session: SessionId(r.u64()?),
            device: DeviceId(r.u64()?),
            proof: decode_dialed_proof(&mut r)?,
        },
        TAG_VERDICT_RECORDED => StateEvent::VerdictRecorded {
            session: SessionId(r.u64()?),
            report: decode_report_fields(&mut r)?,
        },
        TAG_EXPIRY_SWEEP => StateEvent::ExpirySweep { now: r.u64()? },
        TAG_PRUNE_SWEEP => StateEvent::PruneSweep { now: r.u64()? },
        tag => return Err(WireError::UnknownTag { what: "state event", tag }),
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(ev)
}

/// The record checksum: FNV-1a/64 over 8-byte little-endian chunks
/// (length-salted zero-padded tail), folded to 32 bits. Chunked rather
/// than per-byte so checksumming a multi-KB proof payload costs one
/// multiply per word — the WAL append path runs on every accepted
/// submission. Not cryptographic (the WAL is a local trust-domain file);
/// it detects torn writes and bit rot, which is all recovery needs to
/// find the valid prefix.
#[must_use]
pub(crate) fn record_sum(bytes: &[u8]) -> u32 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h = (h ^ u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))).wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    let mut tail = [0u8; 8];
    tail[..rem.len()].copy_from_slice(rem);
    // Salt the pad with the tail length so `[1]` and `[1, 0]` differ.
    tail[7] ^= 0xA5 ^ rem.len() as u8;
    h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    (h ^ (h >> 32)) as u32
}

/// An append-only event log with a checksummed record framing and a
/// corruption-tolerant reader.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Reusable record buffer so appends do not allocate per event.
    scratch: Vec<u8>,
}

impl Wal {
    /// Opens `path` for appending, writing the file header if the log is
    /// new (or empty).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if file.metadata()?.len() == 0 {
            // No fsync: like appends, the header rides the page cache.
            // The durability model is process-crash consistency; power
            // loss may rewind to the last snapshot's fsync point, and a
            // headerless segment reads as empty — a valid prefix.
            file.write_all(&WAL_MAGIC)?;
            file.write_all(&[WAL_VERSION])?;
        }
        Ok(Self { file, path: path.to_path_buf(), scratch: Vec::new() })
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event as a `[len][crc][payload]` record.
    ///
    /// # Errors
    ///
    /// Propagates write errors. Callers treat an append failure as
    /// fail-stop: a mutation whose event cannot be made durable must not
    /// be applied, or anti-replay state could silently regress on the
    /// next restart.
    pub fn append(&mut self, ev: &StateEvent) -> io::Result<()> {
        // Encode the payload in place after an 8-byte frame placeholder,
        // then back-fill length and checksum: one buffer, zero copies.
        self.scratch.clear();
        self.scratch.extend_from_slice(&[0u8; 8]);
        let mut w = Writer(std::mem::take(&mut self.scratch));
        encode_event_into(&mut w, ev);
        self.scratch = w.0;
        let len = u32::try_from(self.scratch.len() - 8).expect("event longer than u32::MAX");
        let crc = record_sum(&self.scratch[8..]);
        self.scratch[..4].copy_from_slice(&len.to_le_bytes());
        self.scratch[4..8].copy_from_slice(&crc.to_le_bytes());
        self.file.write_all(&self.scratch)
    }

    /// Forces appended records to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates `fsync` errors.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// Reads the valid event prefix of the log at `path`.
///
/// A missing file, a short or corrupt header, and any torn / checksum-
/// failing / undecodable record all terminate the read *gracefully*: the
/// events decoded up to that point are returned and the suffix is
/// ignored. This function never panics on any file contents.
///
/// # Errors
///
/// Only genuine I/O failures (permissions, device errors) are returned;
/// corruption is not an error.
pub fn read_events(path: &Path) -> io::Result<Vec<StateEvent>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }
    let header_len = WAL_MAGIC.len() + 1;
    if bytes.len() < header_len
        || bytes[..WAL_MAGIC.len()] != WAL_MAGIC
        || bytes[WAL_MAGIC.len()] != WAL_VERSION
    {
        // A header that never finished writing (or was overwritten) means
        // the valid prefix is empty.
        return Ok(Vec::new());
    }
    let mut events = Vec::new();
    let mut pos = header_len;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            break; // torn record header (or clean EOF)
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        // A length past EOF is a torn payload; stop at the valid prefix.
        // (This also bounds the slice below — no announced length can
        // reach past the bytes actually on disk.)
        let Some(payload) = rest.get(8..8 + len) else { break };
        if record_sum(payload) != crc {
            break;
        }
        let Ok(ev) = decode_event(payload) else { break };
        events.push(ev);
        pos += 8 + len;
    }
    Ok(events)
}

/// Writes `bytes` to `path` atomically: write to a sibling temp file,
/// `fsync`, then `rename` into place. Readers either see the old file or
/// the complete new one, never a torn snapshot.
///
/// # Errors
///
/// Propagates file-system errors (the temp file is removed on failure).
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    let written = f.write_all(bytes).and_then(|()| f.sync_data());
    drop(f);
    if let Err(e) = written {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path)
}

/// Recovery failures for [`Fleet::recover`](crate::Fleet::recover).
#[derive(Debug)]
pub enum RecoverError {
    /// A file-system operation failed.
    Io(io::Error),
    /// The meta log carries no [`StateEvent::ShardLayout`] — the directory
    /// is not a fleet state directory (or its header was destroyed), so
    /// there is no layout to recover under.
    MissingLayout,
    /// The meta log references an operation the supplied catalog cannot
    /// rebuild (operations are code artifacts, not persisted state).
    UnknownOp(String),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "recovery I/O failure: {e}"),
            RecoverError::MissingLayout => {
                write!(f, "meta log holds no shard layout — not a recoverable state directory")
            }
            RecoverError::UnknownOp(name) => {
                write!(f, "operation {name:?} is in the log but not in the recovery catalog")
            }
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex::{PoxConfig, PoxProof};
    use dialed::report::{RejectReason, VerifyStats};

    fn sample_events() -> Vec<StateEvent> {
        let cfg = PoxConfig::new(0xE000, 0xE0FF, 0xE0FE, 0x0600, 0x06FF).unwrap();
        vec![
            StateEvent::ShardLayout { shards: 4 },
            StateEvent::OpRegistered {
                op: OpId(0),
                name: "naïve-op ✓".into(),
                mode: InstrumentMode::Full,
            },
            StateEvent::EpochBumped { epoch: 3 },
            StateEvent::DeviceRegistered {
                device: DeviceId(7),
                op: OpId(0),
                key_seed: 9,
                epoch: 3,
            },
            StateEvent::DeviceDeregistered { device: DeviceId(7) },
            StateEvent::ChallengeIssued {
                session: SessionId(11),
                device: DeviceId(7),
                op: OpId(0),
                nonce: 2,
                issued_at: 5,
                deadline: 69,
            },
            StateEvent::ProofAccepted {
                session: SessionId(11),
                device: DeviceId(7),
                proof: DialedProof {
                    pox: PoxProof { cfg, exec: true, or_data: vec![1, 2, 3], tag: [0x5A; 32] },
                },
            },
            StateEvent::VerdictRecorded {
                session: SessionId(11),
                report: dialed::report::Report::rejected(RejectReason::MacMismatch),
            },
            StateEvent::VerdictRecorded {
                session: SessionId(12),
                report: dialed::report::Report::clean(VerifyStats {
                    emulated_insns: 1,
                    ..VerifyStats::default()
                }),
            },
            StateEvent::ExpirySweep { now: 70 },
            StateEvent::PruneSweep { now: 200 },
        ]
    }

    fn tmp_path(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dialed-store-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn every_event_round_trips() {
        for ev in sample_events() {
            let bytes = encode_event(&ev);
            assert_eq!(decode_event(&bytes).as_ref(), Ok(&ev), "{ev:?}");
            // And every truncation errors, never panics.
            for cut in 0..bytes.len() {
                assert!(decode_event(&bytes[..cut]).is_err(), "prefix {cut} of {ev:?}");
            }
        }
    }

    #[test]
    fn wal_appends_and_reads_back() {
        let path = tmp_path("round-trip");
        let _ = std::fs::remove_file(&path);
        let events = sample_events();
        let mut wal = Wal::open(&path).unwrap();
        for ev in &events {
            wal.append(ev).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(read_events(&path).unwrap(), events);
        // Reopening appends after the existing records.
        drop(wal);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&StateEvent::PruneSweep { now: 999 }).unwrap();
        drop(wal);
        let read = read_events(&path).unwrap();
        assert_eq!(read.len(), events.len() + 1);
        assert_eq!(read.last(), Some(&StateEvent::PruneSweep { now: 999 }));
    }

    #[test]
    fn torn_tail_yields_valid_prefix() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        let events = sample_events();
        let mut wal = Wal::open(&path).unwrap();
        for ev in &events {
            wal.append(ev).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Every truncation point recovers some prefix of the events,
        // without panicking.
        let mut last_len = 0usize;
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let got = read_events(&path).unwrap();
            assert_eq!(got.as_slice(), &events[..got.len()], "cut at {cut}");
            assert!(got.len() >= last_len.saturating_sub(1));
            last_len = got.len();
        }
    }

    #[test]
    fn corrupt_record_stops_the_read_at_the_prefix() {
        let path = tmp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let events = sample_events();
        let mut wal = Wal::open(&path).unwrap();
        for ev in &events {
            wal.append(ev).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Flip one payload byte somewhere in the middle of the file: the
        // checksum catches it and the read stops before that record.
        let mid = full.len() / 2;
        let mut bad = full.clone();
        bad[mid] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        let got = read_events(&path).unwrap();
        assert!(got.len() < events.len());
        assert_eq!(got.as_slice(), &events[..got.len()]);
        // Destroying the header recovers the empty prefix.
        let mut bad = full;
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(read_events(&path).unwrap(), Vec::new());
        // A missing file is an empty log, not an error.
        let _ = std::fs::remove_file(&path);
        assert_eq!(read_events(&path).unwrap(), Vec::new());
    }

    #[test]
    fn hostile_length_cannot_overallocate() {
        let path = tmp_path("hostile-len");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&StateEvent::EpochBumped { epoch: 1 }).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Claim a 4 GiB record: the reader must stop, not allocate.
        let header = WAL_MAGIC.len() + 1;
        bytes[header..header + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_events(&path).unwrap(), Vec::new());
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = tmp_path("atomic");
        let path = dir.parent().unwrap().join("snapshot.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        assert!(!path.with_extension("tmp").exists());
    }
}
