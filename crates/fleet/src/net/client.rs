//! A small blocking client for the networked frontend — the device side
//! of the TCP protocol, used by tests, benches, and soak harnesses. One
//! client (one connection) can carry any number of simulated devices;
//! requests may be pipelined and replies correlated by request id.

use crate::wire::{self, ChallengeMsg, FrameReader, IssueMsg, Message, ProofMsg, SubmitMsg};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct NetClient {
    sock: TcpStream,
    frames: FrameReader,
    next_request: u64,
}

impl NetClient {
    /// Connects to a server (typically [`NetServerHandle::addr`]).
    ///
    /// [`NetServerHandle::addr`]: super::NetServerHandle::addr
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let sock = TcpStream::connect(addr)?;
        let _ = sock.set_nodelay(true);
        Ok(Self { sock, frames: FrameReader::new(1 << 20), next_request: 1 })
    }

    /// Sends a raw message (tests use this to speak protocol violations
    /// on purpose).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        self.sock.write_all(&wire::encode(msg))
    }

    /// Sends raw bytes, bypassing the codec entirely (adversarial tests:
    /// garbage, truncated frames, hostile length prefixes).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.sock.write_all(bytes)
    }

    /// Blocks for the next server message.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` on a clean server close, `InvalidData` if the
    /// server's bytes fail the codec, otherwise the socket error.
    pub fn recv(&mut self) -> io::Result<Message> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.frames.poll() {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
            let n = self.sock.read(&mut buf)?;
            if n == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            self.frames.feed(&buf[..n]);
        }
    }

    /// Pipelines an `Issue` request for `device`; returns the request id
    /// to correlate the eventual `Grant`/`Reject`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn issue(&mut self, device: u64) -> io::Result<u64> {
        let request = self.fresh_request();
        self.send(&Message::Issue(IssueMsg { request, device }))?;
        Ok(request)
    }

    /// Pipelines a `Submit` carrying `body`; returns the request id to
    /// correlate the eventual `Verdict`/`Reject`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn submit(&mut self, body: ProofMsg) -> io::Result<u64> {
        let request = self.fresh_request();
        self.send(&Message::Submit(SubmitMsg { request, body }))?;
        Ok(request)
    }

    /// Convenience call-and-wait: requests a challenge for `device` and
    /// blocks until the correlated reply arrives. `Ok(Ok(challenge))` on
    /// grant, `Ok(Err(reject_message))` on a correlated rejection.
    ///
    /// # Errors
    ///
    /// Socket errors, plus `InvalidData` if the server replies out of
    /// protocol (an uncorrelated or non-issue reply).
    pub fn request_challenge(&mut self, device: u64) -> io::Result<Result<ChallengeMsg, Message>> {
        let request = self.issue(device)?;
        match self.recv()? {
            Message::Grant(g) if g.request == request => Ok(Ok(g.body)),
            Message::Reject(r) if r.request == request || r.request == 0 => {
                Ok(Err(Message::Reject(r)))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("uncorrelated reply to issue: {other:?}"),
            )),
        }
    }

    /// A request id no other request on this connection has used.
    fn fresh_request(&mut self) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        id
    }
}
