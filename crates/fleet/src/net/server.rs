//! The acceptor loop and the core thread — the half of the frontend that
//! owns the [`Fleet`].

use super::conn;
use super::drain::{ConnThreads, NetServerHandle};
use super::{bump, CoreMsg, NetConfig, Shared};
use crate::wire::{self, GrantMsg, Message, RejectMsg, VerdictMsg};
use crate::{DeviceId, Fleet, SessionId, SessionState};
use dialed::report::RejectReason;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// The TCP frontend. A unit struct: [`spawn`](NetServer::spawn) is the
/// whole API — it consumes a [`Fleet`] and returns a running server.
#[derive(Debug)]
pub struct NetServer;

impl NetServer {
    /// Binds `cfg.bind`, takes ownership of `fleet`, and starts the
    /// acceptor + core threads. The fleet is returned by
    /// [`NetServerHandle::shutdown`].
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot bind or the threads cannot spawn.
    pub fn spawn(fleet: Fleet, cfg: NetConfig) -> io::Result<NetServerHandle> {
        let listener = TcpListener::bind(&cfg.bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new(Shared::new(cfg));
        let threads = Arc::new(Mutex::new(ConnThreads::default()));
        let (core_tx, core_rx) = mpsc::channel::<CoreMsg>();

        let acceptor = {
            let shared = Arc::clone(&shared);
            let threads = Arc::clone(&threads);
            let core_tx = core_tx.clone();
            thread::Builder::new()
                .name("fleet-net-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared, &threads, &core_tx))?
        };

        let core = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("fleet-net-core".into())
                .spawn(move || Core::new(fleet, shared).run(&core_rx))?
        };

        Ok(NetServerHandle::new(addr, shared, threads, core_tx, acceptor, core))
    }
}

/// Accepts connections until the stop flag rises, shedding past the
/// connection cap and reaping finished connection threads as it goes.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    threads: &Arc<Mutex<ConnThreads>>,
    core_tx: &Sender<CoreMsg>,
) {
    let mut next_conn: u64 = 1;
    while !shared.stopping() {
        match listener.accept() {
            Ok((sock, _peer)) => {
                threads.lock().expect("conn thread registry poisoned").reap();
                let active = shared.active_conns.load(Ordering::Acquire);
                if active >= shared.cfg.max_conns as u64 {
                    bump(&shared.stats.conns_shed);
                    shed_connection(sock, active, shared);
                    continue;
                }
                let conn = next_conn;
                next_conn += 1;
                shared.active_conns.fetch_add(1, Ordering::AcqRel);
                match conn::spawn_conn(conn, sock, Arc::clone(shared), core_tx.clone()) {
                    Ok(pair) => {
                        bump(&shared.stats.conns_accepted);
                        threads.lock().expect("conn thread registry poisoned").push(pair);
                    }
                    Err(_) => {
                        // Thread spawn failed (resource exhaustion): the
                        // socket is already dropped; undo the slot.
                        shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(shared.cfg.poll_interval);
            }
            Err(_) => thread::sleep(shared.cfg.poll_interval),
        }
    }
}

/// Tells a connection past the cap why it is being turned away: one
/// `Overloaded` reject frame, best-effort, then close.
fn shed_connection(mut sock: TcpStream, active: u64, shared: &Arc<Shared>) {
    let reason = RejectReason::Overloaded { pending: active };
    shared.stats.note_reject(&reason);
    let frame = wire::encode(&Message::Reject(RejectMsg { request: 0, reason }));
    let _ = sock.set_write_timeout(Some(shared.cfg.poll_interval));
    if sock.write_all(&frame).is_ok() {
        bump(&shared.stats.frames_out);
    }
}

/// The core: sole owner of the [`Fleet`], fed by every reader thread.
struct Core {
    fleet: Fleet,
    shared: Arc<Shared>,
    /// Reply channels of live connections, keyed by connection id.
    replies: HashMap<u64, Sender<Vec<u8>>>,
    /// Accepted-but-unresolved submissions: session id → who gets the
    /// verdict. Every entry is owed exactly one reply frame.
    inflight: HashMap<u64, (u64, u64)>,
    start: Instant,
}

impl Core {
    fn new(fleet: Fleet, shared: Arc<Shared>) -> Self {
        Self {
            fleet,
            shared,
            replies: HashMap::new(),
            inflight: HashMap::new(),
            start: Instant::now(),
        }
    }

    /// Wall clock → logical ticks (the unit of session deadlines).
    fn now(&self) -> u64 {
        let tick = self.shared.cfg.tick.as_nanos().max(1);
        u64::try_from(self.start.elapsed().as_nanos() / tick).unwrap_or(u64::MAX)
    }

    /// Processes commands until every sender is gone, draining on a wall
    /// clock; then runs the final drain and flushes in-flight verdicts.
    /// Returns the fleet to the shutdown path.
    fn run(mut self, rx: &Receiver<CoreMsg>) -> Fleet {
        let mut last_drain = Instant::now();
        loop {
            match rx.recv_timeout(self.shared.cfg.drain_interval) {
                Ok(msg) => {
                    let now = self.now();
                    self.handle(msg, now);
                }
                Err(RecvTimeoutError::Timeout) => {}
                // All senders gone: the acceptor, every reader, and the
                // handle have dropped theirs — and the channel is empty,
                // so the whole backlog has been applied. Shut down.
                Err(RecvTimeoutError::Disconnected) => break,
            }
            let due = last_drain.elapsed() >= self.shared.cfg.drain_interval;
            if due || self.fleet.pending() >= self.shared.cfg.drain_pending {
                self.drain();
                last_drain = Instant::now();
            }
        }
        // Final drain: resolve everything accepted, emit every verdict.
        // Dropping `replies` afterwards lets the writers flush and exit.
        self.drain();
        debug_assert!(self.inflight.is_empty(), "final drain left verdicts unemitted");
        self.fleet
    }

    fn handle(&mut self, msg: CoreMsg, now: u64) {
        match msg {
            CoreMsg::Register { conn, reply } => {
                self.replies.insert(conn, reply);
            }
            CoreMsg::ConnClosed { conn } => {
                self.replies.remove(&conn);
                // Undeliverable verdicts die with the connection.
                self.inflight.retain(|_, &mut (c, _)| c != conn);
            }
            CoreMsg::Admin(f) => f(&mut self.fleet),
            CoreMsg::Issue { conn, request, device } => {
                match self.fleet.issue(DeviceId(device), now) {
                    Ok(body) => {
                        bump(&self.shared.stats.granted);
                        self.send(conn, &Message::Grant(GrantMsg { request, body }));
                    }
                    Err(e) => {
                        bump(&self.shared.stats.session_rejects);
                        self.reject(conn, request, e.into());
                    }
                }
            }
            CoreMsg::Submit { conn, request, body } => {
                // Backpressure before acceptance: if the target shard is
                // already past the watermark, shedding now (with the
                // observed depth) beats queueing work the drain cannot
                // chew through in time.
                let shard =
                    usize::try_from(body.session).unwrap_or(usize::MAX) % self.fleet.shards().len();
                let depth = self.fleet.shards()[shard].ingest_depth();
                if depth >= self.shared.cfg.shed_watermark {
                    bump(&self.shared.stats.shed);
                    self.reject(conn, request, RejectReason::Overloaded { pending: depth as u64 });
                    return;
                }
                let (session, device) = (SessionId(body.session), DeviceId(body.device));
                match self.fleet.submit(session, device, body.proof, now) {
                    Ok(()) => {
                        bump(&self.shared.stats.submitted);
                        self.inflight.insert(body.session, (conn, request));
                    }
                    Err(e) => {
                        bump(&self.shared.stats.session_rejects);
                        self.reject(conn, request, e.into());
                    }
                }
            }
        }
    }

    /// One verification pass: expire + drain the fleet, then resolve the
    /// in-flight table — verdict frames for sessions the batch engines
    /// settled, expiry rejects for sessions the clock killed first.
    fn drain(&mut self) {
        let now = self.now();
        let _ = self.fleet.drain(now);
        bump(&self.shared.stats.drains);

        let fleet = &self.fleet;
        let replies = &self.replies;
        let stats = &self.shared.stats;
        self.inflight.retain(|&session, &mut (conn, request)| {
            let Some(s) = fleet.session(SessionId(session)) else {
                return false; // pruned — nothing left to report
            };
            match s.state {
                // Still queued (a shed-heavy drain can leave work; the
                // next pass picks it up).
                SessionState::Issued | SessionState::Submitted => true,
                SessionState::Verified | SessionState::Rejected => {
                    if let Some(body) = fleet.report_msg(SessionId(session)) {
                        bump(&stats.verdicts);
                        // A rejected verdict is a reject the server
                        // produced: bucket it under the verifier's own
                        // reason class so network replays can account
                        // for every expected rejection exactly.
                        if s.state == SessionState::Rejected {
                            if let Some(reason) =
                                body.report.findings.iter().find_map(|f| match f {
                                    dialed::report::Finding::PoxRejected { reason } => Some(reason),
                                    _ => None,
                                })
                            {
                                stats.note_reject(reason);
                            }
                        }
                        send_to(
                            replies,
                            stats,
                            conn,
                            &Message::Verdict(VerdictMsg { request, body }),
                        );
                    }
                    false
                }
                SessionState::Expired => {
                    bump(&stats.expired);
                    let reason =
                        RejectReason::from(crate::SessionError::Expired { deadline: s.deadline });
                    stats.note_reject(&reason);
                    send_to(replies, stats, conn, &Message::Reject(RejectMsg { request, reason }));
                    false
                }
            }
        });
        self.fleet.prune_resolved(now);
    }

    fn send(&self, conn: u64, msg: &Message) {
        send_to(&self.replies, &self.shared.stats, conn, msg);
    }

    fn reject(&self, conn: u64, request: u64, reason: RejectReason) {
        self.shared.stats.note_reject(&reason);
        self.send(conn, &Message::Reject(RejectMsg { request, reason }));
    }
}

/// Hands an encoded frame to a connection's writer; a vanished writer
/// (peer already gone) just drops the frame.
fn send_to(
    replies: &HashMap<u64, Sender<Vec<u8>>>,
    _stats: &super::StatsInner,
    conn: u64,
    msg: &Message,
) {
    if let Some(tx) = replies.get(&conn) {
        let _ = tx.send(wire::encode(msg));
    }
}
