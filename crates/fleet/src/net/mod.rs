//! The networked fleet frontend: a hand-rolled TCP server speaking the
//! [`wire`](crate::wire) codec, so real devices (or simulated fleets) can
//! reach a [`Fleet`](crate::Fleet) over a socket instead of an in-process
//! call.
//!
//! # Architecture
//!
//! No async runtime exists in this build environment, so the server is
//! plain threads over blocking-with-timeout sockets:
//!
//! ```text
//!            ┌───────────┐   nonblocking accept loop
//!            │ acceptor  │── caps live connections, spawns per-conn pair
//!            └─────┬─────┘
//!        ┌─────────┼──────────┐
//!   ┌────▼───┐ ┌───▼────┐ ┌───▼────┐      one reader + one writer
//!   │ conn 0 │ │ conn 1 │ │ conn N │      thread per connection
//!   │ rd  wr │ │ rd  wr │ │ rd  wr │
//!   └──┬──▲──┘ └──┬──▲──┘ └──┬──▲──┘
//!      │  └───────┼──┴───────┼──┴─── encoded reply frames (mpsc)
//!      └──────────▼──────────▼────┐
//!                 │   core thread │  owns the Fleet: issues, submits,
//!                 │  (sole owner) │  sheds, drains, emits verdicts
//!                 └───────────────┘
//! ```
//!
//! * **Multiplexing.** Many devices share one connection; every request
//!   carries a client-chosen `request` id and every reply echoes it, so
//!   batch verdicts can return out of order (verification is batched —
//!   a submission's verdict arrives after the *next drain*, interleaved
//!   with other devices' traffic on the same socket).
//! * **Hostile-input defense.** Each connection reads through a
//!   [`FrameReader`](crate::wire::FrameReader) with a frame-size cap
//!   ([`NetConfig::max_frame`]) and a stalled-frame deadline
//!   ([`NetConfig::idle_frame_timeout`], the slow-loris defense). Every
//!   violation is answered with a structured
//!   [`RejectMsg`](crate::wire::RejectMsg) before the connection closes.
//! * **Load shedding.** Before accepting a submission the core compares
//!   the target shard's [`ingest_depth`](crate::Shard::ingest_depth)
//!   against [`NetConfig::shed_watermark`] and answers
//!   [`RejectReason::Overloaded`] — explicit backpressure instead of
//!   unbounded queueing.
//! * **Wall clock → logical clock.** The fleet's deadlines are logical
//!   ticks; the core derives `now` from elapsed wall time
//!   ([`NetConfig::tick`]) and runs a drain at least every
//!   [`NetConfig::drain_interval`], so sessions expire on real time even
//!   when no traffic arrives.
//! * **Graceful drain.** [`NetServerHandle::shutdown`] stops the
//!   acceptor, quiesces readers, lets the core chew through the command
//!   backlog, runs a final [`Fleet::drain`](crate::Fleet::drain), flushes
//!   every in-flight verdict through the writers, and only then closes —
//!   no accepted submission loses its verdict. The `Fleet` comes back out
//!   for inspection or reuse.
//!
//! The module family: [`server`](self) core + acceptor live in
//! `server.rs`, per-connection reader/writer threads in `conn.rs`, the
//! shutdown lifecycle in `drain.rs`, and a small blocking [`NetClient`]
//! (tests, benches, soak harnesses) in `client.rs`.

mod client;
mod conn;
mod drain;
mod server;

pub use client::NetClient;
pub use drain::NetServerHandle;
pub use server::NetServer;

use crate::wire::ProofMsg;
use dialed::report::{RejectClass, RejectReason};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::time::Duration;

/// Tuning knobs for a [`NetServer`]. `Default` is sized for tests and
/// local soaks; production would raise the capacity knobs.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Bind address. Port 0 picks an ephemeral port (read it back from
    /// [`NetServerHandle::addr`]).
    pub bind: String,
    /// Per-frame payload cap in bytes; a frame announcing more is refused
    /// at its header (oversized-frame defense).
    pub max_frame: usize,
    /// Live-connection cap. Connections beyond it are answered with an
    /// [`Overloaded`](dialed::report::RejectReason::Overloaded) reject and
    /// closed without a thread being spawned.
    pub max_conns: usize,
    /// How long a connection may hold a frame incomplete before it is
    /// closed as a slow-loris writer. The clock starts when partial bytes
    /// arrive and only resets when a frame completes, so trickling one
    /// byte per poll does not defeat it.
    pub idle_frame_timeout: Duration,
    /// Granularity of accept/read polling (socket timeouts and the
    /// acceptor's idle sleep). Smaller is snappier shutdown, more wakeups.
    pub poll_interval: Duration,
    /// Per-shard ingest depth at which submissions are shed with
    /// [`Overloaded`](dialed::report::RejectReason::Overloaded).
    pub shed_watermark: usize,
    /// Fleet-wide pending count that triggers an immediate drain instead
    /// of waiting out [`drain_interval`](Self::drain_interval).
    pub drain_pending: usize,
    /// Maximum wall time between drains — the verdict-latency bound, and
    /// the cadence of wall-clock session expiry under idle load.
    pub drain_interval: Duration,
    /// Wall-time length of one logical tick (the unit of the fleet's
    /// challenge deadlines).
    pub tick: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            bind: "127.0.0.1:0".to_string(),
            max_frame: 1 << 20,
            max_conns: 1024,
            idle_frame_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(5),
            shed_watermark: 4096,
            drain_pending: 512,
            drain_interval: Duration::from_millis(20),
            tick: Duration::from_millis(50),
        }
    }
}

/// Counter snapshot of a running (or finished) server; see
/// [`NetServerHandle::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted and given threads.
    pub conns_accepted: u64,
    /// Connections refused at the cap (answered `Overloaded`, closed).
    pub conns_shed: u64,
    /// Well-formed frames read off sockets.
    pub frames_in: u64,
    /// Frames written to sockets (grants, verdicts, rejects).
    pub frames_out: u64,
    /// Challenges granted.
    pub granted: u64,
    /// Submissions accepted into ingest (each owes a verdict).
    pub submitted: u64,
    /// Submissions shed at the ingest watermark (`Overloaded` replies).
    pub shed: u64,
    /// Session/registry-layer rejections (replays, duplicates, unknown
    /// principals, expired sessions at submit time).
    pub session_rejects: u64,
    /// Wire-protocol violations (bad magic/version, oversized or
    /// undecodable frames, stalled slow-loris frames, unexpected message
    /// types) — each answered with a structured reject, then closed.
    pub protocol_errors: u64,
    /// Verdict frames emitted after drains.
    pub verdicts: u64,
    /// In-flight submissions whose session expired before a drain
    /// resolved them (answered with an expiry reject).
    pub expired: u64,
    /// Drain passes run by the core.
    pub drains: u64,
    /// Every rejection this server produced, bucketed by
    /// [`RejectClass`] (indexed by [`RejectClass::index`]). Counts both
    /// pre-verification rejects (session violations, shed submissions,
    /// protocol errors, expiry) and post-drain verifier rejections, so a
    /// corpus replay over the network can account for every expected
    /// reject class exactly.
    pub rejects_by_class: [u64; RejectClass::ALL.len()],
}

impl NetStats {
    /// Rejections recorded for one [`RejectClass`].
    #[must_use]
    pub fn rejects_for(&self, class: RejectClass) -> u64 {
        self.rejects_by_class[class.index()]
    }

    /// Total rejections across every class.
    #[must_use]
    pub fn total_rejects(&self) -> u64 {
        self.rejects_by_class.iter().sum()
    }
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conns {}/{} shed, frames {} in / {} out, granted {}, submitted {} \
             ({} shed, {} session-rejected, {} expired), verdicts {}, \
             protocol errors {}, drains {}",
            self.conns_accepted,
            self.conns_shed,
            self.frames_in,
            self.frames_out,
            self.granted,
            self.submitted,
            self.shed,
            self.session_rejects,
            self.expired,
            self.verdicts,
            self.protocol_errors,
            self.drains,
        )?;
        let mut sep = ", rejects by class: ";
        for class in RejectClass::ALL {
            let n = self.rejects_for(class);
            if n > 0 {
                write!(f, "{sep}{class} {n}")?;
                sep = ", ";
            }
        }
        Ok(())
    }
}

/// Live counters, shared by every server thread.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub(crate) conns_accepted: AtomicU64,
    pub(crate) conns_shed: AtomicU64,
    pub(crate) frames_in: AtomicU64,
    pub(crate) frames_out: AtomicU64,
    pub(crate) granted: AtomicU64,
    pub(crate) submitted: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) session_rejects: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) verdicts: AtomicU64,
    pub(crate) expired: AtomicU64,
    pub(crate) drains: AtomicU64,
    pub(crate) rejects_by_class: [AtomicU64; RejectClass::ALL.len()],
}

impl StatsInner {
    /// Buckets one rejection under its [`RejectClass`]. Every code path
    /// that emits a reject frame (or counts a shed connection) calls this
    /// exactly once, so the per-class counters sum to the rejects the
    /// server actually produced.
    pub(crate) fn note_reject(&self, reason: &RejectReason) {
        bump(&self.rejects_by_class[reason.class().index()]);
    }

    pub(crate) fn snapshot(&self) -> NetStats {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        NetStats {
            conns_accepted: get(&self.conns_accepted),
            conns_shed: get(&self.conns_shed),
            frames_in: get(&self.frames_in),
            frames_out: get(&self.frames_out),
            granted: get(&self.granted),
            submitted: get(&self.submitted),
            shed: get(&self.shed),
            session_rejects: get(&self.session_rejects),
            protocol_errors: get(&self.protocol_errors),
            verdicts: get(&self.verdicts),
            expired: get(&self.expired),
            drains: get(&self.drains),
            rejects_by_class: std::array::from_fn(|i| get(&self.rejects_by_class[i])),
        }
    }
}

pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// State shared by the acceptor, every connection thread, and the core.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) cfg: NetConfig,
    pub(crate) stop: AtomicBool,
    pub(crate) active_conns: AtomicU64,
    pub(crate) stats: StatsInner,
}

impl Shared {
    pub(crate) fn new(cfg: NetConfig) -> Self {
        Self {
            cfg,
            stop: AtomicBool::new(false),
            active_conns: AtomicU64::new(0),
            stats: StatsInner::default(),
        }
    }

    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Commands from connection readers (and the acceptor) to the core
/// thread, which is the sole owner of the [`Fleet`](crate::Fleet).
pub(crate) enum CoreMsg {
    /// A connection came up; `reply` feeds its writer thread.
    Register { conn: u64, reply: Sender<Vec<u8>> },
    /// A device asks for a challenge.
    Issue { conn: u64, request: u64, device: u64 },
    /// A device submits a proof for an open session.
    Submit { conn: u64, request: u64, body: ProofMsg },
    /// The peer went away (EOF, socket error, or a protocol violation) —
    /// the core forgets the connection and its undeliverable in-flight
    /// verdicts. *Not* sent when a reader quiesces for shutdown: those
    /// connections stay registered so the final drain can still deliver.
    ConnClosed { conn: u64 },
    /// A management-plane operation against the live fleet (device
    /// deregistration, epoch rotation, …), run on the core thread between
    /// client requests — serialized with them, never concurrent. See
    /// [`NetServerHandle::admin`].
    Admin(Box<dyn FnOnce(&mut crate::Fleet) + Send>),
}

impl std::fmt::Debug for CoreMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreMsg::Register { conn, .. } => {
                f.debug_struct("Register").field("conn", conn).finish_non_exhaustive()
            }
            CoreMsg::Issue { conn, request, device } => f
                .debug_struct("Issue")
                .field("conn", conn)
                .field("request", request)
                .field("device", device)
                .finish(),
            CoreMsg::Submit { conn, request, body } => f
                .debug_struct("Submit")
                .field("conn", conn)
                .field("request", request)
                .field("session", &body.session)
                .finish_non_exhaustive(),
            CoreMsg::ConnClosed { conn } => {
                f.debug_struct("ConnClosed").field("conn", conn).finish()
            }
            CoreMsg::Admin(_) => f.debug_struct("Admin").finish_non_exhaustive(),
        }
    }
}
