//! Graceful-drain lifecycle: the server handle and the shutdown
//! sequencing that guarantees no accepted submission loses its verdict.

use super::{CoreMsg, NetStats, Shared};
use crate::Fleet;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Join handles of every live connection's reader/writer pair. Readers
/// and writers are kept apart because shutdown must join them on
/// opposite sides of the core's exit (see [`NetServerHandle::shutdown`]).
#[derive(Default)]
pub(crate) struct ConnThreads {
    readers: Vec<JoinHandle<()>>,
    writers: Vec<JoinHandle<()>>,
    /// Panic payloads harvested while reaping finished threads.
    panics: Vec<Box<dyn std::any::Any + Send + 'static>>,
}

impl std::fmt::Debug for ConnThreads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnThreads")
            .field("readers", &self.readers.len())
            .field("writers", &self.writers.len())
            .field("panics", &self.panics.len())
            .finish()
    }
}

impl ConnThreads {
    pub(crate) fn push(&mut self, pair: (JoinHandle<()>, JoinHandle<()>)) {
        self.readers.push(pair.0);
        self.writers.push(pair.1);
    }

    /// Joins threads that already finished (connections that came and
    /// went), so a long-lived server does not accumulate handles. A
    /// finished thread's `join` cannot block; a panic is kept for
    /// shutdown to report rather than swallowed here.
    pub(crate) fn reap(&mut self) {
        for list in [&mut self.readers, &mut self.writers] {
            let mut i = 0;
            while i < list.len() {
                if list[i].is_finished() {
                    if let Err(panic) = list.swap_remove(i).join() {
                        // Re-raise at shutdown: zero-panic is part of the
                        // server's contract and must not be lost to reaping.
                        self.panics.push(panic);
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// A running [`NetServer`](super::NetServer).
///
/// Dropping the handle without calling [`shutdown`](Self::shutdown) stops
/// the server *eventually* (the stop flag rises and threads exit on their
/// next poll) but does not wait, flush in-flight verdicts, or surface
/// panics — call `shutdown` for the graceful path.
#[derive(Debug)]
pub struct NetServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Arc<Mutex<ConnThreads>>,
    core_tx: Option<Sender<CoreMsg>>,
    acceptor: Option<JoinHandle<()>>,
    core: Option<JoinHandle<Fleet>>,
}

impl NetServerHandle {
    pub(crate) fn new(
        addr: SocketAddr,
        shared: Arc<Shared>,
        threads: Arc<Mutex<ConnThreads>>,
        core_tx: Sender<CoreMsg>,
        acceptor: JoinHandle<()>,
        core: JoinHandle<Fleet>,
    ) -> Self {
        Self {
            addr,
            shared,
            threads,
            core_tx: Some(core_tx),
            acceptor: Some(acceptor),
            core: Some(core),
        }
    }

    /// The bound address (resolves port 0 binds).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counter snapshot.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.shared.stats.snapshot()
    }

    /// Connections currently holding threads.
    #[must_use]
    pub fn active_conns(&self) -> u64 {
        self.shared.active_conns.load(Ordering::Acquire)
    }

    /// Runs a management-plane operation against the live fleet on the
    /// core thread — serialized with client traffic, never concurrent
    /// with it — and blocks until it has been applied, returning its
    /// result. `None` if the server is already shutting down.
    ///
    /// This is how an operator deregisters a device (or rotates the
    /// provisioning epoch) while networked sessions are open: any
    /// in-flight submission racing the change is answered with a
    /// structured session reject, exactly as the in-process API would.
    pub fn admin<R, F>(&self, f: F) -> Option<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut Fleet) -> R + Send + 'static,
    {
        let core_tx = self.core_tx.as_ref()?;
        let (tx, rx) = std::sync::mpsc::channel();
        let wrapped = Box::new(move |fleet: &mut Fleet| {
            let _ = tx.send(f(fleet));
        });
        core_tx.send(CoreMsg::Admin(wrapped)).ok()?;
        rx.recv().ok()
    }

    /// Graceful drain:
    ///
    /// 1. raise the stop flag — the acceptor refuses new connections;
    /// 2. join the acceptor, then every reader (they quiesce within one
    ///    poll interval, leaving their sockets open for replies);
    /// 3. close the command channel — the core applies the entire
    ///    remaining backlog, runs a final [`Fleet::drain`], emits every
    ///    in-flight verdict, and returns the [`Fleet`];
    /// 4. join the writers — they flush those final frames and send FIN.
    ///
    /// In-flight submissions are accepted work: every one of them gets
    /// its verdict (or expiry reject) frame before any socket closes.
    ///
    /// # Errors
    ///
    /// Returns the first panic payload if any server thread panicked —
    /// the soak tests lean on this to assert zero panics end-to-end.
    pub fn shutdown(mut self) -> std::thread::Result<(Fleet, NetStats)> {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join()?;
        }
        let (readers, writers, reaped) = {
            let mut t = self.threads.lock().expect("conn thread registry poisoned");
            (
                std::mem::take(&mut t.readers),
                std::mem::take(&mut t.writers),
                std::mem::take(&mut t.panics),
            )
        };
        if let Some(panic) = reaped.into_iter().next() {
            return Err(panic);
        }
        for reader in readers {
            reader.join()?;
        }
        // Readers are gone; dropping our sender disconnects the channel
        // once the core has consumed the backlog.
        drop(self.core_tx.take());
        let fleet = match self.core.take() {
            Some(core) => core.join()?,
            None => unreachable!("shutdown consumes self; core taken once"),
        };
        for writer in writers {
            writer.join()?;
        }
        Ok((fleet, self.shared.stats.snapshot()))
    }
}

impl Drop for NetServerHandle {
    fn drop(&mut self) {
        // Best-effort stop for the non-graceful path; threads detach and
        // exit on their next poll.
        self.shared.stop.store(true, Ordering::Release);
        drop(self.core_tx.take());
    }
}
