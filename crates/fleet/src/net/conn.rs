//! Per-connection reader and writer threads.
//!
//! The reader pulls bytes through a [`FrameReader`] (frame-size cap,
//! fail-fast magic/version checks) and forwards decoded requests to the
//! core; the writer serialises reply frames from an unbounded channel so
//! the reader — and, more importantly, the core — never blocks on a slow
//! peer's send buffer. One connection carries any number of devices.

use super::{bump, CoreMsg, Shared};
use crate::wire::{self, Message, RejectMsg};
use dialed::report::RejectReason;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Why the reader loop ended — decides whether the core should forget
/// the connection or keep it for the final-drain verdict flush.
enum Exit {
    /// Peer closed, errored, or violated the protocol: the connection is
    /// dead, its in-flight verdicts are undeliverable.
    Peer,
    /// Server shutdown: the socket is still healthy, the writer must stay
    /// deliverable for the final drain.
    Quiesce,
}

/// Spawns the reader/writer pair for one accepted connection. Returns
/// `(reader, writer)` join handles.
pub(crate) fn spawn_conn(
    conn: u64,
    sock: TcpStream,
    shared: Arc<Shared>,
    core_tx: Sender<CoreMsg>,
) -> io::Result<(JoinHandle<()>, JoinHandle<()>)> {
    let _ = sock.set_nodelay(true);
    sock.set_read_timeout(Some(shared.cfg.poll_interval))?;
    let wsock = sock.try_clone()?;
    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();

    // Registered before the reader exists, on the same channel the reader
    // will use, so the core always sees Register before the first request.
    let _ = core_tx.send(CoreMsg::Register { conn, reply: reply_tx.clone() });

    let writer = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name(format!("fleet-net-wr-{conn}"))
            .spawn(move || write_loop(wsock, &reply_rx, &shared))?
    };
    let reader = {
        thread::Builder::new().name(format!("fleet-net-rd-{conn}")).spawn(move || {
            let exit = read_loop(conn, &sock, &shared, &core_tx, &reply_tx);
            if matches!(exit, Exit::Peer) {
                let _ = core_tx.send(CoreMsg::ConnClosed { conn });
            }
            shared.active_conns.fetch_sub(1, Ordering::AcqRel);
            // reply_tx and core_tx drop here; the writer exits once
            // the core also lets go of its reply sender.
        })?
    };
    Ok((reader, writer))
}

/// Drains encoded reply frames onto the socket until every sender is
/// gone, then closes the write half — the orderly FIN the client's final
/// `read` sees after its last verdict.
fn write_loop(mut sock: TcpStream, rx: &Receiver<Vec<u8>>, shared: &Arc<Shared>) {
    let mut healthy = true;
    for frame in rx {
        // Keep consuming after a write error so senders never observe a
        // wedged channel; the frames just die.
        if healthy && sock.write_all(&frame).is_ok() {
            bump(&shared.stats.frames_out);
        } else {
            healthy = false;
        }
    }
    let _ = sock.shutdown(Shutdown::Write);
}

/// The reader: poll the socket, assemble frames, dispatch requests.
/// Every protocol violation is answered with a structured reject frame
/// before the connection dies.
fn read_loop(
    conn: u64,
    sock: &TcpStream,
    shared: &Arc<Shared>,
    core_tx: &Sender<CoreMsg>,
    reply_tx: &Sender<Vec<u8>>,
) -> Exit {
    let mut frames = wire::FrameReader::new(shared.cfg.max_frame);
    let mut buf = vec![0u8; 16 * 1024];
    // `Read` for `&TcpStream`: the reader borrows the socket it shares
    // with `spawn_conn`'s cleanup path.
    let mut sock = sock;
    // Slow-loris clock: set while a frame sits incomplete, reset only by
    // frame completion — a peer trickling one byte per poll still hits
    // the deadline.
    let mut partial_since: Option<Instant> = None;

    loop {
        if shared.stopping() {
            return Exit::Quiesce;
        }
        match sock.read(&mut buf) {
            Ok(0) => return Exit::Peer,
            Ok(n) => {
                frames.feed(&buf[..n]);
                loop {
                    match frames.poll() {
                        Ok(Some(msg)) => {
                            bump(&shared.stats.frames_in);
                            if !dispatch(conn, msg, core_tx, reply_tx, shared) {
                                return Exit::Peer;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            protocol_reject(reply_tx, shared, &e.to_string());
                            return Exit::Peer;
                        }
                    }
                }
                partial_since = if frames.buffered() > 0 {
                    partial_since.or_else(|| Some(Instant::now()))
                } else {
                    None
                };
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if let Some(since) = partial_since {
                    if since.elapsed() >= shared.cfg.idle_frame_timeout {
                        protocol_reject(
                            reply_tx,
                            shared,
                            &format!(
                                "incomplete frame stalled ({} bytes buffered)",
                                frames.buffered()
                            ),
                        );
                        return Exit::Peer;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Exit::Peer,
        }
    }
}

/// Routes one decoded message. Returns `false` when the message type is
/// not a client request — the violation is answered and the connection
/// must close.
fn dispatch(
    conn: u64,
    msg: Message,
    core_tx: &Sender<CoreMsg>,
    reply_tx: &Sender<Vec<u8>>,
    shared: &Arc<Shared>,
) -> bool {
    match msg {
        Message::Issue(m) => {
            let _ = core_tx.send(CoreMsg::Issue { conn, request: m.request, device: m.device });
            true
        }
        Message::Submit(m) => {
            let _ = core_tx.send(CoreMsg::Submit { conn, request: m.request, body: m.body });
            true
        }
        // Server-to-client and bare (pre-envelope) messages are not valid
        // requests on this frontend.
        other => {
            protocol_reject(
                reply_tx,
                shared,
                &format!("unexpected {} message from client", other.name()),
            );
            false
        }
    }
}

/// One structured reject frame for a stream-level violation (`request` 0:
/// the error belongs to the connection, not to any request).
fn protocol_reject(reply_tx: &Sender<Vec<u8>>, shared: &Arc<Shared>, detail: &str) {
    bump(&shared.stats.protocol_errors);
    let reason = RejectReason::MalformedSubmission { detail: detail.to_string() };
    shared.stats.note_reject(&reason);
    let frame = wire::encode(&Message::Reject(RejectMsg { request: 0, reason }));
    let _ = reply_tx.send(frame);
}

impl Message {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str {
        match self {
            Message::Challenge(_) => "challenge",
            Message::Proof(_) => "proof",
            Message::Report(_) => "report",
            Message::BatchSummary(_) => "batch-summary",
            Message::Issue(_) => "issue",
            Message::Grant(_) => "grant",
            Message::Submit(_) => "submit",
            Message::Verdict(_) => "verdict",
            Message::Reject(_) => "reject",
        }
    }
}
