//! The fleet wire format: a hand-rolled, versioned, length-prefixed binary
//! codec for every message the attestation service exchanges.
//!
//! Layout of a frame (all integers little-endian):
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0 | 2 | magic `b"DW"` |
//! | 2 | 1 | version (currently [`WIRE_VERSION`]) |
//! | 3 | 1 | message type tag |
//! | 4 | 4 | payload length `n` |
//! | 8 | `n` | payload |
//!
//! Every decode path is **total**: malformed, truncated, corrupted or
//! hostile input yields a [`WireError`], never a panic, and no length
//! field can drive an allocation larger than the input itself. Decoding
//! also re-validates embedded [`PoxConfig`] bounds, so a region that the
//! verifier would crash on (e.g. an even `or_max`) is rejected at the
//! wire boundary.

use apex::{PoxConfig, PoxProof};
use dialed::attest::DialedProof;
use dialed::report::{BatchReport, Finding, RejectReason, Report, Verdict, VerifyStats};
use hacl::{Digest, DIGEST_LEN};
use std::fmt;
use vrased::Challenge;

/// Current codec version, bumped on any incompatible layout change.
/// Version 2 replaced the free-form rejection string with the structured
/// [`RejectReason`] encoding; version 3 added the request-correlated
/// networking envelope ([`IssueMsg`], [`GrantMsg`], [`SubmitMsg`],
/// [`VerdictMsg`], [`RejectMsg`]) and the
/// [`Overloaded`](RejectReason::Overloaded) backpressure reason.
pub const WIRE_VERSION: u8 = 3;

/// Frame magic: "Dialed Wire".
pub const MAGIC: [u8; 2] = *b"DW";

/// Size of the fixed frame header preceding the payload.
pub const HEADER_LEN: usize = 8;

/// Decode failures. Every variant is a graceful error; the decoder never
/// panics on any input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Input ended before the announced structure was complete.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// The first two bytes are not [`MAGIC`].
    BadMagic,
    /// Version byte this decoder does not speak.
    UnsupportedVersion(u8),
    /// Unknown message/variant discriminant.
    UnknownTag {
        /// Which discriminant field was bad.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// The frame's payload length disagrees with the bytes supplied.
    LengthMismatch {
        /// Payload length announced by the header.
        announced: usize,
        /// Payload bytes actually present.
        present: usize,
    },
    /// A structure decoded cleanly but left unconsumed payload bytes.
    TrailingBytes(usize),
    /// An embedded string is not valid UTF-8.
    BadUtf8,
    /// A boolean field held something other than 0 or 1.
    BadBool(u8),
    /// Embedded region metadata failed [`PoxConfig`] validation.
    BadConfig(&'static str),
    /// A counted field does not fit this platform's `usize`.
    Overflow(&'static str),
    /// A well-formed frame of the wrong kind arrived where a specific
    /// message was required (e.g. a non-proof frame at the submission
    /// endpoint).
    UnexpectedMessage {
        /// The message kind the endpoint required.
        expected: &'static str,
    },
    /// A frame header announced a payload beyond the receiver's
    /// per-connection cap — the oversized-frame defense of
    /// [`FrameReader`]; the stream is not worth resynchronising.
    FrameTooLarge {
        /// Payload length the header announced.
        announced: usize,
        /// The receiver's configured cap.
        max: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated: needed {need} more bytes, had {have}")
            }
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            WireError::LengthMismatch { announced, present } => {
                write!(f, "payload length {announced} announced but {present} bytes present")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing payload bytes"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadBool(b) => write!(f, "boolean field holds {b:#04x}"),
            WireError::BadConfig(m) => write!(f, "embedded PoX config invalid: {m}"),
            WireError::Overflow(what) => write!(f, "{what} does not fit usize"),
            WireError::UnexpectedMessage { expected } => {
                write!(f, "frame decoded but is not a {expected} message")
            }
            WireError::FrameTooLarge { announced, max } => {
                write!(f, "frame announces {announced} payload bytes, cap is {max}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for RejectReason {
    /// Wire failures reject as [`RejectReason::MalformedSubmission`]: the
    /// bytes never decoded into a proof worth spending cryptography on.
    fn from(e: WireError) -> Self {
        RejectReason::MalformedSubmission { detail: e.to_string() }
    }
}

/// A challenge as issued to one device: the session coordinates plus the
/// 256-bit nonce-derived challenge itself.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChallengeMsg {
    /// Session the device must answer under.
    pub session: u64,
    /// Target device.
    pub device: u64,
    /// The device's monotonic challenge counter for this session.
    pub nonce: u64,
    /// Logical-clock deadline after which the session expires.
    pub deadline: u64,
    /// The attestation challenge.
    pub challenge: Challenge,
}

/// A device's attestation response for one session.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProofMsg {
    /// Session being answered.
    pub session: u64,
    /// Responding device.
    pub device: u64,
    /// The DIALED proof (APEX PoX carrying CF-Log + I-Log).
    pub proof: DialedProof,
}

/// A per-session verdict pushed back to operators or devices.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReportMsg {
    /// Session the verdict belongs to.
    pub session: u64,
    /// Device that was verified.
    pub device: u64,
    /// The verifier's full report.
    pub report: Report,
}

/// One line of a [`BatchSummary`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OutcomeSummary {
    /// Submission index within the batch.
    pub index: u64,
    /// Device identifier.
    pub device: u64,
    /// Final verdict.
    pub verdict: Verdict,
}

/// A compact summary of one [`BatchReport`]: aggregate statistics plus the
/// per-device verdicts (full findings travel as [`ReportMsg`]s).
#[derive(Clone, PartialEq, Debug)]
pub struct BatchSummary {
    /// Jobs in the batch.
    pub total: u64,
    /// Clean verdicts.
    pub clean: u64,
    /// Cryptographic rejections.
    pub rejected: u64,
    /// Reconstructed attacks.
    pub attacks: u64,
    /// Worker threads used.
    pub workers: u64,
    /// Work-stealing events.
    pub steals: u64,
    /// Wall-clock nanoseconds for the batch.
    pub wall_nanos: u64,
    /// Throughput over the wall clock.
    pub proofs_per_sec: f64,
    /// Total instructions abstractly executed.
    pub emulated_insns: u64,
    /// Per-device verdicts in submission order.
    pub outcomes: Vec<OutcomeSummary>,
}

impl BatchSummary {
    /// Summarises a [`BatchReport`].
    #[must_use]
    pub fn from_report(report: &BatchReport) -> Self {
        let s = &report.stats;
        Self {
            total: s.total as u64,
            clean: s.clean as u64,
            rejected: s.rejected as u64,
            attacks: s.attacks as u64,
            workers: s.workers as u64,
            steals: s.steals as u64,
            wall_nanos: u64::try_from(s.wall.as_nanos()).unwrap_or(u64::MAX),
            proofs_per_sec: s.proofs_per_sec,
            emulated_insns: s.emulated_insns as u64,
            outcomes: report
                .outcomes
                .iter()
                .map(|o| OutcomeSummary {
                    index: o.index as u64,
                    device: o.device_id,
                    verdict: o.report.verdict,
                })
                .collect(),
        }
    }
}

/// Client → server: request a fresh attestation challenge for a device.
/// The `request` id is client-chosen and echoed in the reply
/// ([`GrantMsg`] or [`RejectMsg`]), so many devices multiplex over one
/// connection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IssueMsg {
    /// Client-chosen correlation id, echoed in the reply.
    pub request: u64,
    /// Device the challenge is requested for.
    pub device: u64,
}

/// Server → client: the challenge granted for an [`IssueMsg`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GrantMsg {
    /// Correlation id of the issue request being answered.
    pub request: u64,
    /// The issued challenge.
    pub body: ChallengeMsg,
}

/// Client → server: a proof submission. Answered *eventually* by a
/// [`VerdictMsg`] (after the session's batch drains — replies arrive out
/// of submission order) or immediately by a [`RejectMsg`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SubmitMsg {
    /// Client-chosen correlation id, echoed in the eventual reply.
    pub request: u64,
    /// The submission itself.
    pub body: ProofMsg,
}

/// Server → client: the final verdict for a [`SubmitMsg`]. Correlate by
/// `request`, not arrival order: batch drains resolve whole shards at
/// once.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerdictMsg {
    /// Correlation id of the submit request being answered.
    pub request: u64,
    /// The session's full report.
    pub body: ReportMsg,
}

/// Server → client: a structured rejection of one request — session
/// violations, undecodable submissions, unknown principals, or explicit
/// [`Overloaded`](RejectReason::Overloaded) backpressure. A `request` of
/// 0 with a protocol-level reason means the rejection is connection-fatal
/// (the server closes after sending it).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RejectMsg {
    /// Correlation id of the rejected request (0 for connection-level
    /// violations that cannot be attributed to one request).
    pub request: u64,
    /// Why the request was refused.
    pub reason: RejectReason,
}

/// Every message the fleet protocol exchanges.
#[derive(Clone, PartialEq, Debug)]
pub enum Message {
    /// Verifier → device: an attestation challenge.
    Challenge(ChallengeMsg),
    /// Device → verifier: the attestation response.
    Proof(ProofMsg),
    /// Verifier → operator/device: one session's verdict.
    Report(ReportMsg),
    /// Verifier → operator: a batch summary.
    BatchSummary(BatchSummary),
    /// Client → server: challenge request (networked envelope).
    Issue(IssueMsg),
    /// Server → client: challenge reply (networked envelope).
    Grant(GrantMsg),
    /// Client → server: correlated proof submission (networked envelope).
    Submit(SubmitMsg),
    /// Server → client: correlated final verdict (networked envelope).
    Verdict(VerdictMsg),
    /// Server → client: correlated structured rejection (networked
    /// envelope).
    Reject(RejectMsg),
}

const TAG_CHALLENGE: u8 = 1;
const TAG_PROOF: u8 = 2;
const TAG_REPORT: u8 = 3;
const TAG_BATCH_SUMMARY: u8 = 4;
const TAG_ISSUE: u8 = 5;
const TAG_GRANT: u8 = 6;
const TAG_SUBMIT: u8 = 7;
const TAG_VERDICT: u8 = 8;
const TAG_REJECT: u8 = 9;

// ---------------------------------------------------------------------------
// Encoding

/// Little-endian byte-string builder shared by the wire codec and the
/// durable store ([`crate::store`]): both speak the same framing dialect.
pub(crate) struct Writer(pub(crate) Vec<u8>);

impl Writer {
    pub(crate) fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub(crate) fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.0.extend_from_slice(v);
    }
    /// Length-prefixed byte string (`u32` length).
    pub(crate) fn lp_bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("field longer than u32::MAX"));
        self.bytes(v);
    }
    pub(crate) fn string(&mut self, v: &str) {
        self.lp_bytes(v.as_bytes());
    }
}

fn encode_challenge(w: &mut Writer, m: &ChallengeMsg) {
    w.u64(m.session);
    w.u64(m.device);
    w.u64(m.nonce);
    w.u64(m.deadline);
    w.bytes(m.challenge.as_bytes());
}

/// Encodes the proof body alone — shared with the durable store, which
/// persists accepted proofs inside `ProofAccepted` events.
pub(crate) fn encode_dialed_proof(w: &mut Writer, proof: &DialedProof) {
    let pox = &proof.pox;
    w.bytes(&pox.cfg.to_metadata_bytes());
    w.u8(u8::from(pox.exec));
    w.lp_bytes(&pox.or_data);
    w.bytes(&pox.tag);
}

fn encode_proof(w: &mut Writer, m: &ProofMsg) {
    w.u64(m.session);
    w.u64(m.device);
    encode_dialed_proof(w, &m.proof);
}

fn encode_verdict(w: &mut Writer, v: Verdict) {
    w.u8(match v {
        Verdict::Clean => 0,
        Verdict::Rejected => 1,
        Verdict::Attack => 2,
    });
}

fn encode_reject_reason(w: &mut Writer, reason: &RejectReason) {
    match reason {
        RejectReason::RegionMismatch => w.u8(0),
        RejectReason::ExecClear => w.u8(1),
        RejectReason::ErLengthMismatch => w.u8(2),
        RejectReason::OrLengthMismatch => w.u8(3),
        RejectReason::MacMismatch => w.u8(4),
        RejectReason::NotFullyInstrumented => w.u8(5),
        RejectReason::UnknownKey { device } => {
            w.u8(6);
            w.u64(*device);
        }
        RejectReason::MalformedSubmission { detail } => {
            w.u8(7);
            w.string(detail);
        }
        RejectReason::SessionViolation { detail } => {
            w.u8(8);
            w.string(detail);
        }
        RejectReason::UnknownPrincipal { detail } => {
            w.u8(9);
            w.string(detail);
        }
        RejectReason::Overloaded { pending } => {
            w.u8(10);
            w.u64(*pending);
        }
    }
}

fn encode_finding(w: &mut Writer, finding: &Finding) {
    match finding {
        Finding::PoxRejected { reason } => {
            w.u8(0);
            encode_reject_reason(w, reason);
        }
        Finding::ReturnHijack { at, expected, actual } => {
            w.u8(1);
            w.u16(*at);
            w.u16(*expected);
            w.u16(*actual);
        }
        Finding::LogDivergence { addr, device, emulated } => {
            w.u8(2);
            w.u16(*addr);
            w.u16(*device);
            w.u16(*emulated);
        }
        Finding::OutOfBoundsWrite { pc, addr } => {
            w.u8(3);
            w.u16(*pc);
            w.u16(*addr);
        }
        Finding::ActuationViolation { port, cycles, max } => {
            w.u8(4);
            w.u16(*port);
            w.u64(*cycles);
            w.u64(*max);
        }
        Finding::OrHeadTruncated { capacity, required } => {
            w.u8(5);
            w.u64(*capacity as u64);
            w.u64(*required as u64);
        }
        Finding::EmulationStuck => w.u8(6),
        Finding::PolicyViolation { policy, detail } => {
            w.u8(7);
            w.string(policy);
            w.string(detail);
        }
    }
}

/// Encodes a full [`Report`] (verdict + findings + stats) — shared with
/// the durable store, which persists verdicts inside `VerdictRecorded`
/// events.
pub(crate) fn encode_report_fields(w: &mut Writer, report: &Report) {
    encode_verdict(w, report.verdict);
    w.u32(u32::try_from(report.findings.len()).expect("finding count"));
    for finding in &report.findings {
        encode_finding(w, finding);
    }
    let s = &report.stats;
    w.u64(s.emulated_insns as u64);
    w.u64(s.log_bytes_used as u64);
    w.u64(s.cf_entries as u64);
    w.u64(s.input_entries as u64);
    w.u64(s.arg_entries as u64);
}

fn encode_report(w: &mut Writer, m: &ReportMsg) {
    w.u64(m.session);
    w.u64(m.device);
    encode_report_fields(w, &m.report);
}

fn encode_batch_summary(w: &mut Writer, m: &BatchSummary) {
    w.u64(m.total);
    w.u64(m.clean);
    w.u64(m.rejected);
    w.u64(m.attacks);
    w.u64(m.workers);
    w.u64(m.steals);
    w.u64(m.wall_nanos);
    w.u64(m.proofs_per_sec.to_bits());
    w.u64(m.emulated_insns);
    w.u32(u32::try_from(m.outcomes.len()).expect("outcome count"));
    for o in &m.outcomes {
        w.u64(o.index);
        w.u64(o.device);
        encode_verdict(w, o.verdict);
    }
}

/// Encodes a message as one framed byte string.
#[must_use]
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut payload = Writer(Vec::new());
    let tag = match msg {
        Message::Challenge(m) => {
            encode_challenge(&mut payload, m);
            TAG_CHALLENGE
        }
        Message::Proof(m) => {
            encode_proof(&mut payload, m);
            TAG_PROOF
        }
        Message::Report(m) => {
            encode_report(&mut payload, m);
            TAG_REPORT
        }
        Message::BatchSummary(m) => {
            encode_batch_summary(&mut payload, m);
            TAG_BATCH_SUMMARY
        }
        Message::Issue(m) => {
            payload.u64(m.request);
            payload.u64(m.device);
            TAG_ISSUE
        }
        Message::Grant(m) => {
            payload.u64(m.request);
            encode_challenge(&mut payload, &m.body);
            TAG_GRANT
        }
        Message::Submit(m) => {
            payload.u64(m.request);
            encode_proof(&mut payload, &m.body);
            TAG_SUBMIT
        }
        Message::Verdict(m) => {
            payload.u64(m.request);
            encode_report(&mut payload, &m.body);
            TAG_VERDICT
        }
        Message::Reject(m) => {
            payload.u64(m.request);
            encode_reject_reason(&mut payload, &m.reason);
            TAG_REJECT
        }
    };
    let payload = payload.0;
    let mut out = Writer(Vec::with_capacity(HEADER_LEN + payload.len()));
    out.bytes(&MAGIC);
    out.u8(WIRE_VERSION);
    out.u8(tag);
    out.u32(u32::try_from(payload.len()).expect("payload longer than u32::MAX"));
    out.bytes(&payload);
    out.0
}

// ---------------------------------------------------------------------------
// Decoding

/// Total-decode cursor shared by the wire codec and the durable store —
/// every read is bounds-checked and no announced length can drive an
/// allocation larger than the input itself.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { need: n, have: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub(crate) fn usize64(&mut self, what: &'static str) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Overflow(what))
    }

    pub(crate) fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadBool(b)),
        }
    }

    /// A length-prefixed byte string. The announced length is checked
    /// against the remaining input *before* any allocation, so a hostile
    /// length cannot make the decoder allocate more than the input size.
    pub(crate) fn lp_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = usize::try_from(self.u32()?).map_err(|_| WireError::Overflow("byte string"))?;
        Ok(self.take(n)?.to_vec())
    }

    pub(crate) fn string(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.lp_bytes()?).map_err(|_| WireError::BadUtf8)
    }

    pub(crate) fn digest(&mut self) -> Result<Digest, WireError> {
        Ok(self.take(DIGEST_LEN)?.try_into().expect("digest-sized slice"))
    }
}

fn decode_challenge(r: &mut Reader<'_>) -> Result<ChallengeMsg, WireError> {
    Ok(ChallengeMsg {
        session: r.u64()?,
        device: r.u64()?,
        nonce: r.u64()?,
        deadline: r.u64()?,
        challenge: Challenge::from_bytes(r.digest()?),
    })
}

fn decode_config(r: &mut Reader<'_>) -> Result<PoxConfig, WireError> {
    let (er_min, er_max, er_exit) = (r.u16()?, r.u16()?, r.u16()?);
    let (or_min, or_max) = (r.u16()?, r.u16()?);
    PoxConfig::new(er_min, er_max, er_exit, or_min, or_max)
        .map_err(|_| WireError::BadConfig("region bounds rejected"))
}

/// Decodes a proof body alone (the inverse of [`encode_dialed_proof`]),
/// re-validating the embedded [`PoxConfig`] exactly as the wire path does.
pub(crate) fn decode_dialed_proof(r: &mut Reader<'_>) -> Result<DialedProof, WireError> {
    let cfg = decode_config(r)?;
    let exec = r.bool()?;
    let or_data = r.lp_bytes()?;
    let tag = r.digest()?;
    Ok(DialedProof { pox: PoxProof { cfg, exec, or_data, tag } })
}

fn decode_proof(r: &mut Reader<'_>) -> Result<ProofMsg, WireError> {
    let session = r.u64()?;
    let device = r.u64()?;
    let proof = decode_dialed_proof(r)?;
    Ok(ProofMsg { session, device, proof })
}

fn decode_verdict(r: &mut Reader<'_>) -> Result<Verdict, WireError> {
    match r.u8()? {
        0 => Ok(Verdict::Clean),
        1 => Ok(Verdict::Rejected),
        2 => Ok(Verdict::Attack),
        tag => Err(WireError::UnknownTag { what: "verdict", tag }),
    }
}

fn decode_reject_reason(r: &mut Reader<'_>) -> Result<RejectReason, WireError> {
    match r.u8()? {
        0 => Ok(RejectReason::RegionMismatch),
        1 => Ok(RejectReason::ExecClear),
        2 => Ok(RejectReason::ErLengthMismatch),
        3 => Ok(RejectReason::OrLengthMismatch),
        4 => Ok(RejectReason::MacMismatch),
        5 => Ok(RejectReason::NotFullyInstrumented),
        6 => Ok(RejectReason::UnknownKey { device: r.u64()? }),
        7 => Ok(RejectReason::MalformedSubmission { detail: r.string()? }),
        8 => Ok(RejectReason::SessionViolation { detail: r.string()? }),
        9 => Ok(RejectReason::UnknownPrincipal { detail: r.string()? }),
        10 => Ok(RejectReason::Overloaded { pending: r.u64()? }),
        tag => Err(WireError::UnknownTag { what: "reject reason", tag }),
    }
}

fn decode_finding(r: &mut Reader<'_>) -> Result<Finding, WireError> {
    match r.u8()? {
        0 => Ok(Finding::PoxRejected { reason: decode_reject_reason(r)? }),
        1 => Ok(Finding::ReturnHijack { at: r.u16()?, expected: r.u16()?, actual: r.u16()? }),
        2 => Ok(Finding::LogDivergence { addr: r.u16()?, device: r.u16()?, emulated: r.u16()? }),
        3 => Ok(Finding::OutOfBoundsWrite { pc: r.u16()?, addr: r.u16()? }),
        4 => Ok(Finding::ActuationViolation { port: r.u16()?, cycles: r.u64()?, max: r.u64()? }),
        5 => Ok(Finding::OrHeadTruncated {
            capacity: r.usize64("finding capacity")?,
            required: r.usize64("finding required")?,
        }),
        6 => Ok(Finding::EmulationStuck),
        7 => Ok(Finding::PolicyViolation { policy: r.string()?, detail: r.string()? }),
        tag => Err(WireError::UnknownTag { what: "finding", tag }),
    }
}

/// Decodes a full [`Report`] (the inverse of [`encode_report_fields`]).
pub(crate) fn decode_report_fields(r: &mut Reader<'_>) -> Result<Report, WireError> {
    let verdict = decode_verdict(r)?;
    let count = usize::try_from(r.u32()?).map_err(|_| WireError::Overflow("finding count"))?;
    // Every finding costs at least its one tag byte, so a count beyond the
    // remaining input is unsatisfiable — reject before reserving anything.
    if count > r.remaining() {
        return Err(WireError::Truncated { need: count, have: r.remaining() });
    }
    let mut findings = Vec::with_capacity(count);
    for _ in 0..count {
        findings.push(decode_finding(r)?);
    }
    let stats = VerifyStats {
        emulated_insns: r.usize64("emulated_insns")?,
        log_bytes_used: r.usize64("log_bytes_used")?,
        cf_entries: r.usize64("cf_entries")?,
        input_entries: r.usize64("input_entries")?,
        arg_entries: r.usize64("arg_entries")?,
    };
    Ok(Report { verdict, findings, stats })
}

fn decode_report(r: &mut Reader<'_>) -> Result<ReportMsg, WireError> {
    let session = r.u64()?;
    let device = r.u64()?;
    let report = decode_report_fields(r)?;
    Ok(ReportMsg { session, device, report })
}

fn decode_batch_summary(r: &mut Reader<'_>) -> Result<BatchSummary, WireError> {
    let total = r.u64()?;
    let clean = r.u64()?;
    let rejected = r.u64()?;
    let attacks = r.u64()?;
    let workers = r.u64()?;
    let steals = r.u64()?;
    let wall_nanos = r.u64()?;
    let proofs_per_sec = f64::from_bits(r.u64()?);
    let emulated_insns = r.u64()?;
    let count = usize::try_from(r.u32()?).map_err(|_| WireError::Overflow("outcome count"))?;
    const OUTCOME_LEN: usize = 17; // index + device + verdict byte
    let need = count.saturating_mul(OUTCOME_LEN);
    if need > r.remaining() {
        return Err(WireError::Truncated { need, have: r.remaining() });
    }
    let mut outcomes = Vec::with_capacity(count);
    for _ in 0..count {
        outcomes.push(OutcomeSummary {
            index: r.u64()?,
            device: r.u64()?,
            verdict: decode_verdict(r)?,
        });
    }
    Ok(BatchSummary {
        total,
        clean,
        rejected,
        attacks,
        workers,
        steals,
        wall_nanos,
        proofs_per_sec,
        emulated_insns,
        outcomes,
    })
}

/// Decodes one framed message.
///
/// # Errors
///
/// Returns a [`WireError`] for any input that is not exactly one
/// well-formed frame; never panics.
pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(bytes);
    if r.take(2)? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let tag = r.u8()?;
    let announced = usize::try_from(r.u32()?).map_err(|_| WireError::Overflow("payload length"))?;
    if announced != r.remaining() {
        return Err(WireError::LengthMismatch { announced, present: r.remaining() });
    }
    let msg = match tag {
        TAG_CHALLENGE => Message::Challenge(decode_challenge(&mut r)?),
        TAG_PROOF => Message::Proof(decode_proof(&mut r)?),
        TAG_REPORT => Message::Report(decode_report(&mut r)?),
        TAG_BATCH_SUMMARY => Message::BatchSummary(decode_batch_summary(&mut r)?),
        TAG_ISSUE => Message::Issue(IssueMsg { request: r.u64()?, device: r.u64()? }),
        TAG_GRANT => {
            Message::Grant(GrantMsg { request: r.u64()?, body: decode_challenge(&mut r)? })
        }
        TAG_SUBMIT => Message::Submit(SubmitMsg { request: r.u64()?, body: decode_proof(&mut r)? }),
        TAG_VERDICT => {
            Message::Verdict(VerdictMsg { request: r.u64()?, body: decode_report(&mut r)? })
        }
        TAG_REJECT => {
            Message::Reject(RejectMsg { request: r.u64()?, reason: decode_reject_reason(&mut r)? })
        }
        tag => return Err(WireError::UnknownTag { what: "message", tag }),
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Incremental framing

/// An incremental frame assembler for byte streams: socket reads arrive in
/// arbitrary chunks — a length prefix split across two reads, three frames
/// in one read — and [`FrameReader`] reassembles them into [`Message`]s.
///
/// Hostile-input posture:
///
/// * The magic and version bytes are checked as soon as they arrive, so a
///   peer speaking garbage is refused within its first two bytes, before
///   any buffering commitment.
/// * The announced payload length is checked against `max_frame` the
///   moment the header completes ([`WireError::FrameTooLarge`]); no length
///   field can make the reader buffer more than `HEADER_LEN + max_frame`
///   bytes per connection.
/// * Every error is **stream-fatal**: framing is byte-exact, so after any
///   violation there is no trustworthy resynchronisation point and the
///   caller should answer with a structured rejection and close.
///
/// The reader never blocks and never reads a socket itself — feed it
/// whatever bytes arrived, then [`poll`](FrameReader::poll) until it
/// reports `Ok(None)` (needs more bytes).
#[derive(Debug)]
pub struct FrameReader {
    max_frame: usize,
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader enforcing `max_frame` as the per-frame payload cap.
    #[must_use]
    pub fn new(max_frame: usize) -> Self {
        Self { max_frame, buf: Vec::new() }
    }

    /// Bytes buffered towards the next frame (diagnostics; also the
    /// caller's partial-frame signal for slow-loris deadlines).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Appends bytes received from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete message, if the buffer holds one.
    ///
    /// `Ok(Some(msg))` consumed one frame; call again — the buffer may
    /// hold more. `Ok(None)` means more bytes are needed.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] is stream-fatal (see the type-level docs): bad
    /// magic or version, an over-cap length announcement, or a complete
    /// frame whose payload fails to decode.
    pub fn poll(&mut self) -> Result<Option<Message>, WireError> {
        // Fail fast on the fixed prefix, byte by byte, before waiting for
        // a full header.
        for (i, &expect) in MAGIC.iter().enumerate() {
            match self.buf.get(i) {
                Some(&b) if b == expect => {}
                Some(_) => return Err(WireError::BadMagic),
                None => return Ok(None),
            }
        }
        match self.buf.get(2) {
            Some(&v) if v != WIRE_VERSION => return Err(WireError::UnsupportedVersion(v)),
            Some(_) => {}
            None => return Ok(None),
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let announced =
            u32::from_le_bytes(self.buf[4..8].try_into().expect("4 header bytes")) as usize;
        if announced > self.max_frame {
            return Err(WireError::FrameTooLarge { announced, max: self.max_frame });
        }
        let total = HEADER_LEN + announced;
        if self.buf.len() < total {
            return Ok(None);
        }
        let msg = decode(&self.buf[..total])?;
        self.buf.drain(..total);
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_proof() -> ProofMsg {
        let cfg = PoxConfig::new(0xE000, 0xE0FF, 0xE0FE, 0x0600, 0x06FF).unwrap();
        ProofMsg {
            session: 7,
            device: 42,
            proof: DialedProof {
                pox: PoxProof {
                    cfg,
                    exec: true,
                    or_data: (0..=255u8).collect(),
                    tag: [0xA5; DIGEST_LEN],
                },
            },
        }
    }

    fn sample_report() -> ReportMsg {
        ReportMsg {
            session: 9,
            device: 13,
            report: Report {
                verdict: Verdict::Attack,
                findings: vec![
                    Finding::PoxRejected {
                        reason: RejectReason::SessionViolation {
                            detail: "naïve — UTF-8 ✓".into()
                        },
                    },
                    Finding::PoxRejected { reason: RejectReason::MacMismatch },
                    Finding::PoxRejected { reason: RejectReason::UnknownKey { device: 1 << 40 } },
                    Finding::ReturnHijack { at: 1, expected: 2, actual: 3 },
                    Finding::LogDivergence { addr: 0x600, device: 5, emulated: 6 },
                    Finding::OutOfBoundsWrite { pc: 7, addr: 8 },
                    Finding::ActuationViolation { port: 0x60, cycles: 1 << 40, max: 9 },
                    Finding::OrHeadTruncated { capacity: 8, required: 9 },
                    Finding::EmulationStuck,
                    Finding::PolicyViolation { policy: "p".into(), detail: "d".into() },
                ],
                stats: VerifyStats {
                    emulated_insns: 1,
                    log_bytes_used: 2,
                    cf_entries: 3,
                    input_entries: 4,
                    arg_entries: 5,
                },
            },
        }
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Challenge(ChallengeMsg {
                session: 1,
                device: 2,
                nonce: 3,
                deadline: 4,
                challenge: Challenge::derive(b"wire", 0),
            }),
            Message::Proof(sample_proof()),
            Message::Report(sample_report()),
            Message::Issue(IssueMsg { request: 11, device: 42 }),
            Message::Grant(GrantMsg {
                request: 12,
                body: ChallengeMsg {
                    session: 5,
                    device: 42,
                    nonce: 6,
                    deadline: 7,
                    challenge: Challenge::derive(b"net", 1),
                },
            }),
            Message::Submit(SubmitMsg { request: 13, body: sample_proof() }),
            Message::Verdict(VerdictMsg { request: 14, body: sample_report() }),
            Message::Reject(RejectMsg {
                request: 15,
                reason: RejectReason::Overloaded { pending: 1 << 33 },
            }),
            Message::Reject(RejectMsg {
                request: 16,
                reason: RejectReason::MalformedSubmission { detail: "torn frame".into() },
            }),
            Message::BatchSummary(BatchSummary {
                total: 3,
                clean: 1,
                rejected: 1,
                attacks: 1,
                workers: 4,
                steals: 2,
                wall_nanos: 123_456_789,
                proofs_per_sec: 1234.5,
                emulated_insns: 99,
                outcomes: vec![
                    OutcomeSummary { index: 0, device: 10, verdict: Verdict::Clean },
                    OutcomeSummary { index: 1, device: 11, verdict: Verdict::Rejected },
                    OutcomeSummary { index: 2, device: 12, verdict: Verdict::Attack },
                ],
            }),
        ]
    }

    #[test]
    fn all_message_types_round_trip() {
        for msg in sample_messages() {
            let bytes = encode(&msg);
            assert_eq!(decode(&bytes).as_ref(), Ok(&msg), "{msg:?}");
        }
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        for msg in sample_messages() {
            let bytes = encode(&msg);
            for cut in 0..bytes.len() {
                assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} of {msg:?} decoded");
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&sample_messages()[0]);
        bytes.push(0);
        // An appended byte breaks the announced length.
        assert_eq!(decode(&bytes), Err(WireError::LengthMismatch { announced: 64, present: 65 }));
    }

    #[test]
    fn header_corruptions_are_specific_errors() {
        let bytes = encode(&sample_messages()[0]);

        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(decode(&bad), Err(WireError::BadMagic));

        let mut bad = bytes.clone();
        bad[2] = 0x7F;
        assert_eq!(decode(&bad), Err(WireError::UnsupportedVersion(0x7F)));

        let mut bad = bytes.clone();
        bad[3] = 0xEE;
        assert_eq!(decode(&bad), Err(WireError::UnknownTag { what: "message", tag: 0xEE }));

        let mut bad = bytes;
        bad[4] ^= 0x01;
        assert!(matches!(decode(&bad), Err(WireError::LengthMismatch { .. })));
    }

    #[test]
    fn hostile_length_cannot_force_allocation() {
        // A proof frame whose or_data length claims 4 GiB must fail fast.
        let mut bytes = encode(&Message::Proof(sample_proof()));
        // or_data length field sits after session+device+cfg+exec.
        let off = HEADER_LEN + 8 + 8 + 10 + 1;
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn invalid_embedded_config_rejected_at_decode() {
        // Even `or_max` (the PoxConfig regression class) must not survive
        // the wire boundary.
        let mut msg = sample_proof();
        msg.proof.pox.cfg.or_max = 0x06FE;
        let bytes = encode(&Message::Proof(msg));
        assert_eq!(decode(&bytes), Err(WireError::BadConfig("region bounds rejected")));
    }

    #[test]
    fn non_canonical_bool_rejected() {
        let msg = sample_proof();
        let bytes = encode(&Message::Proof(msg));
        let mut bad = bytes;
        let exec_off = HEADER_LEN + 8 + 8 + 10;
        bad[exec_off] = 2;
        assert_eq!(decode(&bad), Err(WireError::BadBool(2)));
    }

    #[test]
    fn batch_summary_from_report_matches_stats() {
        use dialed::report::{BatchOutcome, BatchStats};
        let report = BatchReport {
            outcomes: vec![BatchOutcome {
                index: 0,
                device_id: 77,
                report: Report::rejected(RejectReason::MacMismatch),
            }],
            stats: BatchStats {
                total: 1,
                rejected: 1,
                workers: 2,
                wall: std::time::Duration::from_micros(5),
                proofs_per_sec: 200_000.0,
                ..BatchStats::default()
            },
        };
        let summary = BatchSummary::from_report(&report);
        assert_eq!(summary.total, 1);
        assert_eq!(summary.rejected, 1);
        assert_eq!(summary.wall_nanos, 5_000);
        assert_eq!(summary.outcomes[0].device, 77);
        assert_eq!(summary.outcomes[0].verdict, Verdict::Rejected);
    }

    #[test]
    fn frame_reader_one_byte_at_a_time() {
        // Socket reads arrive in arbitrary chunks; the worst case is one
        // byte per read, with the length prefix split across feeds.
        for msg in sample_messages() {
            let bytes = encode(&msg);
            let mut reader = FrameReader::new(1 << 20);
            for (i, &b) in bytes.iter().enumerate() {
                reader.feed(&[b]);
                let got = reader.poll().unwrap_or_else(|e| panic!("byte {i} of {msg:?}: {e}"));
                if i + 1 < bytes.len() {
                    assert!(got.is_none(), "byte {i} of {msg:?} completed early");
                } else {
                    assert_eq!(got.as_ref(), Some(&msg));
                }
            }
            assert_eq!(reader.buffered(), 0);
            assert_eq!(reader.poll(), Ok(None));
        }
    }

    #[test]
    fn frame_reader_many_frames_one_feed() {
        let msgs = sample_messages();
        let mut stream = Vec::new();
        for msg in &msgs {
            stream.extend_from_slice(&encode(msg));
        }
        let mut reader = FrameReader::new(1 << 20);
        reader.feed(&stream);
        for msg in &msgs {
            assert_eq!(reader.poll().unwrap().as_ref(), Some(msg));
        }
        assert_eq!(reader.poll(), Ok(None));
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn frame_reader_rejects_garbage_immediately() {
        // A peer speaking the wrong protocol is refused on its first byte,
        // not after a full header's worth of buffering.
        let mut reader = FrameReader::new(1 << 20);
        reader.feed(&[0xFF]);
        assert_eq!(reader.poll(), Err(WireError::BadMagic));

        let mut reader = FrameReader::new(1 << 20);
        reader.feed(&[MAGIC[0], MAGIC[1], 0x7F]);
        assert_eq!(reader.poll(), Err(WireError::UnsupportedVersion(0x7F)));
    }

    #[test]
    fn frame_reader_caps_announced_length() {
        // A 4 GiB length announcement must be refused at the header, long
        // before any payload byte is buffered.
        let mut header = encode(&sample_messages()[0])[..HEADER_LEN].to_vec();
        header[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = FrameReader::new(1 << 20);
        reader.feed(&header);
        assert_eq!(
            reader.poll(),
            Err(WireError::FrameTooLarge { announced: u32::MAX as usize, max: 1 << 20 })
        );
    }

    #[test]
    fn frame_reader_payload_errors_surface() {
        // A complete frame with a corrupt payload fails decode through the
        // reader just as it does through `decode` directly.
        let mut bytes = encode(&Message::Proof(sample_proof()));
        let exec_off = HEADER_LEN + 8 + 8 + 10;
        bytes[exec_off] = 2;
        let mut reader = FrameReader::new(1 << 20);
        reader.feed(&bytes);
        assert_eq!(reader.poll(), Err(WireError::BadBool(2)));
    }
}
