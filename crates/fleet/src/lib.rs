//! The fleet attestation service — the server frontend of a DIALED
//! deployment.
//!
//! The lower crates prove and verify a *single* proof; this crate runs the
//! protocol at fleet scale:
//!
//! ```text
//!            ┌────────────┐   issue    ┌────────────┐
//!  operator ─► [`registry`] ──────────► [`session`]  ─► Challenge ──► device
//!            │ devices,    │            │ nonces,    │    (wire)
//!            │ ops, keys   │            │ deadlines, │
//!            └─────▲───────┘            │ anti-replay│ ◄── Proof ───── device
//!                  │ verdicts           └─────┬──────┘    (wire)
//!            ┌─────┴───────┐    shard by op   │ accepted submissions
//!            │ [`ingest`]  │ ◄────────────────┘
//!            │ BatchVerifier drain
//!            └─────────────┘
//! ```
//!
//! * [`registry`] — who exists: operations (instrumented images + shared
//!   batch verifiers) and devices (individual keys, bound operation,
//!   last-verified counters).
//! * [`session`] — challenge lifecycle: monotonic per-device nonces, the
//!   `Issued → Submitted → Verified/Rejected/Expired` state machine,
//!   deadline expiry, duplicate- and replay-rejection *before* any
//!   cryptographic work.
//! * [`wire`] — the versioned, length-prefixed binary codec for every
//!   protocol message; all decode paths are total.
//! * [`ingest`] — the sharded submission queue draining each operation's
//!   pending proofs through one [`dialed::BatchVerifier`] across cores.
//!
//! [`Fleet`] glues the four together behind one handle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ingest;
pub mod registry;
pub mod session;
pub mod wire;

pub use ingest::{DrainStats, IngestQueue};
pub use registry::{DeviceId, DeviceRecord, OpId, OpRecord, Registry, RegistryError};
pub use session::{Session, SessionError, SessionId, SessionManager, SessionState};
pub use wire::{BatchSummary, ChallengeMsg, Message, ProofMsg, ReportMsg, WireError};

use dialed::attest::DialedProof;
use dialed::pipeline::InstrumentedOp;
use dialed::policy::Policy;
use vrased::KeyStore;

/// Tunables for a [`Fleet`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Label challenges are derived under (separates deployments).
    pub label: Vec<u8>,
    /// Session lifetime in logical ticks.
    pub challenge_ttl: u64,
    /// Per-device anti-replay window depth (accepted proof tags).
    pub replay_window: usize,
    /// Worker threads per operation's batch verifier
    /// (`None` = one per core).
    pub workers: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            label: b"dialed-fleet".to_vec(),
            challenge_ttl: 64,
            replay_window: 32,
            workers: None,
        }
    }
}

/// The attestation service: registry + sessions + sharded ingest.
#[derive(Debug)]
pub struct Fleet {
    registry: Registry,
    sessions: SessionManager,
    ingest: IngestQueue,
    workers: Option<usize>,
}

impl Fleet {
    /// A fleet with the given tunables.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        Self {
            registry: Registry::new(),
            sessions: SessionManager::new(
                &config.label,
                config.challenge_ttl,
                config.replay_window,
            ),
            ingest: IngestQueue::new(),
            workers: config.workers,
        }
    }

    /// Registers an operation (see [`Registry::register_op`]).
    pub fn register_op(
        &mut self,
        name: &str,
        op: InstrumentedOp,
        policies: Vec<Box<dyn Policy>>,
    ) -> OpId {
        self.registry.register_op(name, op, policies, self.workers)
    }

    /// Registers a device bound to `op` with its provisioning key seed.
    ///
    /// # Errors
    ///
    /// Fails if `op` is unknown.
    pub fn register_device(&mut self, op: OpId, key_seed: u64) -> Result<DeviceId, RegistryError> {
        self.registry.register_device(op, key_seed)
    }

    /// The attestation key a registered device was provisioned with (the
    /// device side of a simulation installs the same key).
    ///
    /// # Errors
    ///
    /// Fails if the device is unknown.
    pub fn device_keystore(&self, device: DeviceId) -> Result<KeyStore, RegistryError> {
        Ok(self.registry.device(device)?.keystore().clone())
    }

    /// Issues a challenge to `device` at logical time `now`, returning the
    /// wire-ready challenge message.
    ///
    /// # Errors
    ///
    /// Fails if the device is unknown.
    pub fn issue(&mut self, device: DeviceId, now: u64) -> Result<ChallengeMsg, RegistryError> {
        let op = self.registry.device(device)?.op;
        let s = self.sessions.issue(device, op, now);
        Ok(ChallengeMsg {
            session: s.id.0,
            device: device.0,
            nonce: s.nonce,
            deadline: s.deadline,
            challenge: s.challenge,
        })
    }

    /// Accepts a device's proof for a session. On success the submission
    /// is queued in the operation's ingest shard; on error nothing reaches
    /// the verifier (duplicates and replays die here).
    ///
    /// # Errors
    ///
    /// See [`SessionError`].
    pub fn submit(
        &mut self,
        session: SessionId,
        device: DeviceId,
        proof: DialedProof,
        now: u64,
    ) -> Result<(), SessionError> {
        self.sessions.submit(session, device, proof, now)?;
        let op = self.sessions.session(session).expect("submit validated the id").op;
        self.ingest.enqueue(op, session);
        Ok(())
    }

    /// [`Fleet::submit`] from an encoded [`ProofMsg`] frame, as received
    /// off the network.
    ///
    /// # Errors
    ///
    /// `Err(Ok(session_error))` for session-layer rejection,
    /// `Err(Err(wire_error))` for undecodable bytes (including non-proof
    /// messages).
    pub fn submit_wire(&mut self, bytes: &[u8], now: u64) -> SubmitWireResult {
        let msg = match wire::decode(bytes) {
            Ok(Message::Proof(m)) => m,
            Ok(_) => return Err(Err(WireError::UnexpectedMessage { expected: "proof" })),
            Err(e) => return Err(Err(e)),
        };
        let (session, device) = (SessionId(msg.session), DeviceId(msg.device));
        match self.submit(session, device, msg.proof, now) {
            Ok(()) => Ok(session),
            Err(e) => Err(Ok(e)),
        }
    }

    /// Expires overdue sessions, then drains every ingest shard through
    /// its operation's batch verifier, feeding verdicts back into sessions
    /// and registry. Returns the drain statistics plus how many sessions
    /// expired.
    pub fn drain(&mut self, now: u64) -> (DrainStats, usize) {
        let expired = self.sessions.expire_due(now);
        let stats = self.ingest.drain(&mut self.registry, &mut self.sessions);
        (stats, expired)
    }

    /// Pending (submitted, not yet drained) sessions.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.ingest.pending()
    }

    /// Evicts resolved sessions whose deadline lies before `now` so a
    /// long-running service's memory tracks open rounds, not history (see
    /// [`SessionManager::prune_resolved`]).
    pub fn prune_resolved(&mut self, now: u64) -> usize {
        self.sessions.prune_resolved(now)
    }

    /// Looks up a session.
    #[must_use]
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.session(id)
    }

    /// The wire-ready report message for a resolved session, if any.
    #[must_use]
    pub fn report_msg(&self, id: SessionId) -> Option<ReportMsg> {
        let s = self.sessions.session(id)?;
        Some(ReportMsg { session: s.id.0, device: s.device.0, report: s.report.clone()? })
    }

    /// Read access to the registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Read access to the session store.
    #[must_use]
    pub fn sessions(&self) -> &SessionManager {
        &self.sessions
    }

    /// Maps a failed [`Fleet::submit_wire`] outcome into a rejected
    /// [`Report`](dialed::report::Report) carrying the structured
    /// [`RejectReason`](dialed::report::RejectReason), so pre-verification
    /// failures (undecodable bytes, session violations) travel to
    /// operators through the same codec as cryptographic rejections.
    #[must_use]
    pub fn rejection_report(err: Result<SessionError, WireError>) -> dialed::report::Report {
        match err {
            Ok(session) => dialed::report::Report::rejected(session),
            Err(wire) => dialed::report::Report::rejected(wire),
        }
    }
}

/// Result of [`Fleet::submit_wire`]: the accepted session id, or the
/// session-layer / wire-layer rejection.
pub type SubmitWireResult = Result<SessionId, Result<SessionError, WireError>>;

#[cfg(test)]
mod tests {
    use super::*;
    use dialed::attest::DialedDevice;
    use dialed::pipeline::{BuildOptions, InstrumentMode};
    use dialed::report::Verdict;

    const OP_SRC: &str = "\
        .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";

    fn full_fleet() -> (Fleet, OpId) {
        let mut fleet = Fleet::new(FleetConfig { workers: Some(2), ..FleetConfig::default() });
        let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
        let op_id = fleet.register_op("adder", op, vec![]);
        (fleet, op_id)
    }

    /// Drives one device through a full honest round; returns its session.
    fn honest_round(fleet: &mut Fleet, op_id: OpId, seed: u64, now: u64) -> SessionId {
        let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
        let dev_id = fleet.register_device(op_id, seed).unwrap();
        let mut device = DialedDevice::new(op, fleet.device_keystore(dev_id).unwrap());
        let chal = fleet.issue(dev_id, now).unwrap();
        device.invoke(&[0, 0, 0, 0, 0, 0, 2, 3]);
        let proof = device.prove(&chal.challenge);
        fleet.submit(SessionId(chal.session), dev_id, proof, now + 1).unwrap();
        SessionId(chal.session)
    }

    #[test]
    fn honest_device_round_trips_to_verified() {
        let (mut fleet, op_id) = full_fleet();
        let sid = honest_round(&mut fleet, op_id, 1, 0);
        assert_eq!(fleet.pending(), 1);
        let (stats, expired) = fleet.drain(2);
        assert_eq!((stats.drained, stats.verified, expired), (1, 1, 0));
        let s = fleet.session(sid).unwrap();
        assert_eq!(s.state, SessionState::Verified);
        assert_eq!(s.report.as_ref().unwrap().verdict, Verdict::Clean);
        let dev = fleet.registry().device(s.device).unwrap();
        assert_eq!(dev.last_verified, Some(0));
        assert_eq!(dev.verified, 1);
        // The verdict is deliverable as a wire frame.
        let msg = fleet.report_msg(sid).unwrap();
        let bytes = wire::encode(&Message::Report(msg.clone()));
        assert_eq!(wire::decode(&bytes), Ok(Message::Report(msg)));
    }

    #[test]
    fn submissions_shard_by_operation() {
        let (mut fleet, op_a) = full_fleet();
        let other = InstrumentedOp::build(
            ".org 0xE000\nop:\n mov r14, &0x0060\n ret\n",
            "op",
            &BuildOptions::default(),
        )
        .unwrap();
        let op_b = fleet.register_op("storer", other.clone(), vec![]);

        let sid_a = honest_round(&mut fleet, op_a, 10, 0);
        let dev_b = fleet.register_device(op_b, 11).unwrap();
        let mut device = DialedDevice::new(other, fleet.device_keystore(dev_b).unwrap());
        let chal = fleet.issue(dev_b, 0).unwrap();
        device.invoke(&[0; 8]);
        let proof = device.prove(&chal.challenge);
        fleet.submit(SessionId(chal.session), dev_b, proof, 1).unwrap();

        let (stats, _) = fleet.drain(2);
        assert_eq!(stats.shards, 2, "two ops ⇒ two shards");
        assert_eq!(stats.verified, 2);
        assert_eq!(fleet.session(sid_a).unwrap().state, SessionState::Verified);
    }

    #[test]
    fn wire_submission_path_accepts_and_rejects() {
        let (mut fleet, op_id) = full_fleet();
        let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
        let dev_id = fleet.register_device(op_id, 3).unwrap();
        let mut device = DialedDevice::new(op, fleet.device_keystore(dev_id).unwrap());
        let chal = fleet.issue(dev_id, 0).unwrap();
        device.invoke(&[0; 8]);
        let proof = device.prove(&chal.challenge);
        let frame = wire::encode(&Message::Proof(ProofMsg {
            session: chal.session,
            device: dev_id.0,
            proof,
        }));
        let sid = fleet.submit_wire(&frame, 1).unwrap();
        // The same frame again is a duplicate, caught at the session layer.
        assert_eq!(
            fleet.submit_wire(&frame, 2),
            Err(Ok(SessionError::NotAwaitingProof(SessionState::Submitted)))
        );
        // Garbage bytes are a wire error.
        assert!(matches!(fleet.submit_wire(b"junk", 2), Err(Err(_))));
        // A well-formed frame of the wrong kind is reported as such.
        assert_eq!(
            fleet.submit_wire(&wire::encode(&Message::Challenge(chal)), 2),
            Err(Err(WireError::UnexpectedMessage { expected: "proof" }))
        );
        let (stats, _) = fleet.drain(3);
        assert_eq!(stats.verified, 1);
        assert_eq!(fleet.session(sid).unwrap().state, SessionState::Verified);
    }

    #[test]
    fn non_full_ops_verify_at_pox_level() {
        let mut fleet = Fleet::new(FleetConfig { workers: Some(1), ..FleetConfig::default() });
        let opts = BuildOptions { mode: InstrumentMode::CfaOnly, ..BuildOptions::default() };
        let op = InstrumentedOp::build(OP_SRC, "op", &opts).unwrap();
        let op_id = fleet.register_op("cfa-only", op.clone(), vec![]);
        let dev_id = fleet.register_device(op_id, 4).unwrap();
        let mut device = DialedDevice::new(op, fleet.device_keystore(dev_id).unwrap());
        let chal = fleet.issue(dev_id, 0).unwrap();
        device.invoke(&[0; 8]);
        let proof = device.prove(&chal.challenge);
        fleet.submit(SessionId(chal.session), dev_id, proof, 1).unwrap();
        let (stats, _) = fleet.drain(2);
        assert_eq!((stats.verified, stats.rejected), (1, 0));

        // A corrupted OR still dies at the PoX MAC for non-Full ops.
        let chal2 = fleet.issue(dev_id, 3).unwrap();
        let mut proof2 = device.prove(&chal2.challenge);
        proof2.pox.or_data[0] ^= 1;
        fleet.submit(SessionId(chal2.session), dev_id, proof2, 4).unwrap();
        let (stats2, _) = fleet.drain(5);
        assert_eq!((stats2.verified, stats2.rejected), (0, 1));
    }

    #[test]
    fn expiry_flows_through_drain() {
        let (mut fleet, op_id) = full_fleet();
        let dev_id = fleet.register_device(op_id, 5).unwrap();
        let chal = fleet.issue(dev_id, 0).unwrap();
        let (stats, expired) = fleet.drain(chal.deadline + 1);
        assert_eq!((stats.drained, expired), (0, 1));
        assert_eq!(fleet.session(SessionId(chal.session)).unwrap().state, SessionState::Expired);
    }
}
