//! The fleet attestation service — the server frontend of a DIALED
//! deployment.
//!
//! The lower crates prove and verify a *single* proof; this crate runs the
//! protocol at fleet scale, durably:
//!
//! ```text
//!                  ┌───────────────── [`Fleet`] ─────────────────┐
//!                  │  [`OpTable`]: ops + shared batch verifiers  │
//!                  │  [`HashRing`]: DeviceId → shard             │
//!                  └──────┬───────────────┬──────────────┬───────┘
//!                  ┌──────▼─────┐  ┌──────▼─────┐  ┌─────▼──────┐
//!                  │ [`Shard`] 0│  │ [`Shard`] 1│  │ [`Shard`] N│
//!                  │ registry   │  │            │  │            │
//!                  │ sessions   │  │    …       │  │    …       │
//!                  │ ingest     │  │            │  │            │
//!                  ├────────────┤  ├────────────┤  ├────────────┤
//!                  │ WAL + snap │  │ WAL + snap │  │ WAL + snap │
//!                  └────────────┘  └────────────┘  └────────────┘
//! ```
//!
//! * [`registry`] — who exists: the fleet-global operation table
//!   (instrumented images + shared batch verifiers) and per-shard device
//!   records (individual keys, bound operation, last-verified counters).
//! * [`session`] — challenge lifecycle: monotonic per-device nonces, the
//!   `Issued → Submitted → Verified/Rejected/Expired` state machine,
//!   deadline expiry, duplicate- and replay-rejection *before* any
//!   cryptographic work.
//! * [`wire`] — the versioned, length-prefixed binary codec for every
//!   protocol message; all decode paths are total.
//! * [`ingest`] — each shard's pending-submission queue, drained in
//!   per-operation batches through one [`dialed::BatchVerifier`].
//! * [`store`] — durable [`StateEvent`]s, the write-ahead log, snapshots.
//! * [`shard`] — the consistent-hash ring and the shard state machine
//!   tying the above together.
//!
//! # Durability
//!
//! Every mutation is an event: appended to the owning shard's WAL (or the
//! fleet's meta log), then applied. [`Fleet::recover`] replays snapshot +
//! WAL through the *same* apply path, so a restart restores session
//! nonces, anti-replay windows and last-verified counters exactly — a
//! proof accepted before a crash can never be replayed after it. A fleet
//! built with [`Fleet::new`] keeps everything in memory (tests,
//! experiments); [`Fleet::durable`] adds the log.
//!
//! Shards share no mutable state and drain on independent threads; the
//! batch engines in the [`OpTable`] are borrowed read-only by every
//! drain, so adding shards adds ingest parallelism without adding locks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ingest;
pub mod net;
pub mod registry;
pub mod session;
pub mod shard;
pub mod store;
pub mod wire;

pub use apex::pox::DigestCacheStats;
pub use ingest::{DrainStats, IngestQueue};
pub use net::{NetClient, NetConfig, NetServer, NetServerHandle, NetStats};
pub use registry::{DeviceId, DeviceRecord, OpId, OpRecord, OpTable, Registry, RegistryError};
pub use session::{Session, SessionError, SessionId, SessionManager, SessionState};
pub use shard::{HashRing, Shard};
pub use store::{RecoverError, StateEvent};
pub use wire::{
    BatchSummary, ChallengeMsg, FrameReader, GrantMsg, IssueMsg, Message, ProofMsg, RejectMsg,
    ReportMsg, SubmitMsg, VerdictMsg, WireError,
};

use crate::shard::ShardParams;
use crate::store::Wal;
use dialed::attest::DialedProof;
use dialed::pipeline::InstrumentedOp;
use dialed::policy::Policy;
use std::io;
use std::path::Path;
use vrased::KeyStore;

/// Tunables for a [`Fleet`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Label challenges are derived under (separates deployments).
    pub label: Vec<u8>,
    /// Session lifetime in logical ticks.
    pub challenge_ttl: u64,
    /// Per-device anti-replay window depth (accepted proof tags).
    pub replay_window: usize,
    /// Worker threads per operation's batch verifier
    /// (`None` = one per core).
    pub workers: Option<usize>,
    /// State shards. More shards drain more batches concurrently. Pinned
    /// at first creation for durable fleets: recovery uses the shard
    /// count from the meta log, not this field, because re-sharding would
    /// re-route devices away from their logged state.
    pub shards: usize,
    /// Durable mode: committed events between snapshots on each shard.
    /// Smaller values bound WAL segment length (and recovery replay time)
    /// at the cost of more frequent snapshot writes.
    pub snapshot_every: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            label: b"dialed-fleet".to_vec(),
            challenge_ttl: 64,
            replay_window: 32,
            workers: None,
            shards: 4,
            snapshot_every: 4096,
        }
    }
}

impl FleetConfig {
    fn shard_params(&self) -> ShardParams {
        ShardParams {
            label: self.label.clone(),
            ttl: self.challenge_ttl,
            window_cap: self.replay_window,
            snapshot_every: self.snapshot_every,
        }
    }
}

/// Rebuilds operation artifacts at recovery. Operations are *code* —
/// an instrumented image plus its policies — and code is not state: the
/// durable log records only each operation's name and mode, and recovery
/// asks the catalog to re-supply the artifact (typically rebuilt from the
/// same source the deployment ships).
pub trait OpCatalog {
    /// The artifact registered under `name`, or `None` if unknown.
    fn lookup(&self, name: &str) -> Option<(InstrumentedOp, Vec<Box<dyn Policy>>)>;
}

/// Adapts a closure into an [`OpCatalog`].
pub struct CatalogFn<F>(pub F);

impl<F> OpCatalog for CatalogFn<F>
where
    F: Fn(&str) -> Option<(InstrumentedOp, Vec<Box<dyn Policy>>)>,
{
    fn lookup(&self, name: &str) -> Option<(InstrumentedOp, Vec<Box<dyn Policy>>)> {
        (self.0)(name)
    }
}

/// The attestation service: a consistent-hash router over durable state
/// shards, sharing one operation table.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    ops: OpTable,
    ring: HashRing,
    shards: Vec<Shard>,
    /// Next fleet-global device id.
    next_device: u64,
    /// Current provisioning-key epoch.
    epoch: u64,
    /// Fleet-level event log (layout, operations, epoch bumps).
    meta: Option<Wal>,
}

impl Fleet {
    /// An in-memory fleet (no durability) with the given tunables.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        let n = config.shards.max(1);
        let params = config.shard_params();
        Self {
            ops: OpTable::new(),
            ring: HashRing::new(n),
            shards: (0..n).map(|i| Shard::in_memory(i, n as u64, &params)).collect(),
            next_device: 0,
            epoch: 0,
            meta: None,
            config,
        }
    }

    /// A durable fleet writing WAL + snapshots under `dir` (created if
    /// missing). Equivalent to [`Fleet::recover`] with an empty catalog —
    /// use it for a *fresh* state directory; reopening one that already
    /// has registered operations needs `recover` and a catalog.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, or with [`RecoverError::UnknownOp`] if `dir`
    /// already holds operations (recover instead).
    pub fn durable(dir: &Path, config: FleetConfig) -> Result<Self, RecoverError> {
        Self::build(dir, config, None)
    }

    /// Recovers a fleet from `dir`: replays the meta log (layout,
    /// operations via `catalog`, epoch), then each shard's snapshot + WAL
    /// segment through the same apply path live mutations use. The shard
    /// count and every device id, session nonce, anti-replay window and
    /// last-verified counter come back exactly as committed; corrupt or
    /// torn log tails are dropped, never panicked on.
    ///
    /// # Errors
    ///
    /// [`RecoverError::MissingLayout`] if the meta log exists but pins no
    /// shard layout, [`RecoverError::UnknownOp`] if the catalog cannot
    /// rebuild a logged operation, or an I/O failure.
    pub fn recover(
        dir: &Path,
        config: FleetConfig,
        catalog: &dyn OpCatalog,
    ) -> Result<Self, RecoverError> {
        Self::build(dir, config, Some(catalog))
    }

    fn build(
        dir: &Path,
        config: FleetConfig,
        catalog: Option<&dyn OpCatalog>,
    ) -> Result<Self, RecoverError> {
        std::fs::create_dir_all(dir)?;
        let meta_path = dir.join("meta.log");
        let events = store::read_events(&meta_path)?;
        let n = match events.first() {
            Some(StateEvent::ShardLayout { shards }) => (*shards as usize).max(1),
            Some(_) => return Err(RecoverError::MissingLayout),
            None => config.shards.max(1),
        };
        let fresh = events.is_empty();

        let mut ops = OpTable::new();
        let mut epoch = 0;
        for ev in &events {
            match ev {
                StateEvent::OpRegistered { op, name, .. } => {
                    let Some((image, policies)) = catalog.and_then(|c| c.lookup(name)) else {
                        return Err(RecoverError::UnknownOp(name.clone()));
                    };
                    let got = ops.register_op(name, image, policies, config.workers);
                    debug_assert_eq!(got, *op, "op ids replay in registration order");
                }
                StateEvent::EpochBumped { epoch: e } => epoch = *e,
                _ => {}
            }
        }

        let params = config.shard_params();
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            shards.push(Shard::recover(&dir.join(format!("shard-{i}")), i, n as u64, &params)?);
        }

        // Derived fleet-level counters: the next device id must clear
        // every id that ever held state (including deregistered devices,
        // whose per-device session history outlives their registry
        // record), and per-op device counts are recomputed from the
        // recovered registries.
        let mut next_device = 0;
        for shard in &shards {
            for d in shard.registry().devices() {
                next_device = next_device.max(d.id.0 + 1);
                if let Ok(rec) = ops.op_mut(d.op) {
                    rec.devices += 1;
                }
            }
            for dev in shard.sessions.per_device.keys() {
                next_device = next_device.max(dev.0 + 1);
            }
        }

        let mut meta = Wal::open(&meta_path)?;
        if fresh {
            meta.append(&StateEvent::ShardLayout { shards: n as u32 })?;
        }
        Ok(Self {
            ops,
            ring: HashRing::new(n),
            shards,
            next_device,
            epoch,
            meta: Some(meta),
            config,
        })
    }

    /// Appends a fleet-level event to the meta log. Fail-stop like the
    /// shard WAL: an un-persistable mutation must not happen.
    fn meta_commit(&mut self, ev: &StateEvent) {
        if let Some(meta) = &mut self.meta {
            meta.append(ev).expect("meta WAL append failed: refusing to mutate non-durable state");
        }
    }

    /// Registers an operation (see [`OpTable::register_op`]).
    pub fn register_op(
        &mut self,
        name: &str,
        op: InstrumentedOp,
        policies: Vec<Box<dyn Policy>>,
    ) -> OpId {
        let id = self.ops.register_op(name, op, policies, self.config.workers);
        let mode = self.ops.op(id).expect("just registered").mode;
        self.meta_commit(&StateEvent::OpRegistered { op: id, name: name.to_string(), mode });
        id
    }

    /// Registers a device bound to `op` with its provisioning key seed.
    /// The effective key mixes the seed with the current provisioning
    /// epoch (see [`Fleet::rotate_provisioning_epoch`]); the id is
    /// fleet-global and the record lands on the shard the hash ring
    /// assigns it.
    ///
    /// # Errors
    ///
    /// Fails if `op` is unknown.
    pub fn register_device(&mut self, op: OpId, key_seed: u64) -> Result<DeviceId, RegistryError> {
        self.ops.op(op)?;
        let device = DeviceId(self.next_device);
        self.next_device += 1;
        let epoch = self.epoch;
        let idx = self.ring.route(device);
        self.shards[idx].commit(StateEvent::DeviceRegistered { device, op, key_seed, epoch });
        self.ops.op_mut(op).expect("checked above").devices += 1;
        Ok(device)
    }

    /// Removes a device from the fleet. Its open (`Issued`/`Submitted`)
    /// sessions flip to `Expired` — dropping any queued proof — so later
    /// submissions against them fail with a structured
    /// [`SessionError::NotAwaitingProof`], and issuing to the device fails
    /// with [`RegistryError::UnknownDevice`]. Returns how many open
    /// sessions were expired.
    ///
    /// # Errors
    ///
    /// Fails if the device is unknown (or already deregistered).
    pub fn deregister_device(&mut self, device: DeviceId) -> Result<usize, RegistryError> {
        let idx = self.ring.route(device);
        let shard = &mut self.shards[idx];
        let op = shard.registry.device(device)?.op;
        let open = shard
            .sessions
            .sessions()
            .filter(|s| {
                s.device == device
                    && matches!(s.state, SessionState::Issued | SessionState::Submitted)
            })
            .count();
        shard.commit(StateEvent::DeviceDeregistered { device });
        if let Ok(rec) = self.ops.op_mut(op) {
            rec.devices = rec.devices.saturating_sub(1);
        }
        Ok(open)
    }

    /// Advances the provisioning-key epoch and returns the new value.
    /// Devices registered from now on derive their keys from
    /// `seed ⊕ f(epoch)`, so a leaked provisioning seed stops minting
    /// usable keys once the epoch moves; already-registered devices keep
    /// the keys they were installed with. Durable: the bump is a meta-log
    /// event and survives recovery.
    pub fn rotate_provisioning_epoch(&mut self) -> u64 {
        self.epoch += 1;
        let epoch = self.epoch;
        self.meta_commit(&StateEvent::EpochBumped { epoch });
        // An epoch rotation may accompany re-provisioning with fresh
        // images, so every op's memoized expected-ER digest is dropped;
        // the next drain of each op recomputes it exactly once.
        for op in self.ops.ops() {
            op.invalidate_digest_cache();
        }
        epoch
    }

    /// Aggregated expected-ER digest-cache counters across every
    /// registered operation (see [`OpRecord::digest_cache_stats`]).
    #[must_use]
    pub fn digest_cache_stats(&self) -> DigestCacheStats {
        let mut total = DigestCacheStats::default();
        for op in self.ops.ops() {
            if let Some(stats) = op.digest_cache_stats() {
                total.merge(stats);
            }
        }
        total
    }

    /// The current provisioning-key epoch.
    #[must_use]
    pub fn provisioning_epoch(&self) -> u64 {
        self.epoch
    }

    /// The attestation key a registered device was provisioned with (the
    /// device side of a simulation installs the same key).
    ///
    /// # Errors
    ///
    /// Fails if the device is unknown.
    pub fn device_keystore(&self, device: DeviceId) -> Result<KeyStore, RegistryError> {
        Ok(self.device(device)?.keystore().clone())
    }

    /// Issues a challenge to `device` at logical time `now`, returning the
    /// wire-ready challenge message. Durable *before* visible: the
    /// issuance event commits to the shard's WAL, so a crash cannot forget
    /// a nonce it already handed out.
    ///
    /// # Errors
    ///
    /// Fails if the device is unknown.
    pub fn issue(&mut self, device: DeviceId, now: u64) -> Result<ChallengeMsg, RegistryError> {
        let ttl = self.config.challenge_ttl;
        let idx = self.ring.route(device);
        let shard = &mut self.shards[idx];
        let op = shard.registry.device(device)?.op;
        let session = shard.sessions.peek_next_id();
        let nonce = shard.sessions.next_nonce(device);
        let deadline = now.saturating_add(ttl);
        shard.commit(StateEvent::ChallengeIssued {
            session,
            device,
            op,
            nonce,
            issued_at: now,
            deadline,
        });
        let s = shard.sessions.session(session).expect("just installed");
        Ok(ChallengeMsg {
            session: session.0,
            device: device.0,
            nonce,
            deadline,
            challenge: s.challenge,
        })
    }

    /// The shard owning `session` (ids are strided: shard `s` of `N`
    /// mints `s, s+N, s+2N, …`).
    fn shard_of_session(&self, session: SessionId) -> usize {
        (session.0 % self.shards.len() as u64) as usize
    }

    /// Accepts a device's proof for a session. On success the accepted
    /// proof becomes a durable event and is queued on the session's shard;
    /// on error nothing reaches the verifier (duplicates and replays die
    /// here) and nothing is written.
    ///
    /// # Errors
    ///
    /// See [`SessionError`].
    pub fn submit(
        &mut self,
        session: SessionId,
        device: DeviceId,
        proof: DialedProof,
        now: u64,
    ) -> Result<(), SessionError> {
        let idx = self.shard_of_session(session);
        let shard = &mut self.shards[idx];
        shard.sessions.check_submit(session, device, &proof.pox.tag, now)?;
        shard.commit(StateEvent::ProofAccepted { session, device, proof });
        Ok(())
    }

    /// [`Fleet::submit`] from an encoded [`ProofMsg`] frame, as received
    /// off the network.
    ///
    /// # Errors
    ///
    /// `Err(Ok(session_error))` for session-layer rejection,
    /// `Err(Err(wire_error))` for undecodable bytes (including non-proof
    /// messages).
    pub fn submit_wire(&mut self, bytes: &[u8], now: u64) -> SubmitWireResult {
        let msg = match wire::decode(bytes) {
            Ok(Message::Proof(m)) => m,
            Ok(_) => return Err(Err(WireError::UnexpectedMessage { expected: "proof" })),
            Err(e) => return Err(Err(e)),
        };
        let (session, device) = (SessionId(msg.session), DeviceId(msg.device));
        match self.submit(session, device, msg.proof, now) {
            Ok(()) => Ok(session),
            Err(e) => Err(Ok(e)),
        }
    }

    /// Expires overdue sessions, then drains every shard's queue through
    /// the shared operation engines, feeding verdicts back into sessions
    /// and registries. Shards with pending work drain **in parallel** on
    /// scoped threads — they share no mutable state, and the engines take
    /// `&self`. Returns the summed drain statistics plus how many
    /// sessions expired.
    pub fn drain(&mut self, now: u64) -> (DrainStats, usize) {
        let mut expired = 0;
        for shard in &mut self.shards {
            expired += shard.expire(now);
        }
        let ops = &self.ops;
        let busy: Vec<&mut Shard> = self.shards.iter_mut().filter(|s| s.pending() > 0).collect();
        let mut stats = DrainStats::default();
        if busy.len() <= 1 {
            for shard in busy {
                stats.merge(shard.drain(ops));
            }
        } else {
            let results: Vec<DrainStats> = std::thread::scope(|scope| {
                let handles: Vec<_> =
                    busy.into_iter().map(|shard| scope.spawn(move || shard.drain(ops))).collect();
                handles.into_iter().map(|h| h.join().expect("shard drain panicked")).collect()
            });
            for r in results {
                stats.merge(r);
            }
        }
        (stats, expired)
    }

    /// Pending (submitted, not yet drained) sessions across all shards.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shards.iter().map(Shard::pending).sum()
    }

    /// Per-shard ingest queue depths, indexed like [`shards`](Self::shards).
    /// This is the backpressure signal: a frontend compares the depth of a
    /// submission's target shard against its shed watermark and answers
    /// [`Overloaded`](dialed::report::RejectReason::Overloaded) instead of
    /// accepting work it cannot drain in time.
    #[must_use]
    pub fn ingest_depths(&self) -> Vec<usize> {
        self.shards.iter().map(Shard::ingest_depth).collect()
    }

    /// Evicts resolved sessions whose deadline lies before `now` so a
    /// long-running service's memory tracks open rounds, not history (see
    /// [`SessionManager::prune_resolved`]).
    pub fn prune_resolved(&mut self, now: u64) -> usize {
        self.shards.iter_mut().map(|s| s.prune(now)).sum()
    }

    /// Forces a snapshot + WAL rotation on every shard (they also happen
    /// automatically every [`FleetConfig::snapshot_every`] events). A
    /// no-op for in-memory fleets.
    ///
    /// # Errors
    ///
    /// Propagates the first file-system error.
    pub fn snapshot(&mut self) -> io::Result<()> {
        for shard in &mut self.shards {
            shard.snapshot()?;
        }
        Ok(())
    }

    /// Looks up a session.
    #[must_use]
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.shards[self.shard_of_session(id)].sessions().session(id)
    }

    /// The wire-ready report message for a resolved session, if any.
    #[must_use]
    pub fn report_msg(&self, id: SessionId) -> Option<ReportMsg> {
        let s = self.session(id)?;
        Some(ReportMsg { session: s.id.0, device: s.device.0, report: s.report.clone()? })
    }

    /// Looks up a device on its shard.
    ///
    /// # Errors
    ///
    /// Fails if the device is unknown.
    pub fn device(&self, id: DeviceId) -> Result<&DeviceRecord, RegistryError> {
        self.shards[self.ring.route(id)].registry().device(id)
    }

    /// All registered devices, shard by shard.
    pub fn devices(&self) -> impl Iterator<Item = &DeviceRecord> {
        self.shards.iter().flat_map(|s| s.registry().devices())
    }

    /// The fleet-global operation table.
    #[must_use]
    pub fn ops(&self) -> &OpTable {
        &self.ops
    }

    /// Looks up an operation.
    ///
    /// # Errors
    ///
    /// Fails if the operation is unknown.
    pub fn op(&self, id: OpId) -> Result<&OpRecord, RegistryError> {
        self.ops.op(id)
    }

    /// The state shards (diagnostics; mutation goes through [`Fleet`]).
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Maps a failed [`Fleet::submit_wire`] outcome into a rejected
    /// [`Report`](dialed::report::Report) carrying the structured
    /// [`RejectReason`](dialed::report::RejectReason), so pre-verification
    /// failures (undecodable bytes, session violations) travel to
    /// operators through the same codec as cryptographic rejections.
    #[must_use]
    pub fn rejection_report(err: Result<SessionError, WireError>) -> dialed::report::Report {
        match err {
            Ok(session) => dialed::report::Report::rejected(session),
            Err(wire) => dialed::report::Report::rejected(wire),
        }
    }
}

/// Result of [`Fleet::submit_wire`]: the accepted session id, or the
/// session-layer / wire-layer rejection.
pub type SubmitWireResult = Result<SessionId, Result<SessionError, WireError>>;

#[cfg(test)]
mod tests {
    use super::*;
    use dialed::attest::DialedDevice;
    use dialed::pipeline::{BuildOptions, InstrumentMode};
    use dialed::report::{RejectReason, Verdict};
    use std::path::PathBuf;

    const OP_SRC: &str = "\
        .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";

    fn full_fleet() -> (Fleet, OpId) {
        let mut fleet = Fleet::new(FleetConfig { workers: Some(2), ..FleetConfig::default() });
        let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
        let op_id = fleet.register_op("adder", op, vec![]);
        (fleet, op_id)
    }

    /// Drives one device through a full honest round; returns its session.
    fn honest_round(fleet: &mut Fleet, op_id: OpId, seed: u64, now: u64) -> SessionId {
        let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
        let dev_id = fleet.register_device(op_id, seed).unwrap();
        let mut device = DialedDevice::new(op, fleet.device_keystore(dev_id).unwrap());
        let chal = fleet.issue(dev_id, now).unwrap();
        device.invoke(&[0, 0, 0, 0, 0, 0, 2, 3]);
        let proof = device.prove(&chal.challenge);
        fleet.submit(SessionId(chal.session), dev_id, proof, now + 1).unwrap();
        SessionId(chal.session)
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dialed-fleet-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn honest_device_round_trips_to_verified() {
        let (mut fleet, op_id) = full_fleet();
        let sid = honest_round(&mut fleet, op_id, 1, 0);
        assert_eq!(fleet.pending(), 1);
        let (stats, expired) = fleet.drain(2);
        assert_eq!((stats.drained, stats.verified, expired), (1, 1, 0));
        assert_eq!((stats.shards, stats.batches), (1, 1));
        let s = fleet.session(sid).unwrap();
        assert_eq!(s.state, SessionState::Verified);
        assert_eq!(s.report.as_ref().unwrap().verdict, Verdict::Clean);
        let dev = fleet.device(s.device).unwrap();
        assert_eq!(dev.last_verified, Some(0));
        assert_eq!(dev.verified, 1);
        // The verdict is deliverable as a wire frame.
        let msg = fleet.report_msg(sid).unwrap();
        let bytes = wire::encode(&Message::Report(msg.clone()));
        assert_eq!(wire::decode(&bytes), Ok(Message::Report(msg)));
    }

    #[test]
    fn submissions_batch_by_operation() {
        let (mut fleet, op_a) = full_fleet();
        let other = InstrumentedOp::build(
            ".org 0xE000\nop:\n mov r14, &0x0060\n ret\n",
            "op",
            &BuildOptions::default(),
        )
        .unwrap();
        let op_b = fleet.register_op("storer", other.clone(), vec![]);

        let sid_a = honest_round(&mut fleet, op_a, 10, 0);
        let dev_b = fleet.register_device(op_b, 11).unwrap();
        let mut device = DialedDevice::new(other, fleet.device_keystore(dev_b).unwrap());
        let chal = fleet.issue(dev_b, 0).unwrap();
        device.invoke(&[0; 8]);
        let proof = device.prove(&chal.challenge);
        fleet.submit(SessionId(chal.session), dev_b, proof, 1).unwrap();

        let (stats, _) = fleet.drain(2);
        assert_eq!(stats.batches, 2, "two ops ⇒ two engine batches");
        assert_eq!(stats.verified, 2);
        assert_eq!(fleet.session(sid_a).unwrap().state, SessionState::Verified);
    }

    #[test]
    fn many_devices_drain_across_parallel_shards() {
        let (mut fleet, op_id) = full_fleet();
        let sids: Vec<_> = (0..8).map(|i| honest_round(&mut fleet, op_id, 100 + i, 0)).collect();
        assert_eq!(fleet.pending(), 8);
        let (stats, _) = fleet.drain(2);
        assert_eq!((stats.drained, stats.verified), (8, 8));
        assert!(
            stats.shards >= 2,
            "8 sequential device ids should spread over ≥2 of 4 shards, got {}",
            stats.shards
        );
        for sid in sids {
            assert_eq!(fleet.session(sid).unwrap().state, SessionState::Verified);
        }
    }

    #[test]
    fn wire_submission_path_accepts_and_rejects() {
        let (mut fleet, op_id) = full_fleet();
        let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
        let dev_id = fleet.register_device(op_id, 3).unwrap();
        let mut device = DialedDevice::new(op, fleet.device_keystore(dev_id).unwrap());
        let chal = fleet.issue(dev_id, 0).unwrap();
        device.invoke(&[0; 8]);
        let proof = device.prove(&chal.challenge);
        let frame = wire::encode(&Message::Proof(ProofMsg {
            session: chal.session,
            device: dev_id.0,
            proof,
        }));
        let sid = fleet.submit_wire(&frame, 1).unwrap();
        // The same frame again is a duplicate, caught at the session layer.
        assert_eq!(
            fleet.submit_wire(&frame, 2),
            Err(Ok(SessionError::NotAwaitingProof(SessionState::Submitted)))
        );
        // Garbage bytes are a wire error.
        assert!(matches!(fleet.submit_wire(b"junk", 2), Err(Err(_))));
        // A well-formed frame of the wrong kind is reported as such.
        assert_eq!(
            fleet.submit_wire(&wire::encode(&Message::Challenge(chal)), 2),
            Err(Err(WireError::UnexpectedMessage { expected: "proof" }))
        );
        let (stats, _) = fleet.drain(3);
        assert_eq!(stats.verified, 1);
        assert_eq!(fleet.session(sid).unwrap().state, SessionState::Verified);
    }

    #[test]
    fn non_full_ops_verify_at_pox_level() {
        let mut fleet = Fleet::new(FleetConfig { workers: Some(1), ..FleetConfig::default() });
        let opts = BuildOptions { mode: InstrumentMode::CfaOnly, ..BuildOptions::default() };
        let op = InstrumentedOp::build(OP_SRC, "op", &opts).unwrap();
        let op_id = fleet.register_op("cfa-only", op.clone(), vec![]);
        let dev_id = fleet.register_device(op_id, 4).unwrap();
        let mut device = DialedDevice::new(op, fleet.device_keystore(dev_id).unwrap());
        let chal = fleet.issue(dev_id, 0).unwrap();
        device.invoke(&[0; 8]);
        let proof = device.prove(&chal.challenge);
        fleet.submit(SessionId(chal.session), dev_id, proof, 1).unwrap();
        let (stats, _) = fleet.drain(2);
        assert_eq!((stats.verified, stats.rejected), (1, 0));

        // A corrupted OR still dies at the PoX MAC for non-Full ops.
        let chal2 = fleet.issue(dev_id, 3).unwrap();
        let mut proof2 = device.prove(&chal2.challenge);
        proof2.pox.or_data[0] ^= 1;
        fleet.submit(SessionId(chal2.session), dev_id, proof2, 4).unwrap();
        let (stats2, _) = fleet.drain(5);
        assert_eq!((stats2.verified, stats2.rejected), (0, 1));
    }

    #[test]
    fn expiry_flows_through_drain() {
        let (mut fleet, op_id) = full_fleet();
        let dev_id = fleet.register_device(op_id, 5).unwrap();
        let chal = fleet.issue(dev_id, 0).unwrap();
        let (stats, expired) = fleet.drain(chal.deadline + 1);
        assert_eq!((stats.drained, expired), (0, 1));
        assert_eq!(fleet.session(SessionId(chal.session)).unwrap().state, SessionState::Expired);
    }

    #[test]
    fn deregistered_device_is_fully_retired() {
        let (mut fleet, op_id) = full_fleet();
        let keep = honest_round(&mut fleet, op_id, 20, 0);
        let dev = fleet.register_device(op_id, 21).unwrap();
        let chal = fleet.issue(dev, 0).unwrap();
        assert_eq!(fleet.op(op_id).unwrap().devices, 2);

        let expired = fleet.deregister_device(dev).unwrap();
        assert_eq!(expired, 1, "the open session is expired");
        assert_eq!(fleet.op(op_id).unwrap().devices, 1);
        assert_eq!(fleet.device(dev).unwrap_err(), RegistryError::UnknownDevice(dev));
        assert_eq!(fleet.deregister_device(dev).unwrap_err(), RegistryError::UnknownDevice(dev));

        // Issuing to the removed device fails with a structured reason.
        let err = fleet.issue(dev, 1).unwrap_err();
        assert!(matches!(RejectReason::from(err), RejectReason::UnknownPrincipal { .. }));

        // A late submission against the expired session maps to a
        // structured RejectReason through the standard wire-path plumbing.
        let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
        let mut device = DialedDevice::new(op, KeyStore::from_seed(21));
        device.invoke(&[0; 8]);
        let proof = device.prove(&chal.challenge);
        let frame =
            wire::encode(&Message::Proof(ProofMsg { session: chal.session, device: dev.0, proof }));
        let err = fleet.submit_wire(&frame, 1).unwrap_err();
        assert_eq!(err, Ok(SessionError::NotAwaitingProof(SessionState::Expired)));
        let report = Fleet::rejection_report(err);
        assert!(matches!(
            report.findings.first(),
            Some(dialed::report::Finding::PoxRejected {
                reason: RejectReason::SessionViolation { .. }
            })
        ));

        // The untouched device still drains clean.
        let (stats, _) = fleet.drain(2);
        assert_eq!(stats.verified, 1);
        assert_eq!(fleet.session(keep).unwrap().state, SessionState::Verified);
    }

    #[test]
    fn epoch_rotation_changes_new_keys_only() {
        let (mut fleet, op_id) = full_fleet();
        let before = fleet.register_device(op_id, 50).unwrap();
        assert_eq!(fleet.provisioning_epoch(), 0);
        assert_eq!(fleet.rotate_provisioning_epoch(), 1);
        let after = fleet.register_device(op_id, 50).unwrap();
        assert_eq!(fleet.device(before).unwrap().epoch(), 0);
        assert_eq!(fleet.device(after).unwrap().epoch(), 1);

        // Both devices verify honestly under the keystore the fleet hands
        // out — rotation changes derivation, not the protocol.
        for dev in [before, after] {
            let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
            let mut device = DialedDevice::new(op, fleet.device_keystore(dev).unwrap());
            let chal = fleet.issue(dev, 0).unwrap();
            device.invoke(&[0; 8]);
            let proof = device.prove(&chal.challenge);
            fleet.submit(SessionId(chal.session), dev, proof, 1).unwrap();
        }
        let (stats, _) = fleet.drain(2);
        assert_eq!(stats.verified, 2);

        // An attacker holding only the pre-rotation key cannot satisfy a
        // post-rotation device's session.
        let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
        let mut stale = DialedDevice::new(op, KeyStore::from_seed(50));
        let chal = fleet.issue(after, 3).unwrap();
        stale.invoke(&[0; 8]);
        let proof = stale.prove(&chal.challenge);
        fleet.submit(SessionId(chal.session), after, proof, 4).unwrap();
        let (stats, _) = fleet.drain(5);
        assert_eq!((stats.verified, stats.rejected), (0, 1));
    }

    #[test]
    fn durable_fleet_survives_restart() {
        let dir = tmp_dir("lifecycle");
        let config = FleetConfig { workers: Some(1), shards: 2, ..FleetConfig::default() };
        let (sid, dev) = {
            let mut fleet = Fleet::durable(&dir, config.clone()).unwrap();
            let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
            let op_id = fleet.register_op("adder", op, vec![]);
            let sid = honest_round(&mut fleet, op_id, 77, 0);
            let (stats, _) = fleet.drain(1);
            assert_eq!(stats.verified, 1);
            (sid, fleet.session(sid).unwrap().device)
        };

        // durable() on a dir with registered ops refuses (needs a catalog).
        assert!(matches!(
            Fleet::durable(&dir, config.clone()),
            Err(RecoverError::UnknownOp(name)) if name == "adder"
        ));

        let catalog = CatalogFn(|name: &str| {
            (name == "adder").then(|| {
                (InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap(), vec![])
            })
        });
        // A stale shard count is overridden by the pinned layout.
        let mut fleet =
            Fleet::recover(&dir, FleetConfig { shards: 7, ..config }, &catalog).unwrap();
        assert_eq!(fleet.shards().len(), 2);
        let rec = fleet.device(dev).unwrap();
        assert_eq!((rec.verified, rec.last_verified), (1, Some(0)));
        assert_eq!(fleet.session(sid).unwrap().state, SessionState::Verified);

        // The recovered fleet keeps serving: a fresh round verifies and
        // the nonce continues past the pre-restart history.
        let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
        let mut device = DialedDevice::new(op, fleet.device_keystore(dev).unwrap());
        let chal = fleet.issue(dev, 10).unwrap();
        assert_eq!(chal.nonce, 1, "nonces continue after recovery");
        device.invoke(&[0; 8]);
        let proof = device.prove(&chal.challenge);
        fleet.submit(SessionId(chal.session), dev, proof, 11).unwrap();
        let (stats, _) = fleet.drain(12);
        assert_eq!(stats.verified, 1);
        assert_eq!(fleet.device(dev).unwrap().last_verified, Some(1));
    }
}
