//! State shards and the consistent-hash ring that routes devices to them.
//!
//! A [`Shard`] owns one slice of the fleet's mutable state — a device
//! [`Registry`], a [`SessionManager`] minting strided session ids, and an
//! [`IngestQueue`] — plus, in durable mode, its own write-ahead-log
//! segment and snapshot file. Shards share **nothing** mutable: a drain
//! borrows the fleet-global [`OpTable`] read-only (batch engines take
//! `&self`), so N shards drain on N threads with no cross-shard locking.
//!
//! Routing is consistent hashing by [`DeviceId`]: each shard projects a
//! fixed set of virtual nodes onto a hash ring and a device belongs to
//! the shard owning the first point at or clockwise of the device's hash.
//! The placement depends only on `(device, shard count)` — it is stable
//! across restarts, which is what lets each shard recover its own WAL
//! segment independently.
//!
//! # Durability layout
//!
//! ```text
//! <dir>/shard-<i>/snapshot.bin   atomic full-state snapshot, generation g
//! <dir>/shard-<i>/wal-<g>.log    events since that snapshot
//! ```
//!
//! Every `snapshot_every` committed events the shard writes a new
//! snapshot (tmp + rename, so readers never see a torn file), rotates to
//! a fresh WAL segment named for the new generation, and deletes stale
//! segments. Because segment names carry the generation, a crash between
//! "snapshot written" and "old segment deleted" cannot double-apply: a
//! snapshot at generation `g` replays only `wal-<g>.log`.

use crate::ingest::{DrainStats, IngestQueue};
use crate::registry::{DeviceId, OpId, OpTable, Registry};
use crate::session::{Session, SessionId, SessionManager, SessionState};
use crate::store::{
    read_events, write_atomic, RecoverError, StateEvent, Wal, WAL_MAGIC, WAL_VERSION,
};
use crate::wire::{
    decode_dialed_proof, decode_report_fields, encode_dialed_proof, encode_report_fields, Reader,
    WireError, Writer,
};
use dialed::report::Report;
use dialed::request::PerDevice;
use dialed::BatchJob;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Virtual nodes each shard projects onto the ring. More points smooth
/// the split of the device space between shards.
const VNODES_PER_SHARD: u32 = 64;

/// FNV-1a/64 — the ring's placement hash (stable, dependency-free; this
/// is load balancing, not cryptography).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A consistent-hash ring mapping [`DeviceId`]s to shard indices.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, u32)>,
    shards: usize,
}

impl HashRing {
    /// A ring over `shards` shards (at least one).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * VNODES_PER_SHARD as usize);
        for shard in 0..shards as u32 {
            for vnode in 0..VNODES_PER_SHARD {
                let mut key = [0u8; 12];
                key[..4].copy_from_slice(&shard.to_le_bytes());
                key[4..8].copy_from_slice(&vnode.to_le_bytes());
                key[8..].copy_from_slice(b"ring");
                points.push((fnv1a64(&key), shard));
            }
        }
        points.sort_unstable();
        Self { points, shards }
    }

    /// Number of shards on the ring.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard `device` routes to: the owner of the first ring point at
    /// or clockwise of the device's hash.
    #[must_use]
    pub fn route(&self, device: DeviceId) -> usize {
        let h = fnv1a64(&device.0.to_le_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard as usize
    }
}

/// The session-layer parameters every shard of one fleet shares.
#[derive(Clone, Debug)]
pub(crate) struct ShardParams {
    /// Fleet label challenges derive from.
    pub label: Vec<u8>,
    /// Session ttl in logical ticks.
    pub ttl: u64,
    /// Anti-replay window depth per device.
    pub window_cap: usize,
    /// Committed events between snapshots (durable mode).
    pub snapshot_every: usize,
}

/// One independent slice of fleet state. See the module docs.
#[derive(Debug)]
pub struct Shard {
    index: usize,
    pub(crate) registry: Registry,
    pub(crate) sessions: SessionManager,
    pub(crate) ingest: IngestQueue,
    wal: Option<Wal>,
    dir: Option<PathBuf>,
    generation: u64,
    events_since_snapshot: usize,
    snapshot_every: usize,
}

impl Shard {
    /// An in-memory shard (no durability).
    pub(crate) fn in_memory(index: usize, stride: u64, params: &ShardParams) -> Self {
        Self {
            index,
            registry: Registry::new(),
            sessions: SessionManager::with_ids(
                &params.label,
                params.ttl,
                params.window_cap,
                index as u64,
                stride,
            ),
            ingest: IngestQueue::new(),
            wal: None,
            dir: None,
            generation: 0,
            events_since_snapshot: 0,
            snapshot_every: params.snapshot_every,
        }
    }

    /// Opens (or creates) the durable shard at `dir`: loads the snapshot
    /// if one decodes, replays that generation's WAL segment through the
    /// same [`Shard::apply`] the live path uses, and reopens the segment
    /// for appending. A fresh directory recovers to the empty state, so
    /// creation and recovery are one code path.
    ///
    /// Corruption is handled by prefix: a torn or corrupt WAL tail is
    /// dropped (see [`read_events`]), and an undecodable snapshot —
    /// impossible under the atomic-write discipline, but possible under
    /// bit rot — degrades to the empty state plus whatever its segment
    /// replays, never a panic.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures are returned.
    pub(crate) fn recover(
        dir: &Path,
        index: usize,
        stride: u64,
        params: &ShardParams,
    ) -> Result<Self, RecoverError> {
        std::fs::create_dir_all(dir)?;
        let mut shard = Self::in_memory(index, stride, params);
        shard.dir = Some(dir.to_path_buf());

        if let Ok(bytes) = std::fs::read(dir.join("snapshot.bin")) {
            if let Ok(generation) = shard.load_snapshot(&bytes) {
                shard.generation = generation;
            }
        }
        let segment = dir.join(format!("wal-{}.log", shard.generation));
        for ev in read_events(&segment)? {
            shard.apply(ev);
        }
        shard.wal = Some(Wal::open(&segment)?);
        Ok(shard)
    }

    /// This shard's index within the fleet.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// This shard's device registry slice.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// This shard's session manager.
    #[must_use]
    pub fn sessions(&self) -> &SessionManager {
        &self.sessions
    }

    /// Submissions queued on this shard, waiting for a drain.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.ingest.pending()
    }

    /// This shard's ingest queue depth (see [`IngestQueue::depth`]) — the
    /// signal a network frontend's load-shedding watermark reads.
    #[must_use]
    pub fn ingest_depth(&self) -> usize {
        self.ingest.depth()
    }

    /// Makes `ev` durable, then applies it. Fail-stop on a WAL append
    /// error: a mutation that cannot be persisted must not happen, or
    /// anti-replay state would silently regress at the next recovery.
    ///
    /// # Panics
    ///
    /// Panics if the WAL append fails (durable mode only).
    pub(crate) fn commit(&mut self, ev: StateEvent) {
        if let Some(wal) = &mut self.wal {
            wal.append(&ev).expect("WAL append failed: refusing to mutate non-durable state");
            self.events_since_snapshot += 1;
        }
        self.apply(ev);
        if self.wal.is_some() && self.events_since_snapshot >= self.snapshot_every.max(1) {
            // Snapshot failure is not fatal: the WAL segment keeps
            // growing and still replays the same state.
            let _ = self.snapshot();
        }
    }

    /// Applies one event to in-memory state — the single mutation path
    /// shared by live commits and recovery replay. Unknown references
    /// (e.g. a verdict for a pruned session) are ignored, which is what
    /// makes replay of a valid *prefix* safe.
    pub(crate) fn apply(&mut self, ev: StateEvent) {
        match ev {
            StateEvent::DeviceRegistered { device, op, key_seed, epoch } => {
                self.registry.install_device(device, op, key_seed, epoch);
            }
            StateEvent::DeviceDeregistered { device } => {
                let _ = self.registry.remove_device(device);
                for (op, sid) in self.sessions.expire_open_for(device) {
                    self.ingest.discard(op, sid);
                }
            }
            StateEvent::ChallengeIssued { session, device, op, nonce, issued_at, deadline } => {
                self.sessions.install(session, device, op, nonce, issued_at, deadline);
            }
            StateEvent::ProofAccepted { session, device, proof } => {
                let Some(op) = self.sessions.session(session).map(|s| s.op) else { return };
                self.sessions.apply_submit(session, device, proof);
                self.ingest.enqueue(op, session);
            }
            StateEvent::VerdictRecorded { session, report } => {
                let clean = report.is_clean();
                let op = self.sessions.session(session).map(|s| s.op);
                if let Some((device, nonce)) = self.sessions.apply_verdict(session, report) {
                    self.registry.record_verdict(device, nonce, clean);
                    if let Some(op) = op {
                        // Replay re-queues accepted proofs; the replayed
                        // verdict dequeues them again.
                        self.ingest.discard(op, session);
                    }
                }
            }
            StateEvent::ExpirySweep { now } => {
                self.sessions.expire_due(now);
            }
            StateEvent::PruneSweep { now } => {
                self.sessions.prune_resolved(now);
            }
            // Fleet-level events live in the meta log and never reach a
            // shard; ignoring them keeps replay total.
            StateEvent::ShardLayout { .. }
            | StateEvent::OpRegistered { .. }
            | StateEvent::EpochBumped { .. } => {}
        }
    }

    /// Runs an expiry sweep at `now` if any session is due, committing it
    /// as one durable event. Returns how many sessions expired.
    pub(crate) fn expire(&mut self, now: u64) -> usize {
        let due = self.sessions.due(now);
        if due > 0 {
            self.commit(StateEvent::ExpirySweep { now });
        }
        due
    }

    /// Prunes resolved sessions at `now` if any are prunable, committing
    /// one durable event. Returns how many sessions were evicted.
    pub(crate) fn prune(&mut self, now: u64) -> usize {
        let prunable = self.sessions.prunable(now);
        if prunable > 0 {
            self.commit(StateEvent::PruneSweep { now });
        }
        prunable
    }

    /// Drains this shard's queue through the fleet's shared operation
    /// engines, committing each verdict. `ops` is borrowed read-only, so
    /// any number of shards drain concurrently.
    pub(crate) fn drain(&mut self, ops: &OpTable) -> DrainStats {
        let mut stats = DrainStats::default();
        for (op, sids) in self.ingest.take_all() {
            // Collect the batch: each job consumes its session's held
            // proof (the durable copy lives in the WAL).
            let mut jobs: Vec<BatchJob> = Vec::with_capacity(sids.len());
            let mut meta: Vec<(SessionId, u64)> = Vec::with_capacity(sids.len());
            for sid in sids {
                let Some(s) = self.sessions.session_mut(sid) else { continue };
                if s.state != SessionState::Submitted {
                    continue;
                }
                let Some(proof) = s.proof.take() else { continue };
                let (device, challenge) = (s.device, s.challenge);
                if self.registry.device(device).is_err() {
                    continue;
                }
                jobs.push(BatchJob::new(device.0, proof, challenge));
                meta.push((sid, device.0));
            }
            if jobs.is_empty() {
                continue;
            }
            let Ok(record) = ops.op(op) else { continue };
            let reports: Vec<Report> = {
                // Per-device keys resolve by borrow out of this shard's
                // registry for the whole batch.
                let reg = &self.registry;
                let keys = PerDevice::new(|device| Some(reg.device(DeviceId(device)).ok()?.ra()));
                let batch = record.engine.verify_batch(&jobs, Some(&keys));
                batch.outcomes.into_iter().map(|o| o.report).collect()
            };
            stats.batches += 1;
            for ((sid, _), report) in meta.into_iter().zip(reports) {
                stats.drained += 1;
                if report.is_clean() {
                    stats.verified += 1;
                } else {
                    stats.rejected += 1;
                }
                self.commit(StateEvent::VerdictRecorded { session: sid, report });
            }
        }
        if stats.drained > 0 {
            stats.shards = 1;
        }
        stats
    }

    // -- snapshots ----------------------------------------------------------

    /// Writes a full-state snapshot, rotates to a fresh WAL segment named
    /// for the new generation, and deletes stale segments.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors; on failure the current segment
    /// stays authoritative.
    pub(crate) fn snapshot(&mut self) -> io::Result<()> {
        let Some(dir) = self.dir.clone() else { return Ok(()) };
        let next = self.generation + 1;
        write_atomic(&dir.join("snapshot.bin"), &self.encode_snapshot(next))?;
        self.wal = Some(Wal::open(&dir.join(format!("wal-{next}.log")))?);
        self.generation = next;
        self.events_since_snapshot = 0;
        // Older segments are now dead weight (their state is inside the
        // snapshot); sweep them, tolerating crash-left strays.
        if let Ok(entries) = std::fs::read_dir(&dir) {
            let keep = format!("wal-{next}.log");
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("wal-") && name.ends_with(".log") && name != keep {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    fn encode_snapshot(&self, generation: u64) -> Vec<u8> {
        let mut w = Writer(Vec::new());
        w.bytes(&SNAP_MAGIC);
        w.u8(SNAP_VERSION);
        w.u64(generation);

        let devices: Vec<_> = self.registry.devices().collect();
        w.u64(devices.len() as u64);
        for d in devices {
            w.u64(d.id.0);
            w.u32(d.op.0);
            w.u64(d.key_seed);
            w.u64(d.epoch);
            match d.last_verified {
                Some(n) => {
                    w.u8(1);
                    w.u64(n);
                }
                None => w.u8(0),
            }
            w.u64(d.verified);
            w.u64(d.rejected);
        }

        w.u64(self.sessions.next_id);
        w.u64(self.sessions.sessions.len() as u64);
        for s in self.sessions.sessions.values() {
            w.u64(s.id.0);
            w.u64(s.device.0);
            w.u32(s.op.0);
            w.u64(s.nonce);
            w.u64(s.issued_at);
            w.u64(s.deadline);
            w.u8(encode_state(s.state));
            match &s.report {
                Some(r) => {
                    w.u8(1);
                    encode_report_fields(&mut w, r);
                }
                None => w.u8(0),
            }
            match &s.proof {
                Some(p) => {
                    w.u8(1);
                    encode_dialed_proof(&mut w, p);
                }
                None => w.u8(0),
            }
        }

        w.u64(self.sessions.per_device.len() as u64);
        let per: BTreeMap<u64, _> =
            self.sessions.per_device.iter().map(|(d, p)| (d.0, p)).collect();
        for (device, per) in per {
            w.u64(device);
            w.u64(per.next_nonce);
            w.u64(per.window.tags.len() as u64);
            for tag in &per.window.tags {
                w.bytes(tag);
            }
        }

        let entries: Vec<_> = self.ingest.entries().collect();
        w.u64(entries.len() as u64);
        for (op, sid) in entries {
            w.u32(op.0);
            w.u64(sid.0);
        }
        w.0
    }

    /// Restores state from snapshot bytes, returning the generation the
    /// snapshot was taken at. Total decode: any malformation yields an
    /// error (and the caller falls back to the empty state).
    fn load_snapshot(&mut self, bytes: &[u8]) -> Result<u64, WireError> {
        let mut r = Reader::new(bytes);
        if r.take(SNAP_MAGIC.len())? != SNAP_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u8()?;
        if version != SNAP_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let generation = r.u64()?;

        let mut registry = Registry::new();
        let devices = r.usize64("device count")?;
        for _ in 0..devices {
            let id = DeviceId(r.u64()?);
            let op = OpId(r.u32()?);
            let key_seed = r.u64()?;
            let epoch = r.u64()?;
            registry.install_device(id, op, key_seed, epoch);
            let rec = registry.device_mut(id).expect("just installed");
            rec.last_verified = if r.bool()? { Some(r.u64()?) } else { None };
            rec.verified = r.u64()?;
            rec.rejected = r.u64()?;
        }

        let next_id = r.u64()?;
        let mut sessions = Vec::new();
        for _ in 0..r.usize64("session count")? {
            let id = SessionId(r.u64()?);
            let device = DeviceId(r.u64()?);
            let op = OpId(r.u32()?);
            let nonce = r.u64()?;
            let issued_at = r.u64()?;
            let deadline = r.u64()?;
            let state = decode_state(r.u8()?)?;
            let report = if r.bool()? { Some(decode_report_fields(&mut r)?) } else { None };
            let proof = if r.bool()? { Some(decode_dialed_proof(&mut r)?) } else { None };
            sessions.push((id, device, op, nonce, issued_at, deadline, state, report, proof));
        }

        let mut per_device = Vec::new();
        for _ in 0..r.usize64("per-device count")? {
            let device = DeviceId(r.u64()?);
            let next_nonce = r.u64()?;
            let window_len = r.usize64("window length")?;
            let mut tags = Vec::with_capacity(window_len.min(r.remaining() / 32 + 1));
            for _ in 0..window_len {
                tags.push(r.digest()?);
            }
            per_device.push((device, next_nonce, tags));
        }

        let mut queued = Vec::new();
        for _ in 0..r.usize64("ingest count")? {
            queued.push((OpId(r.u32()?), SessionId(r.u64()?)));
        }
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }

        // Everything decoded — install (challenges re-derive from the
        // label + device + nonce, exactly as at issue time).
        self.registry = registry;
        for (id, device, op, nonce, issued_at, deadline, state, report, proof) in sessions {
            let challenge = self.sessions.derive_challenge(device, nonce);
            self.sessions.sessions.insert(
                id.0,
                Session {
                    id,
                    device,
                    op,
                    nonce,
                    challenge,
                    issued_at,
                    deadline,
                    state,
                    report,
                    proof,
                },
            );
        }
        self.sessions.next_id = next_id;
        for (device, next_nonce, tags) in per_device {
            let per = self.sessions.per_device.entry(device).or_default();
            per.next_nonce = next_nonce;
            per.window.tags = tags.into();
        }
        for (op, sid) in queued {
            self.ingest.enqueue(op, sid);
        }
        Ok(generation)
    }
}

/// Snapshot file magic: "Dialed SNaPshot".
const SNAP_MAGIC: [u8; 4] = *b"DSNP";
/// Current snapshot-format version.
const SNAP_VERSION: u8 = 1;

fn encode_state(s: SessionState) -> u8 {
    match s {
        SessionState::Issued => 0,
        SessionState::Submitted => 1,
        SessionState::Verified => 2,
        SessionState::Rejected => 3,
        SessionState::Expired => 4,
    }
}

fn decode_state(tag: u8) -> Result<SessionState, WireError> {
    match tag {
        0 => Ok(SessionState::Issued),
        1 => Ok(SessionState::Submitted),
        2 => Ok(SessionState::Verified),
        3 => Ok(SessionState::Rejected),
        4 => Ok(SessionState::Expired),
        tag => Err(WireError::UnknownTag { what: "session state", tag }),
    }
}

// Compile-time check that the WAL constants shared with `store` stay in
// scope — shard directories mix both file kinds.
const _: () = {
    assert!(WAL_MAGIC.len() == 4);
    assert!(WAL_VERSION == 1);
};

#[cfg(test)]
mod tests {
    use super::*;
    use apex::{PoxConfig, PoxProof};
    use dialed::attest::DialedProof;
    use std::collections::HashMap;

    fn params() -> ShardParams {
        ShardParams { label: b"shard-test".to_vec(), ttl: 64, window_cap: 8, snapshot_every: 1024 }
    }

    fn dummy_proof(tag_byte: u8) -> DialedProof {
        let cfg = PoxConfig::new(0xE000, 0xE00F, 0xE00E, 0x0600, 0x06FF).unwrap();
        DialedProof {
            pox: PoxProof { cfg, exec: true, or_data: vec![0; cfg.or_len()], tag: [tag_byte; 32] },
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dialed-shard-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ring_routes_deterministically_and_spreads_load() {
        let ring = HashRing::new(4);
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for id in 0..4000u64 {
            let shard = ring.route(DeviceId(id));
            assert!(shard < 4);
            assert_eq!(shard, ring.route(DeviceId(id)), "routing must be stable");
            *counts.entry(shard).or_default() += 1;
        }
        // Consistent hashing is not perfectly uniform, but with 64 vnodes
        // per shard no shard should be starved or hog the space.
        for shard in 0..4 {
            let n = counts.get(&shard).copied().unwrap_or(0);
            assert!((400..=2200).contains(&n), "shard {shard} got {n} of 4000");
        }
        // A single-shard ring routes everything to shard 0.
        let solo = HashRing::new(1);
        assert!((0..100).all(|id| solo.route(DeviceId(id)) == 0));
    }

    #[test]
    fn ring_placement_is_stable_across_instances() {
        let a = HashRing::new(8);
        let b = HashRing::new(8);
        for id in 0..500u64 {
            assert_eq!(a.route(DeviceId(id)), b.route(DeviceId(id)));
        }
    }

    #[test]
    fn durable_shard_recovers_committed_state() {
        let dir = tmp_dir("recover");
        let dev = DeviceId(3);
        {
            let mut shard = Shard::recover(&dir, 0, 2, &params()).unwrap();
            shard.commit(StateEvent::DeviceRegistered {
                device: dev,
                op: OpId(0),
                key_seed: 7,
                epoch: 0,
            });
            shard.commit(StateEvent::ChallengeIssued {
                session: SessionId(0),
                device: dev,
                op: OpId(0),
                nonce: 0,
                issued_at: 1,
                deadline: 65,
            });
            shard.commit(StateEvent::ProofAccepted {
                session: SessionId(0),
                device: dev,
                proof: dummy_proof(0xAA),
            });
            // Dropped without a drain — the mid-batch crash.
        }
        let shard = Shard::recover(&dir, 0, 2, &params()).unwrap();
        assert_eq!(shard.registry().len(), 1);
        let s = shard.sessions().session(SessionId(0)).unwrap();
        assert_eq!(s.state, SessionState::Submitted);
        assert_eq!(shard.pending(), 1, "accepted proof must survive the crash");
        assert_eq!(shard.sessions().next_nonce(dev), 1);
        // The accepted tag is back in the anti-replay window.
        assert!(shard.sessions.check_submit(SessionId(0), dev, &[0xAA; 32], 2).is_err());
    }

    #[test]
    fn snapshot_rotation_preserves_state_and_bounds_segments() {
        let dir = tmp_dir("rotate");
        let mut p = params();
        p.snapshot_every = 4; // force rotations
        let dev = DeviceId(5);
        {
            let mut shard = Shard::recover(&dir, 1, 3, &p).unwrap();
            shard.commit(StateEvent::DeviceRegistered {
                device: dev,
                op: OpId(0),
                key_seed: 9,
                epoch: 2,
            });
            for round in 0..6u64 {
                shard.commit(StateEvent::ChallengeIssued {
                    session: SessionId(1 + 3 * round),
                    device: dev,
                    op: OpId(0),
                    nonce: round,
                    issued_at: round,
                    deadline: round + 64,
                });
                shard.commit(StateEvent::ProofAccepted {
                    session: SessionId(1 + 3 * round),
                    device: dev,
                    proof: dummy_proof(round as u8),
                });
                shard.commit(StateEvent::VerdictRecorded {
                    session: SessionId(1 + 3 * round),
                    report: Report::clean(Default::default()),
                });
            }
            assert!(shard.generation > 0, "snapshot_every=4 must have rotated");
        }
        // Exactly one WAL segment remains after rotations.
        let wal_files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
            .collect();
        assert_eq!(wal_files.len(), 1);

        let shard = Shard::recover(&dir, 1, 3, &p).unwrap();
        let rec = shard.registry().device(dev).unwrap();
        assert_eq!(rec.verified, 6);
        assert_eq!(rec.last_verified, Some(5));
        assert_eq!(rec.epoch(), 2);
        assert_eq!(shard.sessions().next_nonce(dev), 6);
        // Strided ids survive: next id ≡ 1 (mod 3).
        assert_eq!(shard.sessions().peek_next_id().0 % 3, 1);
        // The replay window survived the snapshot: an old accepted tag is
        // still refused.
        assert!(shard.sessions.check_submit(SessionId(100), dev, &[5; 32], 7).is_err());
    }

    #[test]
    fn deregistration_purges_sessions_and_queue() {
        let mut shard = Shard::in_memory(0, 1, &params());
        let dev = DeviceId(1);
        shard.commit(StateEvent::DeviceRegistered {
            device: dev,
            op: OpId(0),
            key_seed: 1,
            epoch: 0,
        });
        shard.commit(StateEvent::ChallengeIssued {
            session: SessionId(0),
            device: dev,
            op: OpId(0),
            nonce: 0,
            issued_at: 0,
            deadline: 64,
        });
        shard.commit(StateEvent::ProofAccepted {
            session: SessionId(0),
            device: dev,
            proof: dummy_proof(1),
        });
        assert_eq!(shard.pending(), 1);
        shard.commit(StateEvent::DeviceDeregistered { device: dev });
        assert_eq!(shard.pending(), 0, "queued proof of a removed device is dropped");
        assert!(shard.registry().device(dev).is_err());
        assert_eq!(shard.sessions().session(SessionId(0)).unwrap().state, SessionState::Expired);
    }
}
