//! A mixed fleet on the durable, sharded attestation service: one
//! PoX-only operation and one full-DIALED operation, individually keyed
//! devices, consistent-hash state shards with write-ahead logs — and a
//! crash in the middle.
//!
//! The fire sensor ships a `CfaOnly` image — no I-Log, so the best the
//! server can do is the cryptographic proof of execution. The syringe
//! pump ships a `Full` image and gets complete data-flow verification
//! plus its safety policies. Both register into one [`Fleet`], which
//! routes each device to a state shard, journals every mutation, drains
//! the shards in parallel through per-operation batch engines — and,
//! after the simulated crash, recovers from disk and refuses a replayed
//! proof it accepted in its previous life.
//!
//! ```text
//! cargo run -p fleet --example mixed_fleet
//! ```

use apps::{app_build_options, fire_sensor, syringe_pump};
use dialed::attest::DialedDevice;
use dialed::pipeline::{InstrumentMode, InstrumentedOp};
use fleet::wire::{self, Message, ProofMsg};
use fleet::{CatalogFn, DeviceId, Fleet, FleetConfig, SessionError, SessionId};

const DEVICES: u64 = 4;

fn build_op(name: &str) -> InstrumentedOp {
    match name {
        "fire-sensor" => InstrumentedOp::build(
            fire_sensor::SOURCE,
            "fire_op",
            &app_build_options(InstrumentMode::CfaOnly),
        )
        .expect("sensor image builds"),
        "syringe-pump" => InstrumentedOp::build(
            syringe_pump::SOURCE,
            "syringe_op",
            &app_build_options(InstrumentMode::Full),
        )
        .expect("pump image builds"),
        other => panic!("unknown op {other}"),
    }
}

/// The recovery catalog: operations are code artifacts, so a restarted
/// service rebuilds them from source instead of reading them off disk.
fn catalog() -> impl fleet::OpCatalog {
    CatalogFn(|name: &str| {
        let policies = if name == "syringe-pump" { syringe_pump::policies() } else { vec![] };
        matches!(name, "fire-sensor" | "syringe-pump").then(|| (build_op(name), policies))
    })
}

/// One device-side attestation: answer the fleet's challenge over the
/// wire and return the encoded proof frame.
fn answer(fleet: &mut Fleet, sim: &mut DialedDevice, id: DeviceId, now: u64) -> Vec<u8> {
    let chal = fleet.issue(id, now).expect("registered device");
    let proof = sim.prove(&chal.challenge);
    wire::encode(&Message::Proof(ProofMsg { session: chal.session, device: id.0, proof }))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("dialed-mixed-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Life 1: provision, attest, crash mid-flight. ------------------
    let mut captured_frame = Vec::new();
    {
        let mut fleet = Fleet::durable(&dir, FleetConfig::default())?;
        let sensor_id = fleet.register_op("fire-sensor", build_op("fire-sensor"), vec![]);
        let pump_id =
            fleet.register_op("syringe-pump", build_op("syringe-pump"), syringe_pump::policies());

        let mut sims: Vec<(DeviceId, DialedDevice)> = Vec::new();
        for i in 0..DEVICES * 2 {
            let (op_id, op_name) =
                if i % 2 == 0 { (sensor_id, "fire-sensor") } else { (pump_id, "syringe-pump") };
            let dev = fleet.register_device(op_id, 0x100 + i)?;
            let mut sim = DialedDevice::new(build_op(op_name), fleet.device_keystore(dev)?);
            if i % 2 == 0 {
                sim.platform_mut().adc.feed(&[fire_sensor::raw_for_temp(30), 0x0600]);
            } else {
                syringe_pump::feed_nominal(sim.platform_mut());
            }
            sim.invoke(&[0; 8]);
            sims.push((dev, sim));
        }

        println!(
            "mixed fleet: {DEVICES} PoX-only sensors + {DEVICES} full-DIALED pumps \
             over {} durable shards",
            fleet.shards().len()
        );
        for (dev, sim) in &mut sims {
            let frame = answer(&mut fleet, sim, *dev, 0);
            fleet.submit_wire(&frame, 1).expect("fresh proof is accepted");
            captured_frame = frame; // keep the last one for the replay attack
        }
        let (stats, _) = fleet.drain(2);
        println!("  round 1: {stats}");
        assert_eq!(stats.verified as u64, DEVICES * 2);

        // One more submission is accepted — and then the process "dies"
        // before draining it. The WAL has it; memory is about to not.
        let (dev, sim) = &mut sims[0];
        let frame = answer(&mut fleet, sim, *dev, 3);
        fleet.submit_wire(&frame, 4).expect("accepted, never drained");
        println!("  crash with {} submission in flight", fleet.pending());
    }

    // ---- Life 2: recover from disk. ------------------------------------
    let mut fleet = Fleet::recover(&dir, FleetConfig::default(), &catalog())?;
    println!(
        "recovered: {} devices, {} submission pending",
        fleet.devices().count(),
        fleet.pending()
    );
    assert_eq!(fleet.pending(), 1);

    // The interrupted round completes as if nothing happened.
    let (stats, _) = fleet.drain(5);
    println!("  resumed drain: {stats}");
    assert_eq!(stats.verified, 1);

    // The replay attack: a proof verified in life 1, resubmitted against
    // a fresh session of the same device. The recovered anti-replay
    // window kills it before any cryptography runs.
    let Ok(Message::Proof(old)) = wire::decode(&captured_frame) else { unreachable!() };
    let chal = fleet.issue(DeviceId(old.device), 6)?;
    let replay = wire::encode(&Message::Proof(ProofMsg { session: chal.session, ..old }));
    let err = fleet.submit_wire(&replay, 7).expect_err("replay must be refused");
    assert_eq!(err, Ok(SessionError::ReplayedProof));
    println!("  replayed life-1 proof against {}: {}", SessionId(chal.session), err.unwrap());

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
