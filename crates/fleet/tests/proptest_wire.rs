//! Property tests for the wire codec: round-trip fidelity and totality
//! (no input — truncated, bit-flipped, or fully random — may panic the
//! decoder).

use apex::{PoxConfig, PoxProof};
use dialed::attest::DialedProof;
use dialed::report::{Finding, RejectReason, Report, Verdict, VerifyStats};
use fleet::wire::{self, BatchSummary, ChallengeMsg, Message, OutcomeSummary, ProofMsg, ReportMsg};
use proptest::prelude::*;
use vrased::Challenge;

fn verdict_from(tag: u8) -> Verdict {
    match tag % 3 {
        0 => Verdict::Clean,
        1 => Verdict::Rejected,
        _ => Verdict::Attack,
    }
}

fn reject_from(tag: u8, a: u16, text: &str) -> RejectReason {
    match tag % 10 {
        0 => RejectReason::RegionMismatch,
        1 => RejectReason::ExecClear,
        2 => RejectReason::ErLengthMismatch,
        3 => RejectReason::OrLengthMismatch,
        4 => RejectReason::MacMismatch,
        5 => RejectReason::NotFullyInstrumented,
        6 => RejectReason::UnknownKey { device: u64::from(a) << 32 },
        7 => RejectReason::MalformedSubmission { detail: text.to_string() },
        8 => RejectReason::SessionViolation { detail: text.to_string() },
        _ => RejectReason::UnknownPrincipal { detail: text.to_string() },
    }
}

fn finding_from(tag: u8, a: u16, b: u16, text: &str) -> Finding {
    match tag % 8 {
        0 => Finding::PoxRejected { reason: reject_from(tag / 8, a, text) },
        1 => Finding::ReturnHijack { at: a, expected: b, actual: a ^ b },
        2 => Finding::LogDivergence { addr: a, device: b, emulated: a.wrapping_add(b) },
        3 => Finding::OutOfBoundsWrite { pc: a, addr: b },
        4 => Finding::ActuationViolation { port: a, cycles: u64::from(b) << 32, max: u64::from(a) },
        5 => Finding::OrHeadTruncated { capacity: usize::from(a), required: usize::from(b) },
        6 => Finding::EmulationStuck,
        _ => Finding::PolicyViolation { policy: text.to_string(), detail: text.to_string() },
    }
}

/// A structurally valid config derived from three generator words.
fn config_from(er_len: u16, or_len: u16, exit_off: u16) -> PoxConfig {
    let er_min = 0xE000;
    let er_max = er_min + 2 + (er_len % 0x400);
    let er_exit = (er_min + (exit_off % (er_max - er_min + 1))) & !1;
    let or_min = 0x0400;
    let or_max = or_min + 1 + 2 * (or_len % 0x200); // always odd
    PoxConfig::new(er_min, er_max, er_exit, or_min, or_max).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode(encode(x)) == x for arbitrary challenge messages.
    #[test]
    fn challenge_round_trips(session in any::<u64>(), device in any::<u64>(),
                             nonce in any::<u64>(), deadline in any::<u64>(),
                             label in any::<u64>()) {
        let msg = Message::Challenge(ChallengeMsg {
            session, device, nonce, deadline,
            challenge: Challenge::derive(b"prop", label),
        });
        let decoded = wire::decode(&wire::encode(&msg));
        prop_assert_eq!(decoded.as_ref(), Ok(&msg));
    }

    /// decode(encode(x)) == x for arbitrary proofs over valid configs.
    #[test]
    fn proof_round_trips(session in any::<u64>(), device in any::<u64>(),
                         er_len in any::<u16>(), or_len in any::<u16>(), exit in any::<u16>(),
                         exec in any::<bool>(),
                         fill in any::<u8>(), tag in proptest::array::uniform8(any::<u8>())) {
        let cfg = config_from(er_len, or_len, exit);
        let mut digest = [0u8; 32];
        digest[..8].copy_from_slice(&tag);
        let msg = Message::Proof(ProofMsg {
            session, device,
            proof: DialedProof { pox: PoxProof {
                cfg, exec,
                or_data: vec![fill; cfg.or_len()],
                tag: digest,
            }},
        });
        let decoded = wire::decode(&wire::encode(&msg));
        prop_assert_eq!(decoded.as_ref(), Ok(&msg));
    }

    /// decode(encode(x)) == x for reports over every finding variant.
    #[test]
    fn report_round_trips(session in any::<u64>(), device in any::<u64>(),
                          verdict in any::<u8>(),
                          tags in proptest::collection::vec(any::<u8>(), 0..12),
                          a in any::<u16>(), b in any::<u16>(),
                          insns in any::<u32>()) {
        let findings = tags.iter().map(|&t| finding_from(t, a, b, "détail ✓")).collect();
        let msg = Message::Report(ReportMsg {
            session, device,
            report: Report {
                verdict: verdict_from(verdict),
                findings,
                stats: VerifyStats {
                    emulated_insns: insns as usize,
                    log_bytes_used: a.into(),
                    cf_entries: b.into(),
                    input_entries: 1,
                    arg_entries: 9,
                },
            },
        });
        let decoded = wire::decode(&wire::encode(&msg));
        prop_assert_eq!(decoded.as_ref(), Ok(&msg));
    }

    /// decode(encode(x)) == x for batch summaries.
    #[test]
    fn batch_summary_round_trips(total in any::<u64>(), wall in any::<u64>(),
                                 rate_bits in any::<u32>(),
                                 outcomes in proptest::collection::vec((any::<u64>(), any::<u8>()), 0..40)) {
        let msg = Message::BatchSummary(BatchSummary {
            total,
            clean: total / 2,
            rejected: total / 3,
            attacks: total / 5,
            workers: 8,
            steals: 3,
            wall_nanos: wall,
            proofs_per_sec: f64::from(rate_bits),
            emulated_insns: total,
            outcomes: outcomes
                .iter()
                .enumerate()
                .map(|(i, &(device, v))| OutcomeSummary {
                    index: i as u64,
                    device,
                    verdict: verdict_from(v),
                })
                .collect(),
        });
        let decoded = wire::decode(&wire::encode(&msg));
        prop_assert_eq!(decoded.as_ref(), Ok(&msg));
    }

    /// Totality: decoding arbitrary bytes never panics.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = wire::decode(&bytes);
    }

    /// Totality: every truncation of a valid frame errors cleanly.
    #[test]
    fn truncations_never_panic(cut in any::<usize>(), nonce in any::<u64>()) {
        let bytes = wire::encode(&Message::Challenge(ChallengeMsg {
            session: 1, device: 2, nonce, deadline: 4,
            challenge: Challenge::derive(b"trunc", nonce),
        }));
        let cut = cut % bytes.len();
        prop_assert!(wire::decode(&bytes[..cut]).is_err());
    }

    /// Totality + integrity: single-bit corruption of a proof frame either
    /// fails to decode or decodes to a *different* well-formed message —
    /// never a panic, and never silently the original.
    #[test]
    fn bitflips_never_panic(pos in any::<usize>(), bit in 0u8..8,
                            or_len in any::<u16>()) {
        let cfg = config_from(64, or_len, 0);
        let msg = Message::Proof(ProofMsg {
            session: 5, device: 6,
            proof: DialedProof { pox: PoxProof {
                cfg, exec: true,
                or_data: vec![0x5A; cfg.or_len()],
                tag: [7; 32],
            }},
        });
        let mut bytes = wire::encode(&msg);
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        if let Ok(decoded) = wire::decode(&bytes) {
            prop_assert_ne!(decoded, msg, "flipped bit at {} unnoticed", pos);
        }
    }
}
