//! Every failure class of every service layer maps into the structured
//! [`RejectReason`] — wire decode, session protocol, registry lookups and
//! the cryptographic PoX check all land in a matchable variant, and the
//! mapped reasons survive the wire codec.

use apex::PoxRejection;
use dialed::report::{Finding, RejectReason, Report, Verdict};
use fleet::wire::{self, Message, ReportMsg, WireError};
use fleet::{DeviceId, Fleet, FleetConfig, OpId, RegistryError, SessionError, SessionState};

/// One representative of every [`WireError`] variant.
fn wire_errors() -> Vec<WireError> {
    vec![
        WireError::Truncated { need: 8, have: 3 },
        WireError::BadMagic,
        WireError::UnsupportedVersion(9),
        WireError::UnknownTag { what: "message", tag: 0xEE },
        WireError::LengthMismatch { announced: 10, present: 4 },
        WireError::TrailingBytes(2),
        WireError::BadUtf8,
        WireError::BadBool(7),
        WireError::BadConfig("region bounds rejected"),
        WireError::Overflow("payload length"),
        WireError::UnexpectedMessage { expected: "proof" },
    ]
}

/// One representative of every [`SessionError`] variant.
fn session_errors() -> Vec<SessionError> {
    vec![
        SessionError::UnknownSession(fleet::SessionId(9)),
        SessionError::DeviceMismatch { expected: DeviceId(1), got: DeviceId(2) },
        SessionError::NotAwaitingProof(SessionState::Submitted),
        SessionError::Expired { deadline: 44 },
        SessionError::ReplayedProof,
    ]
}

#[test]
fn every_wire_failure_class_maps_to_malformed_submission() {
    for err in wire_errors() {
        let detail = err.to_string();
        let reason = RejectReason::from(err);
        assert_eq!(reason, RejectReason::MalformedSubmission { detail });
    }
}

#[test]
fn every_session_failure_class_maps_to_session_violation() {
    for err in session_errors() {
        let detail = err.to_string();
        let reason = RejectReason::from(err);
        assert_eq!(reason, RejectReason::SessionViolation { detail });
    }
}

#[test]
fn every_registry_failure_class_maps_to_unknown_principal() {
    for err in [RegistryError::UnknownOp(OpId(4)), RegistryError::UnknownDevice(DeviceId(17))] {
        let detail = err.to_string();
        let reason = RejectReason::from(err);
        assert_eq!(reason, RejectReason::UnknownPrincipal { detail });
    }
}

#[test]
fn every_crypto_failure_class_maps_losslessly() {
    let classes = [
        (PoxRejection::RegionMismatch, RejectReason::RegionMismatch),
        (PoxRejection::ExecClear, RejectReason::ExecClear),
        (PoxRejection::ErLengthMismatch, RejectReason::ErLengthMismatch),
        (PoxRejection::OrLengthMismatch, RejectReason::OrLengthMismatch),
        (PoxRejection::MacMismatch, RejectReason::MacMismatch),
    ];
    for (pox, expect) in classes {
        assert_eq!(RejectReason::from(pox), expect);
        // Display text is shared, so operator output stays stable across
        // the conversion.
        assert_eq!(pox.to_string(), expect.to_string());
    }
}

#[test]
fn overload_shedding_is_a_distinct_reject_class() {
    // Backpressure is not a verdict on the proof: it must stay its own
    // matchable variant (devices retry on it; they must NOT retry on,
    // say, MacMismatch) and carry the observed queue depth.
    let reason = RejectReason::Overloaded { pending: 4096 };
    assert_eq!(reason.to_string(), "service overloaded: 4096 submissions queued, retry later");
    let report = Report::rejected(reason.clone());
    assert_eq!(report.verdict, Verdict::Rejected);
    let msg = ReportMsg { session: 0, device: 0, report };
    let decoded = wire::decode(&wire::encode(&Message::Report(msg.clone())));
    assert_eq!(decoded, Ok(Message::Report(msg)));
}

#[test]
fn failed_submissions_become_wire_ready_rejection_reports() {
    let mut fleet = Fleet::new(FleetConfig::default());

    // Garbage bytes die at the wire layer…
    let err = fleet.submit_wire(b"junk", 0).unwrap_err();
    let report = Fleet::rejection_report(err);
    assert_eq!(report.verdict, Verdict::Rejected);
    let Finding::PoxRejected { reason } = &report.findings[0] else {
        panic!("rejection report must carry a PoxRejected finding");
    };
    assert!(matches!(reason, RejectReason::MalformedSubmission { .. }), "{reason:?}");

    // …and the structured report round-trips through the same codec that
    // carries verification verdicts.
    let msg = ReportMsg { session: 1, device: 2, report: report.clone() };
    let decoded = wire::decode(&wire::encode(&Message::Report(msg.clone())));
    assert_eq!(decoded, Ok(Message::Report(msg)));

    // A session-layer failure maps to its own class.
    let session_report = Fleet::rejection_report(Ok(SessionError::ReplayedProof));
    assert_eq!(
        session_report.findings,
        vec![Finding::PoxRejected {
            reason: RejectReason::SessionViolation {
                detail: SessionError::ReplayedProof.to_string()
            }
        }]
    );

    // A registry failure maps through the same Into<RejectReason> door.
    let registry_report = Report::rejected(RegistryError::UnknownDevice(DeviceId(3)));
    assert!(matches!(
        &registry_report.findings[0],
        Finding::PoxRejected { reason: RejectReason::UnknownPrincipal { .. } }
    ));
}
