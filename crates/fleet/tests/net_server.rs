//! The TCP frontend, end to end over loopback: honest round trips with
//! request multiplexing, load shedding at the ingest watermark, graceful
//! drain flushing every in-flight verdict, and wall-clock session expiry.

use dialed::attest::DialedDevice;
use dialed::pipeline::{BuildOptions, InstrumentedOp};
use dialed::report::{RejectClass, RejectReason, Verdict};
use fleet::wire::Message;
use fleet::{DeviceId, Fleet, FleetConfig, NetClient, NetConfig, NetServer};
use std::collections::HashMap;
use std::time::Duration;

const OP_SRC: &str = "\
    .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";

/// A fleet with `n` registered devices and their device-side simulators.
fn fleet_with_devices(n: u64, cfg: FleetConfig) -> (Fleet, Vec<(DeviceId, DialedDevice)>) {
    let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
    let mut fleet = Fleet::new(cfg);
    let op_id = fleet.register_op("adder", op.clone(), vec![]);
    let devices = (0..n)
        .map(|seed| {
            let id = fleet.register_device(op_id, seed).unwrap();
            (id, DialedDevice::new(op.clone(), fleet.device_keystore(id).unwrap()))
        })
        .collect();
    (fleet, devices)
}

fn proof_for(device: &mut DialedDevice, chal: &fleet::ChallengeMsg) -> fleet::ProofMsg {
    device.invoke(&[0, 0, 0, 0, 0, 0, 2, 3]);
    fleet::ProofMsg {
        session: chal.session,
        device: chal.device,
        proof: device.prove(&chal.challenge),
    }
}

#[test]
fn honest_devices_round_trip_multiplexed() {
    let (fleet, mut devices) = fleet_with_devices(
        8,
        FleetConfig { workers: Some(2), shards: 4, ..FleetConfig::default() },
    );
    let handle = NetServer::spawn(
        fleet,
        NetConfig { drain_interval: Duration::from_millis(10), ..NetConfig::default() },
    )
    .unwrap();

    // All eight devices share one connection; pipeline every issue, then
    // every submit, correlating replies by request id.
    let mut client = NetClient::connect(handle.addr()).unwrap();
    let mut issue_reqs = HashMap::new();
    for (i, (id, _)) in devices.iter().enumerate() {
        issue_reqs.insert(client.issue(id.0).unwrap(), i);
    }
    let mut chals = HashMap::new();
    for _ in 0..devices.len() {
        match client.recv().unwrap() {
            Message::Grant(g) => {
                let i = issue_reqs[&g.request];
                chals.insert(i, g.body);
            }
            other => panic!("expected grant, got {other:?}"),
        }
    }

    let mut submit_reqs = HashMap::new();
    for (i, chal) in &chals {
        let msg = proof_for(&mut devices[*i].1, chal);
        submit_reqs.insert(client.submit(msg).unwrap(), *i);
    }
    let mut verdicts = 0;
    for _ in 0..devices.len() {
        match client.recv().unwrap() {
            Message::Verdict(v) => {
                let i = submit_reqs[&v.request];
                assert_eq!(v.body.device, devices[i].0 .0, "verdict routed to wrong device");
                assert_eq!(v.body.report.verdict, Verdict::Clean, "{:?}", v.body.report);
                verdicts += 1;
            }
            other => panic!("expected verdict, got {other:?}"),
        }
    }
    assert_eq!(verdicts, devices.len());

    let (fleet, stats) = handle.shutdown().expect("no server thread may panic");
    assert_eq!(stats.granted, 8);
    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.verdicts, 8);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(fleet.pending(), 0, "graceful shutdown drains ingest");
}

#[test]
fn submissions_past_the_watermark_are_shed() {
    let (fleet, mut devices) = fleet_with_devices(
        6,
        FleetConfig { workers: Some(1), shards: 1, ..FleetConfig::default() },
    );
    // Tiny watermark, drains effectively disabled: the queue backs up and
    // the shed path must answer with explicit backpressure.
    let handle = NetServer::spawn(
        fleet,
        NetConfig {
            shed_watermark: 2,
            drain_interval: Duration::from_secs(3600),
            drain_pending: usize::MAX,
            ..NetConfig::default()
        },
    )
    .unwrap();

    let mut client = NetClient::connect(handle.addr()).unwrap();
    let mut accepted = Vec::new();
    let mut shed = 0u64;
    for (id, device) in &mut devices {
        let chal = client.request_challenge(id.0).unwrap().expect("grant");
        let req = client.submit(proof_for(device, &chal)).unwrap();
        // With drains off, replies to accepted submissions never arrive
        // mid-run — only shed rejects do. Distinguish by queue position:
        // the first `watermark` submissions are accepted silently.
        if accepted.len() < 2 {
            accepted.push(req);
        } else {
            match client.recv().unwrap() {
                Message::Reject(r) => {
                    assert_eq!(r.request, req);
                    match r.reason {
                        RejectReason::Overloaded { pending } => {
                            assert_eq!(pending, 2, "shed reports the observed depth");
                        }
                        other => panic!("expected Overloaded, got {other:?}"),
                    }
                    shed += 1;
                }
                other => panic!("expected shed reject, got {other:?}"),
            }
        }
    }
    assert_eq!(shed, 4, "every submission past the watermark is shed");

    // Graceful shutdown still owes the accepted two their verdicts.
    let (_, stats) = handle.shutdown().expect("no server thread may panic");
    assert_eq!(stats.shed, 4);
    assert_eq!(stats.submitted, 2);
    let mut flushed = Vec::new();
    loop {
        match client.recv() {
            Ok(Message::Verdict(v)) => flushed.push(v.request),
            Ok(other) => panic!("expected verdict, got {other:?}"),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => panic!("client read failed: {e}"),
        }
    }
    flushed.sort_unstable();
    accepted.sort_unstable();
    assert_eq!(flushed, accepted, "shutdown flushes exactly the accepted submissions");
}

#[test]
fn graceful_drain_loses_no_inflight_verdict() {
    let n = 24u64;
    let (fleet, mut devices) = fleet_with_devices(
        n,
        FleetConfig { workers: Some(2), shards: 4, ..FleetConfig::default() },
    );
    // Drains disabled: every verdict owed at shutdown is still queued.
    let handle = NetServer::spawn(
        fleet,
        NetConfig {
            drain_interval: Duration::from_secs(3600),
            drain_pending: usize::MAX,
            ..NetConfig::default()
        },
    )
    .unwrap();

    let mut client = NetClient::connect(handle.addr()).unwrap();
    let mut submit_reqs = Vec::new();
    for (id, device) in &mut devices {
        let chal = client.request_challenge(id.0).unwrap().expect("grant");
        submit_reqs.push(client.submit(proof_for(device, &chal)).unwrap());
    }
    // Barrier: one more issue. Its grant proves the core has consumed
    // every pipelined submit ahead of it on this connection.
    let _ = client.request_challenge(devices[0].0 .0).unwrap().expect("grant");

    let (fleet, stats) = handle.shutdown().expect("no server thread may panic");
    assert_eq!(stats.submitted, n, "all submissions were accepted before shutdown");
    assert_eq!(stats.verdicts, n, "the final drain emitted every in-flight verdict");

    let mut flushed: Vec<u64> = Vec::new();
    loop {
        match client.recv() {
            Ok(Message::Verdict(v)) => {
                assert_eq!(v.body.report.verdict, Verdict::Clean);
                flushed.push(v.request);
            }
            Ok(other) => panic!("expected verdict, got {other:?}"),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => panic!("client read failed: {e}"),
        }
    }
    flushed.sort_unstable();
    submit_reqs.sort_unstable();
    assert_eq!(flushed, submit_reqs, "every accepted submission got its verdict frame");
    assert_eq!(fleet.pending(), 0);
}

#[test]
fn sessions_expire_on_the_wall_clock() {
    // 5 ms ticks and the default 64-tick TTL: challenges die ~320 ms
    // after issue, driven purely by the server's drain timer.
    let (fleet, mut devices) = fleet_with_devices(
        1,
        FleetConfig { workers: Some(1), shards: 1, ..FleetConfig::default() },
    );
    let handle = NetServer::spawn(
        fleet,
        NetConfig {
            tick: Duration::from_millis(5),
            drain_interval: Duration::from_millis(10),
            ..NetConfig::default()
        },
    )
    .unwrap();

    let mut client = NetClient::connect(handle.addr()).unwrap();
    let (id, device) = &mut devices[0];
    let chal = client.request_challenge(id.0).unwrap().expect("grant");
    std::thread::sleep(Duration::from_millis(600));
    let req = client.submit(proof_for(device, &chal)).unwrap();
    match client.recv().unwrap() {
        Message::Reject(r) => {
            assert_eq!(r.request, req);
            assert!(
                matches!(r.reason, RejectReason::SessionViolation { .. }),
                "expired challenge must reject at the session layer: {:?}",
                r.reason
            );
        }
        other => panic!("expected expiry reject, got {other:?}"),
    }

    // A fresh challenge still works: expiry killed the session, not the
    // device or the connection.
    let chal = client.request_challenge(id.0).unwrap().expect("grant");
    let req = client.submit(proof_for(device, &chal)).unwrap();
    match client.recv().unwrap() {
        Message::Verdict(v) => {
            assert_eq!(v.request, req);
            assert_eq!(v.body.report.verdict, Verdict::Clean);
        }
        other => panic!("expected verdict, got {other:?}"),
    }

    let (_, stats) = handle.shutdown().expect("no server thread may panic");
    assert!(stats.session_rejects >= 1);
    assert!(stats.drains >= 2, "the wall clock must have driven idle drains");
}

#[test]
fn deregistration_races_an_open_networked_session() {
    // A device is deregistered (decommissioned, key revoked) while one of
    // its sessions is open over a live connection. The late submit must
    // get a structured session reject — not a panic, not a dropped
    // connection — and the connection must stay usable for other devices.
    let (fleet, mut devices) = fleet_with_devices(
        2,
        FleetConfig { workers: Some(1), shards: 1, ..FleetConfig::default() },
    );
    let handle = NetServer::spawn(
        fleet,
        NetConfig { drain_interval: Duration::from_millis(10), ..NetConfig::default() },
    )
    .unwrap();

    let mut client = NetClient::connect(handle.addr()).unwrap();
    let (doomed, doomed_dev) = &mut devices[0];
    let chal = client.request_challenge(doomed.0).unwrap().expect("grant");
    let proof = proof_for(doomed_dev, &chal);

    // The race, made deterministic: the admin closure runs on the core
    // thread, serialized with connection traffic, and `admin` blocks
    // until it has been applied — so the deregistration lands before the
    // submit below is processed.
    let doomed_id = *doomed;
    let expired = handle
        .admin(move |f| f.deregister_device(doomed_id))
        .expect("server alive")
        .expect("device was registered");
    assert_eq!(expired, 1, "the open session is expired by deregistration");

    let req = client.submit(proof).unwrap();
    match client.recv().unwrap() {
        Message::Reject(r) => {
            assert_eq!(r.request, req);
            assert_eq!(
                r.reason.class(),
                RejectClass::Session,
                "late submit must die at the session layer: {:?}",
                r.reason
            );
        }
        other => panic!("expected session reject, got {other:?}"),
    }

    // A fresh challenge for the deregistered device is refused too.
    let refused = client.request_challenge(doomed_id.0).unwrap();
    assert!(refused.is_err(), "deregistered device must not be granted a challenge");

    // The other device — same connection — is untouched.
    let (alive, alive_dev) = &mut devices[1];
    let chal = client.request_challenge(alive.0).unwrap().expect("grant");
    let req = client.submit(proof_for(alive_dev, &chal)).unwrap();
    match client.recv().unwrap() {
        Message::Verdict(v) => {
            assert_eq!(v.request, req);
            assert_eq!(v.body.report.verdict, Verdict::Clean, "{:?}", v.body.report);
        }
        other => panic!("expected verdict, got {other:?}"),
    }

    let (_, stats) = handle.shutdown().expect("no server thread may panic");
    assert_eq!(stats.protocol_errors, 0, "the race is not a protocol violation");
    assert!(
        stats.rejects_for(RejectClass::Session) >= 1,
        "the session-layer reject is accounted by class: {stats}"
    );
}
