//! Adversarial socket behavior against the TCP frontend, over real
//! loopback connections: garbage bytes, truncated frames, oversized
//! length prefixes, undecodable payloads, mid-frame disconnects, and
//! slow-loris trickles. The server must never panic — every test ends in
//! `shutdown().expect(..)`, which propagates any server-thread panic —
//! and every violation is answered with a structured reject or a clean
//! close, with the server staying healthy for honest traffic afterwards.

use dialed::attest::DialedDevice;
use dialed::pipeline::{BuildOptions, InstrumentedOp};
use dialed::report::{RejectReason, Verdict};
use fleet::wire::{self, Message};
use fleet::{DeviceId, Fleet, FleetConfig, NetClient, NetConfig, NetServer, NetServerHandle};
use std::io::ErrorKind;
use std::time::Duration;

const OP_SRC: &str = "\
    .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";

fn server(cfg: NetConfig) -> (NetServerHandle, DeviceId, DialedDevice) {
    let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
    let mut fleet =
        Fleet::new(FleetConfig { workers: Some(1), shards: 2, ..FleetConfig::default() });
    let op_id = fleet.register_op("adder", op.clone(), vec![]);
    let id = fleet.register_device(op_id, 7).unwrap();
    let device = DialedDevice::new(op.clone(), fleet.device_keystore(id).unwrap());
    (NetServer::spawn(fleet, cfg).unwrap(), id, device)
}

/// Reads until EOF, returning the structured rejects seen on the way.
fn drain_to_eof(client: &mut NetClient) -> Vec<RejectReason> {
    let mut rejects = Vec::new();
    loop {
        match client.recv() {
            Ok(Message::Reject(r)) => rejects.push(r.reason),
            Ok(other) => panic!("expected reject or close, got {other:?}"),
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => return rejects,
            // The server may reset the connection after its FIN if bytes
            // were still in flight; that is a close, not a hang.
            Err(e) if e.kind() == ErrorKind::ConnectionReset => return rejects,
            Err(e) => panic!("client read failed: {e}"),
        }
    }
}

/// One honest round trip, proving the server survived whatever the test
/// threw at it.
fn honest_round_trip(handle: &NetServerHandle, id: DeviceId, device: &mut DialedDevice) {
    let mut client = NetClient::connect(handle.addr()).unwrap();
    let chal = client.request_challenge(id.0).unwrap().expect("grant");
    device.invoke(&[0, 0, 0, 0, 0, 0, 2, 3]);
    let req = client
        .submit(fleet::ProofMsg {
            session: chal.session,
            device: chal.device,
            proof: device.prove(&chal.challenge),
        })
        .unwrap();
    match client.recv().unwrap() {
        Message::Verdict(v) => {
            assert_eq!(v.request, req);
            assert_eq!(v.body.report.verdict, Verdict::Clean);
        }
        other => panic!("expected verdict, got {other:?}"),
    }
}

fn assert_malformed(rejects: &[RejectReason], needle: &str) {
    assert_eq!(rejects.len(), 1, "exactly one structured reject: {rejects:?}");
    match &rejects[0] {
        RejectReason::MalformedSubmission { detail } => {
            assert!(detail.contains(needle), "detail {detail:?} lacks {needle:?}");
        }
        other => panic!("expected MalformedSubmission, got {other:?}"),
    }
}

#[test]
fn garbage_bytes_are_rejected_then_closed() {
    let (handle, id, mut device) = server(NetConfig::default());

    let mut client = NetClient::connect(handle.addr()).unwrap();
    client.send_bytes(b"\xDE\xAD\xBE\xEFnot a frame at all").unwrap();
    assert_malformed(&drain_to_eof(&mut client), "magic");

    honest_round_trip(&handle, id, &mut device);
    let (_, stats) = handle.shutdown().expect("no server thread may panic");
    assert_eq!(stats.protocol_errors, 1);
}

#[test]
fn wrong_version_is_rejected_then_closed() {
    let (handle, id, mut device) = server(NetConfig::default());

    let mut client = NetClient::connect(handle.addr()).unwrap();
    let mut frame = wire::encode(&Message::Issue(wire::IssueMsg { request: 1, device: id.0 }));
    frame[2] = 0x7F;
    client.send_bytes(&frame).unwrap();
    assert_malformed(&drain_to_eof(&mut client), "version");

    honest_round_trip(&handle, id, &mut device);
    handle.shutdown().expect("no server thread may panic");
}

#[test]
fn oversized_length_prefix_is_rejected_at_the_header() {
    let (handle, id, mut device) = server(NetConfig { max_frame: 1 << 16, ..NetConfig::default() });

    let mut client = NetClient::connect(handle.addr()).unwrap();
    // A valid prefix announcing a 4 GiB payload: refused from the header
    // alone, no payload bytes ever buffered.
    let mut frame = wire::encode(&Message::Issue(wire::IssueMsg { request: 1, device: id.0 }));
    frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    client.send_bytes(&frame[..wire::HEADER_LEN]).unwrap();
    assert_malformed(&drain_to_eof(&mut client), "cap");

    honest_round_trip(&handle, id, &mut device);
    handle.shutdown().expect("no server thread may panic");
}

#[test]
fn undecodable_payload_is_rejected_then_closed() {
    let (handle, id, mut device) = server(NetConfig::default());

    let mut client = NetClient::connect(handle.addr()).unwrap();
    // Correct header, correct length, garbage payload: an unknown
    // message tag inside a well-framed envelope.
    let mut frame = wire::encode(&Message::Issue(wire::IssueMsg { request: 1, device: id.0 }));
    frame[3] = 0xEE;
    client.send_bytes(&frame).unwrap();
    assert_malformed(&drain_to_eof(&mut client), "tag");

    honest_round_trip(&handle, id, &mut device);
    handle.shutdown().expect("no server thread may panic");
}

#[test]
fn server_to_client_messages_are_not_valid_requests() {
    let (handle, id, mut device) = server(NetConfig::default());

    let mut client = NetClient::connect(handle.addr()).unwrap();
    client
        .send(&Message::Reject(wire::RejectMsg { request: 9, reason: RejectReason::MacMismatch }))
        .unwrap();
    assert_malformed(&drain_to_eof(&mut client), "unexpected");

    honest_round_trip(&handle, id, &mut device);
    handle.shutdown().expect("no server thread may panic");
}

#[test]
fn mid_frame_disconnect_is_a_clean_close() {
    let (handle, id, mut device) = server(NetConfig::default());

    // Several rounds: send a prefix of a valid frame — cut anywhere, down
    // to a single byte — then vanish. The server must shrug every time.
    let frame = wire::encode(&Message::Issue(wire::IssueMsg { request: 1, device: id.0 }));
    for cut in [1usize, 3, wire::HEADER_LEN - 1, wire::HEADER_LEN, frame.len() - 1] {
        let mut client = NetClient::connect(handle.addr()).unwrap();
        client.send_bytes(&frame[..cut]).unwrap();
        drop(client);
    }
    // Give the readers a beat to observe the EOFs.
    std::thread::sleep(Duration::from_millis(50));

    honest_round_trip(&handle, id, &mut device);
    let (_, stats) = handle.shutdown().expect("no server thread may panic");
    assert_eq!(stats.protocol_errors, 0, "disconnects are closes, not violations");
}

#[test]
fn slow_loris_writers_are_cut_off() {
    let (handle, id, mut device) = server(NetConfig {
        idle_frame_timeout: Duration::from_millis(120),
        ..NetConfig::default()
    });

    // Trickle a valid frame one byte every 40 ms: each poll sees fresh
    // bytes, but the frame never completes — the stall clock must not
    // reset on the trickle.
    let frame = wire::encode(&Message::Issue(wire::IssueMsg { request: 1, device: id.0 }));
    let mut client = NetClient::connect(handle.addr()).unwrap();
    let start = std::time::Instant::now();
    let mut cut = None;
    for byte in frame.iter().take(6) {
        if client.send_bytes(std::slice::from_ref(byte)).is_err() {
            cut = Some(start.elapsed());
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    let rejects = drain_to_eof(&mut client);
    let elapsed = cut.unwrap_or_else(|| start.elapsed());
    assert!(elapsed < Duration::from_secs(2), "loris must be cut off promptly, took {elapsed:?}");
    if !rejects.is_empty() {
        assert_malformed(&rejects, "stalled");
    }

    honest_round_trip(&handle, id, &mut device);
    let (_, stats) = handle.shutdown().expect("no server thread may panic");
    assert_eq!(stats.protocol_errors, 1, "the stall is a counted violation");
}

#[test]
fn random_garbage_fuzz_never_hangs_or_panics() {
    let (handle, id, mut device) = server(NetConfig::default());

    // Deterministic xorshift garbage: many connections, each throwing a
    // different byte salad, each ending in reject-or-close.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..32 {
        let len = (rand() % 200 + 1) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (rand() & 0xFF) as u8).collect();
        let mut client = NetClient::connect(handle.addr()).unwrap();
        if client.send_bytes(&bytes).is_err() {
            continue; // server already rejected and closed mid-write
        }
        if round % 2 == 0 {
            drop(client); // half the peers vanish without reading
        } else {
            let _ = drain_to_eof(&mut client);
        }
    }

    honest_round_trip(&handle, id, &mut device);
    handle.shutdown().expect("no server thread may panic");
}
