//! Fleet-level expected-ER digest memoization: across any number of batch
//! drains the digest of an op's executable region is computed exactly once
//! per invalidation cycle — registration, provisioning-epoch rotation, and
//! WAL recovery each start one fresh cycle, and every subsequent drain is
//! served from the memo.

use dialed::attest::DialedDevice;
use dialed::pipeline::{BuildOptions, InstrumentedOp};
use fleet::{CatalogFn, DeviceId, Fleet, FleetConfig, SessionId};
use std::path::PathBuf;

const OP_SRC: &str = "\
    .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("dialed-digest-cache-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> FleetConfig {
    FleetConfig { workers: Some(1), shards: 2, snapshot_every: 8, ..FleetConfig::default() }
}

fn catalog() -> impl fleet::OpCatalog {
    CatalogFn(|name: &str| {
        (name == "adder").then(|| {
            (InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap(), vec![])
        })
    })
}

/// One full round: every device proves the current challenge, the fleet
/// drains, and every session must verify.
fn round(fleet: &mut Fleet, devices: &mut [(DeviceId, DialedDevice)], now: u64) {
    for (id, device) in devices.iter_mut() {
        let chal = fleet.issue(*id, now).unwrap();
        device.invoke(&[0, 0, 0, 0, 0, 0, 2, 3]);
        let proof = device.prove(&chal.challenge);
        fleet.submit(SessionId(chal.session), *id, proof, now + 1).unwrap();
    }
    let (stats, _) = fleet.drain(now + 2);
    assert_eq!(stats.verified, devices.len(), "all honest proofs verify");
}

#[test]
fn er_digest_is_computed_once_per_invalidation_cycle() {
    let dir = tmp_dir("once-per-cycle");
    let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();

    let mut fleet = Fleet::durable(&dir, config()).unwrap();
    let op_id = fleet.register_op("adder", op.clone(), vec![]);
    let mut devices: Vec<(DeviceId, DialedDevice)> = (0..6u64)
        .map(|seed| {
            let id = fleet.register_device(op_id, seed).unwrap();
            (id, DialedDevice::new(op.clone(), fleet.device_keystore(id).unwrap()))
        })
        .collect();

    // Cycle 1 (registration): however many shard batches the first drain
    // runs, the digest is computed exactly once.
    round(&mut fleet, &mut devices, 0);
    let after_first = fleet.digest_cache_stats();
    assert_eq!(after_first.misses, 1, "first drain computes the digest once: {after_first:?}");
    assert!(after_first.accesses() >= 1);

    // Further drains never recompute: misses stay pinned at 1 while the
    // hit counter absorbs every new batch.
    for r in 1..3u64 {
        round(&mut fleet, &mut devices, r * 10);
        let stats = fleet.digest_cache_stats();
        assert_eq!(stats.misses, 1, "drain {r} must be served from the memo: {stats:?}");
        assert!(stats.accesses() > after_first.accesses(), "each drain touches the cache");
    }
    let warm = fleet.digest_cache_stats();
    assert_eq!(warm.hits, warm.accesses() - 1, "every access after the first is a hit");

    // Cycle 2 (epoch rotation): invalidation costs exactly one further
    // miss on the next drain, and devices keep verifying (installed keys
    // are untouched by rotation).
    fleet.rotate_provisioning_epoch();
    round(&mut fleet, &mut devices, 100);
    let rotated = fleet.digest_cache_stats();
    assert_eq!(rotated.misses, 2, "rotation invalidates the memo once: {rotated:?}");

    // Cycle 3 (crash + WAL recovery): the rebuilt engines start cold —
    // fresh counters — and the first post-recovery drain computes the
    // digest exactly once again.
    drop(fleet);
    let mut fleet = Fleet::recover(&dir, config(), &catalog()).unwrap();
    let cold = fleet.digest_cache_stats();
    assert_eq!((cold.hits, cold.misses), (0, 0), "recovered caches start cold");
    let mut devices: Vec<(DeviceId, DialedDevice)> = devices
        .into_iter()
        .map(|(id, _)| (id, DialedDevice::new(op.clone(), fleet.device_keystore(id).unwrap())))
        .collect();
    round(&mut fleet, &mut devices, 200);
    let recovered = fleet.digest_cache_stats();
    assert_eq!(recovered.misses, 1, "post-recovery drain recomputes once: {recovered:?}");
    assert_eq!(recovered.hits, recovered.accesses() - 1);

    let _ = std::fs::remove_dir_all(&dir);
}
