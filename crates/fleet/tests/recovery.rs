//! Crash-recovery attack test: a fleet killed between accepting a proof
//! and draining it must come back with its anti-replay state intact. The
//! canonical attack this guards against: capture a proof the fleet
//! already accepted, crash the service, and replay the capture after
//! restart hoping the replay window was lost with the process.

use dialed::attest::DialedDevice;
use dialed::pipeline::{BuildOptions, InstrumentedOp};
use fleet::{CatalogFn, Fleet, FleetConfig, SessionError, SessionId, SessionState};
use std::path::PathBuf;

const OP_SRC: &str = "\
    .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dialed-recovery-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> FleetConfig {
    FleetConfig { workers: Some(1), shards: 3, snapshot_every: 4, ..FleetConfig::default() }
}

fn catalog() -> impl fleet::OpCatalog {
    CatalogFn(|name: &str| {
        (name == "adder").then(|| {
            (InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap(), vec![])
        })
    })
}

#[test]
fn replayed_proof_is_rejected_across_a_crash() {
    let dir = tmp_dir("replay-across-crash");

    // Phase 1: an honest round completes, then a second submission is
    // accepted — and the fleet "crashes" (is dropped) before draining it.
    let (dev, captured_round1, captured_round2, pending_sid) = {
        let mut fleet = Fleet::durable(&dir, config()).unwrap();
        let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
        let op_id = fleet.register_op("adder", op.clone(), vec![]);
        let dev = fleet.register_device(op_id, 0xC0FFEE).unwrap();
        let mut device = DialedDevice::new(op, fleet.device_keystore(dev).unwrap());

        let chal1 = fleet.issue(dev, 0).unwrap();
        device.invoke(&[0, 0, 0, 0, 0, 0, 2, 3]);
        let proof1 = device.prove(&chal1.challenge);
        fleet.submit(SessionId(chal1.session), dev, proof1.clone(), 1).unwrap();
        let (stats, _) = fleet.drain(2);
        assert_eq!(stats.verified, 1);
        assert_eq!(fleet.device(dev).unwrap().last_verified, Some(0));

        let chal2 = fleet.issue(dev, 3).unwrap();
        let proof2 = device.prove(&chal2.challenge);
        fleet.submit(SessionId(chal2.session), dev, proof2.clone(), 4).unwrap();
        assert_eq!(fleet.pending(), 1);
        // Crash: no drain, no graceful shutdown, just drop.
        (dev, proof1, proof2, SessionId(chal2.session))
    };

    // Phase 2: recover from disk.
    let mut fleet = Fleet::recover(&dir, config(), &catalog()).unwrap();

    // The accepted-but-undrained submission survived the crash …
    assert_eq!(fleet.pending(), 1, "accepted submission must survive the crash");
    assert_eq!(fleet.session(pending_sid).unwrap().state, SessionState::Submitted);
    // … and so did the verified history (counters are monotone).
    let rec = fleet.device(dev).unwrap();
    assert_eq!((rec.verified, rec.last_verified), (1, Some(0)));

    // ATTACK 1: replay the round-1 proof (already Verified pre-crash)
    // into a fresh post-restart session. The recovered replay window
    // must kill it at the session layer.
    let chal = fleet.issue(dev, 10).unwrap();
    let err = fleet.submit(SessionId(chal.session), dev, captured_round1, 11).unwrap_err();
    assert_eq!(err, SessionError::ReplayedProof, "round-1 proof tag must still be remembered");

    // ATTACK 2: replay the round-2 proof (accepted but not yet drained
    // at crash time) into the same fresh session.
    let err = fleet.submit(SessionId(chal.session), dev, captured_round2, 12).unwrap_err();
    assert_eq!(err, SessionError::ReplayedProof, "undrained proof tags count too");

    // The recovered fleet finishes the interrupted round normally.
    let (stats, _) = fleet.drain(13);
    assert_eq!((stats.drained, stats.verified), (1, 1));
    let rec = fleet.device(dev).unwrap();
    assert_eq!((rec.verified, rec.last_verified), (2, Some(1)), "counters advance, never regress");
    assert_eq!(fleet.session(pending_sid).unwrap().state, SessionState::Verified);
}

#[test]
fn counters_stay_monotone_across_repeated_restarts() {
    let dir = tmp_dir("monotone-restarts");
    {
        let mut fleet = Fleet::durable(&dir, config()).unwrap();
        let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
        fleet.register_op("adder", op, vec![]);
    }

    // Each generation: recover, run one honest round per device, crash.
    // snapshot_every=4 forces snapshot+WAL rotations along the way, so
    // the rounds cross snapshot boundaries as well as restarts.
    let mut device_ids = Vec::new();
    for generation in 0..3u64 {
        let mut fleet = Fleet::recover(&dir, config(), &catalog()).unwrap();
        if generation == 0 {
            let op_id = fleet.ops().ops().next().unwrap().id;
            for seed in 0..4 {
                device_ids.push(fleet.register_device(op_id, seed).unwrap());
            }
        }
        for &dev in &device_ids {
            let rec = fleet.device(dev).unwrap();
            assert_eq!(rec.verified, generation, "history from prior generations persists");
            assert_eq!(rec.last_verified, generation.checked_sub(1));

            let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
            let mut device = DialedDevice::new(op, fleet.device_keystore(dev).unwrap());
            let chal = fleet.issue(dev, generation * 100).unwrap();
            assert_eq!(chal.nonce, generation, "nonces continue across restarts");
            device.invoke(&[0; 8]);
            let proof = device.prove(&chal.challenge);
            fleet.submit(SessionId(chal.session), dev, proof, generation * 100 + 1).unwrap();
        }
        let (stats, _) = fleet.drain(generation * 100 + 2);
        assert_eq!(stats.verified, device_ids.len());
    }

    let fleet = Fleet::recover(&dir, config(), &catalog()).unwrap();
    for &dev in &device_ids {
        let rec = fleet.device(dev).unwrap();
        assert_eq!((rec.verified, rec.last_verified), (3, Some(2)));
    }
}
