//! Per-shard ingest queue depths: [`Fleet::ingest_depths`] is the
//! load-shedding signal the network frontend reads, so its accounting must
//! track submissions exactly — one increment on the submitted session's
//! target shard, back to zero after a drain.

use dialed::attest::DialedDevice;
use dialed::pipeline::{BuildOptions, InstrumentedOp};
use fleet::{DeviceId, Fleet, FleetConfig, SessionId};

const OP_SRC: &str = "\
    .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";

#[test]
fn ingest_depths_track_submissions_per_shard() {
    let shards = 4usize;
    let mut fleet = Fleet::new(FleetConfig { workers: Some(1), shards, ..FleetConfig::default() });
    let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
    let op_id = fleet.register_op("adder", op.clone(), vec![]);

    let mut devices: Vec<(DeviceId, DialedDevice)> = (0..12u64)
        .map(|seed| {
            let id = fleet.register_device(op_id, seed).unwrap();
            (id, DialedDevice::new(op.clone(), fleet.device_keystore(id).unwrap()))
        })
        .collect();

    assert_eq!(fleet.ingest_depths(), vec![0; shards], "fresh fleet queues nothing");

    // Submit every device and check the depth accounting after each one:
    // exactly the target shard (sessions route by id modulo shard count)
    // gains one queued entry.
    let mut expected = vec![0usize; shards];
    for (id, device) in &mut devices {
        let chal = fleet.issue(*id, 0).unwrap();
        device.invoke(&[0, 0, 0, 0, 0, 0, 2, 3]);
        let proof = device.prove(&chal.challenge);
        fleet.submit(SessionId(chal.session), *id, proof, 1).unwrap();
        expected[usize::try_from(chal.session).unwrap() % shards] += 1;
        assert_eq!(fleet.ingest_depths(), expected);
    }
    assert_eq!(
        fleet.ingest_depths().iter().sum::<usize>(),
        fleet.pending(),
        "depths sum to the fleet-wide pending count"
    );

    // A drain consumes every queue.
    let (stats, _) = fleet.drain(2);
    assert_eq!(stats.drained, devices.len());
    assert_eq!(fleet.ingest_depths(), vec![0; shards], "drain empties every queue");
}
