//! WAL-robustness properties: truncating or corrupting the durable state
//! at an arbitrary byte offset must never panic recovery. Recovery
//! always yields a fleet representing some valid prefix of the committed
//! history — counters never exceed what was committed — and that fleet
//! keeps serving.

use dialed::attest::DialedDevice;
use dialed::pipeline::{BuildOptions, InstrumentedOp};
use fleet::{CatalogFn, Fleet, FleetConfig, SessionId};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

const OP_SRC: &str = "\
    .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";

const DEVICES: u64 = 3;
const ROUNDS: u64 = 3;

fn config() -> FleetConfig {
    // snapshot_every=6 makes the base state span snapshots AND live WAL
    // tails, so mutations hit both kinds of file.
    FleetConfig { workers: Some(1), shards: 2, snapshot_every: 6, ..FleetConfig::default() }
}

fn catalog() -> impl fleet::OpCatalog {
    CatalogFn(|name: &str| {
        (name == "adder").then(|| {
            (InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap(), vec![])
        })
    })
}

/// Builds the canonical durable state directory once: 3 devices, 3
/// verified rounds each, plus one accepted-but-undrained submission.
fn base_dir() -> &'static Path {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("dialed-walprop-base-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut fleet = Fleet::durable(&dir, config()).unwrap();
        let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
        let op_id = fleet.register_op("adder", op.clone(), vec![]);
        let devs: Vec<_> =
            (0..DEVICES).map(|seed| fleet.register_device(op_id, seed).unwrap()).collect();
        let mut sims: Vec<_> = devs
            .iter()
            .map(|&d| DialedDevice::new(op.clone(), fleet.device_keystore(d).unwrap()))
            .collect();
        for round in 0..ROUNDS {
            for (i, &dev) in devs.iter().enumerate() {
                let chal = fleet.issue(dev, round * 10).unwrap();
                sims[i].invoke(&[0; 8]);
                let proof = sims[i].prove(&chal.challenge);
                fleet.submit(SessionId(chal.session), dev, proof, round * 10 + 1).unwrap();
            }
            fleet.drain(round * 10 + 2);
        }
        // One in-flight submission left undrained at "crash" time.
        let chal = fleet.issue(devs[0], 100).unwrap();
        let proof = sims[0].prove(&chal.challenge);
        fleet.submit(SessionId(chal.session), devs[0], proof, 101).unwrap();
        dir
    })
}

/// Every durable file under the state dir, relative to it, in a stable
/// order so a proptest index addresses the same file on every run.
fn state_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                files.push(path.strip_prefix(dir).unwrap().to_path_buf());
            }
        }
    }
    files.sort();
    files
}

/// Copies the base state into a fresh per-case directory.
fn clone_state(name: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let base = base_dir();
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("dialed-walprop-{}-{name}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for rel in state_files(base) {
        let dst = dir.join(&rel);
        std::fs::create_dir_all(dst.parent().unwrap()).unwrap();
        std::fs::copy(base.join(&rel), dst).unwrap();
    }
    dir
}

/// Total committed verified count in the base state.
fn base_verified() -> u64 {
    DEVICES * ROUNDS
}

/// Asserts the recovered fleet is a valid prefix of the base history and
/// still serves a fresh honest round end to end.
fn assert_valid_prefix_and_live(mut fleet: Fleet) {
    let verified: u64 = fleet.devices().map(|d| d.verified).sum();
    assert!(
        verified <= base_verified(),
        "recovery must never invent history: {verified} > {}",
        base_verified()
    );
    for d in fleet.devices() {
        if let Some(n) = d.last_verified {
            assert!(n < ROUNDS, "last-verified nonce {n} beyond committed history");
        }
    }
    // A truncated log may rewind to any committed moment — including
    // mid-round, when a whole round of submissions was accepted but not
    // yet drained — so pending is bounded by the most that was ever
    // simultaneously in flight, not by the final state's single entry.
    assert!(
        fleet.pending() <= DEVICES as usize,
        "pending {} exceeds anything the committed history ever held",
        fleet.pending()
    );

    // The survivor keeps working: register a brand-new device and push an
    // honest round through the full pipeline.
    let op_id = match fleet.ops().ops().next() {
        Some(rec) => rec.id,
        // The meta log's op registration was itself destroyed: still a
        // valid prefix (the empty one); nothing further to drive.
        None => return,
    };
    let dev = fleet.register_device(op_id, 0xFEED).unwrap();
    let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
    let mut sim = DialedDevice::new(op, fleet.device_keystore(dev).unwrap());
    let chal = fleet.issue(dev, 200).unwrap();
    sim.invoke(&[0; 8]);
    let proof = sim.prove(&chal.challenge);
    fleet.submit(SessionId(chal.session), dev, proof, 201).unwrap();
    let (stats, _) = fleet.drain(202);
    assert!(stats.verified >= 1, "fresh round must verify on the recovered fleet");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating any durable file at any byte offset: recovery never
    /// panics and yields a valid prefix state.
    #[test]
    fn truncated_tail_recovers_to_a_valid_prefix(
        file_sel in 0usize..1024,
        cut_sel in 0usize..10_000,
    ) {
        let dir = clone_state("trunc");
        let files = state_files(&dir);
        let target = dir.join(&files[file_sel % files.len()]);
        let bytes = std::fs::read(&target).unwrap();
        let cut = bytes.len() * cut_sel / 10_000;
        std::fs::write(&target, &bytes[..cut.min(bytes.len())]).unwrap();

        let fleet = Fleet::recover(&dir, config(), &catalog())
            .expect("truncation must never make recovery fail, only shorten history");
        assert_valid_prefix_and_live(fleet);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping bits at any byte offset of any durable file: recovery
    /// never panics; it either drops the damaged suffix (valid prefix) or
    /// reports a structured error — never garbage state.
    #[test]
    fn corrupted_byte_never_panics_recovery(
        file_sel in 0usize..1024,
        pos_sel in 0usize..10_000,
        mask in 1u8..=255,
    ) {
        let dir = clone_state("corrupt");
        let files = state_files(&dir);
        let target = dir.join(&files[file_sel % files.len()]);
        let mut bytes = std::fs::read(&target).unwrap();
        if !bytes.is_empty() {
            let pos = (bytes.len() * pos_sel / 10_000).min(bytes.len() - 1);
            bytes[pos] ^= mask;
            std::fs::write(&target, &bytes).unwrap();
        }

        // CRC-guarded records make most corruption look like a torn tail
        // (Ok with shortened history); header damage can surface as a
        // structured RecoverError. Both are acceptable; panicking is not.
        if let Ok(fleet) = Fleet::recover(&dir, config(), &catalog()) {
            assert_valid_prefix_and_live(fleet);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
