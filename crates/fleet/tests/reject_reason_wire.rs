//! Exhaustive wire coverage of [`RejectReason`]: every variant (through
//! wire v3) round-trips the codec, carries a distinct payload tag that
//! matches its [`RejectClass`] index, and renders stable Debug/Display
//! text. Adding a variant without extending the codec, the class table,
//! or this list fails here — not in production decode.

use dialed::report::{RejectClass, RejectReason};
use fleet::wire::{decode, encode, Message, RejectMsg, HEADER_LEN};

/// One representative of every `RejectReason` variant, in wire-tag order.
/// `..ALL.len()` below keeps this list honest: a new variant grows
/// `RejectClass::ALL` and breaks the length assertion until it is added
/// here too.
fn all_reasons() -> Vec<RejectReason> {
    vec![
        RejectReason::RegionMismatch,
        RejectReason::ExecClear,
        RejectReason::ErLengthMismatch,
        RejectReason::OrLengthMismatch,
        RejectReason::MacMismatch,
        RejectReason::NotFullyInstrumented,
        RejectReason::UnknownKey { device: 0xDEAD_BEEF },
        RejectReason::MalformedSubmission { detail: "truncated frame".into() },
        RejectReason::SessionViolation { detail: "replayed proof".into() },
        RejectReason::UnknownPrincipal { detail: "device 7 not registered".into() },
        RejectReason::Overloaded { pending: 4096 },
    ]
}

#[test]
fn every_variant_round_trips_with_a_distinct_wire_tag() {
    let reasons = all_reasons();
    assert_eq!(reasons.len(), RejectClass::ALL.len(), "variant list out of date");

    let mut seen_tags = Vec::new();
    for (i, reason) in reasons.iter().enumerate() {
        let msg = Message::Reject(RejectMsg { request: 42 + i as u64, reason: reason.clone() });
        let bytes = encode(&msg);
        // Payload layout: request id (u64 LE), then the reason tag byte.
        let tag = bytes[HEADER_LEN + 8];
        assert_eq!(
            usize::from(tag),
            reason.class().index(),
            "{reason:?}: wire tag must equal the class index"
        );
        seen_tags.push(tag);

        match decode(&bytes).unwrap_or_else(|e| panic!("{reason:?}: decode failed: {e}")) {
            Message::Reject(r) => {
                assert_eq!(r.request, 42 + i as u64);
                assert_eq!(&r.reason, reason, "payload lost in round trip");
            }
            other => panic!("{reason:?}: decoded as {other:?}"),
        }
    }
    seen_tags.sort_unstable();
    seen_tags.dedup();
    assert_eq!(seen_tags.len(), reasons.len(), "wire tags must be distinct");
}

#[test]
fn classes_are_dense_and_cover_every_variant() {
    for (i, class) in RejectClass::ALL.iter().enumerate() {
        assert_eq!(class.index(), i, "{class:?}: ALL must be in index order");
    }
    for (i, reason) in all_reasons().iter().enumerate() {
        assert_eq!(reason.class(), RejectClass::ALL[i], "{reason:?}");
    }
}

#[test]
fn debug_and_display_are_stable() {
    // Class labels are persisted (corpus files, counter displays): pin
    // them exactly.
    let labels: Vec<&str> = RejectClass::ALL.iter().map(|c| c.label()).collect();
    assert_eq!(
        labels,
        [
            "region",
            "exec",
            "er-length",
            "or-length",
            "mac",
            "not-instrumented",
            "unknown-key",
            "malformed",
            "session",
            "principal",
            "overloaded",
        ]
    );
    for class in RejectClass::ALL {
        assert_eq!(format!("{class}"), class.label(), "Display must be the label");
    }

    // Reason Debug/Display: non-empty, distinct per variant, and the
    // payload detail must actually surface in the rendered text.
    let mut displays = Vec::new();
    for reason in all_reasons() {
        let debug = format!("{reason:?}");
        let display = format!("{reason}");
        assert!(!debug.is_empty() && !display.is_empty());
        displays.push(display);
    }
    let mut unique = displays.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), displays.len(), "Display text must distinguish variants");
    assert!(displays[6].contains("3735928559"), "device id must surface: {}", displays[6]);
    assert!(displays[10].contains("4096"), "queue depth must surface: {}", displays[10]);
}
