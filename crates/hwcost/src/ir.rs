//! A block-level structural RTL IR.

use std::fmt;

/// One hardware building block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Component {
    /// `bits` D flip-flops.
    Register {
        /// Width in bits.
        bits: u32,
    },
    /// An equality/magnitude comparator.
    Comparator {
        /// Operand width.
        bits: u32,
    },
    /// A ripple/carry-chain adder or subtractor.
    Adder {
        /// Operand width.
        bits: u32,
    },
    /// An `inputs`-way multiplexer, `bits` wide.
    Mux {
        /// Data width.
        bits: u32,
        /// Number of selectable inputs.
        inputs: u32,
    },
    /// Unstructured random logic, counted in 2-input gate equivalents.
    Logic {
        /// Gate-equivalent count.
        gates: u32,
    },
    /// Combinational lookup structure (decoder tables).
    Rom {
        /// Total bits.
        bits: u32,
    },
}

/// A named block: components plus submodules.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Block name.
    pub name: String,
    /// Leaf components with instance labels.
    pub components: Vec<(String, Component)>,
    /// Nested blocks.
    pub submodules: Vec<Module>,
}

impl Module {
    /// An empty block.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Self { name: name.to_string(), ..Self::default() }
    }

    /// Adds a component (builder style).
    #[must_use]
    pub fn with(mut self, label: &str, c: Component) -> Self {
        self.components.push((label.to_string(), c));
        self
    }

    /// Adds a submodule (builder style).
    #[must_use]
    pub fn with_sub(mut self, m: Module) -> Self {
        self.submodules.push(m);
        self
    }

    /// Iterates all components recursively.
    #[must_use]
    pub fn flatten(&self) -> Vec<(&str, &Component)> {
        let mut out: Vec<(&str, &Component)> =
            self.components.iter().map(|(l, c)| (l.as_str(), c)).collect();
        for sub in &self.submodules {
            out.extend(sub.flatten());
        }
        out
    }

    /// Total flip-flop bits (sum of `Register` components).
    #[must_use]
    pub fn register_bits(&self) -> u32 {
        self.flatten()
            .iter()
            .map(|(_, c)| match c {
                Component::Register { bits } => *bits,
                _ => 0,
            })
            .sum()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module {} {{", self.name)?;
        for (label, c) in &self.components {
            writeln!(f, "  {label}: {c:?}")?;
        }
        for sub in &self.submodules {
            for line in sub.to_string().lines() {
                writeln!(f, "  {line}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_flatten() {
        let m = Module::new("top").with("state", Component::Register { bits: 3 }).with_sub(
            Module::new("cmp_bank")
                .with("pc_lo", Component::Comparator { bits: 16 })
                .with("pc_hi", Component::Comparator { bits: 16 }),
        );
        assert_eq!(m.flatten().len(), 3);
        assert_eq!(m.register_bits(), 3);
        let text = m.to_string();
        assert!(text.contains("module top"));
        assert!(text.contains("pc_lo"));
    }
}
