//! Hardware-cost modelling for Table I of the DIALED paper.
//!
//! The paper compares run-time attestation architectures by their FPGA
//! synthesis cost (look-up tables and registers) relative to an unmodified
//! openMSP430 (1904 LUTs, 691 registers). We cannot run an FPGA synthesis
//! flow here, so this crate provides the substitute recorded in DESIGN.md:
//!
//! * a small **structural RTL IR** ([`ir`]) — registers, comparators,
//!   adders, muxes, random logic — in which each architecture's monitor
//!   hardware is described at the block level, following the structure in
//!   the original papers (APEX's region-bound comparators and EXEC FSM;
//!   LO-FAT's sponge hash engine and branch/loop monitor; LiteHAX's
//!   smaller sponge; Atrium's fetch-rate instruction hashing);
//! * a simple **area estimator** ([`area`]) mapping IR components to 6-input
//!   LUT and flip-flop counts with fixed coefficients, calibrated once so
//!   the baseline MSP430 description lands on the published 1904/691;
//! * the **design descriptions** ([`designs`]) together with the published
//!   reference numbers, so Table I can be regenerated with both the model
//!   estimate and the paper value side by side.
//!
//! The claim this reproduces is *relative*: Tiny-CFA/DIALED need ~5× fewer
//! LUTs and ~50× fewer registers than the cheapest prior CFA+DFA hardware
//! (LiteHAX), and orders of magnitude less than LO-FAT/Atrium.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod designs;
pub mod ir;

pub use area::{Area, Estimator};
pub use designs::{table1_rows, Design, Table1Row};
pub use ir::{Component, Module};
