//! LUT/FF area estimation.
//!
//! Coefficients model a Xilinx 6-input-LUT fabric and were fixed once so
//! that the baseline MSP430 description in [`crate::designs`] lands on the
//! published openMSP430 synthesis (1904 LUTs / 691 FFs); every other design
//! is then estimated with the *same* coefficients.

use crate::ir::{Component, Module};
use std::fmt;
use std::ops::Add;

/// An area estimate.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Area {
    /// Look-up tables (combinational).
    pub luts: u32,
    /// Flip-flops (state).
    pub ffs: u32,
}

impl Add for Area {
    type Output = Area;
    fn add(self, rhs: Area) -> Area {
        Area { luts: self.luts + rhs.luts, ffs: self.ffs + rhs.ffs }
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} LUTs / {} FFs", self.luts, self.ffs)
    }
}

impl Area {
    /// Percentage overhead of `self` relative to `base`, as (lut %, ff %).
    #[must_use]
    pub fn overhead_vs(&self, base: &Area) -> (f64, f64) {
        (
            100.0 * f64::from(self.luts) / f64::from(base.luts),
            100.0 * f64::from(self.ffs) / f64::from(base.ffs),
        )
    }
}

/// The fixed-coefficient estimator.
#[derive(Clone, Copy, Debug, Default)]
pub struct Estimator;

impl Estimator {
    /// Estimates one component.
    #[must_use]
    pub fn component(&self, c: &Component) -> Area {
        match *c {
            Component::Register { bits } => Area { luts: 0, ffs: bits },
            // A magnitude comparator packs ~2 bits per LUT via the carry
            // chain.
            Component::Comparator { bits } => Area { luts: bits.div_ceil(2), ffs: 0 },
            // One LUT per bit with fast-carry.
            Component::Adder { bits } => Area { luts: bits, ffs: 0 },
            // A 6-LUT implements a 4:1 mux slice.
            Component::Mux { bits, inputs } => Area { luts: bits * inputs.div_ceil(4), ffs: 0 },
            // ~3 gate-equivalents per LUT on average for random logic.
            Component::Logic { gates } => Area { luts: gates.div_ceil(3), ffs: 0 },
            // 64 ROM bits per LUT (LUT-as-ROM).
            Component::Rom { bits } => Area { luts: bits.div_ceil(64), ffs: 0 },
        }
    }

    /// Estimates a whole module tree.
    #[must_use]
    pub fn module(&self, m: &Module) -> Area {
        m.flatten().iter().map(|(_, c)| self.component(c)).fold(Area::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_coefficients() {
        let e = Estimator;
        assert_eq!(e.component(&Component::Register { bits: 44 }), Area { luts: 0, ffs: 44 });
        assert_eq!(e.component(&Component::Comparator { bits: 16 }), Area { luts: 8, ffs: 0 });
        assert_eq!(e.component(&Component::Adder { bits: 16 }), Area { luts: 16, ffs: 0 });
        assert_eq!(
            e.component(&Component::Mux { bits: 16, inputs: 16 }),
            Area { luts: 64, ffs: 0 }
        );
        assert_eq!(e.component(&Component::Logic { gates: 9 }), Area { luts: 3, ffs: 0 });
        assert_eq!(e.component(&Component::Rom { bits: 128 }), Area { luts: 2, ffs: 0 });
    }

    #[test]
    fn module_sums_recursively() {
        let m = Module::new("a")
            .with("r", Component::Register { bits: 8 })
            .with_sub(Module::new("b").with("c", Component::Comparator { bits: 16 }));
        let a = Estimator.module(&m);
        assert_eq!(a, Area { luts: 8, ffs: 8 });
    }

    #[test]
    fn overhead_percentages() {
        let base = Area { luts: 1000, ffs: 500 };
        let extra = Area { luts: 100, ffs: 50 };
        let (l, f) = extra.overhead_vs(&base);
        assert!((l - 10.0).abs() < 1e-9);
        assert!((f - 10.0).abs() < 1e-9);
    }
}
