//! Structural descriptions of every architecture in Table I, plus the
//! published synthesis numbers for side-by-side comparison.

use crate::area::{Area, Estimator};
use crate::ir::{Component, Module};

/// How an architecture provides a capability.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Support {
    /// Not provided.
    No,
    /// Provided by the architecture's own (modelled) hardware.
    Hardware,
    /// Provided by ARM TrustZone (not available on low-end MCUs).
    TrustZone,
}

impl Support {
    /// Table cell text.
    #[must_use]
    pub fn cell(&self) -> &'static str {
        match self {
            Support::No => "–",
            Support::Hardware => "✓",
            Support::TrustZone => "TrustZone",
        }
    }
}

/// One architecture in the comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Design {
    /// Unmodified openMSP430 core.
    Msp430Baseline,
    /// C-FLAT (CCS'16) — TrustZone-based CFA.
    CFlat,
    /// OAT (S&P'20) — TrustZone-based CFA+DFA.
    Oat,
    /// Atrium (ICCAD'17) — fetch-rate instruction/branch hashing.
    Atrium,
    /// LO-FAT (DAC'17) — branch monitor + hash engine.
    LoFat,
    /// LiteHAX (ICCAD'18) — compact sponge, CFA+DFA.
    LiteHax,
    /// Tiny-CFA (ESL'21) — instrumentation over APEX.
    TinyCfa,
    /// DIALED (this paper) — Tiny-CFA + DFA instrumentation, same hardware.
    Dialed,
}

impl Design {
    /// Display name as in the paper.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Design::Msp430Baseline => "MSP430 (baseline)",
            Design::CFlat => "C-FLAT",
            Design::Oat => "OAT",
            Design::Atrium => "Atrium",
            Design::LoFat => "LO-FAT",
            Design::LiteHax => "LiteHAX",
            Design::TinyCfa => "Tiny-CFA",
            Design::Dialed => "DIALED",
        }
    }

    /// (CFA, DFA) support.
    #[must_use]
    pub fn support(&self) -> (Support, Support) {
        match self {
            Design::Msp430Baseline => (Support::No, Support::No),
            Design::CFlat => (Support::TrustZone, Support::No),
            Design::Oat => (Support::TrustZone, Support::TrustZone),
            Design::Atrium => (Support::Hardware, Support::No),
            Design::LoFat => (Support::Hardware, Support::No),
            Design::LiteHax => (Support::Hardware, Support::Hardware),
            Design::TinyCfa => (Support::Hardware, Support::No),
            Design::Dialed => (Support::Hardware, Support::Hardware),
        }
    }

    /// Published synthesis numbers (LUTs, registers) where the paper
    /// reports them (Table I); TrustZone designs have none.
    #[must_use]
    pub fn published(&self) -> Option<(u32, u32)> {
        match self {
            Design::Msp430Baseline => Some((1904, 691)),
            Design::CFlat | Design::Oat => None,
            Design::Atrium => Some((10640, 15960)),
            Design::LoFat => Some((3192, 4256)),
            Design::LiteHax => Some((1596, 2128)),
            Design::TinyCfa | Design::Dialed => Some((302, 44)),
        }
    }

    /// Structural model of the *added* hardware (the baseline models the
    /// whole core). TrustZone designs have no MCU-scale model.
    #[must_use]
    pub fn model(&self) -> Option<Module> {
        match self {
            Design::Msp430Baseline => Some(msp430_core()),
            Design::CFlat | Design::Oat => None,
            Design::Atrium => Some(atrium_monitor()),
            Design::LoFat => Some(lofat_monitor()),
            Design::LiteHax => Some(litehax_monitor()),
            // Tiny-CFA and DIALED add exactly the APEX monitor and nothing
            // else — the paper's central hardware claim.
            Design::TinyCfa | Design::Dialed => Some(apex_monitor()),
        }
    }

    /// Model estimate with the shared coefficients.
    #[must_use]
    pub fn estimate(&self) -> Option<Area> {
        self.model().map(|m| Estimator.module(&m))
    }
}

/// The unmodified openMSP430-class core (calibration target 1904/691).
#[must_use]
pub fn msp430_core() -> Module {
    Module::new("openmsp430")
        .with_sub(
            Module::new("frontend")
                .with("decode_rom", Component::Rom { bits: 16_384 })
                .with("decode_logic", Component::Logic { gates: 600 })
                .with("ir_pc_state", Component::Register { bits: 115 }),
        )
        .with_sub(
            Module::new("execution_unit")
                .with("regfile", Component::Register { bits: 256 })
                .with("src_mux", Component::Mux { bits: 16, inputs: 16 })
                .with("dst_mux", Component::Mux { bits: 16, inputs: 16 })
                .with("alu_adder", Component::Adder { bits: 16 })
                .with("alu_logic", Component::Logic { gates: 2_400 }),
        )
        .with_sub(
            Module::new("mem_backbone")
                .with("addr_gen", Component::Adder { bits: 16 })
                .with("addr_gen_inc", Component::Adder { bits: 16 })
                .with("bus_mux", Component::Mux { bits: 8, inputs: 16 })
                .with("bus_logic", Component::Logic { gates: 420 }),
        )
        .with_sub(
            Module::new("peripherals")
                .with("gpio_timer_uart_regs", Component::Register { bits: 320 })
                .with("periph_logic", Component::Logic { gates: 900 }),
        )
}

/// The APEX monitor (shared by Tiny-CFA and DIALED): region-bound
/// comparators over PC / data address / DMA address plus the EXEC FSM.
#[must_use]
pub fn apex_monitor() -> Module {
    Module::new("apex_monitor")
        .with_sub({
            let mut m = Module::new("bound_comparators");
            // PC vs ER_min/ER_max/exit/entry, data addr vs ER and OR
            // bounds, DMA addr vs ER and OR bounds: 12 × 16-bit.
            for (i, label) in [
                "pc_ge_ermin",
                "pc_le_ermax",
                "pc_eq_ermin",
                "pc_eq_exit",
                "da_ge_ormin",
                "da_le_ormax",
                "da_ge_ermin",
                "da_le_ermax",
                "dma_ge_ormin",
                "dma_le_ormax",
                "dma_ge_ermin",
                "dma_le_ermax",
            ]
            .iter()
            .enumerate()
            {
                let _ = i;
                m = m.with(label, Component::Comparator { bits: 16 });
            }
            m
        })
        .with_sub(
            Module::new("exec_fsm")
                .with("state_and_latches", Component::Register { bits: 44 })
                .with("next_state_logic", Component::Logic { gates: 330 })
                .with("violation_glue", Component::Logic { gates: 288 }),
        )
}

/// LO-FAT: a lightweight sponge hash engine plus a branch monitor with
/// loop encoding FIFOs.
#[must_use]
pub fn lofat_monitor() -> Module {
    Module::new("lofat")
        .with_sub(
            Module::new("hash_engine")
                .with("sponge_state", Component::Register { bits: 512 })
                .with("round_function", Component::Logic { gates: 5_200 })
                .with("absorb_mux", Component::Mux { bits: 64, inputs: 4 }),
        )
        .with_sub(
            Module::new("branch_monitor")
                .with("branch_fifo", Component::Register { bits: 2_048 })
                .with("loop_stack", Component::Register { bits: 1_536 })
                .with("ctrl_state", Component::Register { bits: 160 })
                .with("fifo_ctrl", Component::Logic { gates: 2_700 })
                .with("addr_cmp_a", Component::Comparator { bits: 32 })
                .with("addr_cmp_b", Component::Comparator { bits: 32 })
                .with("target_adder", Component::Adder { bits: 32 }),
        )
}

/// LiteHAX: a compact sponge absorbing both branch and data-flow digests
/// (no loop encoder, smaller buffers).
#[must_use]
pub fn litehax_monitor() -> Module {
    Module::new("litehax")
        .with_sub(
            Module::new("hash_engine")
                .with("sponge_state", Component::Register { bits: 256 })
                .with("round_function", Component::Logic { gates: 2_600 }),
        )
        .with_sub(
            Module::new("stream_monitor")
                .with("report_buffer", Component::Register { bits: 1_792 })
                .with("ctrl_state", Component::Register { bits: 80 })
                .with("ctrl_logic", Component::Logic { gates: 1_700 })
                .with("addr_cmp", Component::Comparator { bits: 32 })
                .with("delta_adder", Component::Adder { bits: 32 }),
        )
}

/// Atrium: hashes instructions *and* branch targets at fetch rate to resist
/// physical adversaries — multiple parallel hash lanes and wide buffers.
#[must_use]
pub fn atrium_monitor() -> Module {
    let mut lanes = Module::new("hash_lanes");
    for i in 0..3 {
        lanes = lanes.with_sub(
            Module::new(&format!("lane{i}"))
                .with("state", Component::Register { bits: 1_024 })
                .with("round_function", Component::Logic { gates: 8_200 }),
        );
    }
    Module::new("atrium").with_sub(lanes).with_sub(
        Module::new("fetch_monitor")
            .with("insn_buffer", Component::Register { bits: 8_192 })
            .with("metadata_regs", Component::Register { bits: 4_576 })
            .with("ctrl_logic", Component::Logic { gates: 6_300 })
            .with("cmp_a", Component::Comparator { bits: 32 })
            .with("cmp_b", Component::Comparator { bits: 32 }),
    )
}

/// One row of Table I.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Architecture.
    pub design: Design,
    /// CFA support cell.
    pub cfa: Support,
    /// DFA support cell.
    pub dfa: Support,
    /// Structural model estimate (None for TrustZone rows).
    pub modeled: Option<Area>,
    /// Published numbers (None for TrustZone rows).
    pub published: Option<(u32, u32)>,
    /// Modeled overhead vs baseline in percent (LUTs, FFs).
    pub overhead_pct: Option<(f64, f64)>,
}

/// Regenerates every row of Table I.
#[must_use]
pub fn table1_rows() -> Vec<Table1Row> {
    let baseline = Design::Msp430Baseline.estimate().expect("baseline models");
    [
        Design::Msp430Baseline,
        Design::CFlat,
        Design::Oat,
        Design::Atrium,
        Design::LoFat,
        Design::LiteHax,
        Design::TinyCfa,
        Design::Dialed,
    ]
    .into_iter()
    .map(|design| {
        let (cfa, dfa) = design.support();
        let modeled = design.estimate();
        let overhead_pct = match (design, modeled) {
            (Design::Msp430Baseline, _) | (_, None) => None,
            (_, Some(a)) => Some(a.overhead_vs(&baseline)),
        };
        Table1Row { design, cfa, dfa, modeled, published: design.published(), overhead_pct }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The calibration anchor: the baseline core must land on the published
    /// openMSP430 numbers (±3 %).
    #[test]
    fn baseline_matches_published() {
        let a = Design::Msp430Baseline.estimate().unwrap();
        let (l, f) = Design::Msp430Baseline.published().unwrap();
        assert!(
            (f64::from(a.luts) - f64::from(l)).abs() / f64::from(l) < 0.03,
            "modeled {a} vs published {l}/{f}"
        );
        assert_eq!(a.ffs, f, "modeled {a}");
    }

    /// Every modelled monitor must land within 15 % of its published cost —
    /// the coefficients are shared, so this is a real consistency check on
    /// the structural descriptions.
    #[test]
    fn monitors_within_tolerance_of_published() {
        for d in [Design::Atrium, Design::LoFat, Design::LiteHax, Design::TinyCfa, Design::Dialed] {
            let a = d.estimate().unwrap();
            let (l, f) = d.published().unwrap();
            let lut_err = (f64::from(a.luts) - f64::from(l)).abs() / f64::from(l);
            let ff_err = (f64::from(a.ffs) - f64::from(f)).abs() / f64::from(f);
            assert!(lut_err < 0.15, "{}: modeled {a} vs published {l}/{f}", d.name());
            assert!(ff_err < 0.15, "{}: modeled {a} vs published {l}/{f}", d.name());
        }
    }

    /// The paper's core hardware claim: DIALED = Tiny-CFA ≪ LiteHAX <
    /// LO-FAT < Atrium.
    #[test]
    fn cost_ordering_holds() {
        let dialed = Design::Dialed.estimate().unwrap();
        let tinycfa = Design::TinyCfa.estimate().unwrap();
        let litehax = Design::LiteHax.estimate().unwrap();
        let lofat = Design::LoFat.estimate().unwrap();
        let atrium = Design::Atrium.estimate().unwrap();
        assert_eq!(dialed, tinycfa, "DIALED adds no hardware over Tiny-CFA");
        assert!(dialed.luts * 4 < litehax.luts, "≈5× LUT gap to LiteHAX");
        assert!(dialed.ffs * 40 < litehax.ffs, "≈50× FF gap to LiteHAX");
        assert!(litehax.luts < lofat.luts && lofat.luts < atrium.luts);
        assert!(litehax.ffs < lofat.ffs && lofat.ffs < atrium.ffs);
    }

    /// Only OAT, LiteHAX and DIALED provide DFA; only DIALED does so with
    /// MCU-affordable hardware.
    #[test]
    fn functionality_matrix() {
        let rows = table1_rows();
        let dfa: Vec<_> =
            rows.iter().filter(|r| r.dfa != Support::No).map(|r| r.design.name()).collect();
        assert_eq!(dfa, vec!["OAT", "LiteHAX", "DIALED"]);
        let affordable_dfa: Vec<_> = rows
            .iter()
            .filter(|r| r.dfa == Support::Hardware && r.modeled.is_some_and(|a| a.luts < 500))
            .map(|r| r.design.name())
            .collect();
        assert_eq!(affordable_dfa, vec!["DIALED"]);
    }
}
