//! Shared measurement helpers for the figure/table regeneration benches.
//!
//! Every bench target in `benches/` is a `harness = false` binary that
//! prints the corresponding table or figure series of the DIALED paper;
//! `cargo bench -p dialed-bench` therefore regenerates the full evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apex::pox::StopReason;
use apps::Scenario;
use dialed::pipeline::{InstrumentMode, InstrumentedOp};
use dialed::prelude::*;

/// One measured configuration of one application.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Operation code size in bytes (Fig. 6a).
    pub code_bytes: usize,
    /// CPU cycles of the attested run (Fig. 6b).
    pub cycles: u64,
    /// Executed instructions.
    pub insns: usize,
    /// OR bytes consumed by the logs (Fig. 6c).
    pub log_bytes: usize,
}

/// Builds and runs `scenario` in `mode`, returning the paper's three
/// metrics.
///
/// # Panics
///
/// Panics if the app fails to build or run — these are fixed workloads, so
/// that is a harness bug.
#[must_use]
pub fn measure(scenario: &Scenario, mode: InstrumentMode) -> Measurement {
    let op = scenario.build(mode);
    let code_bytes = op.code_size();
    let ks = KeyStore::from_seed(0xBEEF);
    let mut dev = DialedDevice::new(op, ks);
    (scenario.feed)(dev.platform_mut());
    let info = dev.invoke(&scenario.args);
    assert_eq!(
        info.stop,
        StopReason::ReachedStop,
        "{} did not complete in mode {mode:?}: {:?}",
        scenario.name,
        dev.violation()
    );
    Measurement {
        code_bytes,
        cycles: info.cycles,
        insns: info.insns,
        log_bytes: info.log_bytes_used,
    }
}

/// Builds, runs *and verifies* a scenario end to end; returns the
/// verification report (used by the micro benches and smoke checks).
///
/// # Panics
///
/// Panics when the run does not complete.
#[must_use]
pub fn run_and_verify(scenario: &Scenario) -> Report {
    let op = scenario.build(InstrumentMode::Full);
    let ks = KeyStore::from_seed(0xF00D);
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    (scenario.feed)(dev.platform_mut());
    let info = dev.invoke(&scenario.args);
    assert_eq!(info.stop, StopReason::ReachedStop);
    let chal = Challenge::derive(b"bench", 1);
    let proof = dev.prove(&chal);
    let mut verifier = DialedVerifier::new(op, ks);
    for p in (scenario.policies)() {
        verifier = verifier.with_policy(p);
    }
    verifier.verify(&VerifyRequest::new(&proof, &chal))
}

/// Returns an [`InstrumentedOp`] for a scenario (bench setup helper).
///
/// # Panics
///
/// Panics if the app fails to build.
#[must_use]
pub fn build_op(scenario: &Scenario, mode: InstrumentMode) -> InstrumentedOp {
    scenario.build(mode)
}

/// Formats a percentage delta for table printing.
#[must_use]
pub fn pct(new: f64, old: f64) -> String {
    if old == 0.0 {
        return "–".to_string();
    }
    format!("{:+.0}%", 100.0 * (new - old) / old)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_cover_all_scenarios() {
        for s in apps::scenarios() {
            let m = measure(&s, InstrumentMode::Full);
            assert!(m.code_bytes > 0 && m.cycles > 0 && m.log_bytes > 0, "{}", s.name);
        }
    }

    #[test]
    fn end_to_end_verification_is_clean_for_all_scenarios() {
        for s in apps::scenarios() {
            let report = run_and_verify(&s);
            assert!(report.is_clean(), "{}: {report}", s.name);
        }
    }
}
