//! Shared measurement helpers for the figure/table regeneration benches.
//!
//! Every bench target in `benches/` is a `harness = false` binary that
//! prints the corresponding table or figure series of the DIALED paper;
//! `cargo bench -p dialed-bench` therefore regenerates the full evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apex::pox::StopReason;
use apps::Scenario;
use dialed::pipeline::{InstrumentMode, InstrumentedOp};
use dialed::prelude::*;

/// One measured configuration of one application.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Operation code size in bytes (Fig. 6a).
    pub code_bytes: usize,
    /// CPU cycles of the attested run (Fig. 6b).
    pub cycles: u64,
    /// Executed instructions.
    pub insns: usize,
    /// OR bytes consumed by the logs (Fig. 6c).
    pub log_bytes: usize,
}

/// Builds and runs `scenario` in `mode`, returning the paper's three
/// metrics.
///
/// # Panics
///
/// Panics if the app fails to build or run — these are fixed workloads, so
/// that is a harness bug.
#[must_use]
pub fn measure(scenario: &Scenario, mode: InstrumentMode) -> Measurement {
    let op = scenario.build(mode);
    let code_bytes = op.code_size();
    let ks = KeyStore::from_seed(0xBEEF);
    let mut dev = DialedDevice::new(op, ks);
    (scenario.feed)(dev.platform_mut());
    let info = dev.invoke(&scenario.args);
    assert_eq!(
        info.stop,
        StopReason::ReachedStop,
        "{} did not complete in mode {mode:?}: {:?}",
        scenario.name,
        dev.violation()
    );
    Measurement {
        code_bytes,
        cycles: info.cycles,
        insns: info.insns,
        log_bytes: info.log_bytes_used,
    }
}

/// Builds, runs *and verifies* a scenario end to end; returns the
/// verification report (used by the micro benches and smoke checks).
///
/// # Panics
///
/// Panics when the run does not complete.
#[must_use]
pub fn run_and_verify(scenario: &Scenario) -> Report {
    let op = scenario.build(InstrumentMode::Full);
    let ks = KeyStore::from_seed(0xF00D);
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    (scenario.feed)(dev.platform_mut());
    let info = dev.invoke(&scenario.args);
    assert_eq!(info.stop, StopReason::ReachedStop);
    let chal = Challenge::derive(b"bench", 1);
    let proof = dev.prove(&chal);
    let mut verifier = DialedVerifier::new(op, ks);
    for p in (scenario.policies)() {
        verifier = verifier.with_policy(p);
    }
    verifier.verify(&VerifyRequest::new(&proof, &chal))
}

/// Returns an [`InstrumentedOp`] for a scenario (bench setup helper).
///
/// # Panics
///
/// Panics if the app fails to build.
#[must_use]
pub fn build_op(scenario: &Scenario, mode: InstrumentMode) -> InstrumentedOp {
    scenario.build(mode)
}

/// An end-to-end fleet benchmark over the TCP frontend: a
/// [`NetServer`](fleet::NetServer) on loopback, `conns` client
/// connections each multiplexing a slice of the device population.
///
/// Measures the full networked path — wire encode, socket, frame
/// reassembly, core dispatch, sharded batch drain, verdict delivery — so
/// its devices/sec sits next to the in-process `fleet_throughput` number
/// as the "what the network layer costs" comparison.
pub struct NetFleetBench {
    handle: Option<fleet::NetServerHandle>,
    lanes: Vec<NetLane>,
    devices: usize,
}

struct NetLane {
    client: fleet::NetClient,
    devices: Vec<(fleet::DeviceId, DialedDevice)>,
}

/// One full round for one lane: pipelined issues, then pipelined
/// submissions, then every verdict. Returns how many verdicts were clean.
fn lane_round(lane: &mut NetLane) -> usize {
    use fleet::wire::Message;
    let mut issue_reqs = std::collections::HashMap::new();
    for (i, (id, _)) in lane.devices.iter().enumerate() {
        issue_reqs.insert(lane.client.issue(id.0).expect("send issue"), i);
    }
    let mut chals: Vec<Option<fleet::ChallengeMsg>> = vec![None; lane.devices.len()];
    for _ in 0..lane.devices.len() {
        match lane.client.recv().expect("grant") {
            Message::Grant(g) => chals[issue_reqs[&g.request]] = Some(g.body),
            other => panic!("expected grant, got {other:?}"),
        }
    }
    for (i, chal) in chals.into_iter().enumerate() {
        let chal = chal.expect("every device granted");
        let (id, dev) = &mut lane.devices[i];
        let proof = dev.prove(&chal.challenge);
        lane.client
            .submit(fleet::ProofMsg { session: chal.session, device: id.0, proof })
            .expect("send submit");
    }
    let mut clean = 0;
    for _ in 0..lane.devices.len() {
        match lane.client.recv().expect("verdict") {
            Message::Verdict(v) => {
                assert!(v.body.report.verdict == dialed::report::Verdict::Clean, "{v:?}");
                clean += 1;
            }
            other => panic!("expected verdict, got {other:?}"),
        }
    }
    clean
}

impl NetFleetBench {
    /// Provisions `devices` simulators of `scenario` in `mode`, spawns
    /// the server, connects `conns` lanes, and smoke-checks one round.
    ///
    /// # Panics
    ///
    /// Panics if the server cannot start or the smoke round does not
    /// verify every device.
    #[must_use]
    pub fn new(scenario: &Scenario, mode: InstrumentMode, devices: usize, conns: usize) -> Self {
        let op = scenario.build(mode);
        let mut fleet = fleet::Fleet::new(fleet::FleetConfig {
            workers: Some(4),
            shards: 4,
            // Rounds are wall-clock short; keep logical expiry out of the
            // measurement.
            challenge_ttl: 1 << 40,
            ..fleet::FleetConfig::default()
        });
        let op_id = fleet.register_op(scenario.name, op.clone(), (scenario.policies)());
        let mut lanes: Vec<Vec<(fleet::DeviceId, DialedDevice)>> =
            (0..conns).map(|_| Vec::new()).collect();
        for i in 0..devices {
            let id = fleet.register_device(op_id, 0x2E7 + i as u64).expect("op registered");
            let mut dev = DialedDevice::new(op.clone(), fleet.device_keystore(id).expect("device"));
            (scenario.feed)(dev.platform_mut());
            let info = dev.invoke(&scenario.args);
            assert_eq!(info.stop, StopReason::ReachedStop, "{}", scenario.name);
            lanes[i % conns].push((id, dev));
        }
        let handle = fleet::NetServer::spawn(
            fleet,
            fleet::NetConfig {
                drain_interval: std::time::Duration::from_millis(5),
                drain_pending: (devices / 4).clamp(16, 256),
                ..fleet::NetConfig::default()
            },
        )
        .expect("bind loopback server");
        let lanes = lanes
            .into_iter()
            .map(|devices| NetLane {
                client: fleet::NetClient::connect(handle.addr()).expect("connect"),
                devices,
            })
            .collect();
        let mut bench = Self { handle: Some(handle), lanes, devices };
        assert_eq!(bench.round(), devices, "smoke round must verify every device");
        bench
    }

    /// One complete attestation round for every device, all lanes in
    /// parallel. Returns the number of clean verdicts.
    ///
    /// # Panics
    ///
    /// Panics on any socket error or non-clean verdict.
    pub fn round(&mut self) -> usize {
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                self.lanes.iter_mut().map(|lane| scope.spawn(|| lane_round(lane))).collect();
            handles.into_iter().map(|h| h.join().expect("lane panicked")).sum()
        })
    }

    /// The provisioned device count (one round = this many attestations).
    #[must_use]
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Runs timed rounds for roughly `budget`, returning sustained
    /// devices/sec (at least one round always runs).
    ///
    /// # Panics
    ///
    /// Propagates [`round`](Self::round) panics.
    pub fn sustained_devices_per_sec(&mut self, budget: std::time::Duration) -> f64 {
        let start = std::time::Instant::now();
        let mut attested = 0usize;
        while attested == 0 || start.elapsed() < budget {
            attested += self.round();
        }
        attested as f64 / start.elapsed().as_secs_f64()
    }

    /// Graceful shutdown; panics if any server thread panicked.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked (the zero-panic contract).
    pub fn finish(mut self) -> fleet::NetStats {
        let handle = self.handle.take().expect("finish called once");
        drop(std::mem::take(&mut self.lanes));
        let (_, stats) = handle.shutdown().expect("no server thread may panic");
        stats
    }
}

/// Formats a percentage delta for table printing.
#[must_use]
pub fn pct(new: f64, old: f64) -> String {
    if old == 0.0 {
        return "–".to_string();
    }
    format!("{:+.0}%", 100.0 * (new - old) / old)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_cover_all_scenarios() {
        for s in apps::scenarios() {
            let m = measure(&s, InstrumentMode::Full);
            assert!(m.code_bytes > 0 && m.cycles > 0 && m.log_bytes > 0, "{}", s.name);
        }
    }

    #[test]
    fn end_to_end_verification_is_clean_for_all_scenarios() {
        for s in apps::scenarios() {
            let report = run_and_verify(&s);
            assert!(report.is_clean(), "{}: {report}", s.name);
        }
    }
}
