//! Ablations for the design choices recorded in DESIGN.md:
//!
//! 1. CF-Log coverage: log-all-transfers (paper) vs indirect-only;
//! 2. F4 read checks: all reads (paper) vs statically skipping `x(sp)`
//!    stack locals;
//! 3. the cost of the always-log-8-argument-registers entry block.

use apex::pox::StopReason;
use apps::app_build_options;
use dialed::pipeline::{InstrumentMode, InstrumentedOp};
use dialed::prelude::*;
use dialed::ReadCheckPolicy;
use tinycfa::LogPolicy;

fn run(op: InstrumentedOp, s: &apps::Scenario) -> (usize, u64, usize) {
    let code = op.code_size();
    let ks = KeyStore::from_seed(7);
    let mut dev = DialedDevice::new(op, ks);
    (s.feed)(dev.platform_mut());
    let info = dev.invoke(&s.args);
    assert_eq!(info.stop, StopReason::ReachedStop, "{}", s.name);
    (code, info.cycles, info.log_bytes_used)
}

fn main() {
    println!("\nAblation 1 — CF-Log coverage policy (full DIALED builds)\n");
    println!(
        "{:<18} {:>22} {:>22}",
        "Application", "all-transfers (c/cyc/log)", "indirect-only (c/cyc/log)"
    );
    println!("{}", "-".repeat(66));
    for s in apps::scenarios() {
        let mut all = app_build_options(InstrumentMode::Full);
        all.cfa_policy = LogPolicy::AllTransfers;
        let mut ind = all.clone();
        ind.cfa_policy = LogPolicy::IndirectOnly;
        let a = run(InstrumentedOp::build(s.source, s.op_label, &all).unwrap(), &s);
        let b = run(InstrumentedOp::build(s.source, s.op_label, &ind).unwrap(), &s);
        println!(
            "{:<18} {:>7}/{:>6}/{:>5} {:>9}/{:>6}/{:>5}",
            s.name, a.0, a.1, a.2, b.0, b.1, b.2
        );
    }
    println!(
        "\n  Indirect-only logging shrinks code, cycles and log substantially but\n\
           makes the verifier reconstruct conditionals from data — only sound\n\
           when composed with DIALED's I-Log (LiteHAX-style optimisation).\n"
    );

    println!("Ablation 2 — F4 read-check policy (full DIALED builds)\n");
    println!(
        "{:<22} {:>22} {:>22}",
        "Application", "all-reads (c/cyc/log)", "skip-stack-locals (c/cyc/log)"
    );
    println!("{}", "-".repeat(70));
    // Include the Fig. 1 pump variant: its parse_commands buffer is read
    // through `0(sp)`, the exact pattern this ablation targets.
    type Row = (&'static str, &'static str, &'static str, fn(&mut msp430::platform::Platform));
    let mut rows: Vec<Row> = Vec::new();
    for s in apps::scenarios() {
        rows.push((s.name, s.source, s.op_label, s.feed));
    }
    rows.push((
        "SyringePump(Fig1)",
        apps::syringe_pump::SOURCE_VULN_CF,
        "syringe_op",
        apps::syringe_pump::feed_nominal_cf,
    ));
    for (name, source, label, feed) in rows {
        let scenario = apps::Scenario {
            name: "row",
            source,
            op_label: label,
            args: [0; 8],
            feed,
            policies: Vec::new,
        };
        let all = app_build_options(InstrumentMode::Full);
        let mut skip = all.clone();
        skip.read_policy = ReadCheckPolicy::SkipStackLocals;
        let a = run(InstrumentedOp::build(source, label, &all).unwrap(), &scenario);
        let b = run(InstrumentedOp::build(source, label, &skip).unwrap(), &scenario);
        println!("{:<22} {:>7}/{:>6}/{:>5} {:>9}/{:>6}/{:>5}", name, a.0, a.1, a.2, b.0, b.1, b.2);
    }
    println!(
        "\n  Skipping statically in-stack `x(sp)` reads saves code and cycles where\n\
           operations spill to locals (the Fig. 1 pump variant); the evaluation\n\
           apps themselves keep everything in registers, so they are unchanged.\n"
    );

    println!("Ablation 3 — F3 entry block (SP + 8 argument registers)\n");
    for s in apps::scenarios() {
        let op = s.build(InstrumentMode::Full);
        // 9 log blocks of 5 instructions each; measure their share.
        let entry_bytes = 9 * (4 + 2 + 4 + 2); // mov/decd/cmp/jn per slot
        println!(
            "  {:<18} entry block ≈ {} B of {} B total code ({:.1}%), 18 B of log",
            s.name,
            entry_bytes,
            op.code_size(),
            100.0 * f64::from(entry_bytes) / op.code_size() as f64
        );
    }
    println!(
        "\n  The paper logs all of r8-r15 because arity is unknown at the binary\n\
           level; the fixed 18-byte log cost is the price of needing no\n\
           programmer annotation (vs OAT).\n"
    );
}
