//! Emulation and crypto throughput — the two raw feeds of verification
//! cost, tracked so the fast-path speedups (predecoded icache,
//! zero-allocation `step_into`, multi-block SHA-256, reusable HMAC keys)
//! stay visible in the perf trajectory.
//!
//! Reported units: steps/sec for the simulator (cached vs forced-decode),
//! MiB/s for hashing, MACs/sec for the keyed-context HMAC path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hacl::{HmacKey, HmacSha256, Sha256};
use msp430::cpu::{Cpu, Step};
use msp430::mem::Ram;
use msp430::regs::Reg;

const LOOP_STEPS: usize = 10_000;

/// A self-contained busy loop: add, store, load, jump back.
fn busy_loop_ram() -> Ram {
    let mut ram = Ram::new();
    ram.load_words(0xE000, &[0x5A0A, 0x4A82, 0x0200, 0x4211, 0x0200, 0x3FFA]);
    ram
}

/// A long straight-line program (the worst case for an icache within one
/// pass — every PC executes once — and the best across passes).
fn straight_line_ram() -> (Ram, u16) {
    let mut ram = Ram::new();
    let mut at = 0xA000u16;
    for _ in 0..2000 {
        ram.load_words(at, &[0x5A0A]); // add r10, r10
        at = at.wrapping_add(2);
    }
    ram.load_words(at, &[0x3FFF]); // jmp . (stop marker)
    (ram, at)
}

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("emu_throughput/steps");
    group.throughput(Throughput::Elements(LOOP_STEPS as u64));

    group.bench_function("cached_10k", |b| {
        let mut ram = busy_loop_ram();
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        let mut step = Step::default();
        b.iter(|| {
            for _ in 0..LOOP_STEPS {
                cpu.step_into(&mut ram, &mut step).unwrap();
            }
            std::hint::black_box(step.pc);
        });
    });

    group.bench_function("forced_decode_10k", |b| {
        let mut ram = busy_loop_ram();
        let mut cpu = Cpu::new();
        cpu.set_icache_enabled(false);
        cpu.set_pc(0xE000);
        let mut step = Step::default();
        b.iter(|| {
            for _ in 0..LOOP_STEPS {
                cpu.step_into(&mut ram, &mut step).unwrap();
            }
            std::hint::black_box(step.pc);
        });
    });
    group.finish();

    // Repeated replay of a straight-line operation — the batch-verification
    // shape: every proof re-executes the same linear code.
    let mut group = c.benchmark_group("emu_throughput/replay");
    group.throughput(Throughput::Elements(2000));
    group.bench_function("straight_line_2k_warm", |b| {
        let (mut ram, stop) = straight_line_ram();
        let mut cpu = Cpu::new();
        let mut step = Step::default();
        b.iter(|| {
            cpu.set_pc(0xA000);
            cpu.set_reg(Reg::R10, 1);
            while cpu.pc() != stop {
                cpu.step_into(&mut ram, &mut step).unwrap();
            }
            std::hint::black_box(cpu.reg(Reg::R10));
        });
    });
    group.bench_function("straight_line_2k_forced_decode", |b| {
        let (mut ram, stop) = straight_line_ram();
        let mut cpu = Cpu::new();
        cpu.set_icache_enabled(false);
        let mut step = Step::default();
        b.iter(|| {
            cpu.set_pc(0xA000);
            cpu.set_reg(Reg::R10, 1);
            while cpu.pc() != stop {
                cpu.step_into(&mut ram, &mut step).unwrap();
            }
            std::hint::black_box(cpu.reg(Reg::R10));
        });
    });
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let data = vec![0x5Au8; 1 << 20];
    let mut group = c.benchmark_group("emu_throughput/sha256");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("digest_1mib", |b| {
        b.iter(|| std::hint::black_box(Sha256::digest(&data)));
    });
    group.finish();

    // HMAC over a proof-sized message: keyed context reuse vs re-deriving
    // the pads for every MAC (what BatchVerifier workers used to do).
    let msg = vec![0xC3u8; 2048];
    let key_bytes = [0x42u8; 32];
    let mut group = c.benchmark_group("emu_throughput/hmac_2k");
    group.throughput(Throughput::Elements(1));
    group.bench_function("reused_key_context", |b| {
        let key = HmacKey::new(&key_bytes);
        b.iter(|| std::hint::black_box(key.mac(&msg)));
    });
    group.bench_function("fresh_key_per_mac", |b| {
        b.iter(|| std::hint::black_box(HmacSha256::mac(&key_bytes, &msg)));
    });
    group.finish();
}

criterion_group!(benches, bench_steps, bench_hashing);
criterion_main!(benches);
