//! Emulation and crypto throughput — the two raw feeds of verification
//! cost, tracked so the fast-path speedups (predecoded icache,
//! zero-allocation `step_into`, multi-block SHA-256, reusable HMAC keys)
//! stay visible in the perf trajectory.
//!
//! Reported units: steps/sec for the simulator (superblock vs per-step
//! cached vs forced-decode),
//! MiB/s for hashing, MACs/sec for the keyed-context HMAC path and for the
//! batch proof-tag path (scalar vs multi-lane, cold vs memoized ER digest).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hacl::sha256_mb::{backend, digest_lanes};
use hacl::{Digest, HmacKey, HmacSha256, Sha256};
use msp430::cpu::{Cpu, Step};
use msp430::mem::Ram;
use msp430::regs::Reg;
use vrased::{check_tags_lanes, Challenge, KeyStore, RaVerifier, SwAtt, TagLane};

const LOOP_STEPS: usize = 10_000;

/// A self-contained busy loop: add, store, load, jump back.
fn busy_loop_ram() -> Ram {
    let mut ram = Ram::new();
    ram.load_words(0xE000, &[0x5A0A, 0x4A82, 0x0200, 0x4211, 0x0200, 0x3FFA]);
    ram
}

/// A long straight-line program (the worst case for an icache within one
/// pass — every PC executes once — and the best across passes).
fn straight_line_ram() -> (Ram, u16) {
    let mut ram = Ram::new();
    let mut at = 0xA000u16;
    for _ in 0..2000 {
        ram.load_words(at, &[0x5A0A]); // add r10, r10
        at = at.wrapping_add(2);
    }
    ram.load_words(at, &[0x3FFF]); // jmp . (stop marker)
    (ram, at)
}

/// Drives `cpu` for exactly `steps` steps through superblock dispatch.
fn run_block_steps(cpu: &mut Cpu, ram: &mut Ram, step: &mut Step, steps: usize) {
    let mut done = 0usize;
    while done < steps {
        done += cpu.step_block_into(ram, 0xFFFF, steps - done, step, |_, _, _| {}).unwrap();
    }
}

/// Interleaved A/B for the dispatch layers: alternate forced-decode,
/// per-step icache and superblock dispatch round-robin so frequency
/// scaling and cache state hit all of them equally, then print steps/s,
/// the speedup ratios and the superblock cache counters (the README
/// "Performance" table's source). Under `MSP430_FORCE_STEP` the
/// superblock slot degrades to per-step dispatch, pinning the parity
/// floor: it must never be slower than the icache column.
fn superblock_ab_report() {
    use std::time::{Duration, Instant};
    const REPS: usize = 40;
    const ROUNDS: usize = 6; // first round is warm-up, not counted

    let mut rams = [busy_loop_ram(), busy_loop_ram(), busy_loop_ram()];
    let mut cpus = [Cpu::new(), Cpu::new(), Cpu::new()];
    cpus[0].set_icache_enabled(false);
    cpus[0].set_superblocks_enabled(false);
    cpus[1].set_superblocks_enabled(false);
    let mut step = Step::default();
    for cpu in &mut cpus {
        cpu.set_pc(0xE000);
    }

    let mut spent = [Duration::ZERO; 3];
    for round in 0..ROUNDS {
        for slot in 0..3 {
            let (cpu, ram) = (&mut cpus[slot], &mut rams[slot]);
            let t = Instant::now();
            for _ in 0..REPS {
                if slot == 2 {
                    run_block_steps(cpu, ram, &mut step, LOOP_STEPS);
                } else {
                    for _ in 0..LOOP_STEPS {
                        cpu.step_into(ram, &mut step).unwrap();
                    }
                }
            }
            std::hint::black_box(step.pc);
            if round > 0 {
                spent[slot] += t.elapsed();
            }
        }
    }

    let steps = (LOOP_STEPS * REPS * (ROUNDS - 1)) as f64;
    let rate = |d: Duration| steps / d.as_secs_f64();
    let (forced, icache, sblock) = (rate(spent[0]), rate(spent[1]), rate(spent[2]));
    let stats = cpus[2].superblock_stats();
    println!(
        "superblock A/B (busy loop{}): forced_decode {forced:.0} steps/s | \
         icache {icache:.0} steps/s | superblock {sblock:.0} steps/s | \
         superblock/icache = {:.2}x | superblock/forced = {:.2}x | \
         blocks: {} hits, {} misses, {} restitches",
        if cpus[2].superblocks_enabled() { "" } else { ", MSP430_FORCE_STEP" },
        sblock / icache,
        sblock / forced,
        stats.hits,
        stats.misses,
        stats.restitches,
    );
}

fn bench_steps(c: &mut Criterion) {
    superblock_ab_report();

    let mut group = c.benchmark_group("emu_throughput/steps");
    group.throughput(Throughput::Elements(LOOP_STEPS as u64));

    group.bench_function("superblock_10k", |b| {
        let mut ram = busy_loop_ram();
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        let mut step = Step::default();
        b.iter(|| {
            run_block_steps(&mut cpu, &mut ram, &mut step, LOOP_STEPS);
            std::hint::black_box(step.pc);
        });
    });

    group.bench_function("cached_10k", |b| {
        let mut ram = busy_loop_ram();
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        let mut step = Step::default();
        b.iter(|| {
            for _ in 0..LOOP_STEPS {
                cpu.step_into(&mut ram, &mut step).unwrap();
            }
            std::hint::black_box(step.pc);
        });
    });

    group.bench_function("forced_decode_10k", |b| {
        let mut ram = busy_loop_ram();
        let mut cpu = Cpu::new();
        cpu.set_icache_enabled(false);
        cpu.set_pc(0xE000);
        let mut step = Step::default();
        b.iter(|| {
            for _ in 0..LOOP_STEPS {
                cpu.step_into(&mut ram, &mut step).unwrap();
            }
            std::hint::black_box(step.pc);
        });
    });
    group.finish();

    // Repeated replay of a straight-line operation — the batch-verification
    // shape: every proof re-executes the same linear code.
    let mut group = c.benchmark_group("emu_throughput/replay");
    group.throughput(Throughput::Elements(2000));
    group.bench_function("straight_line_2k_superblock", |b| {
        let (mut ram, stop) = straight_line_ram();
        let mut cpu = Cpu::new();
        let mut step = Step::default();
        b.iter(|| {
            cpu.set_pc(0xA000);
            cpu.set_reg(Reg::R10, 1);
            while cpu.pc() != stop {
                cpu.step_block_into(&mut ram, stop, 4096, &mut step, |_, _, _| {}).unwrap();
            }
            std::hint::black_box(cpu.reg(Reg::R10));
        });
    });
    group.bench_function("straight_line_2k_warm", |b| {
        let (mut ram, stop) = straight_line_ram();
        let mut cpu = Cpu::new();
        let mut step = Step::default();
        b.iter(|| {
            cpu.set_pc(0xA000);
            cpu.set_reg(Reg::R10, 1);
            while cpu.pc() != stop {
                cpu.step_into(&mut ram, &mut step).unwrap();
            }
            std::hint::black_box(cpu.reg(Reg::R10));
        });
    });
    group.bench_function("straight_line_2k_forced_decode", |b| {
        let (mut ram, stop) = straight_line_ram();
        let mut cpu = Cpu::new();
        cpu.set_icache_enabled(false);
        let mut step = Step::default();
        b.iter(|| {
            cpu.set_pc(0xA000);
            cpu.set_reg(Reg::R10, 1);
            while cpu.pc() != stop {
                cpu.step_into(&mut ram, &mut step).unwrap();
            }
            std::hint::black_box(cpu.reg(Reg::R10));
        });
    });
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let data = vec![0x5Au8; 1 << 20];
    let mut group = c.benchmark_group("emu_throughput/sha256");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("digest_1mib", |b| {
        b.iter(|| std::hint::black_box(Sha256::digest(&data)));
    });
    group.finish();

    // HMAC over a proof-sized message: keyed context reuse vs re-deriving
    // the pads for every MAC (what BatchVerifier workers used to do).
    let msg = vec![0xC3u8; 2048];
    let key_bytes = [0x42u8; 32];
    let mut group = c.benchmark_group("emu_throughput/hmac_2k");
    group.throughput(Throughput::Elements(1));
    group.bench_function("reused_key_context", |b| {
        let key = HmacKey::new(&key_bytes);
        b.iter(|| std::hint::black_box(key.mac(&msg)));
    });
    group.bench_function("fresh_key_per_mac", |b| {
        b.iter(|| std::hint::black_box(HmacSha256::mac(&key_bytes, &msg)));
    });
    group.finish();
}

// ------------------------------------------------------- batch MAC path

/// Proofs per simulated batch drain — matches a busy shard's queue depth.
const MAC_BATCH: usize = 64;
const ER_LEN: usize = 2048;
const OR_LEN: usize = 256;
const ER_MIN: u16 = 0xE000;
const ER_MAX: u16 = ER_MIN + ER_LEN as u16 - 1;
const OR_MIN: u16 = 0x0600;
const OR_MAX: u16 = OR_MIN + OR_LEN as u16 - 1;
const EXTRA: [u8; 11] = [0u8; 11];

/// One batch of authentic proof tags: per-device keys and challenges over
/// a shared 2 KiB ER image and per-device 256 B ORs.
struct MacBatch {
    ras: Vec<RaVerifier>,
    challenges: Vec<Challenge>,
    ors: Vec<Vec<u8>>,
    tags: Vec<Digest>,
    er: Vec<u8>,
    er_digest: Digest,
}

fn mac_batch() -> MacBatch {
    let er = vec![0x5Au8; ER_LEN];
    let er_digest = Sha256::digest(&er);
    let mut batch = MacBatch {
        ras: Vec::new(),
        challenges: Vec::new(),
        ors: Vec::new(),
        tags: Vec::new(),
        er,
        er_digest,
    };
    for i in 0..MAC_BATCH {
        let ks = KeyStore::from_seed(0xBEEF + i as u64);
        let challenge = Challenge::derive(b"mac-bench", i as u64);
        let or = vec![i as u8; OR_LEN];
        let tag = SwAtt::new(ks.clone()).attest_region_bytes(
            &challenge,
            &[(ER_MIN, ER_MAX, batch.er.as_slice()), (OR_MIN, OR_MAX, or.as_slice())],
            &EXTRA,
        );
        batch.ras.push(RaVerifier::new(ks));
        batch.challenges.push(challenge);
        batch.ors.push(or);
        batch.tags.push(tag);
    }
    batch
}

/// Scalar path, nothing memoized: every proof re-digests the full ER image
/// (the pre-memoization verifier's work). Returns the verified count.
fn run_scalar_cold(b: &MacBatch) -> usize {
    (0..MAC_BATCH)
        .filter(|&i| {
            b.ras[i].check_region_bytes(
                &b.challenges[i],
                &[(ER_MIN, ER_MAX, b.er.as_slice()), (OR_MIN, OR_MAX, b.ors[i].as_slice())],
                &EXTRA,
                &b.tags[i],
            )
        })
        .count()
}

/// Scalar tag checks over the memoized ER digest: only the OR is digested
/// per proof, but each HMAC still runs alone.
fn run_scalar_memoized(b: &MacBatch) -> usize {
    (0..MAC_BATCH)
        .filter(|&i| {
            let or_digest = Sha256::digest(&b.ors[i]);
            b.ras[i].check_region_digests(
                &b.challenges[i],
                &[(ER_MIN, ER_MAX, &b.er_digest), (OR_MIN, OR_MAX, &or_digest)],
                &EXTRA,
                &b.tags[i],
            )
        })
        .count()
}

/// The full fast path: memoized ER digest, OR digests and HMAC tag checks
/// in multi-buffer lanes.
fn run_lanes_memoized(b: &MacBatch, or_digests: &mut [Digest], ok: &mut [bool]) -> usize {
    let or_refs: Vec<&[u8]> = b.ors.iter().map(Vec::as_slice).collect();
    digest_lanes(&or_refs, or_digests);
    let regions: Vec<[(u16, u16, &Digest); 2]> = (0..MAC_BATCH)
        .map(|i| [(ER_MIN, ER_MAX, &b.er_digest), (OR_MIN, OR_MAX, &or_digests[i])])
        .collect();
    let lanes: Vec<TagLane<'_>> = (0..MAC_BATCH)
        .map(|i| TagLane {
            ra: &b.ras[i],
            challenge: &b.challenges[i],
            regions: &regions[i],
            extra: &EXTRA,
            tag: &b.tags[i],
        })
        .collect();
    check_tags_lanes(&lanes, ok);
    ok.iter().filter(|&&v| v).count()
}

/// Interleaved A/B: alternate the three variants round-robin so frequency
/// scaling and cache state hit all of them equally, then print MACs/s and
/// the speedup ratios (the README "Performance" table's source).
fn mac_ab_report() {
    use std::time::{Duration, Instant};
    let batch = mac_batch();
    let mut or_digests = vec![[0u8; 32]; MAC_BATCH];
    let mut ok = vec![false; MAC_BATCH];
    const REPS: usize = 40;
    const ROUNDS: usize = 6; // first round is warm-up, not counted
    let mut spent = [Duration::ZERO; 3];
    for round in 0..ROUNDS {
        let mut timed = [Duration::ZERO; 3];
        for (slot, run) in [
            (0, &mut (|| run_scalar_cold(&batch)) as &mut dyn FnMut() -> usize),
            (1, &mut || run_scalar_memoized(&batch)),
            (2, &mut || run_lanes_memoized(&batch, &mut or_digests, &mut ok)),
        ] {
            let t = Instant::now();
            for _ in 0..REPS {
                assert_eq!(run(), MAC_BATCH, "all bench tags are authentic");
            }
            timed[slot] = t.elapsed();
        }
        if round > 0 {
            for (acc, d) in spent.iter_mut().zip(timed) {
                *acc += d;
            }
        }
    }
    let macs = (MAC_BATCH * REPS * (ROUNDS - 1)) as f64;
    let rate = |d: Duration| macs / d.as_secs_f64();
    let (cold, memo, lanes) = (rate(spent[0]), rate(spent[1]), rate(spent[2]));
    println!(
        "mac_path A/B ({} backend): scalar_cold {cold:.0} MACs/s | \
         scalar_memoized {memo:.0} MACs/s | lanes_memoized {lanes:.0} MACs/s | \
         lanes/scalar_cold = {:.2}x | lanes/scalar_memoized = {:.2}x",
        backend().label(),
        lanes / cold,
        lanes / memo,
    );
}

fn bench_mac_path(c: &mut Criterion) {
    mac_ab_report();

    let batch = mac_batch();
    let mut group = c.benchmark_group("emu_throughput/mac_path");
    group.throughput(Throughput::Elements(MAC_BATCH as u64));
    group.bench_function("scalar_cold", |b| {
        b.iter(|| std::hint::black_box(run_scalar_cold(&batch)));
    });
    group.bench_function("scalar_memoized", |b| {
        b.iter(|| std::hint::black_box(run_scalar_memoized(&batch)));
    });
    group.bench_function("lanes_memoized", |b| {
        let mut or_digests = vec![[0u8; 32]; MAC_BATCH];
        let mut ok = vec![false; MAC_BATCH];
        b.iter(|| std::hint::black_box(run_lanes_memoized(&batch, &mut or_digests, &mut ok)));
    });
    group.finish();
}

criterion_group!(benches, bench_steps, bench_hashing, bench_mac_path);
criterion_main!(benches);
