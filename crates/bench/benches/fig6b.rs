//! Regenerates Fig. 6(b): runtime in CPU cycles per application for
//! Original / Tiny-CFA / DIALED builds.

use dialed::pipeline::InstrumentMode;
use dialed_bench::{measure, pct};

fn main() {
    println!("\nFig. 6(b) — runtime (CPU cycles)\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>14} {:>16}",
        "Application", "Original", "Tiny-CFA", "DIALED", "DIALED/CFA", "DIALED vs CFA"
    );
    println!("{}", "-".repeat(84));
    for s in apps::scenarios() {
        let orig = measure(&s, InstrumentMode::Original).cycles;
        let cfa = measure(&s, InstrumentMode::CfaOnly).cycles;
        let full = measure(&s, InstrumentMode::Full).cycles;
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>13.2}x {:>16}",
            s.name,
            orig,
            cfa,
            full,
            full as f64 / cfa as f64,
            pct(full as f64, cfa as f64),
        );
    }
    println!(
        "\nShape check: instrumentation for CFA dominates the runtime overhead;\n\
         DIALED's additional data-input logging stays within a small factor of\n\
         the Tiny-CFA build (paper: 1-20%).\n"
    );
}
