//! Criterion micro-benchmarks: simulator, crypto, instrumentation and
//! verification throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dialed::pipeline::InstrumentMode;
use dialed::prelude::*;
use msp430::{cpu::Cpu, mem::Ram};

fn bench_simulator(c: &mut Criterion) {
    // add r10, r10 in a tight loop via jmp.
    let mut ram = Ram::new();
    ram.load_words(0xE000, &[0x5A0A, 0x3FFE]); // add ; jmp -2
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("steps_10k", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new();
            cpu.set_pc(0xE000);
            for _ in 0..10_000 {
                std::hint::black_box(cpu.step(&mut ram).unwrap());
            }
        });
    });
    group.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let data = vec![0xA5u8; 16 * 1024];
    let mut group = c.benchmark_group("crypto");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("hmac_sha256_16k", |b| {
        b.iter(|| std::hint::black_box(hacl::HmacSha256::mac(b"key", &data)));
    });
    group.finish();
}

fn bench_instrumentation(c: &mut Criterion) {
    let s = apps::syringe_pump::scenario();
    c.bench_function("instrument_syringe_pump_full", |b| {
        b.iter(|| std::hint::black_box(s.build(InstrumentMode::Full)));
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let s = apps::fire_sensor::scenario();
    let op = s.build(InstrumentMode::Full);
    let ks = KeyStore::from_seed(1);
    // Pre-run a device once to produce a proof; bench the verifier.
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    (s.feed)(dev.platform_mut());
    dev.invoke(&s.args);
    let chal = Challenge::derive(b"micro", 0);
    let proof = dev.prove(&chal);
    let mut verifier = DialedVerifier::new(op.clone(), ks.clone());
    for p in (s.policies)() {
        verifier = verifier.with_policy(p);
    }
    c.bench_function("device_invoke_fire_sensor", |b| {
        b.iter(|| {
            let mut dev = DialedDevice::new(op.clone(), ks.clone());
            (s.feed)(dev.platform_mut());
            std::hint::black_box(dev.invoke(&s.args));
        });
    });
    c.bench_function("verify_fire_sensor_proof", |b| {
        b.iter(|| std::hint::black_box(verifier.verify(&VerifyRequest::new(&proof, &chal))));
    });
}

criterion_group!(benches, bench_simulator, bench_crypto, bench_instrumentation, bench_end_to_end);
criterion_main!(benches);
