//! Regenerates Fig. 6(c): attestation log size (bytes) inside OR —
//! Tiny-CFA (CF-Log only) vs DIALED (CF-Log + I-Log).

use dialed::pipeline::InstrumentMode;
use dialed_bench::{measure, pct};

fn main() {
    println!("\nFig. 6(c) — attestation log size in OR (bytes)\n");
    println!("{:<18} {:>12} {:>12} {:>16}", "Application", "Tiny-CFA", "DIALED", "DIALED vs CFA");
    println!("{}", "-".repeat(62));
    for s in apps::scenarios() {
        let cfa = measure(&s, InstrumentMode::CfaOnly).log_bytes;
        let full = measure(&s, InstrumentMode::Full).log_bytes;
        println!("{:<18} {:>12} {:>12} {:>16}", s.name, cfa, full, pct(full as f64, cfa as f64),);
    }
    println!(
        "\nShape check: the I-Log adds a modest increment over CF-Log because\n\
         only genuine data inputs are logged (Definition 1), while loop-heavy\n\
         apps (SyringePump) remain dominated by control-flow entries.\n"
    );
}
