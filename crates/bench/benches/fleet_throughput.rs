//! Fleet-service throughput: devices/second for one complete attestation
//! round — challenge issuance, device-side proof, wire encode/decode,
//! session admission, sharded batch drain — over the three paper
//! applications × all three instrumentation modes.
//!
//! `Full` rounds pay the DIALED price (MAC + abstract execution + OR
//! recomputation per device); `Original`/`CfaOnly` rounds are verified at
//! the PoX level (MAC only), so the mode axis shows what the DFA guarantee
//! costs per device at the service level — the fleet-scale analogue of the
//! paper's Fig. 6 device-side overhead axis.
//!
//! Each group measures the in-memory fleet (`round`) against the durable
//! one (`round-durable`, WAL + periodic snapshots on a temp dir), so the
//! price of crash-consistency is a first-class number.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dialed::attest::DialedDevice;
use dialed::pipeline::InstrumentMode;
use fleet::wire::{self, Message, ProofMsg};
use fleet::{DeviceId, Fleet, FleetConfig};
use std::path::PathBuf;

/// Devices per simulated fleet round.
const FLEET_SIZE: usize = 16;

struct Prepared {
    label: String,
    fleet: Fleet,
    devices: Vec<(DeviceId, DialedDevice)>,
    now: u64,
}

/// One end-to-end attestation round for every device; returns how many
/// sessions ended `Verified`.
fn round(p: &mut Prepared) -> usize {
    for (id, dev) in &mut p.devices {
        let chal = p.fleet.issue(*id, p.now).expect("registered device");
        let frame = wire::encode(&Message::Proof(ProofMsg {
            session: chal.session,
            device: id.0,
            proof: dev.prove(&chal.challenge),
        }));
        p.fleet.submit_wire(&frame, p.now).expect("fresh proof is accepted");
    }
    let (stats, _) = p.fleet.drain(p.now);
    p.now += 4;
    // Evict resolved history so state (and durable snapshots) stay O(fleet)
    // across iterations instead of growing with rounds measured.
    p.fleet.prune_resolved(p.now);
    stats.verified
}

/// A fresh temp state dir for one durable bench group.
fn state_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dialed-bench-wal-{}-{}",
        std::process::id(),
        label.replace('/', "-")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn prepare(scenario: &apps::Scenario, mode: InstrumentMode, dir: Option<&PathBuf>) -> Prepared {
    let op = scenario.build(mode);
    // Default snapshot cadence: each round commits ~3 events per device,
    // so snapshots (and their fsync) recur every ~20 rounds per shard —
    // measured rounds see the amortized durable cost, appends dominating.
    let config = FleetConfig::default();
    let mut fleet = match dir {
        Some(dir) => Fleet::durable(dir, config).expect("temp state dir is writable"),
        None => Fleet::new(config),
    };
    let op_id = fleet.register_op(scenario.name, op.clone(), (scenario.policies)());
    let mut devices = Vec::with_capacity(FLEET_SIZE);
    for i in 0..FLEET_SIZE {
        let id = fleet.register_device(op_id, 0xBEE5 + i as u64).expect("op registered");
        let mut dev = DialedDevice::new(op.clone(), fleet.device_keystore(id).expect("device"));
        (scenario.feed)(dev.platform_mut());
        let info = dev.invoke(&scenario.args);
        assert_eq!(info.stop, apex::pox::StopReason::ReachedStop, "{}", scenario.name);
        devices.push((id, dev));
    }
    let mut p = Prepared { label: format!("{}/{mode:?}", scenario.name), fleet, devices, now: 0 };
    // Smoke: every device of every mode must end Verified before we
    // measure anything.
    assert_eq!(round(&mut p), FLEET_SIZE, "{}", p.label);
    p
}

fn bench_fleet(c: &mut Criterion) {
    for scenario in apps::scenarios() {
        for mode in [InstrumentMode::Original, InstrumentMode::CfaOnly, InstrumentMode::Full] {
            let mut p = prepare(&scenario, mode, None);
            let dir = state_dir(&p.label);
            let mut durable = prepare(&scenario, mode, Some(&dir));
            let group_name = format!("fleet/{}", p.label);
            let mut group = c.benchmark_group(&group_name);
            group.throughput(Throughput::Elements(FLEET_SIZE as u64));
            group.bench_function("round", |b| {
                b.iter(|| {
                    let verified = round(&mut p);
                    assert_eq!(verified, FLEET_SIZE);
                });
            });
            group.bench_function("round-durable", |b| {
                b.iter(|| {
                    let verified = round(&mut durable);
                    assert_eq!(verified, FLEET_SIZE);
                });
            });
            group.finish();
            for (kind, stats) in [
                ("memory", p.fleet.digest_cache_stats()),
                ("durable", durable.fleet.digest_cache_stats()),
            ] {
                println!(
                    "{group_name}/{kind}: er-digest cache {} hits / {} misses ({:.1}% hit rate)",
                    stats.hits,
                    stats.misses,
                    stats.hit_rate() * 100.0,
                );
            }
            drop(durable);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    // The end-to-end counterpart, printed next to the in-process numbers
    // so BENCH_* trajectories capture both sides of the network boundary
    // (full measurement matrix in `fleet_net_throughput`).
    let scenarios = apps::scenarios();
    let mut net =
        dialed_bench::NetFleetBench::new(&scenarios[0], InstrumentMode::Full, FLEET_SIZE, 2);
    let per_sec = net.sustained_devices_per_sec(std::time::Duration::from_millis(500));
    let stats = net.finish();
    println!(
        "fleet-net: {per_sec:.0} devices/sec end-to-end over TCP loopback \
         ({}, Full, {FLEET_SIZE} devices) [{stats}]",
        scenarios[0].name,
    );

    // Process-wide because worker CPUs (and their block caches) are
    // transient; the counters aggregate every emulation this run.
    let sb = msp430::process_superblock_stats();
    println!(
        "fleet: superblocks {} hits / {} misses / {} restitches{}",
        sb.hits,
        sb.misses,
        sb.restitches,
        if msp430::superblocks_forced_off() { " (MSP430_FORCE_STEP)" } else { "" },
    );
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
