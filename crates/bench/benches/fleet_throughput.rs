//! Fleet-service throughput: devices/second for one complete attestation
//! round — challenge issuance, device-side proof, wire encode/decode,
//! session admission, sharded batch drain — over the three paper
//! applications × all three instrumentation modes.
//!
//! `Full` rounds pay the DIALED price (MAC + abstract execution + OR
//! recomputation per device); `Original`/`CfaOnly` rounds are verified at
//! the PoX level (MAC only), so the mode axis shows what the DFA guarantee
//! costs per device at the service level — the fleet-scale analogue of the
//! paper's Fig. 6 device-side overhead axis.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dialed::attest::DialedDevice;
use dialed::pipeline::InstrumentMode;
use fleet::wire::{self, Message, ProofMsg};
use fleet::{DeviceId, Fleet, FleetConfig};

/// Devices per simulated fleet round.
const FLEET_SIZE: usize = 16;

struct Prepared {
    label: String,
    fleet: Fleet,
    devices: Vec<(DeviceId, DialedDevice)>,
    now: u64,
}

/// One end-to-end attestation round for every device; returns how many
/// sessions ended `Verified`.
fn round(p: &mut Prepared) -> usize {
    for (id, dev) in &mut p.devices {
        let chal = p.fleet.issue(*id, p.now).expect("registered device");
        let frame = wire::encode(&Message::Proof(ProofMsg {
            session: chal.session,
            device: id.0,
            proof: dev.prove(&chal.challenge),
        }));
        p.fleet.submit_wire(&frame, p.now).expect("fresh proof is accepted");
    }
    let (stats, _) = p.fleet.drain(p.now);
    p.now += 4;
    stats.verified
}

fn prepare(scenario: &apps::Scenario, mode: InstrumentMode) -> Prepared {
    let op = scenario.build(mode);
    let mut fleet = Fleet::new(FleetConfig::default());
    let op_id = fleet.register_op(scenario.name, op.clone(), (scenario.policies)());
    let mut devices = Vec::with_capacity(FLEET_SIZE);
    for i in 0..FLEET_SIZE {
        let id = fleet.register_device(op_id, 0xBEE5 + i as u64).expect("op registered");
        let mut dev = DialedDevice::new(op.clone(), fleet.device_keystore(id).expect("device"));
        (scenario.feed)(dev.platform_mut());
        let info = dev.invoke(&scenario.args);
        assert_eq!(info.stop, apex::pox::StopReason::ReachedStop, "{}", scenario.name);
        devices.push((id, dev));
    }
    let mut p = Prepared { label: format!("{}/{mode:?}", scenario.name), fleet, devices, now: 0 };
    // Smoke: every device of every mode must end Verified before we
    // measure anything.
    assert_eq!(round(&mut p), FLEET_SIZE, "{}", p.label);
    p
}

fn bench_fleet(c: &mut Criterion) {
    for scenario in apps::scenarios() {
        for mode in [InstrumentMode::Original, InstrumentMode::CfaOnly, InstrumentMode::Full] {
            let mut p = prepare(&scenario, mode);
            let group_name = format!("fleet/{}", p.label);
            let mut group = c.benchmark_group(&group_name);
            group.throughput(Throughput::Elements(FLEET_SIZE as u64));
            group.bench_function("round", |b| {
                b.iter(|| {
                    let verified = round(&mut p);
                    assert_eq!(verified, FLEET_SIZE);
                });
            });
            group.finish();
        }
    }
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
