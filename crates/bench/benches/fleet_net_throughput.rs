//! End-to-end networked-fleet throughput: devices/second for one complete
//! attestation round across the TCP frontend — wire encode on the client,
//! loopback socket, incremental frame reassembly, core dispatch, sharded
//! batch drain, verdict frames back. The number to read next to
//! `fleet_throughput`'s in-process `round`: the gap is what the network
//! layer (sockets + framing + the single-owner core) costs.
//!
//! Two population sizes per app×mode pin both the latency-bound small
//! fleet and the batch-amortized large one; the final summary line
//! reports sustained devices/sec for the large configuration.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dialed::pipeline::InstrumentMode;
use dialed_bench::NetFleetBench;
use std::time::Duration;

/// Client connections per bench server (devices multiplex across them).
const CONNS: usize = 4;

fn bench_net_fleet(c: &mut Criterion) {
    for scenario in apps::scenarios() {
        for mode in [InstrumentMode::Original, InstrumentMode::Full] {
            for devices in [16usize, 128] {
                let mut bench = NetFleetBench::new(&scenario, mode, devices, CONNS);
                let name = format!("fleet-net/{}/{mode:?}/{devices}dev", scenario.name);
                let mut group = c.benchmark_group(&name);
                group.throughput(Throughput::Elements(devices as u64));
                group.bench_function("round", |b| {
                    b.iter(|| {
                        let clean = bench.round();
                        assert_eq!(clean, devices);
                    });
                });
                group.finish();
                let stats = bench.finish();
                println!("{name}: server stats [{stats}]");
            }
        }
    }

    // The headline number for README/BENCH trajectories: sustained
    // end-to-end devices/sec on the first paper app, fully instrumented.
    let scenarios = apps::scenarios();
    let mut sustained = NetFleetBench::new(&scenarios[0], InstrumentMode::Full, 128, CONNS);
    let per_sec = sustained.sustained_devices_per_sec(Duration::from_secs(1));
    let stats = sustained.finish();
    println!(
        "fleet-net/sustained: {per_sec:.0} devices/sec end-to-end \
         ({}, Full, 128 devices, {CONNS} conns) [{stats}]",
        scenarios[0].name,
    );
}

criterion_group!(benches, bench_net_fleet);
criterion_main!(benches);
