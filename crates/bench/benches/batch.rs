//! Batch-verification throughput: sequential `DialedVerifier::verify` vs
//! the parallel `BatchVerifier`, at 1–1000 proofs, across the three paper
//! applications (fire sensor, ultrasonic ranger, syringe pump).
//!
//! This establishes the perf trajectory for the ROADMAP's server-side
//! scaling work: the verifier is the hot path when attesting fleets.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dialed::pipeline::InstrumentMode;
use dialed::prelude::*;

/// Distinct base proofs generated per application; larger batches cycle
/// through them (verification cost is identical for repeated proofs).
const BASE_PROOFS: usize = 8;

const SIZES: [usize; 4] = [1, 10, 100, 1000];

struct Prepared {
    name: &'static str,
    batch: BatchVerifier<DialedVerifier>,
    jobs: Vec<BatchJob>,
}

fn verifier_for(scenario: &apps::Scenario, op: &InstrumentedOp, ks: &KeyStore) -> DialedVerifier {
    let mut verifier = DialedVerifier::new(op.clone(), ks.clone());
    for p in (scenario.policies)() {
        verifier = verifier.with_policy(p);
    }
    verifier
}

fn prepare(scenario: &apps::Scenario) -> Prepared {
    let op = scenario.build(InstrumentMode::Full);
    let ks = KeyStore::from_seed(0xBA7C);
    let base: Vec<(DialedProof, Challenge)> = (0..BASE_PROOFS)
        .map(|i| {
            let mut dev = DialedDevice::new(op.clone(), ks.clone());
            (scenario.feed)(dev.platform_mut());
            let info = dev.invoke(&scenario.args);
            assert_eq!(info.stop, apex::pox::StopReason::ReachedStop, "{}", scenario.name);
            let chal = Challenge::derive(scenario.name.as_bytes(), i as u64);
            (dev.prove(&chal), chal)
        })
        .collect();
    let jobs = (0..*SIZES.iter().max().unwrap())
        .map(|i| {
            let (proof, chal) = &base[i % BASE_PROOFS];
            BatchJob::new(i as u64, proof.clone(), *chal)
        })
        .collect();
    let batch = BatchVerifier::new(verifier_for(scenario, &op, &ks));
    Prepared { name: scenario.name, batch, jobs }
}

fn bench_scenario(c: &mut Criterion, p: &Prepared) {
    for n in SIZES {
        let jobs = &p.jobs[..n];
        let group_name = format!("{}/{n}", p.name);
        let mut group = c.benchmark_group(&group_name);
        group.throughput(Throughput::Elements(n as u64));

        group.bench_function("sequential", |b| {
            let mut ws = EmuWorkspace::new();
            b.iter(|| {
                for job in jobs {
                    let req = VerifyRequest::new(&job.proof, &job.challenge);
                    std::hint::black_box(p.batch.verifier().verify_in(&mut ws, &req));
                }
            });
        });

        group.bench_function("batch", |b| {
            b.iter(|| std::hint::black_box(p.batch.verify_batch(jobs, None)));
        });
        group.finish();
    }
}

fn bench_batch(c: &mut Criterion) {
    for s in apps::scenarios() {
        let p = prepare(&s);
        // Sanity: every base job verifies clean before we measure it.
        let smoke = p.batch.verify_batch(&p.jobs[..BASE_PROOFS], None);
        assert!(smoke.all_clean(), "{}: {smoke}", p.name);
        bench_scenario(c, &p);
    }
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
