//! Regenerates Table I: functionality and hardware overhead comparison of
//! run-time attestation architectures.

use hwcost::designs::table1_rows;

fn main() {
    println!("\nTable I — functionality and hardware overhead (modeled vs published)\n");
    println!(
        "{:<18} {:>10} {:>10} {:>16} {:>16} {:>20}",
        "Technique", "CFA", "DFA", "LUTs (model)", "Regs (model)", "published (L/R)"
    );
    println!("{}", "-".repeat(96));
    let rows = table1_rows();
    for r in &rows {
        let (luts, ffs, ovl, ovf) = match (r.modeled, r.overhead_pct) {
            (Some(a), Some((l, f))) => {
                (format!("{} (+{:.0}%)", a.luts, l), format!("{} (+{:.0}%)", a.ffs, f), l, f)
            }
            (Some(a), None) => (a.luts.to_string(), a.ffs.to_string(), 0.0, 0.0),
            (None, _) => ("n/a".into(), "n/a".into(), 0.0, 0.0),
        };
        let _ = (ovl, ovf);
        let published = r.published.map_or("–".to_string(), |(l, f)| format!("{l} / {f}"));
        println!(
            "{:<18} {:>10} {:>10} {:>16} {:>16} {:>20}",
            r.design.name(),
            r.cfa.cell(),
            r.dfa.cell(),
            luts,
            ffs,
            published
        );
    }
    println!(
        "\nShape check: DIALED provides CFA+DFA at the APEX monitor's cost alone —\n\
         ~5x fewer LUTs and ~50x fewer registers than LiteHAX, the cheapest\n\
         prior architecture with both capabilities.\n"
    );
}
