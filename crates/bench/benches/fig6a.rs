//! Regenerates Fig. 6(a): total code size (bytes) per application for
//! Original / Tiny-CFA / DIALED builds.

use dialed::pipeline::InstrumentMode;
use dialed_bench::{measure, pct};

fn main() {
    println!("\nFig. 6(a) — total code size (bytes)\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>14} {:>16}",
        "Application", "Original", "Tiny-CFA", "DIALED", "DIALED/CFA", "DIALED vs CFA"
    );
    println!("{}", "-".repeat(84));
    for s in apps::scenarios() {
        let orig = measure(&s, InstrumentMode::Original).code_bytes;
        let cfa = measure(&s, InstrumentMode::CfaOnly).code_bytes;
        let full = measure(&s, InstrumentMode::Full).code_bytes;
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>13.2}x {:>16}",
            s.name,
            orig,
            cfa,
            full,
            full as f64 / cfa as f64,
            pct(full as f64, cfa as f64),
        );
    }
    println!(
        "\nShape check: Tiny-CFA dominates the size increase; DIALED adds a\n\
         bounded extra on top (paper: 1-20% over Tiny-CFA).\n"
    );
}
