//! Full-stack integration: every evaluation app through the complete
//! Vrf ↔ Prv protocol, honest and adversarial.

use apex::pox::StopReason;
use dialed::pipeline::{InstrumentMode, InstrumentedOp};
use dialed::prelude::*;

fn build_and_run(scenario: &apps::Scenario, seed: u64) -> (InstrumentedOp, DialedDevice, KeyStore) {
    let op = scenario.build(InstrumentMode::Full);
    let ks = KeyStore::from_seed(seed);
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    (scenario.feed)(dev.platform_mut());
    let info = dev.invoke(&scenario.args);
    assert_eq!(info.stop, StopReason::ReachedStop, "{}: {:?}", scenario.name, dev.violation());
    (op, dev, ks)
}

fn verifier_for(scenario: &apps::Scenario, op: &InstrumentedOp, ks: &KeyStore) -> DialedVerifier {
    let mut v = DialedVerifier::new(op.clone(), ks.clone());
    for p in (scenario.policies)() {
        v = v.with_policy(p);
    }
    v
}

#[test]
fn all_apps_verify_clean_when_honest() {
    for (i, s) in apps::scenarios().into_iter().enumerate() {
        let (op, dev, ks) = build_and_run(&s, 100 + i as u64);
        let chal = Challenge::derive(b"e2e", i as u64);
        let proof = dev.prove(&chal);
        let report = verifier_for(&s, &op, &ks).verify(&VerifyRequest::new(&proof, &chal));
        assert!(report.is_clean(), "{}: {report}", s.name);
        assert_eq!(report.stats.arg_entries, 9, "{}", s.name);
        assert!(report.stats.cf_entries > 0, "{}", s.name);
        assert_eq!(
            report.stats.log_bytes_used,
            2 * (report.stats.cf_entries + report.stats.input_entries + report.stats.arg_entries),
            "{}: every logged word classified",
            s.name
        );
    }
}

#[test]
fn or_bitflips_never_verify() {
    let s = apps::fire_sensor::scenario();
    let (op, dev, ks) = build_and_run(&s, 200);
    let chal = Challenge::derive(b"flip", 0);
    let proof = dev.prove(&chal);
    let verifier = verifier_for(&s, &op, &ks);
    // Flip a bit in each of several positions across the used log span.
    for pos in [0usize, 1, 7, 100, proof.pox.or_data.len() - 1] {
        let mut forged = proof.clone();
        forged.pox.or_data[pos] ^= 0x40;
        let report = verifier.verify(&VerifyRequest::new(&forged, &chal));
        assert!(!report.is_clean(), "bit flip at {pos} accepted");
    }
}

#[test]
fn wrong_key_and_replay_rejected() {
    let s = apps::ultrasonic_ranger::scenario();
    let (op, dev, ks) = build_and_run(&s, 201);
    let chal = Challenge::derive(b"replay", 0);
    let proof = dev.prove(&chal);

    // Wrong verifier key.
    let wrong = DialedVerifier::new(op.clone(), KeyStore::from_seed(999));
    assert_eq!(wrong.verify(&VerifyRequest::new(&proof, &chal)).verdict, Verdict::Rejected);

    // Replay under a fresh challenge.
    let fresh = Challenge::derive(b"replay", 1);
    let v = verifier_for(&s, &op, &ks);
    assert_eq!(v.verify(&VerifyRequest::new(&proof, &fresh)).verdict, Verdict::Rejected);
}

#[test]
fn proof_without_running_rejected() {
    let s = apps::fire_sensor::scenario();
    let op = s.build(InstrumentMode::Full);
    let ks = KeyStore::from_seed(202);
    let dev = DialedDevice::new(op.clone(), ks.clone());
    let chal = Challenge::derive(b"norun", 0);
    let proof = dev.prove(&chal);
    let report = DialedVerifier::new(op, ks).verify(&VerifyRequest::new(&proof, &chal));
    assert_eq!(report.verdict, Verdict::Rejected);
}

#[test]
fn stale_or_from_previous_run_detected() {
    // Run once with input A (proof1), then run again with input B but
    // replay proof1's challenge — each challenge binds one execution.
    let s = apps::fire_sensor::scenario();
    let (op, mut dev, ks) = build_and_run(&s, 203);
    let chal1 = Challenge::derive(b"stale", 1);
    let proof1 = dev.prove(&chal1);
    let verifier = verifier_for(&s, &op, &ks);
    assert!(verifier.verify(&VerifyRequest::new(&proof1, &chal1)).is_clean());

    // Second run, different sensor value.
    dev.platform_mut().adc.feed(&[apps::fire_sensor::raw_for_temp(80), 0x600]);
    dev.invoke(&s.args);
    let chal2 = Challenge::derive(b"stale", 2);
    let proof2 = dev.prove(&chal2);
    assert!(verifier.verify(&VerifyRequest::new(&proof2, &chal2)).is_clean());
    // Old proof no longer matches the new challenge and vice versa.
    assert!(!verifier.verify(&VerifyRequest::new(&proof1, &chal2)).is_clean());
    assert!(!verifier.verify(&VerifyRequest::new(&proof2, &chal1)).is_clean());
}

#[test]
fn cfa_only_build_cannot_claim_dfa_verification() {
    let s = apps::fire_sensor::scenario();
    let op = s.build(InstrumentMode::CfaOnly);
    let ks = KeyStore::from_seed(204);
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    (s.feed)(dev.platform_mut());
    dev.invoke(&s.args);
    let chal = Challenge::derive(b"cfaonly", 0);
    let proof = dev.prove(&chal);
    let report = DialedVerifier::new(op, ks).verify(&VerifyRequest::new(&proof, &chal));
    assert_eq!(report.verdict, Verdict::Rejected, "{report}");
}

#[test]
fn device_rebuilds_are_deterministic() {
    // The verifier instruments the source itself; both sides must agree on
    // every byte or nothing verifies. Rebuild and compare.
    for s in apps::scenarios() {
        let a = s.build(InstrumentMode::Full);
        let b = s.build(InstrumentMode::Full);
        assert_eq!(a.er_bytes, b.er_bytes, "{}", s.name);
        assert_eq!(a.sites, b.sites, "{}", s.name);
        assert_eq!(a.pox, b.pox, "{}", s.name);
    }
}
