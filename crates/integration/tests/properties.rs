//! Property-based integration tests over the whole stack.

use apps::{app_build_options, syringe_pump};
use dialed::pipeline::{InstrumentMode, InstrumentedOp};
use dialed::prelude::*;
use proptest::prelude::*;

fn build_safe_syringe() -> InstrumentedOp {
    InstrumentedOp::build(
        syringe_pump::SOURCE,
        "syringe_op",
        &app_build_options(InstrumentMode::Full),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Completeness: for *any* in-bounds command the safe pump's honest run
    /// verifies clean, and the verifier's reconstruction reports exactly the
    /// dose the device administered.
    #[test]
    fn honest_safe_pump_always_verifies(index in 0u8..8, setting in 0u8..40) {
        let op = build_safe_syringe();
        let ks = KeyStore::from_seed(0xAB);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        dev.platform_mut().uart.feed(&[index, setting]);
        let info = dev.invoke(&[0; 8]);
        prop_assume!(info.stop == apex::pox::StopReason::ReachedStop);
        let chal = Challenge::derive(b"prop", u64::from(index) * 256 + u64::from(setting));
        let proof = dev.prove(&chal);
        let verifier = DialedVerifier::new(op, ks);
        let report = verifier.verify(&VerifyRequest::new(&proof, &chal));
        prop_assert!(report.is_clean(), "{report}");

        // Reconstructed UART traffic equals the device's.
        let emu = verifier.reconstruct(&proof.pox.or_data);
        let emu_tx: Vec<u8> = emu
            .trace
            .steps()
            .iter()
            .flat_map(|s| s.writes().filter(|w| w.addr == 0x0067).map(|w| w.value as u8))
            .collect();
        prop_assert_eq!(emu_tx, dev.platform().uart.tx.clone());
    }

    /// Soundness of the OR binding: no single-byte corruption of a proof's
    /// log ever verifies.
    #[test]
    fn corrupted_or_never_verifies(pos in 0usize..2048, bit in 0u8..8) {
        let op = build_safe_syringe();
        let ks = KeyStore::from_seed(0xCD);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        syringe_pump::feed_nominal(dev.platform_mut());
        dev.invoke(&[0; 8]);
        let chal = Challenge::derive(b"corrupt", 0);
        let mut proof = dev.prove(&chal);
        let len = proof.pox.or_data.len();
        proof.pox.or_data[pos % len] ^= 1 << bit;
        let report = DialedVerifier::new(op, ks).verify(&VerifyRequest::new(&proof, &chal));
        prop_assert!(!report.is_clean());
    }

    /// Argument binding: whatever garbage sits in r8..r15 at invocation, the
    /// verifier reconstructs the identical execution (all eight are logged,
    /// annotation-free).
    #[test]
    fn arbitrary_arguments_reconstruct_exactly(args in proptest::array::uniform8(any::<u16>())) {
        let src = "\
            .org 0xE000\nop:\n mov r8, r5\n add r9, r5\n xor r12, r5\n mov r5, &0x0300\n ret\n";
        let op = InstrumentedOp::build(src, "op", &BuildOptions::default()).unwrap();
        let ks = KeyStore::from_seed(0xEF);
        let mut dev = DialedDevice::new(op.clone(), ks.clone());
        dev.invoke(&args);
        let chal = Challenge::derive(b"args", 0);
        let proof = dev.prove(&chal);
        let verifier = DialedVerifier::new(op, ks);
        let report = verifier.verify(&VerifyRequest::new(&proof, &chal));
        prop_assert!(report.is_clean(), "{report}");
        let emu = verifier.reconstruct(&proof.pox.or_data);
        let expect = args[0].wrapping_add(args[1]) ^ args[4];
        let wrote = emu.trace.steps().iter().any(|s| {
            s.writes().any(|w| w.addr == 0x0300 && w.value == expect)
        });
        prop_assert!(wrote, "verifier must recover the argument-derived result");
    }
}
