//! Regression: application policies must observe the verifier's
//! shadow-stack findings on the `Emulation` they are handed — the verifier
//! may only drain `emu.findings` *after* policies have run.

use apps::{app_build_options, syringe_pump};
use dialed::pipeline::InstrumentMode;
use dialed::policy::Custom;
use dialed::prelude::*;
use dialed::verifier::Emulation;

#[test]
fn policies_observe_shadow_stack_findings() {
    // Stage the paper's Fig. 1 hijack so reconstruction yields a
    // ReturnHijack finding, then escalate on it from a custom policy.
    let opts = app_build_options(InstrumentMode::Full);
    let op = InstrumentedOp::build(syringe_pump::SOURCE_VULN_CF, "syringe_op", &opts).unwrap();
    let inject = op.image.symbol("spc_inject").unwrap();
    let ks = KeyStore::from_seed(31);
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    dev.platform_mut().uart.feed(&syringe_pump::attack_packet_cf(inject));
    dev.invoke(&[0; 8]);
    let chal = Challenge::derive(b"pol", 0);
    let proof = dev.prove(&chal);

    let escalate = Custom::new("escalate-hijack", |emu: &Emulation| {
        if emu.findings.iter().any(|f| matches!(f, Finding::ReturnHijack { .. })) {
            vec![Finding::PolicyViolation {
                policy: "escalate-hijack".into(),
                detail: "reconstructed hijack".into(),
            }]
        } else {
            Vec::new()
        }
    });
    let report = DialedVerifier::new(op, ks)
        .with_policy(Box::new(escalate))
        .verify(&VerifyRequest::new(&proof, &chal));
    assert!(report.findings.iter().any(|f| matches!(f, Finding::ReturnHijack { .. })), "{report}");
    assert!(
        report.findings.iter().any(|f| matches!(f, Finding::PolicyViolation { .. })),
        "policy must have seen the shadow-stack finding: {report}"
    );
}
