//! Robustness properties: no hostile input — mutated proof bytes, mutated
//! challenges, garbage wire frames — may ever panic the verifier-side
//! stack. Every outcome is a graceful `Rejected`/`Attack` report or a
//! wire decode error.

use dialed::attest::{DialedDevice, DialedProof};
use dialed::pipeline::{BuildOptions, InstrumentedOp};
use dialed::report::Verdict;
use dialed::{DialedVerifier, Report, Verifier, VerifyRequest};
use fleet::wire::{self, Message, ProofMsg};
use proptest::prelude::*;
use vrased::{Challenge, KeyStore};

const OP_SRC: &str = "\
    .org 0xE000\nop:\n mov &0x0020, r14\n tst r14\n jz done\n mov r14, &0x0060\ndone:\n ret\n";

/// One honest proof plus the verifier that checks it.
fn honest_setup() -> (DialedVerifier, DialedProof, Challenge) {
    let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
    let ks = KeyStore::from_seed(0x50B);
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    dev.platform_mut().gpio.p1.input = 0x3C;
    let info = dev.invoke(&[0; 8]);
    assert_eq!(info.stop, apex::pox::StopReason::ReachedStop);
    let chal = Challenge::derive(b"robustness", 1);
    let proof = dev.prove(&chal);
    (DialedVerifier::new(op, ks), proof, chal)
}

/// The verifier ran and returned *some* report — the only thing hostile
/// input may achieve.
fn assert_graceful(report: &Report) {
    assert!(matches!(report.verdict, Verdict::Clean | Verdict::Rejected | Verdict::Attack));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary byte/bit corruption of an encoded proof frame: the wire
    /// decoder never panics, and whatever still decodes never panics the
    /// verifier either.
    #[test]
    fn mutated_proof_bytes_never_panic(positions in proptest::collection::vec((any::<usize>(), 0u8..8), 1..24)) {
        let (verifier, proof, chal) = honest_setup();
        let mut bytes = wire::encode(&Message::Proof(ProofMsg { session: 0, device: 0, proof }));
        for (pos, bit) in positions {
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
        }
        if let Ok(Message::Proof(m)) = wire::decode(&bytes) {
            assert_graceful(&verifier.verify(&VerifyRequest::new(&m.proof, &chal)));
        }
    }

    /// Field-level proof mutations (resized OR, flipped flags, rewritten
    /// regions) always yield a graceful rejection, never a panic.
    #[test]
    fn mutated_proof_fields_never_panic(or_len in any::<u16>(), fill in any::<u8>(),
                                        exec in any::<bool>(), twiddle in any::<u8>()) {
        let (verifier, mut proof, chal) = honest_setup();
        proof.pox.or_data = vec![fill; usize::from(or_len)];
        proof.pox.exec = exec;
        if twiddle & 1 != 0 {
            proof.pox.cfg.or_max = proof.pox.cfg.or_max.wrapping_add(u16::from(twiddle));
        }
        if twiddle & 2 != 0 {
            proof.pox.tag[usize::from(twiddle >> 2) % 32] ^= 0xFF;
        }
        let report = verifier.verify(&VerifyRequest::new(&proof, &chal));
        assert_graceful(&report);
        prop_assert_eq!(report.verdict, Verdict::Rejected, "no mutated proof may verify");
    }

    /// Arbitrary challenge bytes: a proof can only answer the challenge it
    /// was produced for.
    #[test]
    fn mutated_challenge_never_panics_or_verifies(bytes in proptest::collection::vec(any::<u8>(), 32..33)) {
        let (verifier, proof, chal) = honest_setup();
        let mutated = Challenge::from_bytes(bytes.try_into().expect("32 bytes"));
        let report = verifier.verify(&VerifyRequest::new(&proof, &mutated));
        assert_graceful(&report);
        if mutated != chal {
            prop_assert_eq!(report.verdict, Verdict::Rejected);
        }
    }

    /// Raw garbage fed to the wire decoder: always a clean error or a
    /// well-formed message, never a panic.
    #[test]
    fn garbage_frames_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode(&bytes);
        // Garbage with a plausible header exercises the payload decoders.
        let mut framed = vec![b'D', b'W', 1, (bytes.len() % 5) as u8 + 1];
        framed.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        framed.extend_from_slice(&bytes);
        let _ = wire::decode(&framed);
    }
}
