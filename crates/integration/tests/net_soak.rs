//! Loopback soak of the TCP frontend: thousands of simulated devices —
//! honest plus the full attack mix from `tests/fleet.rs` (duplicate,
//! replay, corrupt, wrong-challenge) — multiplexed over a handful of
//! connections, every verdict and every structured rejection checked end
//! to end, and the server proven panic-free by graceful shutdown.
//!
//! Scale: the default run sizes for debug-mode CI (override with
//! `NET_SOAK_DEVICES`); `full_soak_ten_thousand` is `#[ignore]`d and run
//! manually in release for the README throughput numbers.

use dialed::attest::DialedDevice;
use dialed::pipeline::{BuildOptions, InstrumentedOp};
use dialed::report::{Finding, RejectReason, Verdict};
use fleet::wire::{Message, ProofMsg};
use fleet::{Fleet, FleetConfig, NetClient, NetConfig, NetServer};
use std::collections::HashMap;
use std::time::{Duration, Instant};
use vrased::{Challenge, KeyStore};

const OP_SRC: &str = "\
    .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";
const ARGS: [u16; 8] = [0, 0, 0, 0, 0, 0, 2, 3];

/// Same role split as `tests/fleet.rs`: 60% honest, 10% each attacker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    Honest,
    Duplicate,
    Replayer,
    Corrupter,
    WrongChallenge,
}

fn role_for(i: usize) -> Role {
    match i % 10 {
        6 => Role::Duplicate,
        7 => Role::Replayer,
        8 => Role::Corrupter,
        9 => Role::WrongChallenge,
        _ => Role::Honest,
    }
}

/// What a reply with a given request id must be.
enum Expect {
    /// A challenge grant; `replay` marks the second session a replayer
    /// opens to replay its captured proof into.
    Grant { idx: usize, replay: bool },
    /// A submission outcome. The body rides along so an `Overloaded`
    /// reject can be retried.
    Submit { body: ProofMsg, kind: SubmitKind },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SubmitKind {
    /// Honest proof: verdict must be `Clean`.
    Clean,
    /// Tampered proof: verdict must be `Rejected` with `MacMismatch`.
    Attack,
    /// Second submission of an already-submitted session: session-layer
    /// reject.
    Duplicate,
    /// Captured proof replayed into a fresh session: anti-replay reject.
    Replay,
}

#[derive(Default)]
struct Totals {
    clean: usize,
    attacks: usize,
    dup_rejects: usize,
    replay_rejects: usize,
    overload_retries: usize,
}

/// One worker: drives `devices` (index, id, keystore) through a full
/// attestation round each over a single multiplexed connection, in
/// chunks, asserting every reply.
#[allow(clippy::too_many_lines)]
fn worker(
    addr: std::net::SocketAddr,
    op: &InstrumentedOp,
    devices: &[(usize, u64, KeyStore)],
    chunk: usize,
) -> Totals {
    let mut client = NetClient::connect(addr).expect("connect");
    let mut totals = Totals::default();
    let mut captured: HashMap<usize, ProofMsg> = HashMap::new();

    for batch in devices.chunks(chunk) {
        let mut outstanding: HashMap<u64, Expect> = HashMap::new();
        for &(idx, id, _) in batch {
            let req = client.issue(id).expect("send issue");
            outstanding.insert(req, Expect::Grant { idx, replay: false });
        }
        let by_idx: HashMap<usize, &(usize, u64, KeyStore)> =
            batch.iter().map(|d| (d.0, d)).collect();

        while !outstanding.is_empty() {
            let msg = client.recv().expect("server reply");
            match msg {
                Message::Grant(g) => {
                    let Some(Expect::Grant { idx, replay }) = outstanding.remove(&g.request) else {
                        panic!("uncorrelated grant {g:?}");
                    };
                    let (_, id, ks) = by_idx[&idx];
                    if replay {
                        // Replay the captured round-1 proof into the
                        // fresh session: must die in the replay window.
                        let capture = captured.remove(&idx).expect("captured proof");
                        let body = ProofMsg { session: g.body.session, ..capture };
                        let req = client.submit(body.clone()).expect("send replay");
                        outstanding.insert(req, Expect::Submit { body, kind: SubmitKind::Replay });
                        continue;
                    }
                    let role = role_for(idx);
                    let mut dev = DialedDevice::new(op.clone(), ks.clone());
                    dev.invoke(&ARGS);
                    let mut proof = dev.prove(&g.body.challenge);
                    let kind = match role {
                        Role::Corrupter => {
                            proof.pox.or_data[11] ^= 0x80;
                            SubmitKind::Attack
                        }
                        Role::WrongChallenge => {
                            proof = dev.prove(&Challenge::derive(b"self-chosen", idx as u64));
                            SubmitKind::Attack
                        }
                        _ => SubmitKind::Clean,
                    };
                    let body = ProofMsg { session: g.body.session, device: *id, proof };
                    let req = client.submit(body.clone()).expect("send submit");
                    match role {
                        Role::Duplicate => {
                            // The identical submission again, its own
                            // request id: must die at the session layer.
                            let dup = client.submit(body.clone()).expect("send duplicate");
                            outstanding.insert(
                                dup,
                                Expect::Submit { body: body.clone(), kind: SubmitKind::Duplicate },
                            );
                        }
                        Role::Replayer => {
                            captured.insert(idx, body.clone());
                            let again = client.issue(*id).expect("send replay issue");
                            outstanding.insert(again, Expect::Grant { idx, replay: true });
                        }
                        _ => {}
                    }
                    outstanding.insert(req, Expect::Submit { body, kind });
                }
                Message::Verdict(v) => {
                    let Some(Expect::Submit { kind, .. }) = outstanding.remove(&v.request) else {
                        panic!("uncorrelated verdict {v:?}");
                    };
                    match kind {
                        SubmitKind::Clean => {
                            assert_eq!(v.body.report.verdict, Verdict::Clean, "{v:?}");
                            totals.clean += 1;
                        }
                        SubmitKind::Attack => {
                            assert_eq!(v.body.report.verdict, Verdict::Rejected, "{v:?}");
                            assert!(
                                matches!(
                                    v.body.report.findings.first(),
                                    Some(Finding::PoxRejected {
                                        reason: RejectReason::MacMismatch
                                    })
                                ),
                                "tampered proof must fail the MAC: {v:?}"
                            );
                            totals.attacks += 1;
                        }
                        kind => panic!("{kind:?} submission must not verify: {v:?}"),
                    }
                }
                Message::Reject(r) => {
                    let Some(Expect::Submit { body, kind }) = outstanding.remove(&r.request) else {
                        panic!("uncorrelated reject {r:?}");
                    };
                    if let RejectReason::Overloaded { .. } = r.reason {
                        // Explicit backpressure: retry the identical
                        // submission under a fresh request id.
                        totals.overload_retries += 1;
                        std::thread::sleep(Duration::from_millis(2));
                        let req = client.submit(body.clone()).expect("resend");
                        outstanding.insert(req, Expect::Submit { body, kind });
                        continue;
                    }
                    let RejectReason::SessionViolation { detail } = &r.reason else {
                        panic!("expected session-layer reject, got {r:?}");
                    };
                    match kind {
                        SubmitKind::Duplicate => {
                            assert!(
                                detail.contains("not awaiting a proof"),
                                "duplicate must die as already-submitted: {detail}"
                            );
                            totals.dup_rejects += 1;
                        }
                        SubmitKind::Replay => {
                            assert!(
                                detail.contains("replayed"),
                                "replay must die in the replay window: {detail}"
                            );
                            totals.replay_rejects += 1;
                        }
                        kind => panic!("{kind:?} submission must not session-reject: {r:?}"),
                    }
                }
                other => panic!("unexpected server message {other:?}"),
            }
        }
    }
    totals
}

fn run_soak(n: usize, conns: usize) {
    let op = InstrumentedOp::build(OP_SRC, "op", &BuildOptions::default()).unwrap();
    let mut fleet = Fleet::new(FleetConfig {
        workers: Some(4),
        shards: 4,
        // Logical expiry stays out of the way: attack rejection, not
        // timeout behavior, is under test here.
        challenge_ttl: 1 << 40,
        ..FleetConfig::default()
    });
    let op_id = fleet.register_op("adder", op.clone(), vec![]);
    let provisioned: Vec<(usize, u64, KeyStore)> = (0..n)
        .map(|i| {
            let id = fleet.register_device(op_id, 0x50A4 ^ i as u64).unwrap();
            (i, id.0, fleet.device_keystore(id).unwrap())
        })
        .collect();

    let handle = NetServer::spawn(
        fleet,
        NetConfig {
            drain_interval: Duration::from_millis(10),
            drain_pending: 256,
            shed_watermark: 50_000,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let start = Instant::now();
    let totals: Vec<Totals> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|w| {
                let lane: Vec<(usize, u64, KeyStore)> =
                    provisioned.iter().filter(|(i, _, _)| i % conns == w).cloned().collect();
                let op = &op;
                scope.spawn(move || worker(addr, op, &lane, 64))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let elapsed = start.elapsed();

    let mut sum = Totals::default();
    for t in totals {
        sum.clean += t.clean;
        sum.attacks += t.attacks;
        sum.dup_rejects += t.dup_rejects;
        sum.replay_rejects += t.replay_rejects;
        sum.overload_retries += t.overload_retries;
    }
    let roles: Vec<Role> = (0..n).map(role_for).collect();
    let count = |r: Role| roles.iter().filter(|&&x| x == r).count();
    assert_eq!(
        sum.clean,
        count(Role::Honest) + count(Role::Duplicate) + count(Role::Replayer),
        "every honest proof (incl. the attackers' first submissions) verifies"
    );
    assert_eq!(
        sum.attacks,
        count(Role::Corrupter) + count(Role::WrongChallenge),
        "every tampered proof is rejected with MacMismatch"
    );
    assert_eq!(sum.dup_rejects, count(Role::Duplicate));
    assert_eq!(sum.replay_rejects, count(Role::Replayer));

    // Graceful shutdown: zero panics (join propagation), nothing pending.
    let (fleet, stats) = handle.shutdown().expect("no server thread may panic");
    assert_eq!(fleet.pending(), 0, "shutdown drained every accepted submission");
    assert_eq!(stats.protocol_errors, 0, "honest traffic triggers no protocol errors");
    assert_eq!(stats.verdicts as usize, sum.clean + sum.attacks);
    assert_eq!(stats.session_rejects as usize, sum.dup_rejects + sum.replay_rejects);
    assert_eq!(stats.shed as usize, sum.overload_retries);
    assert_eq!(stats.granted as usize, n + count(Role::Replayer));
    assert_eq!(stats.expired, 0);

    let per_sec = n as f64 / elapsed.as_secs_f64();
    println!(
        "net soak: {n} devices ({} attackers) over {conns} conns in {elapsed:?} \
         → {per_sec:.0} devices/sec end-to-end [{stats}]",
        n - count(Role::Honest),
    );
}

fn scale() -> usize {
    std::env::var("NET_SOAK_DEVICES").ok().and_then(|s| s.parse().ok()).unwrap_or(400)
}

#[test]
fn soak_mixed_fleet_over_loopback() {
    run_soak(scale(), 4);
}

/// The ISSUE-9 acceptance run: ≥10,000 devices. Run manually in release:
/// `cargo test -p dialed-integration --release -- --ignored full_soak`.
#[test]
#[ignore = "release-mode scale run; see module docs"]
fn full_soak_ten_thousand() {
    run_soak(12_000, 8);
}
